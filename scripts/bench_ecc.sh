#!/usr/bin/env bash
# ECC throughput regression gate.
#
# Runs the `ecc_baseline` bench bin and compares the fresh Reed-Solomon
# single-thread encode throughput against the committed BENCH_ecc.json.
# Fails if the fresh number regresses more than MAX_REGRESS_PCT (default
# 20%) below the committed baseline — the guard for the table-driven
# GF(2^8) kernels silently falling off their fast path.
#
# Usage: scripts/bench_ecc.sh
# Optional env: MAX_REGRESS_PCT=20
#
# Parsing uses grep/sed/awk only (no jq dependency); it keys on the
# hand-rolled one-object-per-line layout that ecc_baseline emits.

set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REGRESS_PCT="${MAX_REGRESS_PCT:-20}"
BASELINE=BENCH_ecc.json

if [[ ! -f "$BASELINE" ]]; then
    echo "error: $BASELINE not found; record it first with" >&2
    echo "  cargo run -p arc-bench --release --bin ecc_baseline > $BASELINE" >&2
    exit 1
fi

# Extract the Reed-Solomon threads=1 encode_mib_s figure from a results file.
rs_encode() {
    grep '"scheme": "Reed-Solomon"' "$1" \
        | grep '"threads": 1,' \
        | sed -n 's/.*"encode_mib_s": \([0-9.]*\).*/\1/p' \
        | head -n 1
}

committed="$(rs_encode "$BASELINE")"
if [[ -z "$committed" ]]; then
    echo "error: no Reed-Solomon threads=1 entry in $BASELINE" >&2
    exit 1
fi

echo "==> cargo run -p arc-bench --release --bin ecc_baseline"
fresh_json="$(mktemp)"
trap 'rm -f "$fresh_json"' EXIT
cargo run -p arc-bench --release --bin ecc_baseline > "$fresh_json"

fresh="$(rs_encode "$fresh_json")"
if [[ -z "$fresh" ]]; then
    echo "error: bench output had no Reed-Solomon threads=1 entry" >&2
    exit 1
fi

echo "RS encode (threads=1): committed ${committed} MiB/s, fresh ${fresh} MiB/s"
awk -v fresh="$fresh" -v committed="$committed" -v pct="$MAX_REGRESS_PCT" '
BEGIN {
    floor = committed * (100 - pct) / 100
    if (fresh < floor) {
        printf "FAIL: fresh %.1f MiB/s is below the %.0f%% floor of %.1f MiB/s\n",
            fresh, 100 - pct, floor
        exit 1
    }
    printf "OK: fresh %.1f MiB/s >= %.0f%% floor of %.1f MiB/s\n",
        fresh, 100 - pct, floor
}'
