#!/usr/bin/env bash
# ECC throughput regression gate.
#
# Runs the `ecc_baseline` bench bin (default build — the `telemetry`
# feature is off) and compares the fresh Reed-Solomon encode throughput
# against the committed BENCH_ecc.json, at two thresholds:
#
#   1. MAX_REGRESS_PCT (default 20%): the guard for the GF(2^8) kernels
#      silently falling off their fast path. Checked at threads=1 AND at
#      threads=max_threads (from the committed baseline), so a pool-path
#      or thread-floor regression cannot hide behind a healthy
#      single-thread number. One run, hard fail. The multi-thread point
#      is skipped (loudly) when this machine's core count differs from
#      the baseline's recorded_cores stamp — cross-hardware scaling
#      comparisons are noise, not signal.
#   2. TELEMETRY_MAX_REGRESS_PCT (default 2%): the compiled-out telemetry
#      facade must cost nothing in the default build. 2% sits inside
#      wall-clock noise on a shared machine, so a miss is retried up to
#      TELEMETRY_GATE_RETRIES more runs and the best run is judged —
#      noise only ever *under*states throughput, so max-of-N is sound.
#
# A third gate checks the sharded-container random-access win: the fresh
# run's range_speedup (full decode time / decode_range time for one
# shard-sized slice of a 16-shard container) must stay at or above
# MIN_RANGE_SPEEDUP (default 2). A partial read that is not clearly
# cheaper than a full decode means per-shard decoding broke.
#
# A fourth gate pins the DESIGN.md §13 fast-path win in absolute terms:
# fresh RS threads=1 encode must be at least MIN_RS_SPEEDUP (default 2)
# times the pre-optimization floor of LEGACY_RS_MIB_S (203.3 MiB/s, the
# committed figure before the slice-by-16 CRC + GFNI/XOR-schedule work).
# Relative gates drift with every re-record; this one cannot.
#
# Usage: scripts/bench_ecc.sh
# Optional env: MAX_REGRESS_PCT=20 TELEMETRY_MAX_REGRESS_PCT=2
#               TELEMETRY_GATE_RETRIES=3 MIN_RANGE_SPEEDUP=2
#               MIN_RS_SPEEDUP=2 LEGACY_RS_MIB_S=203.3
#
# Parsing uses grep/sed/awk only (no jq dependency); it keys on the
# hand-rolled one-object-per-line layout that ecc_baseline emits.

set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REGRESS_PCT="${MAX_REGRESS_PCT:-20}"
TELEMETRY_MAX_REGRESS_PCT="${TELEMETRY_MAX_REGRESS_PCT:-2}"
TELEMETRY_GATE_RETRIES="${TELEMETRY_GATE_RETRIES:-3}"
MIN_RANGE_SPEEDUP="${MIN_RANGE_SPEEDUP:-2}"
MIN_RS_SPEEDUP="${MIN_RS_SPEEDUP:-2}"
LEGACY_RS_MIB_S="${LEGACY_RS_MIB_S:-203.3}"
BASELINE=BENCH_ecc.json

if [[ ! -f "$BASELINE" ]]; then
    echo "error: $BASELINE not found; record it first with" >&2
    echo "  cargo run -p arc-bench --release --bin ecc_baseline > $BASELINE" >&2
    exit 1
fi

# Extract the Reed-Solomon encode_mib_s figure at a given thread count
# ($2) from a results file ($1).
rs_encode() {
    grep '"scheme": "Reed-Solomon"' "$1" \
        | grep "\"threads\": $2," \
        | sed -n 's/.*"encode_mib_s": \([0-9.]*\).*/\1/p' \
        | head -n 1
}

# Thread counts to gate: 1 plus the baseline machine's max (deduped) — but
# only when this machine has the same core count the baseline was recorded
# on. Scaling figures from a 1-core recording are meaningless on a 32-core
# box (and vice versa), so a mismatch skips the multi-thread point loudly
# rather than failing (or silently passing) a bogus comparison.
baseline_max="$(sed -n 's/.*"max_threads": \([0-9]*\).*/\1/p' "$BASELINE" | head -n 1)"
recorded_cores="$(sed -n 's/.*"recorded_cores": \([0-9]*\).*/\1/p' "$BASELINE" | head -n 1)"
current_cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
thread_points="1"
if [[ -z "$recorded_cores" ]]; then
    echo "SKIP: $BASELINE has no recorded_cores field (pre-stamp recording);" >&2
    echo "      gating threads=1 only — re-record the baseline to restore scaling gates" >&2
elif [[ "$recorded_cores" != "$current_cores" ]]; then
    echo "SKIP: baseline recorded on ${recorded_cores} core(s) but this machine has ${current_cores};" >&2
    echo "      scaling comparison at threads=${baseline_max} is not meaningful — gating threads=1 only" >&2
elif [[ -n "$baseline_max" && "$baseline_max" != "1" ]]; then
    thread_points="1 $baseline_max"
fi

committed="$(rs_encode "$BASELINE" 1)"
if [[ -z "$committed" ]]; then
    echo "error: no Reed-Solomon threads=1 entry in $BASELINE" >&2
    exit 1
fi

echo "==> cargo run -p arc-bench --release --bin ecc_baseline"
fresh_json="$(mktemp)"
trap 'rm -f "$fresh_json"' EXIT
cargo run -p arc-bench --release --bin ecc_baseline > "$fresh_json"

fresh="$(rs_encode "$fresh_json" 1)"
if [[ -z "$fresh" ]]; then
    echo "error: bench output had no Reed-Solomon threads=1 entry" >&2
    exit 1
fi

# Gate 1: relative regression vs the committed baseline, per thread count.
for t in $thread_points; do
    committed_t="$(rs_encode "$BASELINE" "$t")"
    fresh_t="$(rs_encode "$fresh_json" "$t")"
    if [[ -z "$committed_t" || -z "$fresh_t" ]]; then
        echo "error: missing Reed-Solomon threads=$t entry (committed='${committed_t}', fresh='${fresh_t}')" >&2
        exit 1
    fi
    echo "RS encode (threads=$t): committed ${committed_t} MiB/s, fresh ${fresh_t} MiB/s"
    awk -v fresh="$fresh_t" -v committed="$committed_t" -v pct="$MAX_REGRESS_PCT" -v t="$t" '
    BEGIN {
        floor = committed * (100 - pct) / 100
        if (fresh < floor) {
            printf "FAIL: threads=%d fresh %.1f MiB/s is below the %.0f%% floor of %.1f MiB/s\n",
                t, fresh, 100 - pct, floor
            exit 1
        }
        printf "OK: threads=%d fresh %.1f MiB/s >= %.0f%% floor of %.1f MiB/s\n",
            t, fresh, 100 - pct, floor
    }'
done

# Gate 2: absolute fast-path win vs the pre-optimization floor.
awk -v fresh="$fresh" -v legacy="$LEGACY_RS_MIB_S" -v min="$MIN_RS_SPEEDUP" '
BEGIN {
    need = legacy * min
    if (fresh < need) {
        printf "FAIL: RS threads=1 encode %.1f MiB/s is below %.1fx the legacy %.1f MiB/s floor (%.1f MiB/s)\n",
            fresh, min, legacy, need
        exit 1
    }
    printf "OK: RS threads=1 encode %.1f MiB/s >= %.1fx legacy floor (%.1f MiB/s, %.2fx)\n",
        fresh, min, need, fresh / legacy
}'

# Random-access gate: decode_range of a shard-sized slice must beat a
# full decode by at least MIN_RANGE_SPEEDUP.
range_speedup="$(sed -n 's/.*"range_speedup": \([0-9.]*\).*/\1/p' "$fresh_json" | head -n 1)"
if [[ -z "$range_speedup" ]]; then
    echo "error: bench output had no range_speedup field" >&2
    exit 1
fi
awk -v s="$range_speedup" -v floor="$MIN_RANGE_SPEEDUP" '
BEGIN {
    if (s < floor) {
        printf "FAIL: decode_range speedup %.2fx is below the %.1fx floor\n", s, floor
        exit 1
    }
    printf "OK: decode_range speedup %.2fx >= %.1fx floor\n", s, floor
}'

# Telemetry-off overhead gate: the no-op facade must leave the default
# build within TELEMETRY_MAX_REGRESS_PCT of the committed baseline.
best="$fresh"
attempt=0
while :; do
    if awk -v f="$best" -v c="$committed" -v p="$TELEMETRY_MAX_REGRESS_PCT" \
        'BEGIN { exit !(f >= c * (100 - p) / 100) }'; then
        echo "OK: telemetry-off encode ${best} MiB/s within ${TELEMETRY_MAX_REGRESS_PCT}% of committed ${committed} MiB/s"
        break
    fi
    if (( attempt >= TELEMETRY_GATE_RETRIES )); then
        echo "FAIL: telemetry-off encode ${best} MiB/s regresses >${TELEMETRY_MAX_REGRESS_PCT}% vs committed ${committed} MiB/s" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
    echo "retry ${attempt}/${TELEMETRY_GATE_RETRIES}: ${best} MiB/s below the ${TELEMETRY_MAX_REGRESS_PCT}% floor, rerunning"
    cargo run -p arc-bench --release --bin ecc_baseline > "$fresh_json"
    rerun="$(rs_encode "$fresh_json" 1)"
    best="$(awk -v a="$best" -v b="$rerun" 'BEGIN { print (b > a) ? b : a }')"
done
