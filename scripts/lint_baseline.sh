#!/usr/bin/env bash
# Regenerate lint-baseline.json from the current workspace state.
#
# Usage: scripts/lint_baseline.sh
#
# The baseline is a ratchet: check.sh fails when any (rule, file) violation
# count grows past it, and --strict-baseline fails when a recorded count is
# higher than reality (so paying debt down must be locked in here). Run this
# after fixing baselined violations, review the shrunken diff, and commit it
# alongside the fix. A diff that *grows* the baseline defeats the ratchet —
# fix or waive the new sites instead (`// arc-lint: allow(<rule>, <reason>)`).

set -euo pipefail
cd "$(dirname "$0")/.."

cargo run -q -p arc-lint -- --write-baseline
git --no-pager diff --stat -- lint-baseline.json || true
