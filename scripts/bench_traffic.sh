#!/usr/bin/env bash
# Streaming/traffic regression gate.
#
# Runs the `traffic_sim` bench bin (full mode, `telemetry` feature on —
# the latency histograms flow through the arc-telemetry facade) and holds
# it to three gates:
#
#   1. The bin's own acceptance asserts: a >=256 MiB streaming encode
#      must keep peak live allocation below 25% of the input
#      (MAX_PEAK_FRAC) while staying within 10% of one-shot sharded
#      throughput (MIN_STREAM_RATIO). traffic_sim exits non-zero itself
#      when either fails, so a violation can't slip past parsing.
#   2. MAX_REGRESS_PCT (default 25%): fresh streaming MiB/s must not
#      regress more than this against the committed BENCH_traffic.json.
#      Wall-clock noise on shared machines only understates throughput,
#      so a miss is retried up to GATE_RETRIES times and the best run
#      is judged. The gate is skipped (loudly) when this machine's core
#      count differs from the baseline's recorded_cores stamp: the full
#      run streams with max_threads workers, so throughput recorded on
#      different hardware is not comparable.
#   3. Structural: the fresh JSON must carry per-class p50/p99 figures
#      for both loops (the bin asserts their sanity internally).
#
# Usage: scripts/bench_traffic.sh
# Optional env: MAX_REGRESS_PCT=25 GATE_RETRIES=2 MIN_STREAM_RATIO=0.9
#               MAX_PEAK_FRAC=0.25
#
# Record / refresh the committed baseline with:
#   cargo run -p arc-bench --release --features telemetry --bin traffic_sim \
#       > BENCH_traffic.json
#
# Parsing uses grep/sed/awk only (no jq dependency); it keys on the
# hand-rolled one-object-per-line layout that traffic_sim emits.

set -euo pipefail
cd "$(dirname "$0")/.."

MAX_REGRESS_PCT="${MAX_REGRESS_PCT:-25}"
GATE_RETRIES="${GATE_RETRIES:-2}"
BASELINE=BENCH_traffic.json

if [[ ! -f "$BASELINE" ]]; then
    echo "error: $BASELINE not found; record it first with" >&2
    echo "  cargo run -p arc-bench --release --features telemetry --bin traffic_sim > $BASELINE" >&2
    exit 1
fi

# Extract a numeric field ($2) from the streaming section of a results
# file ($1).
stream_field() {
    sed -n "s/.*\"$2\": \([0-9.]*\).*/\1/p" <(grep '"streaming"' "$1") | head -n 1
}

committed="$(stream_field "$BASELINE" stream_mib_s)"
if [[ -z "$committed" ]]; then
    echo "error: no stream_mib_s figure in $BASELINE" >&2
    exit 1
fi

# Cross-hardware guard: the committed throughput was recorded with
# max_threads workers on the recording machine; comparing against a run
# with a different worker count measures the hardware, not a regression.
recorded_cores="$(sed -n 's/.*"recorded_cores": \([0-9]*\).*/\1/p' "$BASELINE" | head -n 1)"
current_cores="$(nproc 2>/dev/null || getconf _NPROCESSORS_ONLN)"
compare_throughput=1
if [[ -z "$recorded_cores" ]]; then
    echo "SKIP: $BASELINE has no recorded_cores field (pre-stamp recording);" >&2
    echo "      throughput gate disabled — re-record the baseline to restore it" >&2
    compare_throughput=0
elif [[ "$recorded_cores" != "$current_cores" ]]; then
    echo "SKIP: baseline recorded on ${recorded_cores} core(s) but this machine has ${current_cores};" >&2
    echo "      streaming throughput is not comparable — skipping the regression gate" >&2
    compare_throughput=0
fi

run_fresh() {
    echo "==> cargo run -p arc-bench --release --features telemetry --bin traffic_sim"
    cargo run -p arc-bench --release --features telemetry --bin traffic_sim > "$fresh_json"
}

fresh_json="$(mktemp)"
trap 'rm -f "$fresh_json"' EXIT
run_fresh

fresh="$(stream_field "$fresh_json" stream_mib_s)"
ratio="$(stream_field "$fresh_json" stream_vs_oneshot)"
peak_frac="$(stream_field "$fresh_json" peak_frac)"
if [[ -z "$fresh" || -z "$ratio" || -z "$peak_frac" ]]; then
    echo "error: traffic_sim output is missing streaming figures" >&2
    exit 1
fi
echo "streaming: fresh ${fresh} MiB/s (committed ${committed}), ratio ${ratio}x one-shot, peak_frac ${peak_frac}"

# Structural gate: both loops report per-class percentiles.
for cls in tile_read stream_write batch_encode; do
    n="$(grep -c "\"class\": \"$cls\"" "$fresh_json")"
    if [[ "$n" -lt 2 ]]; then
        echo "FAIL: class $cls missing from one of the loops (found $n of 2)" >&2
        exit 1
    fi
done
echo "OK: closed+open loops report p50/p99 for all three classes"

# Throughput regression gate, retried because noise only understates.
if [[ "$compare_throughput" == 0 ]]; then
    echo "throughput gate skipped (core-count mismatch); structural + internal gates still apply"
    exit 0
fi
best="$fresh"
attempt=0
while :; do
    if awk -v f="$best" -v c="$committed" -v p="$MAX_REGRESS_PCT" \
        'BEGIN { exit !(f >= c * (100 - p) / 100) }'; then
        echo "OK: streaming ${best} MiB/s within ${MAX_REGRESS_PCT}% of committed ${committed} MiB/s"
        break
    fi
    if (( attempt >= GATE_RETRIES )); then
        echo "FAIL: streaming ${best} MiB/s regresses >${MAX_REGRESS_PCT}% vs committed ${committed} MiB/s" >&2
        exit 1
    fi
    attempt=$((attempt + 1))
    echo "retry ${attempt}/${GATE_RETRIES}: ${best} MiB/s below the floor, rerunning"
    run_fresh
    rerun="$(stream_field "$fresh_json" stream_mib_s)"
    best="$(awk -v a="$best" -v b="$rerun" 'BEGIN { print (b > a) ? b : a }')"
done
