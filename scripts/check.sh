#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
#
# Usage: scripts/check.sh
# Runs from the repo root regardless of the caller's cwd.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

echo "All checks passed."
