#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
#
# Usage: scripts/check.sh
# Runs from the repo root regardless of the caller's cwd.
#
# Optional: set ARC_CHECK_BENCH=1 to also run scripts/bench_ecc.sh, which
# fails if Reed-Solomon encode throughput regresses >20% against the
# committed BENCH_ecc.json. Off by default — wall-clock throughput is too
# noisy for shared CI machines, so run it locally before perf-sensitive
# changes land.
#
# Optional: set ARC_CHECK_TELEMETRY=1 to also build and test with the
# `telemetry` feature on. The golden container/stream suites run in both
# modes, proving instrumentation never changes any encoded byte.
#
# Optional: set ARC_SKIP_LINT=1 to skip the arc-lint gate (on by default).
# The gate fails on any violation beyond lint-baseline.json and on stale
# baseline entries; regenerate with scripts/lint_baseline.sh after paying
# debt down.
#
# Optional: set ARC_SKIP_HOSTILE=1 to skip the hostile-input sweep (on by
# default). The sweep mutates every golden stream (bit flips, truncations,
# length inflation, header/garbage splices) and fails on any decode panic,
# hang, or over-budget allocation; see DESIGN.md §11.
#
# Optional: set ARC_SKIP_TRAFFIC=1 to skip the traffic_sim smoke run (on
# by default). The smoke shrinks every phase of the streaming/traffic
# harness but keeps its sanity assertions (peak-memory fraction, per-class
# latency ordering); absolute throughput gates live in
# scripts/bench_traffic.sh, which is not run here.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

echo "==> shard-geometry properties: cargo test -q -p arc-core --test shard_geometry"
cargo test -q -p arc-core --test shard_geometry

echo "==> streaming equivalence properties: cargo test -q -p arc-core --test stream_equiv"
cargo test -q -p arc-core --test stream_equiv

echo "==> streaming determinism + memory bound: cargo test -q -p arc-core --test stream_memory"
cargo test -q -p arc-core --test stream_memory

if [[ "${ARC_SKIP_HOSTILE:-0}" != "1" ]]; then
    echo "==> hostile-input sweep: cargo run --release -q -p arc-bench --bin hostile_corpus"
    cargo run --release -q -p arc-bench --bin hostile_corpus
fi

if [[ "${ARC_SKIP_TRAFFIC:-0}" != "1" ]]; then
    echo "==> traffic smoke: cargo run --release -q -p arc-bench --features telemetry --bin traffic_sim -- --smoke"
    cargo run --release -q -p arc-bench --features telemetry --bin traffic_sim -- --smoke > /dev/null
fi

if [[ "${ARC_SKIP_LINT:-0}" != "1" ]]; then
    echo "==> arc-lint: arc-lint --deny --strict-baseline (10 s budget)"
    # Build outside the timed region: the budget is for the analysis —
    # lexing, call-graph construction, cone rules — not the compiler.
    cargo build -q -p arc-lint
    lint_start_ns=$(date +%s%N)
    ./target/debug/arc-lint --deny --strict-baseline
    lint_ms=$(( ($(date +%s%N) - lint_start_ns) / 1000000 ))
    echo "    arc-lint wall clock: ${lint_ms} ms"
    if (( lint_ms >= 10000 )); then
        echo "error: arc-lint took ${lint_ms} ms; the interprocedural gate must stay under 10 s" >&2
        exit 1
    fi
fi

if [[ "${ARC_CHECK_TELEMETRY:-0}" == "1" ]]; then
    echo "==> telemetry: cargo build --release --features telemetry"
    cargo build --release --features telemetry
    echo "==> telemetry: cargo test -q --features telemetry"
    cargo test -q --features telemetry
    echo "==> telemetry: cargo test -q -p arc-core --features telemetry"
    cargo test -q -p arc-core --features telemetry
    echo "==> telemetry: cargo test -q -p arc-ecc --features telemetry"
    cargo test -q -p arc-ecc --features telemetry
fi

if [[ "${ARC_CHECK_BENCH:-0}" == "1" ]]; then
    echo "==> throughput gate: scripts/bench_ecc.sh"
    scripts/bench_ecc.sh
fi

echo "All checks passed."
