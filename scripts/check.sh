#!/usr/bin/env bash
# Repo gate: formatting, lints, and the tier-1 build + test suite.
#
# Usage: scripts/check.sh
# Runs from the repo root regardless of the caller's cwd.
#
# Optional: set ARC_CHECK_BENCH=1 to also run scripts/bench_ecc.sh, which
# fails if Reed-Solomon encode throughput regresses >20% against the
# committed BENCH_ecc.json. Off by default — wall-clock throughput is too
# noisy for shared CI machines, so run it locally before perf-sensitive
# changes land.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> tier-1: cargo build --release"
cargo build --release

echo "==> tier-1: cargo test -q"
cargo test -q

echo "==> workspace tests: cargo test --workspace -q"
cargo test --workspace -q

if [[ "${ARC_CHECK_BENCH:-0}" == "1" ]]; then
    echo "==> throughput gate: scripts/bench_ecc.sh"
    scripts/bench_ecc.sh
fi

echo "All checks passed."
