//! Golden compressed-stream regression tests: the SZ and ZFP encoders must
//! produce byte-for-byte stable output for a fixed input, with the
//! `telemetry` feature on or off. The FNV-1a checksums below were captured
//! with telemetry off; `scripts/check.sh` reruns this file under
//! `--features telemetry` (`ARC_CHECK_TELEMETRY=1`), so a checksum match in
//! both builds proves instrumentation never perturbs the streams.
//!
//! To regenerate after an *intentional* stream-format change, run:
//! `ARC_REGENERATE_GOLDEN=1 cargo test --test golden_streams -- --nocapture`
//! and paste the printed constants.

use arc::sz::{self, ErrorBound, SzConfig};
use arc::zfp::{self, ZfpMode};

/// Deterministic 32×32 smooth field — representative of the paper's
/// climate-style inputs without depending on dataset generators.
fn fixed_field() -> Vec<f32> {
    (0..32 * 32)
        .map(|i| {
            let (r, c) = ((i / 32) as f32, (i % 32) as f32);
            (r * 0.13).sin() * 4.0 + (c * 0.07).cos() * 2.5 + (r * c * 0.002).sin()
        })
        .collect()
}

/// 64-bit FNV-1a over the stream bytes.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

fn sz_streams() -> Vec<(String, Vec<u8>)> {
    let data = fixed_field();
    [ErrorBound::Abs(1e-3), ErrorBound::PwRel(1e-2), ErrorBound::Psnr(60.0)]
        .into_iter()
        .map(|bound| {
            let cfg = SzConfig { bound, ..SzConfig::default() };
            let stream = sz::compress(&data, &[32, 32], &cfg).unwrap();
            (format!("sz:{bound:?}"), stream)
        })
        .collect()
}

fn zfp_streams() -> Vec<(String, Vec<u8>)> {
    let data = fixed_field();
    [ZfpMode::FixedAccuracy(1e-3), ZfpMode::FixedRate(8.0)]
        .into_iter()
        .map(|mode| {
            let stream = zfp::compress(&data, &[32, 32], mode).unwrap();
            (format!("zfp:{mode:?}"), stream)
        })
        .collect()
}

/// (stream id, byte length, FNV-1a of the bytes).
const GOLDEN_STREAMS: &[(&str, usize, u64)] = &[
    ("sz:Abs(0.001)", 792, 0x1eabe7d84f8c548b),
    ("sz:PwRel(0.01)", 910, 0x23d68a9091323f2f),
    ("sz:Psnr(60.0)", 669, 0xaaaebe29ddaf6e50),
    ("zfp:FixedAccuracy(0.001)", 1219, 0xcd6c15086c9afa4b),
    ("zfp:FixedRate(8.0)", 1043, 0x03fc992854a12509),
];

#[test]
fn compressed_streams_match_golden_checksums() {
    let actual: Vec<(String, Vec<u8>)> = sz_streams().into_iter().chain(zfp_streams()).collect();
    if std::env::var("ARC_REGENERATE_GOLDEN").is_ok() {
        for (id, bytes) in &actual {
            println!("    (\"{id}\", {}, {:#018x}),", bytes.len(), fnv1a(bytes));
        }
        return;
    }
    assert_eq!(GOLDEN_STREAMS.len(), actual.len(), "stream list drifted from snapshot");
    for ((gid, glen, gsum), (id, bytes)) in GOLDEN_STREAMS.iter().zip(&actual) {
        assert_eq!(gid, id, "stream order drifted from snapshot");
        assert_eq!(*glen, bytes.len(), "stream length changed for {id}");
        assert_eq!(*gsum, fnv1a(bytes), "stream bytes changed for {id}");
    }
}

/// The snapshotted streams must still round-trip within their bounds.
#[test]
fn golden_streams_still_round_trip() {
    let data = fixed_field();
    for (id, stream) in sz_streams() {
        let decoded = sz::decompress(&stream).unwrap();
        assert_eq!(decoded.dims, vec![32, 32], "{id}");
        assert_eq!(decoded.data.len(), data.len(), "{id}");
    }
    for (id, stream) in zfp_streams() {
        let decoded = zfp::decompress(&stream).unwrap();
        assert_eq!(decoded.dims, vec![32, 32], "{id}");
        assert_eq!(decoded.data.len(), data.len(), "{id}");
    }
}
