//! Cross-crate integration for the future-work features: the custom-ECC
//! extension API, the added schemes (replication, interleaved SEC-DED),
//! and machine fault-mix storms.

use std::sync::Arc;

use arc::core::{decode_with_registry, encode_with_scheme, ExtensionRegistry};
use arc::faultsim::{storm, FaultMix};
use arc_ecc::{EccScheme, InterleavedSecDed, Replication};

fn checkpoint(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 131) ^ (i >> 7)) as u8).collect()
}

fn registry() -> ExtensionRegistry {
    let mut r = ExtensionRegistry::new();
    r.register("tmr", Arc::new(Replication::tmr())).unwrap();
    r.register("ilsecded", Arc::new(InterleavedSecDed::new(256).unwrap())).unwrap();
    r
}

#[test]
fn custom_schemes_survive_their_design_storms() {
    let data = checkpoint(500_000);
    let r = registry();
    // TMR vs a Cielo-like storm (bursts up to 512 bytes).
    let enc = encode_with_scheme(&data, &r, "tmr", 2).unwrap();
    let mut struck = enc.clone();
    storm(&mut struck, 25, &FaultMix::cielo_like(), 0xE57);
    let (out, report) = decode_with_registry(&struck, 2, &r).unwrap();
    assert_eq!(out, data);
    assert!(!report.correction.is_clean());

    // Interleaved SEC-DED vs sparse single-bit weather.
    let enc = encode_with_scheme(&data, &r, "ilsecded", 2).unwrap();
    let mut struck = enc.clone();
    let single_only = FaultMix { single_bit_fraction: 1.0, burst_bytes: (1, 1) };
    storm(&mut struck, 30, &single_only, 0xE58);
    let (out, report) = decode_with_registry(&struck, 2, &r).unwrap();
    assert_eq!(out, data);
    assert!(report.correction.corrected_bits >= 1);
}

#[test]
fn interleaved_secded_beats_plain_secded_on_bursts() {
    let data = checkpoint(200_000);
    // A 24-byte burst: plain SEC-DED must fail, depth-256 interleave wins.
    let il = InterleavedSecDed::new(256).unwrap();
    let mut enc = il.encode(&data);
    for b in &mut enc[50_000..50_024] {
        *b = !*b;
    }
    let (out, _) = il.decode(&enc, data.len()).unwrap();
    assert_eq!(out, data);

    let plain = arc_ecc::SecDed::w64();
    let mut enc = plain.encode(&data);
    for b in &mut enc[50_000..50_024] {
        *b = !*b;
    }
    assert!(plain.decode(&enc, data.len()).is_err());
}

#[test]
fn extension_overheads_match_their_contracts() {
    let data = checkpoint(100_000);
    let r = registry();
    let tmr = encode_with_scheme(&data, &r, "tmr", 1).unwrap();
    let il = encode_with_scheme(&data, &r, "ilsecded", 1).unwrap();
    let overhead = |enc: &Vec<u8>| (enc.len() as f64 - data.len() as f64) / data.len() as f64;
    assert!(overhead(&tmr) > 1.9, "TMR ≈ 200%: {}", overhead(&tmr));
    assert!(overhead(&il) < 0.14, "interleave ≈ 12.5%: {}", overhead(&il));
}

#[test]
fn custom_constraint_predicate_filters_candidates() {
    use arc::core::{joint_optimizer_with, thread_ladder, TrainingTable};
    use arc::{EccConfig, EncodeRequest};
    let space = EccConfig::standard_space();
    let mut table = TrainingTable::new();
    for cfg in &space {
        for t in thread_ladder(4) {
            table.record(cfg, t, 25.0 * t as f64, 50.0 * t as f64);
        }
    }
    // Custom constraint: only configurations whose parity for a 1 MiB chunk
    // is a multiple of 8 bytes (an alignment-sensitive consumer).
    let sel = joint_optimizer_with(&table, &space, &EncodeRequest::default(), 4, |c| {
        arc_ecc::EccScheme::parity_len(c, 1 << 20) % 8 == 0
    })
    .unwrap();
    assert_eq!(arc_ecc::EccScheme::parity_len(&sel.config, 1 << 20) % 8, 0);
}

#[test]
fn storms_against_unprotected_data_always_corrupt() {
    let data = checkpoint(100_000);
    for seed in 0..5u64 {
        let mut struck = data.clone();
        let summary = storm(&mut struck, 10, &FaultMix::hopper_like(), seed);
        assert!(summary.bits_flipped > 0);
        assert_ne!(struck, data, "seed {seed}");
    }
}
