//! Cross-crate integration: every decode path is total over corrupt bytes.
//!
//! A reduced-size deterministic run of the hostile harness
//! ([`arc::faultsim::hostile`]) — the full sweep lives in the
//! `hostile_corpus` bench binary — plus targeted regressions for the
//! specific panic classes fixed by the hardening pass: container header
//! truncation at every byte boundary, the ZFP fixed-rate budget underflow,
//! and lossless length-field inflation.

use std::time::Duration;

use arc::core::container;
use arc::core::decode_with_threads;
use arc::faultsim::hostile::{builtin_targets, sweep, CaseStatus, HostileConfig};
use arc::lossless::LosslessError;
use arc::EccConfig;

/// The harness itself, at CI scale: every decoder, all four mutation
/// families, deterministic, and fast enough for the tier-1 suite.
#[test]
fn hostile_sweep_is_clean_at_ci_scale() {
    let cfg = HostileConfig::quick();
    let report = sweep(&builtin_targets(), &cfg);
    assert!(report.cases > 300, "corpus unexpectedly small: {}", report.summary());
    assert!(
        report.is_clean(),
        "totality violations:\n{}",
        report.failures.iter().map(|f| f.to_string()).collect::<Vec<_>>().join("\n")
    );
    // Both outcome classes must be represented: an all-Rejected corpus
    // would mean the golden streams are broken, an all-Completed one that
    // the mutations are too gentle.
    assert!(report.rejected > 0 && report.completed > 0, "{}", report.summary());
}

/// Same seed, same corpus, same counts — the reproduction contract.
#[test]
fn hostile_sweep_is_deterministic() {
    let cfg = HostileConfig {
        flips: 4,
        truncations: 2,
        inflations: 2,
        splices: 1,
        ..HostileConfig::default()
    };
    let a = sweep(&builtin_targets(), &cfg);
    let b = sweep(&builtin_targets(), &cfg);
    assert_eq!((a.cases, a.rejected, a.completed), (b.cases, b.rejected, b.completed));
}

/// Container decode must reject — never panic on — a container cut at
/// every byte boundary through its RS-protected header (satellite for the
/// seven former panic sites in `container.rs`).
#[test]
fn container_truncated_at_every_header_boundary_errs() {
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 253) as u8).collect();
    let encoded = arc::core::arc_engine_encode(&data, EccConfig::secded(true), 1).unwrap();
    let meta = container::unpack(&encoded).unwrap().meta;
    let hlen = container::header_len(&meta);
    assert!(hlen < encoded.len());
    for cut in 0..=hlen {
        let slice = &encoded[..cut];
        assert!(container::unpack(slice).is_err(), "unpack accepted a {cut}-byte header prefix");
        assert!(
            decode_with_threads(slice, 1).is_err(),
            "decode accepted a {cut}-byte header prefix"
        );
    }
    // One byte short of complete must still fail; the intact buffer must
    // still round-trip (the truncation loop really is exercising the
    // boundary, not a broken fixture).
    assert!(decode_with_threads(&encoded[..encoded.len() - 1], 1).is_err());
    assert_eq!(decode_with_threads(&encoded, 1).unwrap().0, data);
}

/// Regression: a fixed-rate ZFP stream whose per-block bit budget is
/// smaller than the 17-bit block header used to underflow
/// (`budget - header`) and panic in debug builds. The encoder refuses to
/// produce such a stream (rate 2.0 on a 1-D 4-element block gives budget
/// 8), so a hostile one is handcrafted: the decoder must treat the header
/// as consuming the whole budget, not wrap around.
#[test]
fn zfp_handcrafted_low_rate_stream_decodes_without_underflow() {
    let mut evil: Vec<u8> = Vec::new();
    evil.extend_from_slice(arc::zfp::MAGIC);
    evil.push(arc::zfp::VERSION);
    evil.push(1); // mode tag: FixedRate
    evil.extend_from_slice(&2.0f64.to_le_bytes()); // in-range rate, tiny budget
    evil.push(1); // ndims
    evil.push(4); // dim varint: one 4-element block
    evil.push(3); // payload length varint
    evil.extend_from_slice(&[0u8; 3]); // FLAG_NORMAL + zero emax/kmax fields
    let out = arc::zfp::decompress(&evil).expect("underflow-free decode");
    assert_eq!(out.dims, vec![4]);
    assert_eq!(out.data.len(), 4);
}

/// An inflated declared-length field must be refused up front with the
/// work-budget error — not answered with a multi-gigabyte allocation.
#[test]
fn lossless_inflated_length_fields_hit_the_work_budget() {
    let text = b"budget budget budget ".repeat(64);
    // Both framings carry the declared original length as a varint right
    // after the 4-byte magic; splice in a valid 5-byte varint for 2^35 − 1
    // (≈32 GiB) ahead of the real stream body.
    let huge = [0xFFu8, 0xFF, 0xFF, 0xFF, 0x7F];
    let splice = |bytes: &[u8]| {
        let mut evil = bytes[..4].to_vec();
        evil.extend_from_slice(&huge);
        evil.extend_from_slice(&bytes[4..]);
        evil
    };
    let deflate_r = arc::lossless::deflate::decompress_with_limit(
        &splice(&arc::lossless::deflate::compress(&text)),
        1 << 20,
    );
    assert!(
        matches!(deflate_r, Err(LosslessError::WorkBudgetExceeded { demanded, budget })
            if demanded == (1 << 35) - 1 && budget == 1 << 20),
        "deflate classified the inflated length as {deflate_r:?}"
    );
    let zstd_r = arc::lossless::zstd_like::decompress_with_limit(
        &splice(&arc::lossless::zstd_like::compress(&text)),
        1 << 20,
    );
    assert!(
        matches!(zstd_r, Err(LosslessError::WorkBudgetExceeded { .. })),
        "zstd-like classified the inflated length as {zstd_r:?}"
    );
}

/// The wall-clock guard actually fires and the sweep reports it rather
/// than hanging (the *Timeout* class is a first-class harness outcome).
#[test]
fn wall_clock_guard_catches_a_hung_decoder() {
    use arc::faultsim::hostile::{run_case, DecodeFn};
    use std::sync::Arc;
    let hung: DecodeFn = Arc::new(|_, _| loop {
        std::thread::sleep(Duration::from_millis(50));
    });
    let cfg =
        HostileConfig { max_case_duration: Duration::from_millis(120), ..HostileConfig::default() };
    let (status, elapsed) = run_case(&hung, &[0u8; 8], &cfg);
    assert_eq!(status, CaseStatus::TimedOut);
    assert!(elapsed >= Duration::from_millis(120));
}
