//! Cross-crate integration: the fault-injection taxonomy behaves per §4 of
//! the paper across compressors and datasets.

use arc::datasets::SdrDataset;
use arc::faultsim::{run_campaign_with_bound, sample_bits, ReturnStatus, TrialContext};
use arc::pressio::{BoundSpec, CompressorSpec, Dataset};

#[test]
fn majority_of_flips_complete_silently() {
    // §4.2: "95.28% of all trials Completed" — the silent-corruption class
    // dominates. We assert the qualitative claim: a strict majority.
    let field = SdrDataset::CesmCldlow.generate(&[80, 160], 11);
    let mut completed = 0usize;
    let mut total = 0usize;
    for spec in
        [CompressorSpec::SzAbs(0.1), CompressorSpec::ZfpAcc(0.1), CompressorSpec::ZfpRate(8.0)]
    {
        let comp = spec.build();
        let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims }).unwrap();
        let bits = sample_bits(stream.len() as u64 * 8, 150, 21);
        let report = run_campaign_with_bound(
            comp.as_ref(),
            &field.data,
            &stream,
            &bits,
            Some(BoundSpec::Abs(0.1)),
        );
        completed += report.trials.iter().filter(|t| t.status == ReturnStatus::Completed).count();
        total += report.trials.len();
    }
    let pct = 100.0 * completed as f64 / total as f64;
    assert!(pct > 60.0, "only {pct:.1}% completed; paper reports ~95%");
}

#[test]
fn zfp_rate_trials_all_complete() {
    // §4.2: 100% of ZFP trials Completed — ZFP never detects the damage.
    let field = SdrDataset::CesmCldlow.generate(&[80, 160], 13);
    let comp = CompressorSpec::ZfpRate(8.0).build();
    let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims }).unwrap();
    // Sample payload bits (the small stream header is ARC's to protect).
    let header_bits = 24 * 8;
    let bits: Vec<u64> = sample_bits(stream.len() as u64 * 8 - header_bits, 250, 17)
        .into_iter()
        .map(|b| b + header_bits)
        .collect();
    let report = run_campaign_with_bound(
        comp.as_ref(),
        &field.data,
        &stream,
        &bits,
        Some(BoundSpec::Abs(0.1)),
    );
    assert_eq!(
        report.percent(ReturnStatus::Completed),
        100.0,
        "status counts: {:?}",
        report.status_counts()
    );
}

#[test]
fn serial_modes_propagate_more_than_block_mode() {
    // §4.3's headline: serial streams average ~10% incorrect elements per
    // flip; ZFP-Rate averages a handful of *elements*.
    let field = SdrDataset::CesmCldlow.generate(&[80, 160], 19);
    let eval = Some(BoundSpec::Abs(0.1));
    let mut avg_elements = std::collections::HashMap::new();
    for spec in [CompressorSpec::SzAbs(0.1), CompressorSpec::ZfpRate(8.0)] {
        let comp = spec.build();
        let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims }).unwrap();
        let bits = sample_bits(stream.len() as u64 * 8, 200, 23);
        let report = run_campaign_with_bound(comp.as_ref(), &field.data, &stream, &bits, eval);
        // Subtract the control baseline (rate mode has inherent violations
        // at its fixed precision).
        let control =
            report.control.metrics.as_ref().and_then(|m| m.incorrect_elements).unwrap_or(0) as f64;
        avg_elements.insert(
            spec.family(),
            (report.avg_incorrect_elements().unwrap_or(0.0) - control).max(0.0),
        );
    }
    let sz = avg_elements["SZ-ABS"];
    let zfp = avg_elements["ZFP-Rate"];
    assert!(
        sz > 10.0 * zfp.max(1.0),
        "SZ-ABS should propagate far more than ZFP-Rate: {sz} vs {zfp}"
    );
}

#[test]
fn timeout_class_reachable_via_dims_corruption() {
    // §4.2's Timeout class: corrupting the decompression-controlling
    // metadata (dimensions) demands implausible work. Target the header's
    // dims bytes directly to prove the classification path.
    let field = SdrDataset::CesmCldlow.generate(&[100, 200], 29);
    let comp = CompressorSpec::SzAbs(0.1).build();
    let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims }).unwrap();
    let ctx = TrialContext::new(comp.as_ref(), &field.data, &stream);
    // The dims varints live right after magic+version+tag+2×f64+flag.
    let dims_offset = (4 + 1 + 1 + 16 + 1 + 1) as u64 * 8;
    let mut seen_timeout = false;
    for bit in dims_offset..dims_offset + 32 {
        if ctx.run_flip(bit).status == ReturnStatus::Timeout {
            seen_timeout = true;
            break;
        }
    }
    assert!(seen_timeout, "no dims flip produced the Timeout class");
}

#[test]
fn control_trials_are_pristine_for_bounded_modes() {
    for ds in [SdrDataset::CesmCldlow] {
        let field = ds.generate(&[60, 120], 31);
        for spec in
            [CompressorSpec::SzAbs(0.1), CompressorSpec::SzPwRel(0.1), CompressorSpec::ZfpAcc(0.1)]
        {
            let comp = spec.build();
            let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims }).unwrap();
            let ctx = TrialContext::new(comp.as_ref(), &field.data, &stream);
            let control = ctx.run_control();
            assert_eq!(control.status, ReturnStatus::Completed, "{}", spec.name());
            let m = control.metrics.unwrap();
            assert_eq!(m.percent_incorrect, Some(0.0), "{}", spec.name());
        }
    }
}
