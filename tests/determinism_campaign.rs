//! Campaign determinism: the same seed must yield an identical
//! [`CampaignReport`] no matter how many threads the rayon pool runs.
//!
//! The parallel map in `run_campaign` is an order-preserving collect, so
//! trial outcomes land in target-bit order regardless of which worker ran
//! them; this test pins that contract across 1-, 2-, and 8-thread pools.
//! Wall-clock fields (`decompress_seconds`, `bandwidth_mb_s`) are excluded
//! from the comparison — they legitimately vary run to run.

use arc::datasets::SdrDataset;
use arc::faultsim::{run_campaign_with_bound, sample_bits, CampaignReport, TrialOutcome};
use arc::pressio::{BoundSpec, CompressorSpec, Dataset};

/// The deterministic projection of one trial: everything except wall-clock.
#[derive(Debug, PartialEq, Eq)]
struct TrialKey {
    bit: Option<u64>,
    status: &'static str,
    percent_incorrect: Option<u64>,
    incorrect_elements: Option<usize>,
    max_abs_diff: u64,
    psnr: u64,
}

fn key(t: &TrialOutcome) -> TrialKey {
    TrialKey {
        bit: t.bit,
        status: t.status.label(),
        percent_incorrect: t.metrics.as_ref().and_then(|m| m.percent_incorrect).map(f64::to_bits),
        incorrect_elements: t.metrics.as_ref().and_then(|m| m.incorrect_elements),
        max_abs_diff: t.metrics.as_ref().map_or(0, |m| m.max_abs_diff.to_bits()),
        psnr: t.metrics.as_ref().map_or(0, |m| m.psnr.to_bits()),
    }
}

fn run_at(threads: usize) -> CampaignReport {
    let field = SdrDataset::CesmCldlow.generate(&[48, 96], 77);
    let comp = CompressorSpec::SzAbs(0.05).build();
    let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims }).unwrap();
    let bits = sample_bits(stream.len() as u64 * 8, 200, 42);
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().unwrap();
    pool.install(|| {
        run_campaign_with_bound(
            comp.as_ref(),
            &field.data,
            &stream,
            &bits,
            Some(BoundSpec::Abs(0.05)),
        )
    })
}

#[test]
fn same_seed_same_report_across_thread_counts() {
    let baseline = run_at(1);
    for threads in [2usize, 8] {
        let report = run_at(threads);
        assert_eq!(report.total_bits, baseline.total_bits);
        assert_eq!(report.trials.len(), baseline.trials.len(), "{threads} threads");
        assert_eq!(key(&report.control), key(&baseline.control), "{threads} threads");
        for (i, (a, b)) in report.trials.iter().zip(&baseline.trials).enumerate() {
            assert_eq!(key(a), key(b), "trial {i} diverged at {threads} threads");
        }
        assert_eq!(report.status_counts(), baseline.status_counts(), "{threads} threads");
    }
}
