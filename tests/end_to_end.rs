//! Cross-crate integration: the full paper pipeline — dataset → lossy
//! compressor → ARC → soft errors → ARC decode → decompressor → bound
//! verification.

use arc::datasets::SdrDataset;
use arc::pressio::{incorrect_elements, BoundSpec, CompressorSpec, Dataset};
use arc::{
    ArcContext, ArcOptions, EncodeRequest, MemoryConstraint, ResiliencyConstraint,
    ThroughputConstraint, TrainingOptions,
};
use arc_ecc::EccConfig;

fn ctx(tag: &str) -> ArcContext {
    let dir = std::env::temp_dir().join(format!("arc-e2e-{tag}-{}", std::process::id()));
    ArcContext::init(ArcOptions {
        max_threads: 2,
        cache_path: Some(dir.join("training.tsv")),
        training: TrainingOptions {
            sample_bytes: 32 << 10,
            rs_sample_bytes: 16 << 10,
            space: vec![
                EccConfig::parity(8).unwrap(),
                EccConfig::secded(true),
                EccConfig::rs(64, 16).unwrap(),
            ],
        },
        chunk_size: 32 << 10,
    })
    .expect("arc_init")
}

#[test]
fn full_pipeline_recovers_from_soft_errors() {
    let field = SdrDataset::CesmCldlow.generate(&[90, 180], 9);
    let eps = 1e-3;
    let compressor = CompressorSpec::SzAbs(eps).build();
    let stream =
        compressor.compress(&Dataset { data: &field.data, dims: &field.dims }).expect("compress");
    let ctx = ctx("pipeline");
    let (protected, sel) = ctx
        .encode(
            &stream,
            &EncodeRequest {
                memory: MemoryConstraint::Fraction(0.3),
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
            },
        )
        .expect("arc_encode");
    assert!(sel.overhead <= 0.3);

    // Scattered soft errors across the protected container.
    let mut struck = protected.clone();
    for i in 0..6 {
        let pos = 13 + i * (struck.len() / 7);
        struck[pos] ^= 1 << (i % 8);
    }
    let (recovered, report) = ctx.decode(&struck).expect("arc_decode repairs");
    assert_eq!(recovered, stream);
    assert!(!report.correction.is_clean());

    let decoded = compressor.decompress(&recovered).expect("decompress");
    assert_eq!(decoded.dims, field.dims);
    assert_eq!(
        incorrect_elements(&field.data, &decoded.data, BoundSpec::Abs(eps)),
        0,
        "error bound must hold end to end"
    );
    ctx.close().expect("arc_close");
}

#[test]
fn unprotected_stream_corrupts_but_protected_survives_identically() {
    let field = SdrDataset::IsabelPressure.generate(&[10, 50, 50], 3);
    let compressor = CompressorSpec::ZfpAcc(0.5).build();
    let stream =
        compressor.compress(&Dataset { data: &field.data, dims: &field.dims }).expect("compress");
    // Unprotected: flip one bit mid-stream.
    let mut bare = stream.clone();
    let flip_at = stream.len() / 2;
    bare[flip_at] ^= 0x08;
    let damaged = compressor.decompress(&bare);
    let damage_visible = match damaged {
        Ok(d) => d.data != compressor.decompress(&stream).unwrap().data,
        Err(_) => true,
    };
    assert!(damage_visible, "a mid-stream flip must matter to the raw codec");

    // Protected: the same flip is absorbed.
    let ctx = ctx("survive");
    let (protected, _) = ctx
        .encode(
            &stream,
            &EncodeRequest {
                memory: MemoryConstraint::Any,
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
            },
        )
        .expect("encode");
    let mut struck = protected.clone();
    struck[protected.len() / 2] ^= 0x08;
    let (recovered, _) = ctx.decode(&struck).expect("decode");
    assert_eq!(recovered, stream);
}

#[test]
fn burst_errors_need_reed_solomon() {
    let data: Vec<u8> = (0..300_000).map(|i| (i % 253) as u8).collect();
    let ctx = ctx("burst");
    // SEC-DED cannot fix a burst…
    let secded = ctx.encode_with(&data, EccConfig::secded(true), 2).expect("encode");
    let mut struck = secded.clone();
    let start = struck.len() / 2;
    for b in &mut struck[start..start + 512] {
        *b ^= 0xFF;
    }
    assert!(ctx.decode(&struck).is_err(), "SEC-DED must detect-but-fail on a burst");
    // …Reed-Solomon can.
    let rs = ctx.encode_with(&data, EccConfig::rs(64, 16).unwrap(), 2).expect("encode");
    let mut struck = rs.clone();
    let start = struck.len() / 2;
    for b in &mut struck[start..start + 512] {
        *b ^= 0xFF;
    }
    let (recovered, report) = ctx.decode(&struck).expect("RS repairs the burst");
    assert_eq!(recovered, data);
    assert!(report.correction.corrected_devices >= 1);
}

#[test]
fn system_profile_drives_selection_end_to_end() {
    let ctx = ctx("system");
    let data = vec![0x5Au8; 200_000];
    for system in [arc::SystemProfile::cielo(), arc::SystemProfile::hopper()] {
        let req = EncodeRequest {
            memory: MemoryConstraint::Fraction(0.5),
            throughput: ThroughputConstraint::Any,
            resiliency: system.recommended_resiliency(),
        };
        let (encoded, sel) = ctx.encode(&data, &req).expect("encode");
        if system.name == "Cielo" {
            assert_eq!(sel.config.method(), arc::EccMethod::Rs, "Cielo needs burst correction");
        }
        let (decoded, _) = ctx.decode(&encoded).expect("decode");
        assert_eq!(decoded, data);
    }
}

#[test]
fn every_paper_mode_composes_with_arc() {
    let field = SdrDataset::CesmCldlow.generate(&[60, 120], 5);
    let ctx = ctx("modes");
    for spec in [
        CompressorSpec::SzAbs(0.1),
        CompressorSpec::SzPwRel(0.1),
        CompressorSpec::SzPsnr(90.0),
        CompressorSpec::ZfpAcc(0.1),
        CompressorSpec::ZfpRate(8.0),
    ] {
        let comp = spec.build();
        let stream =
            comp.compress(&Dataset { data: &field.data, dims: &field.dims }).expect("compress");
        let (protected, _) = ctx.encode(&stream, &EncodeRequest::default()).expect("encode");
        let mut struck = protected.clone();
        struck[protected.len() * 2 / 3] ^= 0x01;
        let (recovered, _) = ctx.decode(&struck).expect("decode");
        assert_eq!(recovered, stream, "{}", spec.name());
        let decoded = comp.decompress(&recovered).expect("decompress");
        assert_eq!(decoded.data.len(), field.data.len(), "{}", spec.name());
    }
}
