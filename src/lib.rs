//! # arc — Automated Resiliency for Compression, in Rust
//!
//! A full reproduction of *"ARC: An Automated Approach to Resiliency for
//! Lossy Compressed Data via Error Correcting Codes"* (Fulp, Poulos,
//! Underwood, Calhoun — HPDC 2021), including every substrate the paper's
//! stack depends on. This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`core`] | `arc-core` | ARC itself: interface, engine, training, optimizers, failure models |
//! | [`ecc`] | `arc-ecc` | parity, Hamming, SEC-DED, Reed-Solomon, parallel codecs |
//! | [`sz`] | `arc-sz` | SZ-like prediction-based lossy compressor (ABS/PWREL/PSNR) |
//! | [`zfp`] | `arc-zfp` | ZFP-like transform-based lossy compressor (ACC/Rate) |
//! | [`pressio`] | `arc-pressio` | LibPressio-like abstraction + integrity metrics |
//! | [`lossless`] | `arc-lossless` | Huffman, LZ77, deflate-like, zstd-like |
//! | [`datasets`] | `arc-datasets` | synthetic CESM / Isabel / NYX stand-ins |
//! | [`faultsim`] | `arc-faultsim` | soft-error injection harness |
//!
//! The most common entry points are re-exported at the top level:
//!
//! ```
//! use arc::{ArcContext, ArcOptions, EncodeRequest};
//! use arc::TrainingOptions;
//! use arc_ecc::EccConfig;
//!
//! let ctx = ArcContext::init(ArcOptions {
//!     max_threads: 2,
//!     cache_path: None,
//!     training: TrainingOptions {
//!         sample_bytes: 32 << 10,
//!         rs_sample_bytes: 16 << 10,
//!         space: vec![EccConfig::secded(true)],
//!     },
//!     ..Default::default()
//! }).unwrap();
//! let compressed = vec![1u8; 10_000]; // pretend: lossy-compressed bytes
//! let (protected, _) = ctx.encode(&compressed, &EncodeRequest::default()).unwrap();
//! let (recovered, _) = ctx.decode(&protected).unwrap();
//! assert_eq!(recovered, compressed);
//! ```

/// ARC core (interface, engine, optimizers, training, failure models).
pub use arc_core as core;
/// Synthetic SDRBench dataset stand-ins.
pub use arc_datasets as datasets;
/// Error-correcting-code substrate.
pub use arc_ecc as ecc;
/// Fault-injection harness.
pub use arc_faultsim as faultsim;
/// Lossless compression substrate.
pub use arc_lossless as lossless;
/// Compressor abstraction layer and metrics.
pub use arc_pressio as pressio;
/// SZ-like lossy compressor.
pub use arc_sz as sz;
/// Instrumentation facade (spans/counters/histograms/events; no-ops
/// unless built with `--features telemetry`).
pub use arc_telemetry as telemetry;
/// ZFP-like lossy compressor.
pub use arc_zfp as zfp;

pub use arc_core::{
    decode_batch, decode_with_threads, encode_batch, ArcContext, ArcDecodeReport, ArcError,
    ArcOptions, ArcReader, CacheStats, EncodeRequest, ErrorResponse, MemoryConstraint, RangeReport,
    ResiliencyConstraint, Selection, StreamDecoder, StreamEncoder, StreamOptions, StreamSink,
    SystemProfile, ThroughputConstraint, TrainingOptions, ANY_THREADS,
};
pub use arc_ecc::{EccConfig, EccMethod};
