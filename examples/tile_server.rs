//! Tile server over a sharded ARC container: random access without full
//! decode.
//!
//! A 512×512 field is compressed with ZFP fixed rate (every 4×4 block gets
//! the same bit budget, so tiles map to byte ranges), wrapped in a **v2
//! sharded container** whose shard size is block-aligned via
//! `arc_zfp::recommended_shard_size`, and then served tile-by-tile through
//! [`arc::ArcReader::decode_range`] — each request ECC-verifies only the
//! shards covering the tile, and the reader's LRU shard cache absorbs the
//! locality of a panning client.
//!
//! Run with `cargo run --release --example tile_server`. Pass `--metrics`
//! (with `--features telemetry`) to dump the per-stage counter/span
//! snapshot — including `core.shard_cache.*` — after the workload.

use arc::{ArcReader, EccConfig};

const DIM: usize = 512; // field is DIM × DIM f32
const TILE: usize = 32; // tile edge, in values (multiple of the 4×4 blocks)
const RATE: f64 = 8.0; // bits per value
const REQUESTS: usize = 400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let metrics = std::env::args().any(|a| a == "--metrics");

    // A smooth synthetic field, compressed at a fixed rate.
    let field: Vec<f32> = (0..DIM * DIM)
        .map(|i| {
            let (r, c) = ((i / DIM) as f32, (i % DIM) as f32);
            (r * 0.021).sin() * 8.0 + (c * 0.017).cos() * 5.0
        })
        .collect();
    let stream = arc::zfp::compress(&field, &[DIM, DIM], arc::zfp::ZfpMode::FixedRate(RATE))?;

    // Wrap it in a sharded container. The shard size is rounded to ZFP's
    // block byte period so shard boundaries sit on whole 4×4 blocks.
    let shard_size = arc::zfp::recommended_shard_size(&stream, 4 << 10);
    let container =
        arc::core::arc_engine_encode_sharded(&stream, EccConfig::secded(true), 1, shard_size)?;
    println!(
        "field {DIM}x{DIM} -> zfp-rate stream {} B -> v2 container {} B ({} B shards)",
        stream.len(),
        container.len(),
        shard_size
    );

    // Tile (tr, tc) covers TILE rows of TILE values; with fixed rate each
    // 4-value-wide block row of the tile is a contiguous bit run. For
    // simplicity serve the whole span from the tile's first to last block.
    let payload_offset =
        arc::zfp::shard::rate_payload_offset(&stream).ok_or("not a fixed-rate stream")?;
    let block_bits = arc::zfp::shard::rate_block_bits(RATE, 2).ok_or("bad rate")?;
    let blocks_per_row = DIM / 4;
    let tile_span = |tr: usize, tc: usize| -> (usize, usize) {
        let first_block = (tr * TILE / 4) * blocks_per_row + tc * TILE / 4;
        let last_block = ((tr + 1) * TILE / 4 - 1) * blocks_per_row + (tc + 1) * TILE / 4;
        let start = payload_offset + (first_block as u64 * block_bits / 8) as usize;
        let end = payload_offset + ((last_block + 1) as u64 * block_bits).div_ceil(8) as usize;
        (start, end - start)
    };

    // A panning client: mostly-local walk over the tile grid (seeded LCG —
    // deterministic run-to-run).
    let tiles = DIM / TILE;
    let mut reader = ArcReader::open(&container, 1)?;
    let (mut tr, mut tc, mut seed) = (tiles / 2, tiles / 2, 0x2545_F491u64);
    let mut rng = move || {
        seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (seed >> 33) as usize
    };
    let mut bytes_served = 0usize;
    let mut encoded_decoded = 0usize;
    for _ in 0..REQUESTS {
        match rng() % 8 {
            0 => tr = rng() % tiles, // occasional jump
            1 => tc = rng() % tiles,
            2 | 3 => tr = (tr + 1).min(tiles - 1),
            4 | 5 => tc = (tc + 1).min(tiles - 1),
            6 => tr = tr.saturating_sub(1),
            _ => tc = tc.saturating_sub(1),
        }
        let (off, len) = tile_span(tr, tc);
        let (bytes, report) = reader.decode_range(off, len)?;
        bytes_served += bytes.len();
        encoded_decoded += report.encoded_bytes_decoded;
    }

    let stats = reader.cache_stats();
    let lookups = stats.hits + stats.misses;
    println!(
        "{REQUESTS} tile requests: {} B served, {} B ECC-decoded ({}x the \
         container payload would cost {} B per full decode)",
        bytes_served,
        encoded_decoded,
        REQUESTS,
        container.len()
    );
    println!(
        "shard cache: {} hits / {} lookups ({:.1}% hit rate), {} evictions, \
         {} B resident of {} B capacity",
        stats.hits,
        lookups,
        100.0 * stats.hits as f64 / lookups.max(1) as f64,
        stats.evictions,
        stats.resident_bytes,
        stats.capacity
    );

    // Bit flips in a shard are corrected on the fly — re-read a tile
    // through a corrupted copy of the container.
    let mut damaged = container.clone();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x10;
    let mut reader2 = ArcReader::open(&damaged, 1)?;
    let (off, len) = tile_span(tiles / 2, tiles / 2);
    let (_, report) = reader2.decode_range(off, len)?;
    println!(
        "after a mid-container bit flip: tile read corrected {} bit(s) in-line",
        report.correction.corrected_bits
    );

    if metrics {
        if arc::telemetry::enabled() {
            println!("\n--- telemetry ---\n{}", arc::telemetry::snapshot().to_prometheus_text());
        } else {
            println!("\n--metrics: built without the `telemetry` feature; nothing recorded");
        }
    }
    Ok(())
}
