//! §6.4 as a runnable example: derive ARC constraints from the failure
//! profile of the machine you are running on — Cielo-like (high altitude,
//! burst-prone) versus Hopper-like (sea level, single-bit dominated) — and
//! see how ARC's selection changes.
//!
//! Run with `cargo run --release --example hpc_system_tuning`.

use arc::{
    ArcContext, ArcOptions, EncodeRequest, MemoryConstraint, SystemProfile, ThroughputConstraint,
    TrainingOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ctx = ArcContext::init(ArcOptions {
        training: TrainingOptions {
            sample_bytes: 512 << 10,
            rs_sample_bytes: 128 << 10,
            ..Default::default() // full standard configuration space
        },
        ..Default::default()
    })?;
    let data: Vec<u8> =
        (0..4_000_000u32).map(|i| (i.wrapping_mul(0x45d9f3b) >> 16) as u8).collect();

    for system in [SystemProfile::cielo(), SystemProfile::hopper()] {
        println!("\n{}", system.summary());
        println!(
            "  expected soft errors for a 30-day checkpoint: {:.3e} per MB",
            system.errors_per_mb(30.0)
        );
        let request = EncodeRequest {
            memory: MemoryConstraint::Fraction(0.5),
            throughput: ThroughputConstraint::Any,
            resiliency: system.recommended_resiliency(),
        };
        let (encoded, sel) = ctx.encode(&data, &request)?;
        println!(
            "  ARC selection: {} on {} threads — overhead {:.1}% ({} MB stored for {} MB of data)",
            sel.config,
            sel.threads,
            sel.overhead * 100.0,
            encoded.len() / 1_000_000,
            data.len() / 1_000_000
        );
        for note in &sel.notes {
            println!("  note: {note}");
        }
        // Prove the protection level: a burst for Cielo, a flip for Hopper.
        let mut struck = encoded.clone();
        if system.multi_bit_fraction() > 0.15 {
            let start = struck.len() / 2;
            for b in &mut struck[start..start + 2_000] {
                *b ^= 0xFF; // a 2 KB burst in one DRAM device
            }
            println!("  injected a 2 KB burst…");
        } else {
            let mid = struck.len() / 2;
            struck[mid] ^= 0x08;
            println!("  injected a single bit flip…");
        }
        let (recovered, report) = ctx.decode(&struck)?;
        assert_eq!(recovered, data);
        println!(
            "  recovered: {} bits / {} devices repaired",
            report.correction.corrected_bits, report.correction.corrected_devices
        );
    }
    ctx.close()?;
    Ok(())
}
