//! A miniature of the paper's §4 fault-injection study, runnable in under a
//! minute: flip sampled bits in compressed data, classify every outcome,
//! and contrast the serial SZ-like stream with block-decoupled ZFP-Rate.
//!
//! Run with `cargo run --release --example fault_injection_study`.

use arc::datasets::SdrDataset;
use arc::faultsim::{run_campaign_with_bound, sample_bits, ReturnStatus};
use arc::pressio::{BoundSpec, CompressorSpec, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let field = SdrDataset::CesmCldlow.generate(&[180, 360], 1);
    let trials = 400;
    println!(
        "dataset: {} {:?}; {} uniformly sampled single-bit flips per mode\n",
        field.name, field.dims, trials
    );
    println!(
        "{:<10} {:>10} {:>11} {:>11} {:>9} {:>14} {:>12}",
        "mode", "Completed", "Exception", "Terminated", "Timeout", "avg %incorrect", "avg elems"
    );
    for (spec, bound) in [
        (CompressorSpec::SzAbs(0.1), BoundSpec::Abs(0.1)),
        (CompressorSpec::SzPwRel(0.1), BoundSpec::PwRel(0.1)),
        (CompressorSpec::ZfpAcc(0.1), BoundSpec::Abs(0.1)),
        (CompressorSpec::ZfpRate(8.0), BoundSpec::Abs(0.1)),
    ] {
        let comp = spec.build();
        let stream = comp.compress(&Dataset { data: &field.data, dims: &field.dims })?;
        let bits = sample_bits(stream.len() as u64 * 8, trials, 0xCAFE);
        let report =
            run_campaign_with_bound(comp.as_ref(), &field.data, &stream, &bits, Some(bound));
        println!(
            "{:<10} {:>9.1}% {:>10.1}% {:>10.1}% {:>8.1}% {:>14.2} {:>12.1}",
            spec.family(),
            report.percent(ReturnStatus::Completed),
            report.percent(ReturnStatus::CompressorException),
            report.percent(ReturnStatus::Terminated),
            report.percent(ReturnStatus::Timeout),
            report.avg_percent_incorrect().unwrap_or(0.0),
            report.avg_incorrect_elements().unwrap_or(0.0),
        );
    }
    println!(
        "\nreading the table (paper §4): most trials 'Complete' — the corrupt data\n\
         flows onward as silent data corruption; the serial modes average ~10% of\n\
         elements destroyed per flip, while ZFP-Rate confines damage to one 4x4\n\
         block (a handful of elements) because its blocks are fully decoupled."
    );
    Ok(())
}
