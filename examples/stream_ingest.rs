//! Streaming ingest: bounded-memory protection of an unbounded feed.
//!
//! One-shot `arc_encode` needs the whole input in memory. A long-running
//! ingest service (sensor telemetry, checkpoint streams) cannot afford
//! that, so this example pushes an "endless" feed of odd-sized packets
//! through [`arc::StreamEncoder`]: bytes are sharded as they arrive, each
//! full shard is ECC-encoded through a bounded ring of in-flight jobs
//! (back-pressure caps peak memory at O(ring × shard) however long the
//! feed runs), and v2 container bytes are emitted incrementally. The
//! result is byte-identical to the one-shot sharded encode — every golden
//! snapshot and reader keeps working.
//!
//! The container is then consumed the same way — [`arc::StreamDecoder`]
//! over network-sized chunks — and finally the batch front-end
//! ([`arc::encode_batch`]) shows how many *small* requests coalesce into
//! one flat pool pass. Run with:
//!
//! ```text
//! cargo run --release --example stream_ingest
//! ```

use arc::{encode_batch, EccConfig, StreamDecoder, StreamEncoder, StreamOptions};

const FEED_BYTES: usize = 24 << 20; // how much the "sensor" emits
const SHARD: usize = 1 << 20; // 1 MiB shards -> 24 shards

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. Streaming encode ------------------------------------------
    // Packets arrive in irregular sizes; the encoder neither knows nor
    // cares about the total length in advance.
    let config = EccConfig::secded(true);
    let opts = StreamOptions { shard_size: SHARD, ring: 4, ..StreamOptions::default() };
    let mut encoder = StreamEncoder::new(Vec::new(), config, opts)?;

    let mut feed = Vec::with_capacity(FEED_BYTES); // kept only to verify below
    let mut rng = 0x1D872B41_u64;
    while feed.len() < FEED_BYTES {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        // A 1..=64 KiB packet of "sensor readings".
        let packet: Vec<u8> =
            (0..(rng as usize % (64 << 10)) + 1).map(|i| (rng as usize + i * 131) as u8).collect();
        encoder.push(&packet)?;
        feed.extend_from_slice(&packet);
    }
    let (container, stats) = encoder.finish()?;
    println!(
        "ingested {} B in shards of {} B -> container {} B \
         ({} shards, {} ring workers, {} back-pressure waits)",
        stats.data_len,
        SHARD,
        stats.container_len,
        stats.shards,
        stats.workers,
        stats.backpressure_waits
    );

    // Same bytes as the one-shot sharded path — the invariant the
    // stream_equiv property suite pins across every built-in scheme.
    let oneshot = arc::core::arc_engine_encode_sharded(&feed, config, 1, SHARD)?;
    assert_eq!(container, oneshot, "streaming output must be byte-identical to one-shot");

    // ---- 2. Streaming decode ------------------------------------------
    // The consumer sees the container as 48 KiB "network reads".
    let mut decoder = StreamDecoder::new();
    let mut recovered = Vec::new();
    for piece in container.chunks(48 << 10) {
        decoder.push(piece, &mut recovered)?;
    }
    let report = decoder.finish()?;
    assert_eq!(recovered, feed);
    println!(
        "stream-decoded {} B back ({} shards, scheme {}, clean: {})",
        recovered.len(),
        report.shards,
        report.scheme_id,
        report.correction.is_clean()
    );

    // ---- 3. Batch front-end -------------------------------------------
    // A thousand tiny requests would each fall below the bytes-per-thread
    // floor; the batch API coalesces them into one flat pool pass (the
    // floor applies to the aggregate) while returning per-request
    // containers identical to singleton encodes.
    let requests: Vec<Vec<u8>> =
        (0..1000).map(|i| feed[i * 4096..(i + 1) * 4096].to_vec()).collect();
    let refs: Vec<&[u8]> = requests.iter().map(|r| r.as_slice()).collect();
    let encoded = encode_batch(&refs, config, 0)?;
    let total: usize = encoded.iter().map(|e| e.len()).sum();
    println!("batch-encoded {} requests -> {} B total", encoded.len(), total);
    Ok(())
}
