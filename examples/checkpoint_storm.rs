//! Weather the storm: apply each machine's *fault mix* (§6.4) to a stored
//! checkpoint and see which ARC configurations survive.
//!
//! Cielo's faults are ~29% multi-bit (mostly bursts in one DRAM device), so
//! the paper prescribes Reed-Solomon there. The run makes the trade
//! concrete and falsifiable:
//!
//! * SEC-DED **never silently corrupts** — any burst it cannot fix becomes
//!   a *detected* loss (lost productivity, no SDC), exactly the paper's
//!   argument for why burst-prone machines need more than SEC-DED;
//! * the Reed-Solomon grade turns the same storms into clean recoveries;
//! * the extension API's interleaved SEC-DED covers moderate bursts at
//!   SEC-DED's 12.5% storage price.
//!
//! Run with `cargo run --release --example checkpoint_storm`.

use arc::faultsim::{storm, FaultMix};
use arc::{
    ArcContext, ArcOptions, EncodeRequest, MemoryConstraint, ResiliencyConstraint, SystemProfile,
    ThroughputConstraint, TrainingOptions,
};
use arc_ecc::EccConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let checkpoint: Vec<u8> =
        (0..8_000_000u32).map(|i| (i.wrapping_mul(0x9E3779B1) >> 21) as u8).collect();
    let ctx = ArcContext::init(ArcOptions {
        training: TrainingOptions {
            sample_bytes: 512 << 10,
            rs_sample_bytes: 128 << 10,
            ..Default::default()
        },
        ..Default::default()
    })?;

    let systems = [
        (SystemProfile::cielo(), FaultMix::cielo_like()),
        (SystemProfile::hopper(), FaultMix::hopper_like()),
    ];
    // Two protection grades: the SEC-DED class that serves Hopper's
    // single-bit-dominated weather, and the Reed-Solomon class §6.4
    // prescribes for burst-prone Cielo.
    let grades: [(&str, ResiliencyConstraint); 2] = [
        ("Hopper-grade (SEC-DED)", ResiliencyConstraint::Methods(vec![arc::EccMethod::SecDed])),
        ("Cielo-grade (Reed-Solomon)", SystemProfile::cielo().recommended_resiliency()),
    ];

    for (system, mix) in &systems {
        println!("\n=== {} weather: {:?}", system.name, mix);
        // Event counts scaled from the real rates so one run shows the
        // effect (real rates are ~1 event/node/month): the busier, burstier
        // Cielo sees many more events over a checkpoint's residency.
        let events = if system.name == "Cielo" { 40 } else { 4 };
        for (label, resiliency) in &grades {
            let (protected, sel) = ctx.encode(
                &checkpoint,
                &EncodeRequest {
                    memory: MemoryConstraint::Fraction(0.5),
                    throughput: ThroughputConstraint::Any,
                    resiliency: resiliency.clone(),
                },
            )?;
            let mut struck = protected.clone();
            let summary = storm(&mut struck, events, mix, 0x57_02_17);
            let outcome = match ctx.decode(&struck) {
                Ok((data, report)) if data == checkpoint => format!(
                    "RECOVERED ({} bits / {} devices repaired)",
                    report.correction.corrected_bits, report.correction.corrected_devices
                ),
                Ok(_) => "SILENT CORRUPTION (!)".to_string(),
                Err(e) => format!("LOST: {e}"),
            };
            println!(
                "  {label:<28} [{}] vs {} single-bit + {} burst events ({} bits) -> {outcome}",
                sel.config, summary.single_bit_events, summary.burst_events, summary.bits_flipped
            );
        }
    }

    // A custom scheme through the extension API joins the same experiment.
    let mut registry = arc::core::ExtensionRegistry::new();
    registry.register("ilsecded", std::sync::Arc::new(arc_ecc::InterleavedSecDed::new(512)?))?;
    let _ = EccConfig::secded(true); // (built-ins remain available alongside)
    let encoded =
        arc::core::encode_with_scheme(&checkpoint, &registry, "ilsecded", ctx.max_threads())?;
    let mut struck = encoded.clone();
    let summary = storm(&mut struck, 40, &FaultMix::hopper_like(), 0xF00D);
    let outcome = match arc::core::decode_with_registry(&struck, ctx.max_threads(), &registry) {
        Ok((data, _)) if data == checkpoint => "RECOVERED".to_string(),
        Ok(_) => "SILENT CORRUPTION (!)".to_string(),
        Err(e) => format!("LOST: {e}"),
    };
    println!(
        "\nextension scheme interleaved-secded(512) at 12.5% overhead vs Hopper weather \
         ({} events, {} bits) -> {outcome}",
        summary.single_bit_events + summary.burst_events,
        summary.bits_flipped
    );
    ctx.close()?;
    Ok(())
}
