//! Quickstart: protect any byte array with ARC in four calls — the
//! paper's Algorithm 1.
//!
//! ```text
//! arc_init();  arc_encode();  arc_decode();  arc_close();
//! ```
//!
//! Run with `cargo run --release --example quickstart`.

use arc::{
    ArcContext, ArcOptions, EncodeRequest, MemoryConstraint, ResiliencyConstraint,
    ThroughputConstraint, TrainingOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Any uint8 byte array works; lossy-compressed output is the motivating
    // case. Here: a synthetic compressed-looking buffer.
    let data: Vec<u8> =
        (0..1_000_000u32).map(|i| (i.wrapping_mul(2654435761) >> 24) as u8).collect();

    // arc_init(ARC_ANY_THREADS) — training runs once and is cached.
    // (The training space is trimmed here so the example starts fast; drop
    // the `training` override to train the full standard space.)
    let ctx = ArcContext::init(ArcOptions {
        training: TrainingOptions {
            sample_bytes: 1 << 20,
            rs_sample_bytes: 256 << 10,
            space: vec![
                arc::EccConfig::parity(8)?,
                arc::EccConfig::secded(true),
                arc::EccConfig::rs(223, 32)?,
            ],
        },
        ..Default::default()
    })?;
    println!(
        "trained {} points in {:.2}s",
        ctx.training_stats().points_measured,
        ctx.training_stats().seconds
    );

    // arc_encode(data, mem, bw, resiliency): stay under +25% storage, keep
    // 50 MB/s, and survive one soft error per MB.
    let request = EncodeRequest {
        memory: MemoryConstraint::Fraction(0.25),
        throughput: ThroughputConstraint::MbPerS(50.0),
        resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
    };
    let (encoded, selection) = ctx.encode(&data, &request)?;
    println!(
        "ARC chose {} on {} threads: overhead {:.1}%, predicted {:.0} MB/s",
        selection.config,
        selection.threads,
        selection.overhead * 100.0,
        selection.predicted_encode_mb_s
    );

    // A soft error strikes the stored data…
    let mut corrupted = encoded.clone();
    corrupted[123_456] ^= 0x10;

    // arc_decode(): repaired transparently.
    let (decoded, report) = ctx.decode(&corrupted)?;
    assert_eq!(decoded, data);
    println!(
        "decoded OK: {} bit(s) corrected, {} device(s) rebuilt",
        report.correction.corrected_bits, report.correction.corrected_devices
    );

    // arc_close() — persists refreshed throughput estimates.
    ctx.close()?;
    Ok(())
}
