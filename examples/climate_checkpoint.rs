//! The paper's motivating workflow end to end: a climate field is lossy
//! compressed for a checkpoint, the compressed bytes sit in failure-prone
//! memory/storage, soft errors strike, and ARC decides whether the data
//! survives.
//!
//! Without ARC a single flipped bit corrupts ~10% of the decompressed
//! values on average (§4.3); with ARC the flip is repaired before the
//! decompressor ever sees it.
//!
//! Run with `cargo run --release --example climate_checkpoint`.

use arc::datasets::SdrDataset;
use arc::pressio::{percent_incorrect, BoundSpec, CompressorSpec, Dataset};
use arc::{ArcContext, ArcOptions, EncodeRequest, ResiliencyConstraint, TrainingOptions};
use arc::{MemoryConstraint, ThroughputConstraint};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The simulation writes a CESM-like cloud-fraction field.
    let field = SdrDataset::CesmCldlow.generate(&[360, 720], 42);
    println!("field: {} {:?} = {:.1} MB", field.name, field.dims, field.byte_len() as f64 / 1e6);

    // 2. Checkpoint it with the SZ-like compressor at ε = 0.001.
    let eps = 1e-3;
    let compressor = CompressorSpec::SzAbs(eps).build();
    let stream = compressor.compress(&Dataset { data: &field.data, dims: &field.dims })?;
    println!(
        "compressed to {:.2} MB (CR {:.1}x)",
        stream.len() as f64 / 1e6,
        field.byte_len() as f64 / stream.len() as f64
    );

    // 3a. WITHOUT ARC: one soft error in the stored checkpoint.
    let mut bare = stream.clone();
    bare[stream.len() / 3] ^= 0x02;
    match compressor.decompress(&bare) {
        Ok(decoded) => {
            let bad = percent_incorrect(&field.data, &decoded.data, BoundSpec::Abs(eps));
            println!("WITHOUT ARC: decompression 'succeeded' — {bad:.1}% of values violate ε (silent data corruption)");
        }
        Err(e) => println!("WITHOUT ARC: checkpoint lost — {e}"),
    }

    // 3b. WITH ARC: protect the checkpoint first.
    let ctx = ArcContext::init(ArcOptions {
        training: TrainingOptions {
            sample_bytes: 512 << 10,
            rs_sample_bytes: 128 << 10,
            space: vec![arc::EccConfig::secded(true), arc::EccConfig::rs(223, 32)?],
        },
        ..Default::default()
    })?;
    let (protected, sel) = ctx.encode(
        &stream,
        &EncodeRequest {
            memory: MemoryConstraint::Fraction(0.25),
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
        },
    )?;
    println!(
        "WITH ARC: {} adds {:.1}% storage",
        sel.config,
        100.0 * (protected.len() as f64 - stream.len() as f64) / stream.len() as f64
    );

    // The same soft error (plus a couple more for good measure).
    let mut struck = protected.clone();
    for pos in [protected.len() / 3, protected.len() / 2, 17] {
        struck[pos] ^= 0x02;
    }
    let (recovered, report) = ctx.decode(&struck)?;
    assert_eq!(recovered, stream);
    let decoded = compressor.decompress(&recovered)?;
    let bad = percent_incorrect(&field.data, &decoded.data, BoundSpec::Abs(eps));
    println!(
        "WITH ARC: {} bit(s) / {} device(s) repaired; decompressed with {bad:.2}% bound violations — checkpoint intact",
        report.correction.corrected_bits, report.correction.corrected_devices
    );
    ctx.close()?;
    Ok(())
}
