//! Offline shim for the subset of `rayon` this workspace uses.
//!
//! The build environment has no network access to crates.io, so the real
//! rayon cannot be fetched. This crate reimplements exactly the surface the
//! ARC workspace calls — `ThreadPoolBuilder`/`ThreadPool::install`, and
//! slice `par_iter`/`par_iter_mut` with `map`/`for_each`/`collect` — on top
//! of `std::thread::scope`. Work is split into one contiguous chunk per
//! thread, and `collect` preserves input order, matching rayon's indexed
//! parallel-iterator semantics for these call shapes.

use std::cell::Cell;
use std::fmt;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`];
    /// 0 means "no pool active, use available parallelism".
    static CURRENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn active_threads() -> usize {
    let n = CURRENT_THREADS.with(|c| c.get());
    if n == 0 {
        default_threads()
    } else {
        n
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]. The shim never fails to
/// build, but the type exists so caller error plumbing compiles unchanged.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`].
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start building a pool with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the number of worker threads (0 = available parallelism).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Accepted for API compatibility; the shim spawns unnamed scoped
    /// threads per operation instead of keeping named workers alive.
    pub fn thread_name<F>(self, _name: F) -> Self
    where
        F: FnMut(usize) -> String,
    {
        self
    }

    /// Finish building the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let threads = if self.num_threads == 0 { default_threads() } else { self.num_threads };
        Ok(ThreadPool { threads })
    }
}

/// A handle that scopes parallel operations to a fixed thread count.
#[derive(Debug)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing any parallel
    /// iterators it creates.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        CURRENT_THREADS.with(|c| {
            let prev = c.get();
            c.set(self.threads);
            let out = op();
            c.set(prev);
            out
        })
    }

    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.threads
    }
}

pub mod iter {
    //! Parallel iterator shims over slices.

    use super::active_threads;
    use std::marker::PhantomData;

    fn chunk_len(total: usize) -> (usize, usize) {
        let workers = active_threads().min(total).max(1);
        (workers, total.div_ceil(workers))
    }

    /// Split a `&mut` slice into per-worker chunks that keep the original
    /// lifetime (plain `chunks_mut` would reborrow).
    fn split_mut<T>(mut rest: &mut [T], chunk: usize) -> Vec<&mut [T]> {
        let mut parts = Vec::new();
        while !rest.is_empty() {
            let r = std::mem::take(&mut rest);
            let take = chunk.min(r.len());
            let (head, tail) = r.split_at_mut(take);
            parts.push(head);
            rest = tail;
        }
        parts
    }

    /// `collection.par_iter()` — borrowing parallel iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// Element type yielded by reference.
        type Item: 'data;
        /// Create the parallel iterator.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    /// `collection.par_iter_mut()` — mutably borrowing parallel iterator.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Element type yielded by mutable reference.
        type Item: 'data;
        /// Create the parallel iterator.
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter_mut(&'data mut self) -> ParIterMut<'data, T> {
            ParIterMut { slice: self }
        }
    }

    /// Borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Map each element through `f`.
        pub fn map<R, F>(self, f: F) -> ParMap<'data, T, R, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap { slice: self.slice, f, _out: PhantomData }
        }

        /// Run `f` on every element.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data T) + Sync,
        {
            let (workers, chunk) = chunk_len(self.slice.len());
            if workers <= 1 {
                self.slice.iter().for_each(f);
                return;
            }
            let f = &f;
            std::thread::scope(|s| {
                for part in self.slice.chunks(chunk) {
                    s.spawn(move || part.iter().for_each(f));
                }
            });
        }
    }

    /// Mapped borrowing parallel iterator.
    pub struct ParMap<'data, T, R, F> {
        slice: &'data [T],
        f: F,
        _out: PhantomData<fn() -> R>,
    }

    impl<'data, T: Sync, R, F> ParMap<'data, T, R, F>
    where
        F: Fn(&'data T) -> R + Sync,
        R: Send,
    {
        /// Collect mapped values, preserving input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let (workers, chunk) = chunk_len(self.slice.len());
            if workers <= 1 {
                return self.slice.iter().map(self.f).collect();
            }
            let f = &self.f;
            std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .slice
                    .chunks(chunk)
                    .map(|part| s.spawn(move || part.iter().map(f).collect::<Vec<R>>()))
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("rayon shim worker panicked"))
                    .collect()
            })
        }
    }

    /// Mutably borrowing parallel iterator over a slice.
    pub struct ParIterMut<'data, T> {
        slice: &'data mut [T],
    }

    impl<'data, T: Send> ParIterMut<'data, T> {
        /// Map each element through `f`.
        pub fn map<R, F>(self, f: F) -> ParMapMut<'data, T, R, F>
        where
            F: Fn(&'data mut T) -> R + Sync,
            R: Send,
        {
            ParMapMut { slice: self.slice, f, _out: PhantomData }
        }

        /// Run `f` on every element.
        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&'data mut T) + Sync,
        {
            let (workers, chunk) = chunk_len(self.slice.len());
            if workers <= 1 {
                for item in self.slice {
                    f(item);
                }
                return;
            }
            let f = &f;
            std::thread::scope(|s| {
                for part in split_mut(self.slice, chunk) {
                    s.spawn(move || {
                        for item in part {
                            f(item);
                        }
                    });
                }
            });
        }
    }

    /// Mapped mutably borrowing parallel iterator.
    pub struct ParMapMut<'data, T, R, F> {
        slice: &'data mut [T],
        f: F,
        _out: PhantomData<fn() -> R>,
    }

    impl<'data, T: Send, R, F> ParMapMut<'data, T, R, F>
    where
        F: Fn(&'data mut T) -> R + Sync,
        R: Send,
    {
        /// Collect mapped values, preserving input order.
        pub fn collect<C: FromIterator<R>>(self) -> C {
            let (workers, chunk) = chunk_len(self.slice.len());
            if workers <= 1 {
                let f = self.f;
                let mut out = Vec::with_capacity(self.slice.len());
                for item in self.slice {
                    out.push(f(item));
                }
                return out.into_iter().collect();
            }
            let f = &self.f;
            std::thread::scope(|s| {
                let handles: Vec<_> = split_mut(self.slice, chunk)
                    .into_iter()
                    .map(|part| {
                        s.spawn(move || {
                            let mut out = Vec::with_capacity(part.len());
                            for item in part {
                                out.push(f(item));
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .flat_map(|h| h.join().expect("rayon shim worker panicked"))
                    .collect()
            })
        }
    }
}

pub mod prelude {
    //! Glob-import surface matching `rayon::prelude::*` for the call sites
    //! in this workspace.
    pub use crate::iter::{IntoParallelRefIterator, IntoParallelRefMutIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let v: Vec<u32> = (0..1000).collect();
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn for_each_mut_touches_every_element() {
        let mut v = vec![0u64; 513];
        v.par_iter_mut().for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 1));
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        assert_eq!(pool.current_num_threads(), 3);
        let out = pool.install(|| {
            let v: Vec<usize> = (0..17).collect();
            v.par_iter().map(|&x| x + 1).collect::<Vec<_>>()
        });
        assert_eq!(out, (1..18).collect::<Vec<_>>());
    }
}
