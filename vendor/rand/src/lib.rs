//! Offline shim for the subset of `rand` 0.9 this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! handful of entry points ARC calls: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::random` for primitives, and
//! `Rng::random_range` over integer ranges. The generator is splitmix64 —
//! not cryptographic, but statistically fine for the deterministic fault
//! injection and synthetic noise these crates need, and it keeps
//! `seed_from_u64` reproducible across runs.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::random`] can produce from uniform bits.
pub trait UniformSample: Sized {
    /// Draw one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl UniformSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision, as in rand's
    /// `StandardUniform`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl UniformSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit domain.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

range_int!(u8, u16, u32, u64, usize);

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value of a primitive type (full integer domain, `[0, 1)`
    /// for floats).
    fn random<T: UniformSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in an integer range.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: splitmix64.
    ///
    /// Deterministic for a given seed, which is all the fault-injection and
    /// dataset code relies on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(3..=5);
            assert!((3..=5).contains(&y));
            let f: f32 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.random();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn full_domain_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(9);
        let _: u64 = rng.random_range(0..=u64::MAX);
    }
}
