//! Offline shim for the subset of `criterion` this workspace uses.
//!
//! Provides the `Criterion` / `BenchmarkGroup` / `Bencher` API shape so the
//! `harness = false` bench targets compile and run without crates.io. Under
//! `cargo bench` (cargo passes `--bench`) each benchmark is warmed up and
//! timed over wall-clock batches, reporting time/iter and throughput. Under
//! `cargo test` (no `--bench` flag) each benchmark body runs exactly once
//! so the suite stays fast while still exercising the bench code paths.
//!
//! No statistics, plotting, or result persistence — this is a smoke-timing
//! harness, not a statistical benchmarking framework.

use std::fmt;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Throughput metadata attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Identifier for a single benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId { id: format!("{function}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // cargo bench passes --bench to harness=false targets; cargo test
        // does not. Anything else (direct invocation) gets quick mode too.
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            bench_mode: self.bench_mode,
            name: name.into(),
            throughput: None,
            sample_size: 10,
            warm_up: Duration::from_millis(500),
            measurement: Duration::from_millis(1500),
            _marker: std::marker::PhantomData,
        }
    }
}

/// A group of benchmarks sharing throughput and timing settings.
pub struct BenchmarkGroup<'a> {
    bench_mode: bool,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _marker: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples (accepted for API compatibility).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Warm-up duration before timing starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement duration per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Set the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure that receives a shared input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id.id, &b);
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id.id, &b);
        self
    }

    /// Close the group.
    pub fn finish(self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            bench_mode: self.bench_mode,
            warm_up: self.warm_up,
            measurement: self.measurement,
            iters: 0,
            elapsed: Duration::ZERO,
        }
    }

    fn report(&self, id: &str, b: &Bencher) {
        if !self.bench_mode {
            return;
        }
        let iters = b.iters.max(1);
        let per_iter = b.elapsed.as_secs_f64() / iters as f64;
        let rate = match self.throughput {
            Some(Throughput::Bytes(n)) => {
                format!("  thrpt: {:>10.1} MiB/s", n as f64 / per_iter / (1024.0 * 1024.0))
            }
            Some(Throughput::Elements(n)) => {
                format!("  thrpt: {:>10.1} elem/s", n as f64 / per_iter)
            }
            None => String::new(),
        };
        println!(
            "{:<40} time: {:>12} ({} iters){rate}",
            format!("{}/{}", self.name, id),
            format_time(per_iter),
            iters,
        );
    }
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Timing driver handed to each benchmark body.
pub struct Bencher {
    bench_mode: bool,
    warm_up: Duration,
    measurement: Duration,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it repeatedly in bench mode or exactly once
    /// in test mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            let start = Instant::now();
            black_box(routine());
            self.iters = 1;
            self.elapsed = start.elapsed();
            return;
        }
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        // Measurement: batched wall-clock timing.
        let batch = warm_iters.clamp(1, 1 << 20);
        let mut iters = 0u64;
        let start = Instant::now();
        loop {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
            if start.elapsed() >= self.measurement {
                break;
            }
        }
        self.iters = iters;
        self.elapsed = start.elapsed();
    }
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_once() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function("one", |b| b.iter(|| runs += 1));
        group.finish();
        assert_eq!(runs, 1);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", "2t").id, "f/2t");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }
}
