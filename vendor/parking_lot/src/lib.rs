//! Offline shim for the subset of `parking_lot` this workspace uses: an
//! `RwLock` whose `read`/`write` do not return poison `Result`s. Backed by
//! `std::sync::RwLock`; a poisoned lock (writer panicked) is recovered
//! rather than propagated, matching parking_lot's no-poisoning contract.

use std::fmt;

/// Shared-state guard type (re-used from std).
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Exclusive-state guard type (re-used from std).
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

/// Reader-writer lock with non-poisoning lock methods.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wrap `value` in a new lock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let lock = RwLock::new(1u32);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }
}
