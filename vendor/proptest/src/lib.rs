//! Offline shim for the subset of `proptest` this workspace uses.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the proptest API surface the ARC test suites call: the `proptest!` macro
//! (both `pattern in strategy` and `name: Type` argument forms), `Strategy`
//! with `prop_map`/`prop_flat_map`, `Just`, `prop_oneof!`, integer/float
//! range strategies, tuple strategies, `collection::{vec, hash_set}`,
//! `sample::Index`, `any::<T>()`, and the `prop_assert*`/`prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via the assertion
//!   message) and the case number, but is not minimised.
//! - **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's module path and name, so runs are reproducible; set
//!   `PROPTEST_SEED` to explore a different sequence.
//! - Rejected cases (`prop_assume!`) count toward the case budget.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Generate a value, then generate from the strategy `f` returns.
        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for Box<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Output of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Output of [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build from a non-empty option list.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    /// Box a strategy for storage in a [`Union`].
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let span = (<$t>::MAX as u64)
                        .wrapping_sub(self.start as u64)
                        .wrapping_add(1);
                    if span == 0 {
                        return rng.next_u64() as $t;
                    }
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize);

    macro_rules! float_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let u = rng.unit_f64() as $t;
                    let v = self.start + u * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// `any::<T>()` — full-domain strategies for primitives.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            (rng.unit_f64() * 2.0 - 1.0) as f32 * 1e6
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            (rng.unit_f64() * 2.0 - 1.0) * 1e12
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index::new(rng.next_u64())
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    /// Full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: u64,
        hi: u64,
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            (self.lo + rng.below(self.hi - self.lo + 1)) as usize
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start as u64, hi: (r.end - 1) as u64 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start() as u64, hi: *r.end() as u64 }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n as u64, hi: n as u64 }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.pick(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with target size drawn from `size`.
    ///
    /// If the element domain is too small to reach the target size, the set
    /// is returned with as many distinct elements as could be drawn.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy { element, size: size.into() }
    }

    /// Output of [`hash_set`].
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            let mut attempts = 0usize;
            while out.len() < target && attempts < target.saturating_mul(100) + 100 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// Positional sampling helpers.
pub mod sample {
    /// An opaque position, resolved against a length with [`Index::index`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct Index(u64);

    impl Index {
        pub(crate) fn new(raw: u64) -> Self {
            Index(raw)
        }

        /// Resolve to a concrete index in `0..len`.
        ///
        /// # Panics
        /// Panics when `len` is zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty domain");
            (self.0 % len as u64) as usize
        }
    }
}

/// Test configuration, RNG, and failure plumbing.
pub mod test_runner {
    /// Per-suite configuration (`#![proptest_config(...)]`).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure — fails the whole test.
        Fail(String),
        /// `prop_assume!` rejection — the case is skipped.
        Reject(String),
    }

    /// Deterministic splitmix64 generator used by all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from the test's identity (stable across runs), XORed with
        /// `PROPTEST_SEED` when that env var holds an integer.
        pub fn deterministic(test_name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            if let Some(extra) =
                std::env::var("PROPTEST_SEED").ok().and_then(|s| s.parse::<u64>().ok())
            {
                h ^= extra;
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `0..bound` (`bound` > 0).
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
                    left, right
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(*left == *right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right`: {}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    left,
                    right
                ),
            ));
        }
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if *left == *right {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `left != right`\n  left: {:?}\n right: {:?}",
                left, right
            )));
        }
    }};
}

/// Skip the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::boxed($strategy)),+])
    };
}

/// Define property tests.
///
/// Supports the two argument forms real proptest accepts:
/// `pattern in strategy` and `name: Type` (sugar for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_args! { ($config, $name) [] ($($args)*) {$body} }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_args {
    // Done: every argument converted to a {pattern} {strategy} pair.
    (($config:expr, $name:ident) [$($acc:tt)*] () {$body:block}) => {
        $crate::__proptest_run! { ($config, $name) [$($acc)*] {$body} }
    };
    // `pattern in strategy` form.
    (($config:expr, $name:ident) [$($acc:tt)*]
     ($pat:pat in $strategy:expr $(, $($rest:tt)*)?) {$body:block}) => {
        $crate::__proptest_args! {
            ($config, $name) [$($acc)* {$pat} {$strategy}] ($($($rest)*)?) {$body}
        }
    };
    // `name: Type` form.
    (($config:expr, $name:ident) [$($acc:tt)*]
     ($id:ident : $ty:ty $(, $($rest:tt)*)?) {$body:block}) => {
        $crate::__proptest_args! {
            ($config, $name) [$($acc)* {$id} {$crate::arbitrary::any::<$ty>()}] ($($($rest)*)?) {$body}
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_run {
    (($config:expr, $name:ident) [$({$pat:pat} {$strategy:expr})*] {$body:block}) => {{
        let config: $crate::test_runner::ProptestConfig = $config;
        let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
            module_path!(),
            "::",
            stringify!($name)
        ));
        let mut case: u32 = 0;
        while case < config.cases {
            case += 1;
            let values = (
                $($crate::strategy::Strategy::generate(&($strategy), &mut rng),)*
            );
            let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                let ($($pat,)*) = values;
                $body
                ::core::result::Result::Ok(())
            })();
            match outcome {
                ::core::result::Result::Ok(()) => {}
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest {} failed at case {}/{}: {}",
                        stringify!($name),
                        case,
                        config.cases,
                        msg
                    );
                }
            }
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u8, u8)> {
        (0u8..10, 0u8..10).prop_map(|(a, b)| (a.min(b), a.max(b)))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn typed_args_and_ranges(a: u8, b in 1u32..=7, c in 5usize..) {
            prop_assert!(u32::from(a) <= 255);
            prop_assert!((1..=7).contains(&b));
            prop_assert!(c >= 5);
        }

        #[test]
        fn combinators_compose(
            (lo, hi) in arb_pair(),
            v in crate::collection::vec(any::<u8>(), 0..16),
            idx in any::<crate::sample::Index>(),
        ) {
            prop_assert!(lo <= hi);
            prop_assert!(v.len() < 16);
            if !v.is_empty() {
                let i = idx.index(v.len());
                prop_assert!(i < v.len());
            }
        }

        #[test]
        fn oneof_and_assume(x in prop_oneof![Just(1u8), Just(2), Just(3)], y: u8) {
            prop_assume!(y != 0);
            prop_assert!((1..=3).contains(&x));
            prop_assert_ne!(y, 0);
            prop_assert_eq!(u16::from(x) * 0, 0, "x was {}", x);
        }

        #[test]
        fn flat_map_sizes(v in (1usize..=4).prop_flat_map(|n| {
            crate::collection::vec(0u32..100, n..=n)
        })) {
            prop_assert!((1..=4).contains(&v.len()));
        }
    }

    #[test]
    fn hash_set_respects_small_domains() {
        let mut rng = crate::test_runner::TestRng::deterministic("hash_set");
        let strat = crate::collection::hash_set(0usize..4, 1..4);
        for _ in 0..100 {
            let s = crate::strategy::Strategy::generate(&strat, &mut rng);
            assert!(!s.is_empty() && s.len() < 4);
        }
    }
}
