//! The streaming equivalence invariant that guards the wire format
//! (DESIGN.md §14): for ANY push-size partition of ANY input,
//! `StreamEncoder` output is byte-identical to the one-shot
//! `encode_sharded` container, and `StreamDecoder` over ANY chunking of
//! that container reproduces the input — across every built-in ECC family.

use proptest::prelude::*;

use arc_core::stream::{StreamDecoder, StreamEncoder, StreamOptions};
use arc_core::{arc_engine_encode, arc_engine_encode_sharded, decode_batch, encode_batch};
use arc_ecc::EccConfig;

fn arb_config() -> impl Strategy<Value = EccConfig> {
    prop_oneof![
        (1usize..32).prop_map(|b| EccConfig::parity(b).unwrap()),
        any::<bool>().prop_map(EccConfig::hamming),
        any::<bool>().prop_map(EccConfig::secded),
        (2usize..24, 1usize..8).prop_map(|(k, m)| EccConfig::rs(k, m).unwrap()),
    ]
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 181) ^ (i >> 3) ^ 0xC3) as u8).collect()
}

/// Feed `data` to `enc` in pieces whose sizes cycle through `sizes`
/// (empty `sizes` = one whole-buffer push).
fn push_partitioned(
    enc: &mut StreamEncoder<Vec<u8>>,
    data: &[u8],
    sizes: &[usize],
) -> Result<(), arc_core::ArcError> {
    if sizes.is_empty() {
        return enc.push(data);
    }
    let mut pos = 0usize;
    let mut i = 0usize;
    while pos < data.len() {
        let take = sizes[i % sizes.len()].max(1).min(data.len() - pos);
        enc.push(&data[pos..pos + take])?;
        pos += take;
        i += 1;
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Streaming encode ≡ one-shot sharded encode, for any partition of
    /// the input into pushes, any scheme, any shard size.
    #[test]
    fn stream_encode_matches_one_shot(
        config in arb_config(),
        data_len in 0usize..20_000,
        shard_size in 1usize..6_000,
        sizes in proptest::collection::vec(1usize..4096, 0..12),
    ) {
        let data = payload(data_len);
        let reference = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
        let opts = StreamOptions { shard_size, ..StreamOptions::default() };
        let mut enc = StreamEncoder::new(Vec::new(), config, opts).unwrap();
        push_partitioned(&mut enc, &data, &sizes).unwrap();
        let (got, stats) = enc.finish().unwrap();
        prop_assert_eq!(&got, &reference);
        prop_assert_eq!(stats.data_len, data_len);
        prop_assert_eq!(stats.container_len, reference.len());
        prop_assert_eq!(stats.shards, data_len.div_ceil(shard_size.max(1)));
    }

    /// Streaming decode over any chunking of a v2 container reproduces
    /// the input, and its stats agree with the container's geometry.
    #[test]
    fn stream_decode_reproduces_input(
        config in arb_config(),
        data_len in 0usize..16_000,
        shard_size in 1usize..4_000,
        chunk in 1usize..8192,
    ) {
        let data = payload(data_len);
        let container = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for piece in container.chunks(chunk) {
            dec.push(piece, &mut out).unwrap();
        }
        let stats = dec.finish().unwrap();
        prop_assert_eq!(&out, &data);
        prop_assert!(stats.correction.is_clean());
        prop_assert_eq!(stats.shards, data_len.div_ceil(shard_size.max(1)));
        prop_assert_eq!(stats.scheme_id, config.id());
    }

    /// Streaming decode also covers monolithic v1 containers (with the
    /// documented O(payload) buffering) over any chunking.
    #[test]
    fn stream_decode_handles_v1(
        config in arb_config(),
        data_len in 0usize..8_000,
        chunk in 1usize..4096,
    ) {
        let data = payload(data_len);
        let container = arc_engine_encode(&data, config, 1).unwrap();
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for piece in container.chunks(chunk) {
            dec.push(piece, &mut out).unwrap();
        }
        let stats = dec.finish().unwrap();
        prop_assert_eq!(&out, &data);
        prop_assert_eq!(stats.shards, 0);
    }

    /// The batch front-end changes scheduling, never bytes: every batch
    /// element equals the singleton engine encode, and the batch decode
    /// round-trips each request.
    #[test]
    fn batch_matches_singletons(
        config in arb_config(),
        lens in proptest::collection::vec(0usize..4_000, 1..6),
        threads in 1usize..4,
    ) {
        let reqs: Vec<Vec<u8>> = lens.iter().map(|l| payload(*l)).collect();
        let refs: Vec<&[u8]> = reqs.iter().map(|r| r.as_slice()).collect();
        let batch = encode_batch(&refs, config, threads).unwrap();
        for (req, got) in reqs.iter().zip(&batch) {
            let single = arc_engine_encode(req, config, 1).unwrap();
            prop_assert_eq!(got, &single);
        }
        let containers: Vec<&[u8]> = batch.iter().map(|b| b.as_slice()).collect();
        for (req, item) in reqs.iter().zip(decode_batch(&containers, threads)) {
            let (decoded, report) = item.unwrap();
            prop_assert_eq!(&decoded, req);
            prop_assert!(report.correction.is_clean());
        }
    }
}

/// Deterministic sweep over the full built-in configuration space — the
/// acceptance criterion names "all built-in ECC schemes" explicitly, so
/// don't leave it to sampling.
#[test]
fn every_builtin_scheme_streams_identically() {
    let data = payload(10_240);
    for config in EccConfig::standard_space() {
        let shard_size = 3 << 10;
        let reference = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
        let opts = StreamOptions { shard_size, ..StreamOptions::default() };
        let mut enc = StreamEncoder::new(Vec::new(), config, opts).unwrap();
        push_partitioned(&mut enc, &data, &[1, 977, 4096]).unwrap();
        let (got, _) = enc.finish().unwrap();
        assert_eq!(got, reference, "{}", config.id());

        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for piece in got.chunks(769) {
            dec.push(piece, &mut out).unwrap();
        }
        dec.finish().unwrap();
        assert_eq!(out, data, "{}", config.id());
    }
}
