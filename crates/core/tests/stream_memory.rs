//! Streaming-encoder scheduling guarantees: output bytes are a pure
//! function of the input (identical across thread counts and ring sizes),
//! back-pressure actually engages when the ring fills, and — via a
//! peak-live-bytes counting allocator — peak memory during a streaming
//! encode is O(ring × shard), independent of input size.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::Mutex;

use arc_core::stream::{StreamEncoder, StreamOptions, StreamSink};
use arc_core::{arc_engine_encode_sharded, ArcError};
use arc_ecc::EccConfig;

/// Live heap bytes across the whole process (alloc adds, dealloc
/// subtracts) and the high-water mark. A process-global count is the
/// honest RSS proxy here: the encoder's worker threads and channels are
/// part of its footprint, so they must not be exempt.
static LIVE: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

struct PeakAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as isize, Ordering::SeqCst) + size as isize;
    PEAK.fetch_max(live, Ordering::SeqCst);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as isize, Ordering::SeqCst);
}

// SAFETY: a pure forwarding allocator — every method delegates to `System`
// with unchanged arguments, so `System`'s allocation guarantees carry over;
// the side counters are atomics with no effect on the returned memory.
unsafe impl GlobalAlloc for PeakAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc`; discharged below
    // by forwarding to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::alloc_zeroed`; discharged
    // below by forwarding to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc`; discharged
    // below by forwarding to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        // SAFETY: `ptr` was produced by `System` in `alloc`/`alloc_zeroed`/
        // `realloc` above with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::realloc`; discharged
    // below by forwarding to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_dealloc(layout.size());
        on_alloc(new_size);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation and
        // `new_size` is forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: PeakAlloc = PeakAlloc;

/// The two tests share the process-global counters: serialize them.
static SERIAL: Mutex<()> = Mutex::new(());

/// Run `f` and return its result plus the peak heap growth (bytes above
/// the live level at entry) observed anywhere in the process while it ran.
fn peak_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let live0 = LIVE.load(Ordering::SeqCst);
    PEAK.store(live0, Ordering::SeqCst);
    let r = f();
    let peak = PEAK.load(Ordering::SeqCst) - live0;
    (r, peak.max(0) as usize)
}

/// Byte sink that discards payload bytes, so the measured footprint is the
/// encoder's own buffering — the sink models a network socket or file.
struct NullSink {
    high_water: usize,
}

impl StreamSink for NullSink {
    fn write_at(&mut self, offset: usize, bytes: &[u8]) -> Result<(), ArcError> {
        self.high_water = self.high_water.max(offset + bytes.len());
        Ok(())
    }
}

fn payload(len: usize) -> Vec<u8> {
    // xorshift-ish fill: cheap, incompressible-looking, deterministic.
    let mut x = 0x9E37_79B9u64;
    (0..len)
        .map(|_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            (x >> 24) as u8
        })
        .collect()
}

/// Streaming output is byte-identical across 1/2/8-thread pools and ring
/// sizes {1, 2, 8}, and back-pressure engages whenever there are more
/// shards than ring slots (the waits counter is how the O(ring × shard)
/// bound is enforced, so prove it fires).
#[test]
fn output_is_deterministic_across_threads_and_rings() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let data = payload(6 << 20);
    let shard_size = 512 << 10;
    let shards = data.len().div_ceil(shard_size);
    let config = EccConfig::secded(true);
    let reference = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
    for threads in [1usize, 2, 8] {
        for ring in [1usize, 2, 8] {
            let opts = StreamOptions { threads, shard_size, ring, ..StreamOptions::default() };
            let mut enc = StreamEncoder::new(Vec::new(), config, opts).unwrap();
            for piece in data.chunks(100_003) {
                enc.push(piece).unwrap();
            }
            let (got, stats) = enc.finish().unwrap();
            assert_eq!(got, reference, "threads={threads} ring={ring}");
            assert_eq!(stats.shards, shards);
            if threads == 1 {
                assert_eq!(stats.workers, 0, "1-thread encode must stay inline");
                assert_eq!(stats.backpressure_waits, 0);
            } else {
                assert!(stats.workers >= 1);
                assert!(
                    stats.backpressure_waits >= (shards - ring) as u64,
                    "threads={threads} ring={ring}: expected back-pressure \
                     ({} shards through {} slots), saw {} waits",
                    shards,
                    ring,
                    stats.backpressure_waits
                );
            }
        }
    }
}

/// Peak allocation during a streaming encode of a 64 MiB input is bounded
/// by the ring geometry — a small multiple of (ring × encoded shard) —
/// and nowhere near the input (or container) size the one-shot path
/// needs. This is the bounded-memory contract of DESIGN.md §14.
#[test]
fn peak_memory_is_ring_by_shard_not_input_sized() {
    let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
    let input_len = 64 << 20;
    let shard_size = 4 << 20;
    let ring = 2usize;
    let config = EccConfig::secded(true);
    let data = payload(input_len);
    let opts = StreamOptions { threads: 2, shard_size, ring, ..StreamOptions::default() };

    // Warm lazily-initialized code tables so they don't count.
    drop(arc_engine_encode_sharded(&data[..1 << 20], config, 1, shard_size).unwrap());

    let (result, peak) = peak_during(|| {
        let sink = NullSink { high_water: 0 };
        let mut enc = StreamEncoder::new(sink, config, opts)?;
        for piece in data.chunks(1 << 20) {
            enc.push(piece)?;
        }
        enc.finish()
    });
    let (sink, stats) = result.unwrap();
    assert_eq!(stats.data_len, input_len);
    assert_eq!(sink.high_water, stats.container_len, "container fully written");
    assert!(stats.backpressure_waits > 0, "64 MiB through a 2-slot ring must back-pressure");

    // Budget: staging + (ring in flight + recycled spares) × (plaintext +
    // encoded) shard buffers, plus slack for the index/entries/channels.
    // For ring=2, shard=4 MiB, SEC-DED(64) encoded ≈ 4.5 MiB this is
    // ~40 MiB vs the 64 MiB input and ~72 MiB container.
    let encoded_shard = shard_size + shard_size / 8;
    let budget = shard_size + (ring + 2) * (shard_size + encoded_shard) + (1 << 20);
    assert!(
        peak <= budget,
        "peak live bytes {peak} exceed ring budget {budget} (ring={ring}, shard={shard_size})"
    );
    assert!(
        peak < input_len / 2,
        "peak live bytes {peak} should be far below the {input_len}-byte input"
    );
}
