//! Acceptance test for v2 random access: over a ≥ 64 MiB sharded
//! container, a 1/16th-slice `decode_range` must ECC-decode strictly
//! fewer encoded bytes than a full decode — the whole point of the
//! sharded format — while matching the full decode bit-for-bit, even
//! with correctable corruption injected into the shards it touches.
//!
//! The partial-read claim is asserted twice: through the
//! `RangeReport::encoded_bytes_decoded` accounting the reader returns,
//! and (under `--features telemetry`) through the global
//! `core.range.encoded_bytes_decoded` counter, proving the two
//! bookkeeping paths agree.

use std::sync::Mutex;

use arc_core::container::unpack;
use arc_core::{arc_engine_decode, arc_engine_encode_sharded, ArcReader};
use arc_ecc::EccConfig;

/// The telemetry counters are process-global; serialize the two tests so
/// the before/after counter diff below can't absorb the other test's
/// range reads.
static SERIAL: Mutex<()> = Mutex::new(());

/// 60 MiB of data; secded:64 overhead (9/8) plus header and triplicated
/// index pushes the container comfortably past the 64 MiB floor.
const DATA_LEN: usize = 60 << 20;
const SHARD_SIZE: usize = 1 << 20;
const SLICE_LEN: usize = DATA_LEN / 16;

/// Deterministic xorshift fill — incompressible enough that nothing in
/// the pipeline can shortcut, cheap enough to build 60 MiB instantly.
fn big_payload() -> Vec<u8> {
    let mut state = 0x9E37_79B9_7F4A_7C15u64;
    let mut data = Vec::with_capacity(DATA_LEN);
    while data.len() < DATA_LEN {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        data.extend_from_slice(&state.to_le_bytes());
    }
    data.truncate(DATA_LEN);
    data
}

#[test]
fn sixteenth_slice_of_64mib_container_decodes_strictly_less() {
    let _serial = SERIAL.lock().unwrap();
    let data = big_payload();
    let encoded = arc_engine_encode_sharded(&data, EccConfig::secded(true), 1, SHARD_SIZE).unwrap();
    assert!(
        encoded.len() >= 64 << 20,
        "container must be >= 64 MiB for this test to mean anything; got {} B",
        encoded.len()
    );

    // Reference: the full decode, and its total encoded-payload cost.
    let (full, full_report) = arc_engine_decode(&encoded, 1).unwrap();
    assert_eq!(full.len(), data.len());
    assert!(full == data, "v2 full decode must round-trip");
    assert!(full_report.correction.is_clean());
    let full_cost = unpack(&encoded).unwrap().payload.len();

    // A deliberately shard-misaligned 1/16th slice.
    let offset = DATA_LEN / 3 + 12_345;
    let before = arc_telemetry::snapshot().counter("core.range.encoded_bytes_decoded");
    let mut reader = ArcReader::open(&encoded, 1).unwrap();
    let (out, rr) = reader.decode_range(offset, SLICE_LEN).unwrap();
    assert!(out == full[offset..offset + SLICE_LEN], "range read must equal full-decode slice");

    // The partial-read win, per the reader's own accounting: strictly
    // fewer encoded bytes than the full decode touched — and not just
    // barely: a 1/16th slice must cost well under a quarter of it.
    assert!(rr.encoded_bytes_decoded > 0);
    assert!(
        rr.encoded_bytes_decoded < full_cost,
        "range decode ({} B) must cost strictly less than full decode ({} B)",
        rr.encoded_bytes_decoded,
        full_cost
    );
    assert!(rr.encoded_bytes_decoded < full_cost / 4);
    let expected_shards = SLICE_LEN / SHARD_SIZE + 2;
    assert!(rr.shards_touched <= expected_shards);

    // The telemetry counter must tell the same story as RangeReport.
    if arc_telemetry::enabled() {
        let after = arc_telemetry::snapshot().counter("core.range.encoded_bytes_decoded");
        assert_eq!(
            (after - before) as usize,
            rr.encoded_bytes_decoded,
            "telemetry and RangeReport disagree on encoded bytes decoded"
        );
    }
}

#[test]
fn corrupted_touched_shards_still_serve_the_exact_slice() {
    let _serial = SERIAL.lock().unwrap();
    let data = big_payload();
    let encoded = arc_engine_encode_sharded(&data, EccConfig::secded(true), 1, SHARD_SIZE).unwrap();
    let offset = DATA_LEN / 3 + 12_345;

    // Flip one bit inside every shard the range will touch (secded:64
    // corrects any single bit per 64-bit word), plus one in a shard it
    // must NOT touch — if the reader were secretly decoding everything,
    // that third flip would show up in the correction count.
    let u = unpack(&encoded).unwrap();
    let index = u.index.as_ref().expect("v2 container carries an index");
    let first = offset / SHARD_SIZE;
    let last = (offset + SLICE_LEN - 1) / SHARD_SIZE;
    let mut damaged = encoded.clone();
    for e in &index.entries[first..=last] {
        damaged[u.payload_offset + e.offset + e.encoded_len / 2] ^= 0x04;
    }
    let untouched = &index.entries[if first > 0 { 0 } else { last + 1 }];
    damaged[u.payload_offset + untouched.offset + untouched.encoded_len / 2] ^= 0x04;

    let mut reader = ArcReader::open(&damaged, 1).unwrap();
    let (out, rr) = reader.decode_range(offset, SLICE_LEN).unwrap();
    assert!(
        out == data[offset..offset + SLICE_LEN],
        "range over corrupted shards must still be bit-exact"
    );
    let touched = last - first + 1;
    assert_eq!(
        rr.correction.corrected_bits, touched as u64,
        "exactly one corrected bit per touched shard — no more (the \
         untouched shard's flip must stay unseen), no fewer"
    );
}
