//! Property tests for the v2 sharded container: shard-index geometry
//! invariants and the `decode_range` ≡ full-decode-slice contract, over
//! arbitrary data sizes, shard sizes, schemes, and ranges (including
//! off-by-one shard boundaries and the empty range).

use proptest::prelude::*;

use arc_core::container::unpack;
use arc_core::{arc_engine_decode, arc_engine_encode_sharded, ArcReader};
use arc_ecc::{EccConfig, ParallelCodec};

fn arb_config() -> impl Strategy<Value = EccConfig> {
    prop_oneof![
        (1usize..32).prop_map(|b| EccConfig::parity(b).unwrap()),
        any::<bool>().prop_map(EccConfig::hamming),
        any::<bool>().prop_map(EccConfig::secded),
        (2usize..24, 1usize..8).prop_map(|(k, m)| EccConfig::rs(k, m).unwrap()),
    ]
}

fn payload(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i * 149) ^ (i >> 5) ^ 0x5A) as u8).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The shard index written by `encode_sharded` always describes a
    /// contiguous, exhaustive, geometry-consistent partition of the data.
    #[test]
    fn shard_index_geometry_is_consistent(
        config in arb_config(),
        data_len in 0usize..20_000,
        shard_size in 1usize..6_000,
    ) {
        let data = payload(data_len);
        let encoded = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
        let u = unpack(&encoded).unwrap();
        let index = u.index.expect("v2 container must carry an index");
        let codec = ParallelCodec::with_chunk_size(config, 1, u.meta.chunk_size).unwrap();

        let expected_shards = if data_len == 0 { 0 } else { data_len.div_ceil(shard_size) };
        prop_assert_eq!(index.entries.len(), expected_shards);

        let mut enc_pos = 0usize;
        let mut dec_total = 0usize;
        for (i, e) in index.entries.iter().enumerate() {
            prop_assert_eq!(e.offset, enc_pos, "shard {} not contiguous", i);
            let want_dec =
                if i + 1 < index.entries.len() { shard_size } else { data_len - dec_total };
            prop_assert_eq!(e.decoded_len, want_dec, "shard {} decoded_len", i);
            prop_assert_eq!(
                e.encoded_len,
                codec.encoded_len(e.decoded_len),
                "shard {} geometry vs codec",
                i
            );
            enc_pos += e.encoded_len;
            dec_total += e.decoded_len;
        }
        prop_assert_eq!(enc_pos, u.meta.payload_len);
        prop_assert_eq!(dec_total, u.meta.data_len);
    }

    /// `decode_range(off, len)` returns exactly `full_decode[off..off+len]`
    /// for arbitrary ranges, and a v2 container's full decode round-trips.
    #[test]
    fn decode_range_equals_full_decode_slice(
        config in arb_config(),
        data_len in 1usize..16_000,
        shard_size in 1usize..4_000,
        off_sel in any::<proptest::sample::Index>(),
        len_sel in any::<proptest::sample::Index>(),
    ) {
        let data = payload(data_len);
        let encoded = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
        let (full, _) = arc_engine_decode(&encoded, 1).unwrap();
        prop_assert_eq!(&full, &data, "v2 full decode must round-trip");

        let offset = off_sel.index(data_len + 1); // 0..=data_len
        let len = len_sel.index(data_len - offset + 1); // 0..=remaining
        let mut reader = ArcReader::open(&encoded, 1).unwrap();
        let (out, report) = reader.decode_range(offset, len).unwrap();
        prop_assert_eq!(&out[..], &data[offset..offset + len]);
        // A range never touches more shards than could cover it.
        let max_shards = len / shard_size + 2;
        prop_assert!(report.shards_touched <= max_shards);
    }

    /// Off-by-one probes around every shard boundary: one byte before, at,
    /// and after each boundary, plus the empty range at the boundary.
    #[test]
    fn shard_boundary_off_by_ones(
        config in arb_config(),
        shards in 2usize..6,
        shard_size in 1usize..512,
        tail in 0usize..2,
    ) {
        // `tail` = 1 gives a ragged final shard (one extra byte).
        let data_len = (shards - 1) * shard_size + 1 + tail * (shard_size.saturating_sub(1));
        let data = payload(data_len);
        let encoded = arc_engine_encode_sharded(&data, config, 1, shard_size).unwrap();
        let mut reader = ArcReader::open(&encoded, 1).unwrap();
        for b in 1..shards {
            let boundary = b * shard_size;
            if boundary > data_len {
                break;
            }
            for start in boundary.saturating_sub(1)..=(boundary + 1).min(data_len) {
                for len in 0..=2usize.min(data_len - start) {
                    let (out, _) = reader.decode_range(start, len).unwrap();
                    prop_assert_eq!(&out[..], &data[start..start + len],
                        "boundary {} start {} len {}", boundary, start, len);
                }
            }
        }
        // Empty range at both extremes, and a full-span read.
        prop_assert!(reader.decode_range(0, 0).unwrap().0.is_empty());
        prop_assert!(reader.decode_range(data_len, 0).unwrap().0.is_empty());
        let (all, _) = reader.decode_range(0, data_len).unwrap();
        prop_assert_eq!(&all[..], &data[..]);
        // One past the end must be rejected, never mis-served.
        prop_assert!(reader.decode_range(data_len, 1).is_err());
    }
}
