//! Regression: extension-registry schemes are first-class citizens of the
//! v2 container. For every stock extension family the same data must
//!
//! 1. stream through `StreamEncoder::with_registry_scheme` into bytes
//!    **identical** to the one-shot `encode_sharded_with_scheme`,
//! 2. stream-decode through `StreamDecoder::with_registry`,
//! 3. serve `ArcReader::decode_range` slices through
//!    `open_with_registry`, and
//! 4. full-decode through `decode_with_registry`
//!
//! all reproducing the original bytes. Before the fix, (1)–(3) rejected
//! extension ids outright ("supports built-ins only").

use arc_core::extension::{decode_with_registry, encode_sharded_with_scheme, standard_extensions};
use arc_core::stream::{StreamDecoder, StreamEncoder, StreamOptions};
use arc_core::ArcReader;

fn sample(n: usize) -> Vec<u8> {
    (0..n).map(|i| ((i * 37) ^ (i >> 7) ^ (i >> 13)) as u8).collect()
}

const SHARD: usize = 32 << 10;

#[test]
fn every_extension_family_streams_and_range_decodes_byte_identically() {
    let registry = standard_extensions().expect("stock registry");
    let data = sample(200_000);
    for name in registry.ids() {
        let one_shot = encode_sharded_with_scheme(&data, &registry, &name, 2, SHARD)
            .expect("one-shot sharded encode");

        // (1) Streaming encode produces the identical container.
        let opts = StreamOptions { shard_size: SHARD, ..StreamOptions::default() };
        let mut enc = StreamEncoder::with_registry_scheme(Vec::new(), &registry, &name, opts)
            .expect("stream encoder");
        for piece in data.chunks(4_099) {
            enc.push(piece).expect("push");
        }
        let (streamed, stats) = enc.finish().expect("finish");
        assert_eq!(streamed, one_shot, "{name}: streamed bytes differ from one-shot");
        assert_eq!(stats.shards, data.len().div_ceil(SHARD), "{name}");

        // (2) Streaming decode reproduces the data.
        let mut dec = StreamDecoder::with_registry(1, registry.clone());
        let mut out = Vec::new();
        for piece in streamed.chunks(1_777) {
            dec.push(piece, &mut out).expect("stream decode push");
        }
        let dstats = dec.finish().expect("stream decode finish");
        assert_eq!(out, data, "{name}: stream decode mismatch");
        assert_eq!(dstats.scheme_id, format!("x:{name}"));

        // (3) Random access serves arbitrary ranges.
        let mut reader =
            ArcReader::open_with_registry(&streamed, 1, &registry).expect("reader open");
        assert!(reader.is_sharded(), "{name}");
        for (off, len) in [(0usize, 1usize), (SHARD - 10, 20), (123_456, 45_678), (199_999, 1)] {
            let (slice, _) = reader.decode_range(off, len).expect("range");
            assert_eq!(slice, &data[off..off + len], "{name}: range {off}+{len}");
        }

        // (4) One-shot registry decode agrees too.
        let (full, report) = decode_with_registry(&streamed, 1, &registry).expect("full decode");
        assert_eq!(full, data, "{name}");
        assert!(report.correction.is_clean(), "{name}");
    }
}
