//! Property-based tests for the ARC core: container resilience, optimizer
//! contracts, and end-to-end correction guarantees.

use proptest::prelude::*;

use arc_core::container::{pack, unpack, ContainerMeta};
use arc_core::{
    joint_optimizer, thread_ladder, EncodeRequest, MemoryConstraint, ResiliencyConstraint,
    ThroughputConstraint, TrainingTable,
};
use arc_ecc::{EccConfig, EccMethod, EccScheme};

fn arb_config() -> impl Strategy<Value = EccConfig> {
    prop_oneof![
        (1usize..64).prop_map(|b| EccConfig::parity(b).unwrap()),
        any::<bool>().prop_map(EccConfig::hamming),
        any::<bool>().prop_map(EccConfig::secded),
        (1usize..100, 1usize..50).prop_map(|(k, m)| EccConfig::rs(k, m).unwrap()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn container_round_trips(
        config in arb_config(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
        data_len in 0usize..1_000_000,
        chunk_size in 1usize..(1 << 22),
        crc: u32,
    ) {
        let meta = ContainerMeta {
            scheme_id: config.id(),
            chunk_size,
            data_len,
            payload_len: payload.len(),
            data_crc: crc,
            sharding: None,
        };
        let packed = pack(&meta, &payload).unwrap();
        let u = unpack(&packed).unwrap();
        prop_assert_eq!(u.meta, meta);
        prop_assert_eq!(u.payload, &payload[..]);
    }

    #[test]
    fn container_header_survives_any_two_byte_corruptions(
        payload in proptest::collection::vec(any::<u8>(), 16..256),
        c1 in any::<proptest::sample::Index>(),
        c2 in any::<proptest::sample::Index>(),
        xor in 1u8..,
    ) {
        let meta = ContainerMeta {
            scheme_id: EccConfig::secded(true).id(),
            chunk_size: 1 << 20,
            data_len: 999,
            payload_len: payload.len(),
            data_crc: 0xABCD_1234,
            sharding: None,
        };
        let packed = pack(&meta, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        let header_region = 6 + 2 * len;
        let mut bad = packed.clone();
        bad[c1.index(header_region)] ^= xor;
        bad[c2.index(header_region)] ^= xor.rotate_left(3);
        // Two byte errors: within one codeword's correction power, or the
        // other copy is intact, or the vote still holds. Must recover.
        let u = unpack(&bad).unwrap();
        prop_assert_eq!(u.meta, meta);
    }

    #[test]
    fn optimizer_selection_honours_resiliency_and_budget(
        mem in 0.001f64..2.0,
        methods in proptest::collection::hash_set(0usize..4, 1..4),
    ) {
        let space = EccConfig::standard_space();
        let mut table = TrainingTable::new();
        for cfg in &space {
            for t in thread_ladder(8) {
                table.record(cfg, t, 10.0 * t as f64, 20.0 * t as f64);
            }
        }
        let methods: Vec<EccMethod> = methods
            .into_iter()
            .map(|i| EccMethod::ALL[i])
            .collect();
        let req = EncodeRequest {
            memory: MemoryConstraint::Fraction(mem),
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::Methods(methods.clone()),
        };
        let sel = joint_optimizer(&table, &space, &req, 8).unwrap();
        // Resiliency is a hard constraint.
        prop_assert!(methods.contains(&sel.config.method()));
        // In budget when any admitted config fits; flagged when over.
        let any_fits = space
            .iter()
            .filter(|c| methods.contains(&c.method()))
            .any(|c| c.storage_overhead() <= mem);
        if any_fits {
            prop_assert!(sel.overhead <= mem && !sel.over_budget);
        } else {
            prop_assert!(sel.over_budget && !sel.notes.is_empty());
        }
    }

    #[test]
    fn optimizer_never_beats_its_own_choice(
        mem in 0.01f64..1.5,
    ) {
        // No admitted configuration fills the budget better than the pick.
        let space = EccConfig::standard_space();
        let mut table = TrainingTable::new();
        for cfg in &space {
            table.record(cfg, 4, 50.0, 80.0);
        }
        let req = EncodeRequest {
            memory: MemoryConstraint::Fraction(mem),
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::Any,
        };
        let sel = joint_optimizer(&table, &space, &req, 4).unwrap();
        if !sel.over_budget {
            for c in &space {
                let o = c.storage_overhead();
                prop_assert!(o > mem || o <= sel.overhead, "{c} fills better");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_round_trip_with_correctable_damage(
        data in proptest::collection::vec(any::<u8>(), 256..8192),
        flip in any::<proptest::sample::Index>(),
    ) {
        // Any single-bit flip anywhere in a SEC-DED container is repaired
        // or (if it hits something structural) reported — never silent.
        let encoded = arc_core::arc_secded_encode(&data, true, 2).unwrap();
        let mut bad = encoded.clone();
        let bit = flip.index(encoded.len() * 8);
        bad[bit / 8] ^= 1 << (bit % 8);
        // An Err outcome means the flip was detected, not silent.
        if let Ok((out, _)) = arc_core::arc_secded_decode(&bad, 2) {
            prop_assert_eq!(out, data);
        }
    }
}
