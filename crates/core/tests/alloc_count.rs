//! Engine-level allocation accounting: the container encode path allocates
//! one full-size buffer plus a small constant (header scratch), and the
//! in-place decode path never makes a full-buffer copy on clean data.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

use arc_core::engine::{arc_engine_decode, arc_engine_encode};
use arc_core::interface::decode_in_place_with_threads;
use arc_ecc::EccConfig;

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static BYTES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// True on the test thread while a `counted` closure runs — the libtest
    /// harness thread allocates on its own schedule (capture plumbing,
    /// timeout bookkeeping), and a process-global count flakes on it. The
    /// paths under measurement here are sequential (1 thread), so scoping
    /// the count to this thread loses nothing.
    static MEASURING: Cell<bool> = const { Cell::new(false) };
}

/// Count one allocation of `size` bytes, if this thread is measuring.
/// `try_with` because the allocator also runs during TLS teardown.
fn note(size: usize) {
    let _ = MEASURING.try_with(|m| {
        if m.get() {
            ALLOCS.fetch_add(1, Ordering::SeqCst);
            BYTES.fetch_add(size, Ordering::SeqCst);
        }
    });
}

// SAFETY: a pure forwarding allocator — every method delegates to `System`
// with unchanged arguments, so `System`'s allocation guarantees carry over;
// the side counters are atomics with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc`; discharged below
    // by forwarding to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::alloc_zeroed`; discharged
    // below by forwarding to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        note(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc`; discharged
    // below by forwarding to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` in `alloc`/`alloc_zeroed`/
        // `realloc` above with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::realloc`; discharged
    // below by forwarding to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        note(new_size);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation and
        // `new_size` is forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

fn counted<R>(f: impl FnOnce() -> R) -> (R, usize, usize) {
    let allocs0 = ALLOCS.load(Ordering::SeqCst);
    let bytes0 = BYTES.load(Ordering::SeqCst);
    MEASURING.with(|m| m.set(true));
    let r = f();
    MEASURING.with(|m| m.set(false));
    (r, ALLOCS.load(Ordering::SeqCst) - allocs0, BYTES.load(Ordering::SeqCst) - bytes0)
}

#[test]
fn engine_container_path_allocation_bounds() {
    // 2.5 MiB → three chunks at the default 1 MiB chunk size, so any
    // per-chunk allocation or concat pass would show up as extra
    // buffer-scale bytes.
    let data: Vec<u8> = (0..2_621_440).map(|i| ((i * 131) ^ (i >> 7)) as u8).collect();
    let cfg = EccConfig::secded(true);

    // Warm lazily-initialized code tables (Hamming layouts, header RS).
    let warm = arc_engine_encode(&data[..4096], cfg, 1).unwrap();
    arc_engine_decode(&warm, 1).unwrap();

    // Encode: one container allocation plus small header scratch.
    let (encoded, allocs, bytes) = counted(|| arc_engine_encode(&data, cfg, 1).unwrap());
    assert!(
        bytes < encoded.len() + 8192,
        "encode allocated {bytes} bytes for a {} byte container — more than one full buffer",
        encoded.len()
    );
    // Header serialization + duplicated RS header coding costs a constant
    // number of small allocations; the chunk loop itself contributes none.
    assert!(allocs < 128, "encode made {allocs} allocations — expected a small constant");

    // Clean in-place decode: no full-buffer copy, only header-scale scratch.
    let mut owned = encoded.clone();
    let ((range, report), _, bytes) =
        counted(|| decode_in_place_with_threads(&mut owned, 1).unwrap());
    assert!(report.correction.is_clean());
    assert!(
        bytes < 8192,
        "clean in-place decode allocated {bytes} bytes — should be header scratch only"
    );
    assert_eq!(&owned[range], &data[..]);

    // The borrowing decode pays one payload-sized copy and nothing else
    // buffer-scale.
    let ((out, _), _, bytes) = counted(|| arc_engine_decode(&encoded, 1).unwrap());
    assert_eq!(out, data);
    assert!(
        bytes < encoded.len() + 8192,
        "borrowing decode allocated {bytes} bytes for a {} byte container",
        encoded.len()
    );
}
