//! The custom-ECC extension API — the paper's stated future work ("we aim
//! to implement an API to further simplify the addition of custom ECC
//! algorithms and constraints", §7), realized.
//!
//! A custom scheme is anything implementing [`arc_ecc::EccScheme`].
//! Registering it under a name yields containers tagged `x:<name>`; the
//! registry resolves that tag at decode time, and the same chunk-parallel
//! driver, container protection, and end-to-end CRC apply as for built-in
//! methods. Custom *constraints* are expressed as arbitrary predicates via
//! [`crate::optimizer::joint_optimizer_with`].
//!
//! ```
//! use std::sync::Arc;
//! use arc_core::extension::{decode_with_registry, encode_with_scheme, ExtensionRegistry};
//! use arc_ecc::Replication;
//!
//! let mut registry = ExtensionRegistry::new();
//! registry.register("tmr", Arc::new(Replication::tmr())).unwrap();
//!
//! let data = vec![7u8; 10_000];
//! let encoded = encode_with_scheme(&data, &registry, "tmr", 2).unwrap();
//! let (decoded, report) = decode_with_registry(&encoded, 2, &registry).unwrap();
//! assert_eq!(decoded, data);
//! assert_eq!(report.scheme_id, "x:tmr");
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use arc_ecc::parallel::{timed_decode, timed_encode, DEFAULT_CHUNK_SIZE};
use arc_ecc::uep::{uep_sz, uep_zfp};
use arc_ecc::{Bch, Capability, EccConfig, EccScheme, Interleaved, ParallelCodec, RsBlock};

use crate::container::{self, ContainerMeta};
use crate::error::ArcError;
use crate::interface::ArcDecodeReport;

/// Prefix distinguishing extension scheme ids from built-in ones in the
/// container header.
pub const CUSTOM_PREFIX: &str = "x:";

/// A registry of named custom ECC schemes.
#[derive(Default, Clone)]
pub struct ExtensionRegistry {
    schemes: HashMap<String, Arc<dyn EccScheme>>,
}

impl std::fmt::Debug for ExtensionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtensionRegistry").field("schemes", &self.ids()).finish()
    }
}

impl ExtensionRegistry {
    /// Empty registry.
    pub fn new() -> ExtensionRegistry {
        ExtensionRegistry::default()
    }

    /// Register a scheme under `name` (no prefix). Names must be 1–60
    /// ASCII-graphic characters without `:` and must be unused.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        scheme: Arc<dyn EccScheme>,
    ) -> Result<(), ArcError> {
        let name = name.into();
        if name.is_empty()
            || name.len() > 60
            || !name.bytes().all(|b| b.is_ascii_graphic() && b != b':')
        {
            return Err(ArcError::InvalidRequest(format!(
                "invalid extension scheme name {name:?}"
            )));
        }
        if self.schemes.contains_key(&name) {
            return Err(ArcError::InvalidRequest(format!(
                "extension scheme {name:?} already registered"
            )));
        }
        self.schemes.insert(name, scheme);
        Ok(())
    }

    /// Look up a scheme by bare name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn EccScheme>> {
        self.schemes.get(name).cloned()
    }

    /// Resolve a container scheme id (`x:<name>`).
    pub fn resolve_id(&self, scheme_id: &str) -> Option<Arc<dyn EccScheme>> {
        scheme_id.strip_prefix(CUSTOM_PREFIX).and_then(|n| self.get(n))
    }

    /// Registered names, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.schemes.keys().cloned().collect();
        v.sort();
        v
    }
}

/// The stock extension families, pre-registered:
///
/// * `ileave-rs` — [`Interleaved`] RS(223|32) across 64 byte lanes: data
///   bursts up to 64·16 bytes at bare-RS parity cost;
/// * `bch` — [`Bch`] with t = 2: any two bit flips per 1000-byte block at
///   0.4 % overhead (bit-rot insurance an order cheaper than SEC-DED);
/// * `uep-sz` — [`arc_ecc::uep::Uep`] preset for SZ streams: heavy RS over
///   the Huffman-table head, light RS over bit-plane tails;
/// * `uep-zfp` — the ZFP analogue: strong head for the stream header and
///   leading block metadata.
pub fn standard_extensions() -> Result<ExtensionRegistry, ArcError> {
    let mut r = ExtensionRegistry::new();
    r.register("ileave-rs", Arc::new(Interleaved::new(RsBlock::new(32)?, 64)?))?;
    r.register("bch", Arc::new(Bch::new(2)?))?;
    r.register("uep-sz", Arc::new(uep_sz()?))?;
    r.register("uep-zfp", Arc::new(uep_zfp()?))?;
    Ok(r)
}

/// Resolve a container scheme id to a runnable scheme: built-in ids parse
/// directly, `x:` ids go through `registry`. The error distinguishes "no
/// registry supplied" from "registry lacks this name" so callers know
/// whether to reach for a `*_with_registry` entry point or fix their
/// registration.
pub(crate) fn resolve_scheme(
    scheme_id: &str,
    registry: Option<&ExtensionRegistry>,
) -> Result<Arc<dyn EccScheme>, ArcError> {
    if let Ok(config) = EccConfig::parse_id(scheme_id) {
        return Ok(Arc::new(config));
    }
    match registry {
        Some(r) => r.resolve_id(scheme_id).ok_or_else(|| {
            ArcError::InvalidRequest(format!(
                "container scheme {scheme_id:?} is not registered in this registry"
            ))
        }),
        None => Err(ArcError::InvalidRequest(format!(
            "container uses extension scheme {scheme_id:?}; supply an ExtensionRegistry \
             (decode_with_registry, StreamDecoder::with_registry, ArcReader::open_with_registry)"
        ))),
    }
}

/// Encode `data` with the registered scheme `name`, producing a standard
/// ARC container tagged `x:<name>`.
///
/// `threads` accepts `arc_ecc::parallel::ANY_THREADS` (0) for "all
/// available cores". Allocates the whole container once; the scheme's
/// parity is scatter-written in place (via the scheme's
/// `encode_parity_into`, or its `encode_parity` fallback for schemes that
/// only implement the allocating form).
pub fn encode_with_scheme(
    data: &[u8],
    registry: &ExtensionRegistry,
    name: &str,
    threads: usize,
) -> Result<Vec<u8>, ArcError> {
    let scheme = registry.get(name).ok_or_else(|| {
        ArcError::InvalidRequest(format!("no extension scheme named {name:?} registered"))
    })?;
    let codec = ParallelCodec::with_chunk_size(scheme, threads, DEFAULT_CHUNK_SIZE)?;
    let meta = ContainerMeta {
        scheme_id: format!("{CUSTOM_PREFIX}{name}"),
        chunk_size: DEFAULT_CHUNK_SIZE,
        data_len: data.len(),
        payload_len: codec.encoded_len(data.len()),
        data_crc: container::data_crc(data),
        sharding: None,
    };
    let hlen = container::header_len(&meta);
    let mut out = vec![0u8; hlen + meta.payload_len];
    container::write_header(&meta, &mut out[..hlen])?;
    codec.encode_into(data, &mut out[hlen..]);
    Ok(out)
}

/// Encode `data` with the registered scheme `name` into a v2 **sharded**
/// container tagged `x:<name>` — the random-access layout that
/// [`crate::reader::ArcReader`] serves `decode_range` from and
/// [`crate::stream::StreamEncoder`] produces incrementally. Byte-identical
/// to streaming the same data through `StreamEncoder` with the same scheme
/// and shard size.
pub fn encode_sharded_with_scheme(
    data: &[u8],
    registry: &ExtensionRegistry,
    name: &str,
    threads: usize,
    shard_size: usize,
) -> Result<Vec<u8>, ArcError> {
    let scheme = registry.get(name).ok_or_else(|| {
        ArcError::InvalidRequest(format!("no extension scheme named {name:?} registered"))
    })?;
    let codec = ParallelCodec::with_chunk_size(scheme, threads, DEFAULT_CHUNK_SIZE)?;
    container::encode_sharded(data, &codec, &format!("{CUSTOM_PREFIX}{name}"), shard_size)
}

/// Decode any ARC container, resolving extension ids against `registry`
/// (built-in ids decode as usual).
pub fn decode_with_registry(
    bytes: &[u8],
    threads: usize,
    registry: &ExtensionRegistry,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    let unpacked = container::unpack(bytes)?;
    let meta = &unpacked.meta;
    if let Some(config) = meta.builtin_config() {
        let _ = config;
        return crate::interface::decode_with_threads(bytes, threads);
    }
    let scheme = registry.resolve_id(&meta.scheme_id).ok_or_else(|| {
        ArcError::InvalidRequest(format!(
            "container scheme {:?} is not registered in this registry",
            meta.scheme_id
        ))
    })?;
    // Bound data_len by the real payload before any codec length
    // arithmetic can see it (see interface::decode_with_threads).
    if meta.data_len > unpacked.payload.len() {
        return Err(ArcError::Corrupted(format!(
            "declared data length {} exceeds payload length {}",
            meta.data_len,
            unpacked.payload.len()
        )));
    }
    let codec = ParallelCodec::with_chunk_size(scheme, threads, meta.chunk_size)?;
    // v2 sharded extension containers decode through the exact same
    // shard-walk as built-ins (geometry check, per-shard decode, per-shard
    // CRC); v1 containers take the mono path.
    let (data, correction) = match &unpacked.index {
        Some(index) => crate::interface::decode_sharded_payload(
            &codec,
            unpacked.payload,
            index,
            meta.data_len,
        )?,
        None => {
            let mut data = unpacked.payload.to_vec();
            let correction = codec.decode_in_place(&mut data, meta.data_len)?;
            data.truncate(meta.data_len);
            (data, correction)
        }
    };
    if container::data_crc(&data) != meta.data_crc {
        return Err(ArcError::Ecc(arc_ecc::EccError::Uncorrectable {
            scheme: "custom",
            detail: "end-to-end CRC mismatch after ECC decode".into(),
        }));
    }
    Ok((
        data,
        ArcDecodeReport {
            scheme_id: meta.scheme_id.clone(),
            config: None,
            correction,
            used_backup_header: unpacked.used_backup_header,
            header_symbols_corrected: unpacked.header_symbols_corrected,
            index_repair: unpacked.index.as_ref().map(|_| unpacked.index_repair),
        },
    ))
}

/// One measured point for the storage/resiliency/throughput study: a
/// scheme — built-in or extension — with its advertised capability and
/// throughput calibrated on a real probe.
#[derive(Debug, Clone)]
pub struct ExtensionCandidate {
    /// Scheme id as it appears in a container header (`rs:223:32`,
    /// `x:bch`, …).
    pub id: String,
    /// Asymptotic storage overhead.
    pub overhead: f64,
    /// Advertised error response.
    pub capability: Capability,
    /// Measured encode throughput in MB/s.
    pub encode_mb_s: f64,
    /// Measured decode throughput in MB/s.
    pub decode_mb_s: f64,
}

fn calibrate_one<S: EccScheme>(
    id: String,
    scheme: S,
    probe: &[u8],
    threads: usize,
) -> Result<ExtensionCandidate, ArcError> {
    let overhead = scheme.storage_overhead();
    let capability = scheme.capability();
    let codec = ParallelCodec::with_chunk_size(scheme, threads, DEFAULT_CHUNK_SIZE)?;
    let (encoded, enc) = timed_encode(&codec, probe);
    let (decoded, _, dec) = timed_decode(&codec, &encoded, probe.len())?;
    if decoded != probe {
        return Err(ArcError::Corrupted(format!(
            "scheme {id:?} failed its calibration round-trip"
        )));
    }
    Ok(ExtensionCandidate {
        id,
        overhead,
        capability,
        encode_mb_s: enc.mb_per_s(),
        decode_mb_s: dec.mb_per_s(),
    })
}

/// Calibrate every scheme in `registry` on `probe`: measure encode/decode
/// throughput and verify a clean round-trip, yielding candidates that slot
/// into the same study as [`calibrate_builtins`]. Candidates come back in
/// registry-id order.
pub fn calibrate_registry(
    registry: &ExtensionRegistry,
    probe: &[u8],
    threads: usize,
) -> Result<Vec<ExtensionCandidate>, ArcError> {
    let mut out = Vec::new();
    for name in registry.ids() {
        if let Some(scheme) = registry.get(&name) {
            out.push(calibrate_one(format!("{CUSTOM_PREFIX}{name}"), scheme, probe, threads)?);
        }
    }
    Ok(out)
}

/// The built-in comparison points for the Pareto study, measured the same
/// way as [`calibrate_registry`] so the two sets are directly comparable.
pub fn calibrate_builtins(
    probe: &[u8],
    threads: usize,
) -> Result<Vec<ExtensionCandidate>, ArcError> {
    EccConfig::standard_space()
        .into_iter()
        .map(|config| calibrate_one(config.id(), config, probe, threads))
        .collect()
}

/// Does `a` dominate `b` on the paper's storage/resiliency axes? Dominance
/// means no-worse overhead, correctable rate, and burst/sparse correction,
/// with a strict edge somewhere.
fn dominates(a: &ExtensionCandidate, b: &ExtensionCandidate) -> bool {
    let cap_rank = |c: &Capability| {
        (u8::from(c.corrects_sparse), u8::from(c.corrects_burst), c.correctable_per_mb)
    };
    let (a_sparse, a_burst, a_rate) = cap_rank(&a.capability);
    let (b_sparse, b_burst, b_rate) = cap_rank(&b.capability);
    let no_worse =
        a.overhead <= b.overhead && a_rate >= b_rate && a_sparse >= b_sparse && a_burst >= b_burst;
    let strictly_better =
        a.overhead < b.overhead || a_rate > b_rate || a_sparse > b_sparse || a_burst > b_burst;
    no_worse && strictly_better
}

/// The Pareto-optimal subset of `candidates` under storage overhead (lower
/// is better) versus error response (correctable rate, sparse/burst
/// correction; higher is better) — the frontier the paper's Figure 11
/// optimizers walk, now with extension families in the running. Order is
/// preserved.
pub fn pareto_frontier(candidates: &[ExtensionCandidate]) -> Vec<ExtensionCandidate> {
    candidates
        .iter()
        .filter(|c| !candidates.iter().any(|other| dominates(other, c)))
        .cloned()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_ecc::Replication;

    fn registry() -> ExtensionRegistry {
        let mut r = ExtensionRegistry::new();
        r.register("tmr", Arc::new(Replication::tmr())).unwrap();
        r.register("mirror", Arc::new(Replication::new(2).unwrap())).unwrap();
        r
    }

    #[test]
    fn register_validates_names() {
        let mut r = ExtensionRegistry::new();
        assert!(r.register("", Arc::new(Replication::tmr())).is_err());
        assert!(r.register("has:colon", Arc::new(Replication::tmr())).is_err());
        assert!(r.register("white space", Arc::new(Replication::tmr())).is_err());
        assert!(r.register("ok-name_1", Arc::new(Replication::tmr())).is_ok());
        assert!(r.register("ok-name_1", Arc::new(Replication::tmr())).is_err(), "duplicate");
        assert_eq!(r.ids(), vec!["ok-name_1".to_string()]);
    }

    #[test]
    fn custom_scheme_round_trips_through_container() {
        let r = registry();
        let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        let enc = encode_with_scheme(&data, &r, "tmr", 2).unwrap();
        // TMR triples the storage (plus container framing).
        assert!(enc.len() > data.len() * 3 - 64);
        let (out, report) = decode_with_registry(&enc, 2, &r).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.scheme_id, "x:tmr");
        assert_eq!(report.config, None);
    }

    #[test]
    fn custom_scheme_corrects_a_burst() {
        let r = registry();
        let data: Vec<u8> = (0..30_000).map(|i| (i % 13) as u8).collect();
        let mut enc = encode_with_scheme(&data, &r, "tmr", 1).unwrap();
        let start = enc.len() / 2;
        for b in &mut enc[start..start + 4_000] {
            *b ^= 0xFF;
        }
        let (out, report) = decode_with_registry(&enc, 1, &r).unwrap();
        assert_eq!(out, data);
        assert!(!report.correction.is_clean());
    }

    #[test]
    fn missing_registration_is_reported() {
        let r = registry();
        let data = vec![1u8; 1000];
        let enc = encode_with_scheme(&data, &r, "tmr", 1).unwrap();
        let empty = ExtensionRegistry::new();
        assert!(matches!(decode_with_registry(&enc, 1, &empty), Err(ArcError::InvalidRequest(_))));
        // The registry-less decode path refuses custom containers politely.
        assert!(matches!(
            crate::interface::decode_with_threads(&enc, 1),
            Err(ArcError::InvalidRequest(_))
        ));
    }

    #[test]
    fn builtin_containers_decode_through_the_registry_path() {
        let r = registry();
        let data = vec![9u8; 5_000];
        let enc = crate::engine::arc_secded_encode(&data, true, 1).unwrap();
        let (out, report) = decode_with_registry(&enc, 1, &r).unwrap();
        assert_eq!(out, data);
        assert!(report.config.is_some());
    }

    #[test]
    fn standard_extensions_ship_the_advertised_families() {
        let r = standard_extensions().unwrap();
        assert_eq!(r.ids(), vec!["bch", "ileave-rs", "uep-sz", "uep-zfp"]);
    }

    #[test]
    fn extension_v2_sharded_round_trips() {
        let r = standard_extensions().unwrap();
        let data: Vec<u8> = (0..200_000).map(|i| ((i * 31) ^ (i >> 8)) as u8).collect();
        for name in r.ids() {
            let enc = encode_sharded_with_scheme(&data, &r, &name, 2, 64 * 1024).unwrap();
            let (out, report) = decode_with_registry(&enc, 2, &r).unwrap();
            assert_eq!(out, data, "{name}");
            assert_eq!(report.scheme_id, format!("x:{name}"));
            assert!(report.index_repair.is_some(), "{name} container should be sharded");
        }
    }

    #[test]
    fn sharded_extension_corrects_a_burst() {
        let r = standard_extensions().unwrap();
        let data: Vec<u8> = (0..150_000).map(|i| (i % 241) as u8).collect();
        let mut enc = encode_sharded_with_scheme(&data, &r, "ileave-rs", 2, 64 * 1024).unwrap();
        // A 200-byte burst in the middle of the payload: well beyond bare
        // RS(223|32)'s 16-per-codeword budget, absorbed by 64-lane
        // interleaving.
        let start = enc.len() / 3;
        for b in &mut enc[start..start + 200] {
            *b ^= 0xFF;
        }
        let (out, report) = decode_with_registry(&enc, 2, &r).unwrap();
        assert_eq!(out, data);
        assert!(!report.correction.is_clean());
    }

    #[test]
    fn extension_families_land_on_the_pareto_frontier() {
        let r = standard_extensions().unwrap();
        let probe: Vec<u8> = (0..(256usize << 10)).map(|i| ((i * 7) % 253) as u8).collect();
        let mut all = calibrate_builtins(&probe, 2).unwrap();
        all.extend(calibrate_registry(&r, &probe, 2).unwrap());
        let frontier = pareto_frontier(&all);
        // Every new family must be non-dominated alongside the built-ins.
        for id in ["x:bch", "x:ileave-rs", "x:uep-sz", "x:uep-zfp"] {
            assert!(
                frontier.iter().any(|c| c.id == id),
                "{id} dominated; frontier = {:?}",
                frontier.iter().map(|c| c.id.clone()).collect::<Vec<_>>()
            );
        }
        // And the frontier is a real subset: something built-in is
        // dominated (e.g. plain Hamming by SEC-DED-like points).
        assert!(frontier.len() < all.len());
    }

    #[test]
    fn two_copy_mirror_detects_but_cannot_fix_double_damage() {
        let r = registry();
        let data = vec![0x42u8; 8_192];
        let mut enc = encode_with_scheme(&data, &r, "mirror", 1).unwrap();
        // Damage both the primary and the replica region of the payload.
        let payload_start = 200; // past the protected header
        enc[payload_start] ^= 0x01;
        enc[payload_start + data.len() + 64] ^= 0x01;
        assert!(decode_with_registry(&enc, 1, &r).is_err());
    }
}
