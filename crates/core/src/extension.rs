//! The custom-ECC extension API — the paper's stated future work ("we aim
//! to implement an API to further simplify the addition of custom ECC
//! algorithms and constraints", §7), realized.
//!
//! A custom scheme is anything implementing [`arc_ecc::EccScheme`].
//! Registering it under a name yields containers tagged `x:<name>`; the
//! registry resolves that tag at decode time, and the same chunk-parallel
//! driver, container protection, and end-to-end CRC apply as for built-in
//! methods. Custom *constraints* are expressed as arbitrary predicates via
//! [`crate::optimizer::joint_optimizer_with`].
//!
//! ```
//! use std::sync::Arc;
//! use arc_core::extension::{decode_with_registry, encode_with_scheme, ExtensionRegistry};
//! use arc_ecc::Replication;
//!
//! let mut registry = ExtensionRegistry::new();
//! registry.register("tmr", Arc::new(Replication::tmr())).unwrap();
//!
//! let data = vec![7u8; 10_000];
//! let encoded = encode_with_scheme(&data, &registry, "tmr", 2).unwrap();
//! let (decoded, report) = decode_with_registry(&encoded, 2, &registry).unwrap();
//! assert_eq!(decoded, data);
//! assert_eq!(report.scheme_id, "x:tmr");
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use arc_ecc::parallel::DEFAULT_CHUNK_SIZE;
use arc_ecc::{EccScheme, ParallelCodec};

use crate::container::{self, ContainerMeta};
use crate::error::ArcError;
use crate::interface::ArcDecodeReport;

/// Prefix distinguishing extension scheme ids from built-in ones in the
/// container header.
pub const CUSTOM_PREFIX: &str = "x:";

/// A registry of named custom ECC schemes.
#[derive(Default, Clone)]
pub struct ExtensionRegistry {
    schemes: HashMap<String, Arc<dyn EccScheme>>,
}

impl std::fmt::Debug for ExtensionRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExtensionRegistry").field("schemes", &self.ids()).finish()
    }
}

impl ExtensionRegistry {
    /// Empty registry.
    pub fn new() -> ExtensionRegistry {
        ExtensionRegistry::default()
    }

    /// Register a scheme under `name` (no prefix). Names must be 1–60
    /// ASCII-graphic characters without `:` and must be unused.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        scheme: Arc<dyn EccScheme>,
    ) -> Result<(), ArcError> {
        let name = name.into();
        if name.is_empty()
            || name.len() > 60
            || !name.bytes().all(|b| b.is_ascii_graphic() && b != b':')
        {
            return Err(ArcError::InvalidRequest(format!(
                "invalid extension scheme name {name:?}"
            )));
        }
        if self.schemes.contains_key(&name) {
            return Err(ArcError::InvalidRequest(format!(
                "extension scheme {name:?} already registered"
            )));
        }
        self.schemes.insert(name, scheme);
        Ok(())
    }

    /// Look up a scheme by bare name.
    pub fn get(&self, name: &str) -> Option<Arc<dyn EccScheme>> {
        self.schemes.get(name).cloned()
    }

    /// Resolve a container scheme id (`x:<name>`).
    pub fn resolve_id(&self, scheme_id: &str) -> Option<Arc<dyn EccScheme>> {
        scheme_id.strip_prefix(CUSTOM_PREFIX).and_then(|n| self.get(n))
    }

    /// Registered names, sorted.
    pub fn ids(&self) -> Vec<String> {
        let mut v: Vec<String> = self.schemes.keys().cloned().collect();
        v.sort();
        v
    }
}

/// Encode `data` with the registered scheme `name`, producing a standard
/// ARC container tagged `x:<name>`.
///
/// `threads` accepts `arc_ecc::parallel::ANY_THREADS` (0) for "all
/// available cores". Allocates the whole container once; the scheme's
/// parity is scatter-written in place (via the scheme's
/// `encode_parity_into`, or its `encode_parity` fallback for schemes that
/// only implement the allocating form).
pub fn encode_with_scheme(
    data: &[u8],
    registry: &ExtensionRegistry,
    name: &str,
    threads: usize,
) -> Result<Vec<u8>, ArcError> {
    let scheme = registry.get(name).ok_or_else(|| {
        ArcError::InvalidRequest(format!("no extension scheme named {name:?} registered"))
    })?;
    let codec = ParallelCodec::with_chunk_size(scheme, threads, DEFAULT_CHUNK_SIZE)?;
    let meta = ContainerMeta {
        scheme_id: format!("{CUSTOM_PREFIX}{name}"),
        chunk_size: DEFAULT_CHUNK_SIZE,
        data_len: data.len(),
        payload_len: codec.encoded_len(data.len()),
        data_crc: container::data_crc(data),
        sharding: None,
    };
    let hlen = container::header_len(&meta);
    let mut out = vec![0u8; hlen + meta.payload_len];
    container::write_header(&meta, &mut out[..hlen])?;
    codec.encode_into(data, &mut out[hlen..]);
    Ok(out)
}

/// Decode any ARC container, resolving extension ids against `registry`
/// (built-in ids decode as usual).
pub fn decode_with_registry(
    bytes: &[u8],
    threads: usize,
    registry: &ExtensionRegistry,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    let unpacked = container::unpack(bytes)?;
    let meta = &unpacked.meta;
    if let Some(config) = meta.builtin_config() {
        let _ = config;
        return crate::interface::decode_with_threads(bytes, threads);
    }
    let scheme = registry.resolve_id(&meta.scheme_id).ok_or_else(|| {
        ArcError::InvalidRequest(format!(
            "container scheme {:?} is not registered in this registry",
            meta.scheme_id
        ))
    })?;
    // No encode path produces sharded extension containers; refuse rather
    // than guess at per-shard semantics for an unknown scheme.
    if unpacked.index.is_some() {
        return Err(ArcError::InvalidRequest(format!(
            "sharded (v2) containers are not supported for extension scheme {:?}",
            meta.scheme_id
        )));
    }
    // Bound data_len by the real payload before any codec length
    // arithmetic can see it (see interface::decode_with_threads).
    if meta.data_len > unpacked.payload.len() {
        return Err(ArcError::Corrupted(format!(
            "declared data length {} exceeds payload length {}",
            meta.data_len,
            unpacked.payload.len()
        )));
    }
    let codec = ParallelCodec::with_chunk_size(scheme, threads, meta.chunk_size)?;
    let mut data = unpacked.payload.to_vec();
    let correction = codec.decode_in_place(&mut data, meta.data_len)?;
    data.truncate(meta.data_len);
    if container::data_crc(&data) != meta.data_crc {
        return Err(ArcError::Ecc(arc_ecc::EccError::Uncorrectable {
            scheme: "custom",
            detail: "end-to-end CRC mismatch after ECC decode".into(),
        }));
    }
    Ok((
        data,
        ArcDecodeReport {
            scheme_id: meta.scheme_id.clone(),
            config: None,
            correction,
            used_backup_header: unpacked.used_backup_header,
            header_symbols_corrected: unpacked.header_symbols_corrected,
            index_repair: None,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_ecc::Replication;

    fn registry() -> ExtensionRegistry {
        let mut r = ExtensionRegistry::new();
        r.register("tmr", Arc::new(Replication::tmr())).unwrap();
        r.register("mirror", Arc::new(Replication::new(2).unwrap())).unwrap();
        r
    }

    #[test]
    fn register_validates_names() {
        let mut r = ExtensionRegistry::new();
        assert!(r.register("", Arc::new(Replication::tmr())).is_err());
        assert!(r.register("has:colon", Arc::new(Replication::tmr())).is_err());
        assert!(r.register("white space", Arc::new(Replication::tmr())).is_err());
        assert!(r.register("ok-name_1", Arc::new(Replication::tmr())).is_ok());
        assert!(r.register("ok-name_1", Arc::new(Replication::tmr())).is_err(), "duplicate");
        assert_eq!(r.ids(), vec!["ok-name_1".to_string()]);
    }

    #[test]
    fn custom_scheme_round_trips_through_container() {
        let r = registry();
        let data: Vec<u8> = (0..50_000).map(|i| (i % 251) as u8).collect();
        let enc = encode_with_scheme(&data, &r, "tmr", 2).unwrap();
        // TMR triples the storage (plus container framing).
        assert!(enc.len() > data.len() * 3 - 64);
        let (out, report) = decode_with_registry(&enc, 2, &r).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.scheme_id, "x:tmr");
        assert_eq!(report.config, None);
    }

    #[test]
    fn custom_scheme_corrects_a_burst() {
        let r = registry();
        let data: Vec<u8> = (0..30_000).map(|i| (i % 13) as u8).collect();
        let mut enc = encode_with_scheme(&data, &r, "tmr", 1).unwrap();
        let start = enc.len() / 2;
        for b in &mut enc[start..start + 4_000] {
            *b ^= 0xFF;
        }
        let (out, report) = decode_with_registry(&enc, 1, &r).unwrap();
        assert_eq!(out, data);
        assert!(!report.correction.is_clean());
    }

    #[test]
    fn missing_registration_is_reported() {
        let r = registry();
        let data = vec![1u8; 1000];
        let enc = encode_with_scheme(&data, &r, "tmr", 1).unwrap();
        let empty = ExtensionRegistry::new();
        assert!(matches!(decode_with_registry(&enc, 1, &empty), Err(ArcError::InvalidRequest(_))));
        // The registry-less decode path refuses custom containers politely.
        assert!(matches!(
            crate::interface::decode_with_threads(&enc, 1),
            Err(ArcError::InvalidRequest(_))
        ));
    }

    #[test]
    fn builtin_containers_decode_through_the_registry_path() {
        let r = registry();
        let data = vec![9u8; 5_000];
        let enc = crate::engine::arc_secded_encode(&data, true, 1).unwrap();
        let (out, report) = decode_with_registry(&enc, 1, &r).unwrap();
        assert_eq!(out, data);
        assert!(report.config.is_some());
    }

    #[test]
    fn two_copy_mirror_detects_but_cannot_fix_double_damage() {
        let r = registry();
        let data = vec![0x42u8; 8_192];
        let mut enc = encode_with_scheme(&data, &r, "mirror", 1).unwrap();
        // Damage both the primary and the replica region of the payload.
        let payload_start = 200; // past the protected header
        enc[payload_start] ^= 0x01;
        enc[payload_start + data.len() + 64] ^= 0x01;
        assert!(decode_with_registry(&enc, 1, &r).is_err());
    }
}
