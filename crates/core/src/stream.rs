//! Streaming and batched front-ends over the v2 sharded container.
//!
//! The engine entry points are one-shot: the whole input (and the whole
//! container) must be resident at once. This module adds the bounded-memory
//! service layer (DESIGN.md §14):
//!
//! * [`StreamEncoder`] — accepts data in arbitrary-size pushes, encodes
//!   full shards on a bounded ring of in-flight jobs (back-pressure when
//!   the ring is full, so peak memory is O(ring × shard) regardless of
//!   input size), and emits v2 container bytes to a [`StreamSink`]. The
//!   finished container is **byte-identical** to
//!   [`container::encode_sharded`] with the same configuration: shard
//!   payloads are per-shard [`ParallelCodec::encode_into`] regions (the
//!   invariant `encode_sharded_into` already guarantees), and the header
//!   and triplicated index are produced by the same serializers.
//! * [`StreamDecoder`] — a push-based state machine over the same wire
//!   format: length-prefix vote → RS-protected header → per-shard decode
//!   (emitting plaintext as each shard completes, without waiting for the
//!   trailing index) → index recovery, which is cross-checked against the
//!   geometry actually decoded. Total over hostile bytes: every failure is
//!   an [`ArcError`], never a panic, and buffering is proportional to the
//!   bytes actually pushed, never to a length a corrupt header claims.
//! * [`encode_batch`] / [`decode_batch`] — coalesce many small independent
//!   requests into one flat pool pass so requests below the per-scheme
//!   bytes-per-thread floor still fill all workers in aggregate.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;

use arc_ecc::crc::{crc32, Crc32};
use arc_ecc::parallel::{resolve_threads, DEFAULT_CHUNK_SIZE};
use arc_ecc::{CorrectionReport, EccConfig, EccScheme, ParallelCodec, RsCodeword};
use rayon::prelude::*;

use crate::container::{
    self, ContainerMeta, IndexRepair, ShardEntry, ShardingMeta, DEFAULT_SHARD_SIZE, HEADER_NSYM,
    INDEX_ENTRY_BYTES, INDEX_NSYM,
};
use crate::error::ArcError;
use crate::extension::{self, ExtensionRegistry};
use crate::interface::{decode_with_threads, ArcDecodeReport};

/// Positional byte sink for streaming encode output.
///
/// The encoder emits shard payloads as they complete and back-patches the
/// header (whose length fields are only known at [`StreamEncoder::finish`])
/// at offset 0, so the sink must support positional writes rather than
/// append-only ones. Offsets are contiguous in aggregate: every byte of
/// `0..container_len` is written exactly once.
pub trait StreamSink {
    /// Write `bytes` at absolute `offset`, growing the sink if needed.
    fn write_at(&mut self, offset: usize, bytes: &[u8]) -> Result<(), ArcError>;
}

impl StreamSink for Vec<u8> {
    fn write_at(&mut self, offset: usize, bytes: &[u8]) -> Result<(), ArcError> {
        let end = offset
            .checked_add(bytes.len())
            .ok_or_else(|| ArcError::InvalidRequest("sink offset overflows".into()))?;
        if self.len() < end {
            // arc-lint: bounded(encoder-side sink; grows only to the extent the encoder writes)
            self.resize(end, 0);
        }
        self[offset..end].copy_from_slice(bytes);
        Ok(())
    }
}

/// Tuning knobs for [`StreamEncoder`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamOptions {
    /// Worker threads for shard ECC (`0` = all available cores, as
    /// [`arc_ecc::ANY_THREADS`]; `1` = encode inline on the pushing
    /// thread, no workers spawned).
    pub threads: usize,
    /// Decoded bytes per shard (the v2 random-access granule).
    pub shard_size: usize,
    /// ECC chunk size within a shard; must match the one-shot path's
    /// [`DEFAULT_CHUNK_SIZE`] for byte-identical output.
    pub chunk_size: usize,
    /// Maximum in-flight shard jobs. Peak buffering is O(`ring` ×
    /// encoded-shard); a full ring back-pressures `push`.
    pub ring: usize,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            threads: 1,
            shard_size: DEFAULT_SHARD_SIZE,
            chunk_size: DEFAULT_CHUNK_SIZE,
            ring: 4,
        }
    }
}

/// What a finished streaming encode did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamEncodeStats {
    /// Original bytes pushed.
    pub data_len: usize,
    /// Total container bytes written to the sink.
    pub container_len: usize,
    /// Shards emitted.
    pub shards: usize,
    /// Worker threads the ring ran (0 = inline encoding, no workers).
    pub workers: usize,
    /// Ring capacity the encoder ran with.
    pub ring: usize,
    /// Times `push`/`finish` blocked because the ring was full — the
    /// back-pressure events that bound peak memory.
    pub backpressure_waits: u64,
}

/// One shard handed to the ring: the staged plaintext and a pre-sized
/// output buffer. Buffers are allocated by the pushing thread and recycled
/// through the free lists, so worker threads allocate nothing.
struct Job {
    seq: usize,
    data: Vec<u8>,
    out: Vec<u8>,
}

/// A finished shard coming back from the ring.
struct Done {
    seq: usize,
    data: Vec<u8>,
    out: Vec<u8>,
    crc: u32,
}

/// The worker side of the bounded ring: a shared job queue, a completion
/// queue, and the thread handles. Dropping the ring closes the job queue,
/// drains completions, and joins every worker.
struct Ring {
    jobs_tx: Option<mpsc::Sender<Job>>,
    done_rx: mpsc::Receiver<Done>,
    handles: Vec<thread::JoinHandle<()>>,
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Closing the job channel lets idle workers exit; draining the
        // completion channel lets busy ones finish their send.
        self.jobs_tx = None;
        while self.done_rx.recv().is_ok() {}
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(
    jobs: &Mutex<mpsc::Receiver<Job>>,
    done: &mpsc::Sender<Done>,
    scheme: Arc<dyn EccScheme>,
    chunk_size: usize,
) {
    // One sequential codec per worker: shard-level parallelism comes from
    // the ring, so per-shard encode stays single-threaded and allocation
    // free. Construction was already validated by the encoder's own codec;
    // if it fails here anyway, exiting turns into a clean `ArcError::Io`
    // on the encoder side.
    let Ok(codec) = ParallelCodec::with_chunk_size(scheme, 1, chunk_size) else {
        return;
    };
    loop {
        let job = {
            let rx = match jobs.lock() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            match rx.recv() {
                Ok(j) => j,
                Err(_) => return,
            }
        };
        let Job { seq, data, mut out } = job;
        codec.encode_into(&data, &mut out);
        let crc = crc32(&data);
        if done.send(Done { seq, data, out, crc }).is_err() {
            return;
        }
    }
}

impl Ring {
    fn start(
        scheme: Arc<dyn EccScheme>,
        chunk_size: usize,
        workers: usize,
    ) -> Result<Ring, ArcError> {
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let (done_tx, done_rx) = mpsc::channel::<Done>();
        let jobs_rx = Arc::new(Mutex::new(jobs_rx));
        let mut ring = Ring { jobs_tx: Some(jobs_tx), done_rx, handles: Vec::new() };
        for i in 0..workers {
            let rx = Arc::clone(&jobs_rx);
            let tx = done_tx.clone();
            let scheme = Arc::clone(&scheme);
            let handle = thread::Builder::new()
                .name(format!("arc-stream-{i}"))
                .spawn(move || worker_loop(&rx, &tx, scheme, chunk_size))
                .map_err(|e| ArcError::Io(format!("stream worker spawn: {e}")))?;
            ring.handles.push(handle);
        }
        // `done_tx` clones live in the workers; dropping the original here
        // makes `done_rx` disconnect exactly when the last worker exits.
        Ok(ring)
    }
}

/// Incremental v2 container writer with bounded memory.
///
/// ```
/// use arc_core::stream::{StreamEncoder, StreamOptions};
/// use arc_ecc::EccConfig;
///
/// let opts = StreamOptions { shard_size: 4 << 10, ..StreamOptions::default() };
/// let mut enc = StreamEncoder::new(Vec::new(), EccConfig::secded(true), opts).unwrap();
/// for piece in [&b"hello "[..], &b"streaming "[..], &b"world"[..]] {
///     enc.push(piece).unwrap();
/// }
/// let (container, stats) = enc.finish().unwrap();
/// assert_eq!(stats.data_len, 21);
/// let (decoded, _) = arc_core::arc_engine_decode(&container, 1).unwrap();
/// assert_eq!(&decoded, b"hello streaming world");
/// ```
pub struct StreamEncoder<S: StreamSink> {
    sink: S,
    scheme_id: String,
    /// Sequential codec for geometry (and inline encode when `workers`
    /// is 0). Runs the scheme behind an `Arc` so built-ins and extension
    /// schemes share one code path.
    codec: ParallelCodec<Arc<dyn EccScheme>>,
    shard_size: usize,
    ring_cap: usize,
    workers: usize,
    hlen: usize,
    staging: Vec<u8>,
    crc: Crc32,
    data_len: usize,
    payload_pos: usize,
    entries: Vec<ShardEntry>,
    next_seq: usize,
    outstanding: usize,
    free_data: Vec<Vec<u8>>,
    free_out: Vec<Vec<u8>>,
    ring: Option<Ring>,
    backpressure_waits: u64,
}

impl<S: StreamSink> StreamEncoder<S> {
    /// Start a streaming encode into `sink` with a built-in scheme.
    pub fn new(sink: S, config: EccConfig, opts: StreamOptions) -> Result<Self, ArcError> {
        let scheme_id = config.id();
        Self::with_scheme(sink, Arc::new(config), scheme_id, opts)
    }

    /// Start a streaming encode with the extension scheme registered under
    /// `name`. The finished container is tagged `x:<name>` and is
    /// byte-identical to
    /// [`crate::extension::encode_sharded_with_scheme`] over the
    /// concatenated pushes.
    pub fn with_registry_scheme(
        sink: S,
        registry: &ExtensionRegistry,
        name: &str,
        opts: StreamOptions,
    ) -> Result<Self, ArcError> {
        let scheme = registry.get(name).ok_or_else(|| {
            ArcError::InvalidRequest(format!("no extension scheme named {name:?} registered"))
        })?;
        let scheme_id = format!("{}{name}", extension::CUSTOM_PREFIX);
        Self::with_scheme(sink, scheme, scheme_id, opts)
    }

    fn with_scheme(
        sink: S,
        scheme: Arc<dyn EccScheme>,
        scheme_id: String,
        opts: StreamOptions,
    ) -> Result<Self, ArcError> {
        if opts.shard_size == 0 {
            return Err(ArcError::InvalidRequest("shard size must be >= 1".into()));
        }
        if opts.ring == 0 {
            return Err(ArcError::InvalidRequest("ring capacity must be >= 1".into()));
        }
        let codec = ParallelCodec::with_chunk_size(Arc::clone(&scheme), 1, opts.chunk_size)?;
        // The header length is a pure function of the scheme id and the
        // sharded flag, so the payload region can start before any length
        // field is known; `finish` back-patches the real header at 0.
        let meta = ContainerMeta {
            scheme_id: scheme_id.clone(),
            chunk_size: opts.chunk_size,
            data_len: 0,
            payload_len: 0,
            data_crc: 0,
            sharding: Some(ShardingMeta { shard_size: opts.shard_size, index_len: 1 }),
        };
        let hlen = container::header_len(&meta);
        let workers = resolve_threads(opts.threads);
        let ring = if workers > 1 {
            Some(Ring::start(scheme, opts.chunk_size, workers.min(opts.ring))?)
        } else {
            None
        };
        let workers = ring.as_ref().map(|r| r.handles.len()).unwrap_or(0);
        Ok(StreamEncoder {
            sink,
            scheme_id,
            codec,
            shard_size: opts.shard_size,
            ring_cap: opts.ring,
            workers,
            hlen,
            staging: Vec::with_capacity(opts.shard_size),
            crc: Crc32::new(),
            data_len: 0,
            payload_pos: 0,
            entries: Vec::new(),
            next_seq: 0,
            outstanding: 0,
            free_data: Vec::new(),
            free_out: Vec::new(),
            ring,
            backpressure_waits: 0,
        })
    }

    /// Append `bytes` to the stream. Blocks only when the ring is full
    /// (back-pressure), never on the sink.
    ///
    /// Full shards that are entirely contained in `bytes` take a
    /// zero-copy fast path: with nothing staged, the shard is encoded
    /// (or handed to a worker) straight from the caller's buffer, so
    /// large pushes skip the staging memcpy entirely. Output bytes are
    /// identical either way.
    pub fn push(&mut self, mut bytes: &[u8]) -> Result<(), ArcError> {
        arc_telemetry::counter_add("stream.encode.bytes", bytes.len() as u64);
        while !bytes.is_empty() {
            if self.staging.is_empty() && bytes.len() >= self.shard_size {
                let (shard, rest) = bytes.split_at(self.shard_size);
                self.crc.update(shard);
                self.data_len += shard.len();
                self.submit_slice(shard)?;
                bytes = rest;
                continue;
            }
            let room = self.shard_size - self.staging.len();
            let take = room.min(bytes.len());
            self.staging.extend_from_slice(&bytes[..take]);
            self.crc.update(&bytes[..take]);
            self.data_len += take;
            bytes = &bytes[take..];
            if self.staging.len() == self.shard_size {
                self.submit_shard()?;
            }
        }
        Ok(())
    }

    /// Receive one finished shard, write it at its (pre-computed) payload
    /// offset, and recycle its buffers. Completion order is arbitrary;
    /// output bytes are not, because every write is positional.
    fn reap_one(&mut self) -> Result<(), ArcError> {
        let done = match &self.ring {
            Some(r) => {
                r.done_rx.recv().map_err(|_| ArcError::Io("stream worker terminated".into()))?
            }
            None => return Err(ArcError::Io("stream ring is not running".into())),
        };
        let offset = self
            .entries
            .get(done.seq)
            .map(|e| e.offset)
            .ok_or_else(|| ArcError::Io("stream completion out of range".into()))?;
        self.sink.write_at(self.hlen + offset, &done.out)?;
        if let Some(e) = self.entries.get_mut(done.seq) {
            e.crc = done.crc;
        }
        self.outstanding -= 1;
        if self.free_data.len() <= self.ring_cap {
            self.free_data.push(done.data);
        }
        if self.free_out.len() <= self.ring_cap {
            self.free_out.push(done.out);
        }
        Ok(())
    }

    /// Validate a shard's lengths against the index's u32 fields, assign
    /// its payload offset, and push its (CRC-pending) index entry.
    /// Returns `(offset, encoded_len)`.
    fn reserve_entry(&mut self, decoded_len: usize) -> Result<(usize, usize), ArcError> {
        let encoded_len = self.codec.encoded_len(decoded_len);
        if encoded_len > u32::MAX as usize || decoded_len > u32::MAX as usize {
            return Err(ArcError::InvalidRequest(format!(
                "shard of {decoded_len} bytes overflows the index's u32 length fields"
            )));
        }
        let offset = self.payload_pos;
        self.payload_pos = offset
            .checked_add(encoded_len)
            .ok_or_else(|| ArcError::InvalidRequest("payload length overflows".into()))?;
        // The CRC slot is filled when the shard's encode completes.
        self.entries.push(ShardEntry { offset, encoded_len, decoded_len, crc: 0 });
        arc_telemetry::counter_add("stream.encode.shards", 1);
        Ok((offset, encoded_len))
    }

    /// Back-pressure: reap completed shards until the ring has a free slot.
    fn wait_for_slot(&mut self) -> Result<(), ArcError> {
        while self.outstanding >= self.ring_cap {
            self.backpressure_waits += 1;
            arc_telemetry::counter_add("stream.encode.backpressure_waits", 1);
            self.reap_one()?;
        }
        Ok(())
    }

    /// Hand one prepared `(data, out)` pair to the workers.
    fn send_job(&mut self, data: Vec<u8>, out: Vec<u8>) -> Result<(), ArcError> {
        let seq = self.next_seq;
        self.next_seq += 1;
        let tx = self
            .ring
            .as_ref()
            .and_then(|r| r.jobs_tx.as_ref())
            .ok_or_else(|| ArcError::Io("stream ring is not running".into()))?;
        tx.send(Job { seq, data, out })
            .map_err(|_| ArcError::Io("stream worker terminated".into()))?;
        self.outstanding += 1;
        Ok(())
    }

    /// Submit the staged (full or tail) shard.
    fn submit_shard(&mut self) -> Result<(), ArcError> {
        if self.ring.is_none() {
            // Inline mode: route through the slice path so the encode
            // reads the staged bytes directly; `take` + restore keeps the
            // staging capacity across shards.
            let staged = std::mem::take(&mut self.staging);
            let result = self.submit_slice(&staged);
            self.staging = staged;
            self.staging.clear();
            return result;
        }
        let (_, encoded_len) = self.reserve_entry(self.staging.len())?;
        self.wait_for_slot()?;
        let mut out = self.free_out.pop().unwrap_or_default();
        // arc-lint: bounded(encoded_len computed by the codec from the caller's shard, not decoded input)
        out.resize(encoded_len, 0);
        let mut data = self.free_data.pop().unwrap_or_default();
        data.clear();
        // Swap, don't copy: the staged buffer becomes the job's and a
        // recycled one becomes the next staging area.
        std::mem::swap(&mut data, &mut self.staging);
        self.send_job(data, out)
    }

    /// Submit one full shard straight from the caller's buffer. Inline
    /// mode encodes from the slice with no staging copy; ring mode copies
    /// it into a recycled job buffer — the one copy a hand-off to another
    /// thread requires, and the same copy the staging path would have made.
    fn submit_slice(&mut self, shard: &[u8]) -> Result<(), ArcError> {
        let (offset, encoded_len) = self.reserve_entry(shard.len())?;
        if self.ring.is_some() {
            self.wait_for_slot()?;
            let mut out = self.free_out.pop().unwrap_or_default();
            // arc-lint: bounded(encoded_len computed by the codec from the caller's slice, not decoded input)
            out.resize(encoded_len, 0);
            let mut data = self.free_data.pop().unwrap_or_default();
            data.clear();
            data.extend_from_slice(shard);
            self.send_job(data, out)
        } else {
            let mut out = self.free_out.pop().unwrap_or_default();
            // arc-lint: bounded(encoded_len computed by the codec from the caller's slice, not decoded input)
            out.resize(encoded_len, 0);
            self.codec.encode_into(shard, &mut out);
            if let Some(e) = self.entries.last_mut() {
                e.crc = crc32(shard);
            }
            self.next_seq += 1;
            self.sink.write_at(self.hlen + offset, &out)?;
            self.free_out.push(out);
            Ok(())
        }
    }

    /// Flush the partial tail shard, drain the ring, write the triplicated
    /// index, back-patch the header, and return the sink.
    ///
    /// The result is byte-identical to [`container::encode_sharded`] over
    /// the concatenation of every pushed slice.
    pub fn finish(mut self) -> Result<(S, StreamEncodeStats), ArcError> {
        if !self.staging.is_empty() {
            self.submit_shard()?;
        }
        while self.outstanding > 0 {
            self.reap_one()?;
        }
        // Join the workers before sealing the container so a worker that
        // died mid-shard can't leave a silently unwritten region.
        self.ring = None;
        let index = container::rs_index_encode(&container::serialize_index(&self.entries))?;
        let meta = ContainerMeta {
            scheme_id: self.scheme_id.clone(),
            chunk_size: self.codec.chunk_size(),
            data_len: self.data_len,
            payload_len: self.payload_pos,
            data_crc: self.crc.finalize(),
            sharding: Some(ShardingMeta { shard_size: self.shard_size, index_len: index.len() }),
        };
        let hlen = container::header_len(&meta);
        if hlen != self.hlen {
            // Unreachable by construction (the header length depends only
            // on fields fixed at `new`), but never write a torn container.
            return Err(ArcError::InvalidRequest("header length changed mid-stream".into()));
        }
        let istart = self.hlen + self.payload_pos;
        for copy in 0..3 {
            self.sink.write_at(istart + copy * index.len(), &index)?;
        }
        // arc-lint: bounded(hlen is the header length for metadata this encoder built itself)
        let mut header = vec![0u8; hlen];
        container::write_header(&meta, &mut header)?;
        self.sink.write_at(0, &header)?;
        let stats = StreamEncodeStats {
            data_len: self.data_len,
            container_len: istart + 3 * index.len(),
            shards: self.entries.len(),
            workers: self.workers,
            ring: self.ring_cap,
            backpressure_waits: self.backpressure_waits,
        };
        Ok((self.sink, stats))
    }
}

/// What a finished streaming decode saw.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamDecodeStats {
    /// Identifier of the scheme that protected the data.
    pub scheme_id: String,
    /// Original data length reproduced.
    pub data_len: usize,
    /// Shards decoded (0 for monolithic v1 containers).
    pub shards: usize,
    /// Repairs performed on the payload.
    pub correction: CorrectionReport,
    /// True when the primary header copy was unusable.
    pub used_backup_header: bool,
    /// Header bytes the RS codeword repaired.
    pub header_symbols_corrected: usize,
    /// How the trailing shard index was recovered (v2 only).
    pub index_repair: IndexRepair,
}

enum Phase {
    /// Waiting for the 6-byte triplicated length prefix.
    Prefix,
    /// Buffering header codewords; `candidates` holds plausible lengths,
    /// smallest first.
    Header,
    /// Buffering the current shard's encoded region.
    Shards,
    /// Buffering the three index copies.
    Trailer,
    /// Buffering a monolithic v1 payload.
    MonoBody,
    /// Container complete; any further byte is an error.
    Done,
}

/// Push-based decoder for v1/v2 containers.
///
/// Decoded plaintext is appended to the `out` vector passed to
/// [`StreamDecoder::push`] as soon as each shard's ECC pass completes —
/// the trailing index is verified *after* emission, so a caller that needs
/// end-to-end certainty must wait for [`StreamDecoder::finish`], which
/// cross-checks the recovered index against the streamed geometry and the
/// header's whole-data CRC. Monolithic v1 containers are supported with
/// O(payload) buffering (their format permits nothing better).
///
/// ```
/// use arc_core::stream::StreamDecoder;
/// use arc_ecc::EccConfig;
///
/// let data = vec![7u8; 10_000];
/// let container =
///     arc_core::arc_engine_encode_sharded(&data, EccConfig::secded(true), 1, 2048).unwrap();
/// let mut dec = StreamDecoder::new();
/// let mut out = Vec::new();
/// for piece in container.chunks(997) {
///     dec.push(piece, &mut out).unwrap();
/// }
/// let stats = dec.finish().unwrap();
/// assert_eq!(out, data);
/// assert_eq!(stats.shards, 5);
/// ```
pub struct StreamDecoder {
    threads: usize,
    /// Extension schemes the header's scheme id may resolve against.
    /// `None` still decodes every built-in container; extension-tagged
    /// headers then fail with a pointer to
    /// [`StreamDecoder::with_registry`].
    registry: Option<ExtensionRegistry>,
    phase: Phase,
    buf: Vec<u8>,
    candidates: Vec<usize>,
    meta: Option<ContainerMeta>,
    codec: Option<ParallelCodec<Arc<dyn EccScheme>>>,
    used_backup_header: bool,
    header_symbols_corrected: usize,
    computed: Vec<ShardEntry>,
    decoded_so_far: usize,
    payload_pos: usize,
    out_crc: Crc32,
    correction: CorrectionReport,
    index_repair: IndexRepair,
    failed: bool,
}

impl Default for StreamDecoder {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamDecoder {
    /// Decoder with sequential (1-thread) shard decoding.
    pub fn new() -> Self {
        Self::with_threads(1)
    }

    /// Decoder whose per-shard ECC pass may use up to `threads` workers
    /// (`0` = all available cores).
    pub fn with_threads(threads: usize) -> Self {
        StreamDecoder {
            threads,
            registry: None,
            phase: Phase::Prefix,
            buf: Vec::new(),
            candidates: Vec::new(),
            meta: None,
            codec: None,
            used_backup_header: false,
            header_symbols_corrected: 0,
            computed: Vec::new(),
            decoded_so_far: 0,
            payload_pos: 0,
            out_crc: Crc32::new(),
            correction: CorrectionReport::default(),
            index_repair: IndexRepair::default(),
            failed: false,
        }
    }

    /// As [`StreamDecoder::with_threads`], additionally resolving
    /// extension scheme ids (`x:<name>`) against `registry`, so containers
    /// produced by [`StreamEncoder::with_registry_scheme`] (or the one-shot
    /// extension encoders) stream-decode like built-ins.
    pub fn with_registry(threads: usize, registry: ExtensionRegistry) -> Self {
        StreamDecoder { registry: Some(registry), ..Self::with_threads(threads) }
    }

    /// Feed the next piece of the container, appending any newly decoded
    /// plaintext to `out`. Errors are sticky: once a push fails, the
    /// decoder stays failed.
    pub fn push(&mut self, bytes: &[u8], out: &mut Vec<u8>) -> Result<(), ArcError> {
        if self.failed {
            return Err(ArcError::Corrupted("stream decoder previously failed".into()));
        }
        match self.consume(bytes, out) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.failed = true;
                Err(e)
            }
        }
    }

    /// Declare the stream complete and return the summary.
    pub fn finish(self) -> Result<StreamDecodeStats, ArcError> {
        if self.failed {
            return Err(ArcError::Corrupted("stream decoder previously failed".into()));
        }
        if !matches!(self.phase, Phase::Done) {
            return Err(ArcError::Corrupted("container truncated: stream ended early".into()));
        }
        let meta = self
            .meta
            .ok_or_else(|| ArcError::Corrupted("stream decoder lost its header".into()))?;
        if meta.sharding.is_some() && self.out_crc.finalize() != meta.data_crc {
            return Err(ArcError::Corrupted("data CRC mismatch after repair".into()));
        }
        Ok(StreamDecodeStats {
            scheme_id: meta.scheme_id,
            data_len: meta.data_len,
            shards: self.computed.len(),
            correction: self.correction,
            used_backup_header: self.used_backup_header,
            header_symbols_corrected: self.header_symbols_corrected,
            index_repair: self.index_repair,
        })
    }

    fn consume(&mut self, mut bytes: &[u8], out: &mut Vec<u8>) -> Result<(), ArcError> {
        while !bytes.is_empty() {
            let need = match self.phase {
                Phase::Prefix => 6,
                Phase::Header => {
                    let len = self.candidates.first().copied().ok_or_else(|| {
                        ArcError::Corrupted("header unrecoverable in both copies".into())
                    })?;
                    6 + 2 * len
                }
                Phase::Shards => self.cur_shard_geometry()?.1,
                Phase::Trailer => {
                    let sh = self.sharding()?;
                    3 * sh.index_len
                }
                Phase::MonoBody => self.meta_ref()?.payload_len,
                Phase::Done => {
                    return Err(ArcError::Corrupted("bytes after container end".into()));
                }
            };
            let take = need.saturating_sub(self.buf.len()).min(bytes.len());
            self.buf.extend_from_slice(&bytes[..take]);
            bytes = &bytes[take..];
            if self.buf.len() < need {
                continue;
            }
            match self.phase {
                Phase::Prefix => self.begin_header()?,
                Phase::Header => self.try_header(out)?,
                Phase::Shards => {
                    let (dlen, elen) = self.cur_shard_geometry()?;
                    self.complete_shard(dlen, elen, out)?;
                }
                Phase::Trailer => self.complete_trailer()?,
                Phase::MonoBody => self.complete_mono(out)?,
                Phase::Done => {
                    return Err(ArcError::Corrupted("bytes after container end".into()));
                }
            }
        }
        Ok(())
    }

    fn meta_ref(&self) -> Result<&ContainerMeta, ArcError> {
        self.meta
            .as_ref()
            .ok_or_else(|| ArcError::Corrupted("stream decoder lost its header".into()))
    }

    fn sharding(&self) -> Result<ShardingMeta, ArcError> {
        self.meta_ref()?
            .sharding
            .ok_or_else(|| ArcError::Corrupted("stream decoder lost its shard geometry".into()))
    }

    fn codec_ref(&self) -> Result<&ParallelCodec<Arc<dyn EccScheme>>, ArcError> {
        self.codec
            .as_ref()
            .ok_or_else(|| ArcError::Corrupted("stream decoder lost its codec".into()))
    }

    /// Decoded/encoded length of the shard currently being buffered.
    fn cur_shard_geometry(&self) -> Result<(usize, usize), ArcError> {
        let meta = self.meta_ref()?;
        let sh = self.sharding()?;
        let remaining = meta.data_len.saturating_sub(self.decoded_so_far);
        let dlen = remaining.min(sh.shard_size);
        if dlen == 0 {
            return Err(ArcError::Corrupted("shard phase with no data remaining".into()));
        }
        Ok((dlen, self.codec_ref()?.encoded_len(dlen)))
    }

    /// Majority-vote the 6-byte length prefix into an ordered candidate
    /// list, exactly mirroring [`container::unpack`]: a 2-of-3 winner is
    /// the only candidate; with no majority every distinct value gets a
    /// chance, cheapest (shortest) first so a 1-byte drip does O(1) work
    /// per byte between the at-most-three parse attempts.
    fn begin_header(&mut self) -> Result<(), ArcError> {
        let lens = [
            container::le_u16(&self.buf, 0) as usize,
            container::le_u16(&self.buf, 2) as usize,
            container::le_u16(&self.buf, 4) as usize,
        ];
        let voted = if lens[0] == lens[1] || lens[0] == lens[2] {
            lens[0]
        } else if lens[1] == lens[2] {
            lens[1]
        } else {
            0
        };
        let mut candidates = if voted != 0 { vec![voted] } else { lens.to_vec() };
        candidates.retain(|l| *l > HEADER_NSYM);
        candidates.sort_unstable();
        candidates.dedup();
        if candidates.is_empty() {
            return Err(ArcError::Corrupted("no plausible header length".into()));
        }
        self.candidates = candidates;
        self.phase = Phase::Header;
        Ok(())
    }

    /// The buffer holds both codeword copies for the current length
    /// candidate: attempt primary then backup. Failure discards this
    /// candidate and keeps buffering toward the next (longer) one.
    fn try_header(&mut self, out: &mut Vec<u8>) -> Result<(), ArcError> {
        let len = self
            .candidates
            .first()
            .copied()
            .ok_or_else(|| ArcError::Corrupted("header unrecoverable in both copies".into()))?;
        let Ok(rs) = RsCodeword::new(HEADER_NSYM) else {
            return Err(ArcError::Corrupted("header RS codeword unavailable".into()));
        };
        let primary = &self.buf[6..6 + len];
        let backup = &self.buf[6 + len..6 + 2 * len];
        let mut accepted = None;
        for (copy, used_backup) in [(primary, false), (backup, true)] {
            if let Ok((header_bytes, fixed)) = rs.decode(copy) {
                if let Ok(meta) = container::parse_header(&header_bytes) {
                    accepted = Some((meta, used_backup, fixed));
                    break;
                }
            }
        }
        match accepted {
            Some((meta, used_backup, fixed)) => {
                self.used_backup_header = used_backup;
                self.header_symbols_corrected = fixed;
                self.accept_header(meta, out)
            }
            None => {
                self.candidates.remove(0);
                if self.candidates.is_empty() {
                    return Err(ArcError::Corrupted("header unrecoverable in both copies".into()));
                }
                Ok(())
            }
        }
    }

    /// Validate the decoded header's geometry before buffering anything it
    /// promises: the payload and index lengths must be the pure functions
    /// of (`data_len`, `shard_size`, `chunk_size`) the encoder computes,
    /// so a corrupt-but-decodable header cannot demand unbounded memory.
    fn accept_header(&mut self, meta: ContainerMeta, out: &mut Vec<u8>) -> Result<(), ArcError> {
        let scheme = extension::resolve_scheme(&meta.scheme_id, self.registry.as_ref())?;
        let codec = ParallelCodec::with_chunk_size(scheme, self.threads, meta.chunk_size)?;
        match meta.sharding {
            Some(sh) => {
                if codec.sharded_encoded_len(meta.data_len, sh.shard_size) != meta.payload_len {
                    return Err(ArcError::Corrupted(
                        "payload length disagrees with shard geometry".into(),
                    ));
                }
                let shards = meta.data_len.div_ceil(sh.shard_size);
                let raw_len = shards
                    .checked_mul(INDEX_ENTRY_BYTES)
                    .and_then(|n| n.checked_add(12))
                    .ok_or_else(|| ArcError::Corrupted("shard count overflows".into()))?;
                let Ok(rs) = RsCodeword::new(INDEX_NSYM) else {
                    return Err(ArcError::Corrupted("index RS codeword unavailable".into()));
                };
                let expect_index = raw_len
                    .div_ceil(rs.max_message_len())
                    .checked_mul(INDEX_NSYM)
                    .and_then(|p| p.checked_add(raw_len))
                    .ok_or_else(|| ArcError::Corrupted("index length overflows".into()))?;
                if expect_index != sh.index_len {
                    return Err(ArcError::Corrupted(
                        "index length disagrees with shard count".into(),
                    ));
                }
                self.phase = if shards == 0 { Phase::Trailer } else { Phase::Shards };
            }
            None => {
                if codec.encoded_len(meta.data_len) != meta.payload_len {
                    return Err(ArcError::Corrupted(
                        "payload length disagrees with data length".into(),
                    ));
                }
                self.phase = Phase::MonoBody;
            }
        }
        let mono_empty = meta.sharding.is_none() && meta.payload_len == 0;
        self.meta = Some(meta);
        self.codec = Some(codec);
        self.buf.clear();
        if mono_empty {
            // Zero-length v1 body: nothing further will arrive for it.
            self.complete_mono(out)?;
        }
        Ok(())
    }

    fn complete_shard(
        &mut self,
        dlen: usize,
        elen: usize,
        out: &mut Vec<u8>,
    ) -> Result<(), ArcError> {
        let codec = self
            .codec
            .as_ref()
            .ok_or_else(|| ArcError::Corrupted("stream decoder lost its codec".into()))?;
        let report = codec.decode_shard_in_place(&mut self.buf, dlen)?;
        self.correction.merge(&report);
        let shard = &self.buf[..dlen];
        let crc = crc32(shard);
        self.out_crc.update(shard);
        out.extend_from_slice(shard);
        arc_telemetry::counter_add("stream.decode.shards", 1);
        arc_telemetry::counter_add("stream.decode.bytes", dlen as u64);
        self.computed.push(ShardEntry {
            offset: self.payload_pos,
            encoded_len: elen,
            decoded_len: dlen,
            crc,
        });
        self.payload_pos = self
            .payload_pos
            .checked_add(elen)
            .ok_or_else(|| ArcError::Corrupted("payload offsets overflow".into()))?;
        self.decoded_so_far += dlen;
        self.buf.clear();
        if self.decoded_so_far == self.meta_ref()?.data_len {
            self.phase = Phase::Trailer;
        }
        Ok(())
    }

    /// All three index copies are buffered: recover the index exactly as
    /// the one-shot path does, then require it to equal the geometry and
    /// CRCs of the shards actually streamed — the late end-to-end check
    /// that backs the early plaintext emission.
    fn complete_trailer(&mut self) -> Result<(), ArcError> {
        let sh = self.sharding()?;
        let ilen = sh.index_len;
        if self.buf.len() != 3 * ilen {
            return Err(ArcError::Corrupted("index trailer mis-sized".into()));
        }
        let (index, repair) = {
            let copies =
                [&self.buf[..ilen], &self.buf[ilen..2 * ilen], &self.buf[2 * ilen..3 * ilen]];
            container::recover_index(copies, self.meta_ref()?)?
        };
        if index.entries != self.computed {
            return Err(ArcError::Corrupted(
                "recovered index disagrees with streamed shards".into(),
            ));
        }
        self.index_repair = repair;
        self.buf.clear();
        self.phase = Phase::Done;
        Ok(())
    }

    fn complete_mono(&mut self, out: &mut Vec<u8>) -> Result<(), ArcError> {
        let data_len = self.meta_ref()?.data_len;
        let codec = self
            .codec
            .as_ref()
            .ok_or_else(|| ArcError::Corrupted("stream decoder lost its codec".into()))?;
        let report = codec.decode_in_place(&mut self.buf, data_len)?;
        self.correction.merge(&report);
        let data = &self.buf[..data_len];
        if crc32(data) != self.meta_ref()?.data_crc {
            return Err(ArcError::Corrupted("data CRC mismatch after repair".into()));
        }
        out.extend_from_slice(data);
        arc_telemetry::counter_add("stream.decode.bytes", data_len as u64);
        self.buf.clear();
        self.phase = Phase::Done;
        Ok(())
    }
}

/// Workers worth dispatching for a batch totalling `total` bytes — the
/// same bytes-per-thread floor [`ParallelCodec::effective_workers`]
/// applies, but over the batch's *aggregate* size, which is the point of
/// coalescing: many below-floor requests still fill a pool.
fn batch_workers(config: &EccConfig, threads: usize, total: usize) -> usize {
    let threads = resolve_threads(threads);
    if threads <= 1 {
        return 1;
    }
    let floor = config.min_bytes_per_thread().max(1);
    threads.min(total / floor).max(1)
}

/// Encode many independent requests as one flat pool pass.
///
/// Each element of the result is byte-identical to
/// [`crate::arc_engine_encode`] of the corresponding request: the batching
/// changes scheduling, never bytes. Chunk jobs from *all* requests land in
/// one list driven by a single pool, so requests individually below the
/// scheme's bytes-per-thread floor still parallelize in aggregate.
pub fn encode_batch(
    requests: &[&[u8]],
    config: EccConfig,
    threads: usize,
) -> Result<Vec<Vec<u8>>, ArcError> {
    let _span = arc_telemetry::span("stream.encode_batch");
    let codec = ParallelCodec::with_chunk_size(config, 1, DEFAULT_CHUNK_SIZE)?;
    let total: usize = requests.iter().map(|d| d.len()).sum();
    arc_telemetry::counter_add("stream.batch.requests", requests.len() as u64);
    arc_telemetry::counter_add("stream.batch.bytes", total as u64);
    let mut outs = Vec::with_capacity(requests.len());
    let mut hlens = Vec::with_capacity(requests.len());
    for data in requests {
        let meta = ContainerMeta {
            scheme_id: config.id(),
            chunk_size: codec.chunk_size(),
            data_len: data.len(),
            payload_len: codec.encoded_len(data.len()),
            data_crc: container::data_crc(data),
            sharding: None,
        };
        let hlen = container::header_len(&meta);
        let mut out = vec![0u8; hlen + meta.payload_len];
        container::write_header(&meta, &mut out[..hlen])?;
        hlens.push(hlen);
        outs.push(out);
    }
    // One flat chunk-job list across every request, same shape as
    // `ParallelCodec::encode_sharded_into`'s shard flattening.
    let mut jobs: Vec<(&[u8], &mut [u8], &mut [u8])> = Vec::new();
    for ((data, out), hlen) in requests.iter().zip(outs.iter_mut()).zip(&hlens) {
        let region = &mut out[*hlen..];
        let (mut data_rest, mut parity_rest) = region.split_at_mut(data.len());
        for chunk in data.chunks(codec.chunk_size()) {
            let (d, rest) = data_rest.split_at_mut(chunk.len());
            data_rest = rest;
            let (p, rest) = parity_rest.split_at_mut(config.parity_len(chunk.len()));
            parity_rest = rest;
            jobs.push((chunk, d, p));
        }
    }
    let run = |(src, dst, parity): &mut (&[u8], &mut [u8], &mut [u8])| {
        dst.copy_from_slice(src);
        config.encode_parity_into(src, parity);
    };
    let workers = batch_workers(&config, threads, total);
    if workers > 1 && jobs.len() > 1 {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("arc-batch-{i}"))
            .build()
            .map_err(|e| ArcError::Io(format!("thread pool: {e}")))?;
        pool.install(|| jobs.par_iter_mut().for_each(run));
    } else {
        jobs.iter_mut().for_each(run);
    }
    Ok(outs)
}

/// Per-container outcome of [`decode_batch`]: the decoded bytes and report,
/// or the first error hit while decoding that container.
type DecodeOutcome = Result<(Vec<u8>, ArcDecodeReport), ArcError>;

/// Decode many independent containers as one flat pool pass.
///
/// Order-preserving; each element equals what
/// [`crate::decode_with_threads`] returns for that container. Failures are
/// per-item — one corrupt container never poisons its batch.
pub fn decode_batch(containers: &[&[u8]], threads: usize) -> Vec<DecodeOutcome> {
    let _span = arc_telemetry::span("stream.decode_batch");
    arc_telemetry::counter_add("stream.batch.requests", containers.len() as u64);
    let workers = resolve_threads(threads).min(containers.len()).max(1);
    let mut slots: Vec<Option<DecodeOutcome>> = Vec::new();
    slots.resize_with(containers.len(), || None);
    let mut jobs: Vec<(&[u8], &mut Option<DecodeOutcome>)> =
        containers.iter().copied().zip(slots.iter_mut()).collect();
    let run = |(bytes, slot): &mut (&[u8], &mut Option<_>)| {
        **slot = Some(decode_with_threads(bytes, 1));
    };
    let pool = if workers > 1 {
        rayon::ThreadPoolBuilder::new()
            .num_threads(workers)
            .thread_name(|i| format!("arc-batch-{i}"))
            .build()
            .ok()
    } else {
        None
    };
    match pool {
        Some(pool) => pool.install(|| jobs.par_iter_mut().for_each(run)),
        None => jobs.iter_mut().for_each(run),
    }
    slots
        .into_iter()
        .map(|s| s.unwrap_or_else(|| Err(ArcError::Io("batch slot unfilled".into()))))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 37) ^ (i >> 5)) as u8).collect()
    }

    fn one_shot(data: &[u8], shard_size: usize) -> Vec<u8> {
        crate::engine::arc_engine_encode_sharded(data, EccConfig::secded(true), 1, shard_size)
            .expect("one-shot encode")
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = sample(50_000);
        let opts = StreamOptions { shard_size: 8 << 10, ..StreamOptions::default() };
        let mut enc = StreamEncoder::new(Vec::new(), EccConfig::secded(true), opts).unwrap();
        for piece in data.chunks(1234) {
            enc.push(piece).unwrap();
        }
        let (got, stats) = enc.finish().unwrap();
        assert_eq!(got, one_shot(&data, 8 << 10));
        assert_eq!(stats.shards, data.len().div_ceil(8 << 10));
        assert_eq!(stats.container_len, got.len());
        assert_eq!(stats.workers, 0);
    }

    #[test]
    fn threaded_ring_matches_inline() {
        let data = sample(70_000);
        let base = StreamOptions { shard_size: 4 << 10, ..StreamOptions::default() };
        let reference = one_shot(&data, 4 << 10);
        for (threads, ring) in [(2, 1), (2, 2), (4, 3)] {
            let opts = StreamOptions { threads, ring, ..base };
            let mut enc = StreamEncoder::new(Vec::new(), EccConfig::secded(true), opts).unwrap();
            for piece in data.chunks(999) {
                enc.push(piece).unwrap();
            }
            let (got, stats) = enc.finish().unwrap();
            assert_eq!(got, reference, "threads={threads} ring={ring}");
            assert!(stats.workers >= 1, "ring should have spawned workers");
        }
    }

    #[test]
    fn empty_input_round_trips() {
        let opts = StreamOptions::default();
        let enc = StreamEncoder::new(Vec::new(), EccConfig::secded(true), opts).unwrap();
        let (got, stats) = enc.finish().unwrap();
        assert_eq!(got, one_shot(&[], DEFAULT_SHARD_SIZE));
        assert_eq!(stats.shards, 0);
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        dec.push(&got, &mut out).unwrap();
        assert!(dec.finish().is_ok());
        assert!(out.is_empty());
    }

    #[test]
    fn decoder_streams_v2_in_odd_chunks() {
        let data = sample(40_000);
        let container = one_shot(&data, 4 << 10);
        for chunk in [1usize, 7, 4096, container.len()] {
            let mut dec = StreamDecoder::new();
            let mut out = Vec::new();
            for piece in container.chunks(chunk) {
                dec.push(piece, &mut out).expect("clean push");
            }
            let stats = dec.finish().expect("clean finish");
            assert_eq!(out, data, "chunk={chunk}");
            assert_eq!(stats.shards, data.len().div_ceil(4 << 10));
            assert!(stats.correction.is_clean());
        }
    }

    #[test]
    fn decoder_handles_v1_containers() {
        let data = sample(10_000);
        let container =
            crate::engine::arc_engine_encode(&data, EccConfig::secded(true), 1).unwrap();
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        for piece in container.chunks(313) {
            dec.push(piece, &mut out).unwrap();
        }
        let stats = dec.finish().unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.shards, 0);
    }

    #[test]
    fn decoder_rejects_truncation_and_trailing_garbage() {
        let data = sample(9_000);
        let container = one_shot(&data, 2048);
        // Truncated: finish() must refuse.
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        dec.push(&container[..container.len() - 5], &mut out).unwrap();
        assert!(dec.finish().is_err());
        // Trailing garbage: the extra byte itself must refuse.
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        dec.push(&container, &mut out).unwrap();
        assert!(dec.push(&[0u8], &mut out).is_err());
    }

    #[test]
    fn decoder_errors_are_sticky() {
        // Unanimous length prefix of 40, followed by two 40-byte
        // "codewords" of garbage: both RS decodes fail at the threshold.
        let mut junk = vec![40u8, 0, 40, 0, 40, 0];
        junk.extend(std::iter::repeat_n(0xA5u8, 80));
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        assert!(dec.push(&junk, &mut out).is_err());
        assert!(dec.push(b"more", &mut out).is_err());
        assert!(dec.finish().is_err());
    }

    #[test]
    fn extension_scheme_streams_like_builtins() {
        let r = crate::extension::standard_extensions().unwrap();
        let data = sample(60_000);
        let opts = StreamOptions { shard_size: 16 << 10, ..StreamOptions::default() };
        let mut enc = StreamEncoder::with_registry_scheme(Vec::new(), &r, "ileave-rs", opts)
            .expect("registry encoder");
        for piece in data.chunks(1234) {
            enc.push(piece).unwrap();
        }
        let (got, stats) = enc.finish().unwrap();
        let one_shot =
            crate::extension::encode_sharded_with_scheme(&data, &r, "ileave-rs", 1, 16 << 10)
                .unwrap();
        assert_eq!(got, one_shot, "streamed container must match the one-shot bytes");
        assert_eq!(stats.shards, data.len().div_ceil(16 << 10));

        // The threaded ring runs the same scheme behind its `Arc` and must
        // produce the same bytes.
        let threaded = StreamOptions { threads: 2, ring: 2, ..opts };
        let mut enc = StreamEncoder::with_registry_scheme(Vec::new(), &r, "ileave-rs", threaded)
            .expect("threaded registry encoder");
        enc.push(&data).unwrap();
        let (got_threaded, _) = enc.finish().unwrap();
        assert_eq!(got_threaded, one_shot);

        // A registry-less decoder refuses the extension header politely…
        let mut dec = StreamDecoder::new();
        let mut out = Vec::new();
        assert!(matches!(dec.push(&got, &mut out), Err(ArcError::InvalidRequest(_))));
        // …and a registry-backed one streams it exactly like a built-in.
        let mut dec = StreamDecoder::with_registry(1, r);
        let mut out = Vec::new();
        for piece in got.chunks(997) {
            dec.push(piece, &mut out).unwrap();
        }
        let stats = dec.finish().unwrap();
        assert_eq!(out, data);
        assert_eq!(stats.scheme_id, "x:ileave-rs");
        assert!(stats.correction.is_clean());
    }

    #[test]
    fn batch_encode_matches_singletons() {
        let reqs: Vec<Vec<u8>> = vec![sample(100), sample(5_000), Vec::new(), sample(77)];
        let refs: Vec<&[u8]> = reqs.iter().map(|r| r.as_slice()).collect();
        let config = EccConfig::secded(true);
        let batch = encode_batch(&refs, config, 2).unwrap();
        for (req, got) in reqs.iter().zip(&batch) {
            let single = crate::engine::arc_engine_encode(req, config, 1).unwrap();
            assert_eq!(got, &single);
        }
        let containers: Vec<&[u8]> = batch.iter().map(|b| b.as_slice()).collect();
        let decoded = decode_batch(&containers, 2);
        for (req, item) in reqs.iter().zip(decoded) {
            let (data, report) = item.unwrap();
            assert_eq!(&data, req);
            assert!(report.correction.is_clean());
        }
    }

    #[test]
    fn batch_decode_isolates_failures() {
        let good =
            crate::engine::arc_engine_encode(&sample(500), EccConfig::secded(true), 1).unwrap();
        let bad = vec![0u8; 64];
        let items: Vec<&[u8]> = vec![&good, &bad, &good];
        let results = decode_batch(&items, 1);
        assert!(results[0].is_ok());
        assert!(results[1].is_err());
        assert!(results[2].is_ok());
    }
}
