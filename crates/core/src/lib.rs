//! # arc-core — ARC: Automated Resiliency for Compression
//!
//! The paper's primary contribution (HPDC '21, §5): given user constraints
//! on **storage**, **throughput**, and **resiliency**, ARC automatically
//! determines the optimal error-correcting-code configuration and applies
//! it to any `&[u8]` — typically lossy-compressed data, whose single-bit
//! sensitivity the paper's fault study established (§4).
//!
//! The crate mirrors the paper's two access levels:
//!
//! * the **ARC Interface** ([`ArcContext`]) — `arc_init` / `arc_encode` /
//!   `arc_decode` / `arc_close`, with the training phase and on-disk cache
//!   of §5.1;
//! * the **ARC Engine** ([`engine`]) — the Table 1 functions for direct
//!   per-method encode/decode and the three constraint optimizers.
//!
//! ```
//! use arc_core::{ArcContext, ArcOptions, EncodeRequest, MemoryConstraint,
//!                ResiliencyConstraint, ThroughputConstraint, TrainingOptions};
//! use arc_ecc::EccConfig;
//!
//! // Algorithm 1, in Rust. (Tiny training space to keep the doctest fast.)
//! let dir = std::env::temp_dir().join("arc-doctest");
//! let ctx = ArcContext::init(ArcOptions {
//!     max_threads: 2,
//!     cache_path: Some(dir.join("training.tsv")),
//!     training: TrainingOptions {
//!         sample_bytes: 32 << 10,
//!         rs_sample_bytes: 16 << 10,
//!         space: vec![EccConfig::secded(true), EccConfig::rs(32, 8).unwrap()],
//!     },
//!     ..Default::default()
//! }).unwrap();                                           // arc_init()
//!
//! let data = vec![0xC0u8; 100_000]; // e.g. lossy-compressed output
//! let (encoded, _sel) = ctx.encode(&data, &EncodeRequest {
//!     memory: MemoryConstraint::Fraction(0.25),
//!     throughput: ThroughputConstraint::Any,
//!     resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
//! }).unwrap();                                           // arc_encode()
//!
//! let (decoded, _report) = ctx.decode(&encoded).unwrap(); // arc_decode()
//! ctx.close().unwrap();                                   // arc_close()
//! assert_eq!(decoded, data);
//! ```

#![warn(missing_docs)]

pub mod constraints;
pub mod container;
pub mod engine;
pub mod error;
pub mod extension;
pub mod failure;
pub mod interface;
pub mod optimizer;
pub mod reader;
pub mod stream;
pub mod training;

pub use constraints::{
    EncodeRequest, ErrorResponse, MemoryConstraint, ResiliencyConstraint, ThroughputConstraint,
    BURST_RATE_THRESHOLD,
};
pub use container::{
    ContainerMeta, IndexRepair, ShardEntry, ShardIndex, ShardingMeta, Unpacked, DEFAULT_SHARD_SIZE,
    VERSION_SHARDED,
};
pub use engine::{
    arc_engine_decode, arc_engine_decode_range, arc_engine_encode, arc_engine_encode_sharded,
    arc_hamming_decode, arc_hamming_encode, arc_parity_decode, arc_parity_encode,
    arc_reed_solomon_decode, arc_reed_solomon_encode, arc_secded_decode, arc_secded_encode,
    ENGINE_FUNCTIONS,
};
pub use error::{ArcError, DecodeError};
pub use extension::{
    calibrate_builtins, calibrate_registry, decode_with_registry, encode_sharded_with_scheme,
    encode_with_scheme, pareto_frontier, standard_extensions, ExtensionCandidate,
    ExtensionRegistry, CUSTOM_PREFIX,
};
pub use failure::SystemProfile;
pub use interface::{
    decode_with_threads, default_cache_path, ArcContext, ArcDecodeReport, ArcOptions, ANY_THREADS,
};
pub use optimizer::{
    joint_optimizer, joint_optimizer_with, memory_optimizer, throughput_optimizer, Selection,
};
pub use reader::{ArcReader, CacheStats, RangeReport, DEFAULT_CACHE_CAPACITY};
pub use stream::{
    decode_batch, encode_batch, StreamDecodeStats, StreamDecoder, StreamEncodeStats, StreamEncoder,
    StreamOptions, StreamSink,
};
pub use training::{
    probe_buffer, thread_ladder, train, Measurement, TrainingOptions, TrainingStats, TrainingTable,
};
