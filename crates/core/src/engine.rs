//! The ARC Engine (§5.2, Table 1): direct access to each ECC method, for
//! users who want to choose configurations themselves and for developers
//! integrating ARC into a compression pipeline.
//!
//! Every encode function returns a self-describing container, so the
//! matching decode function needs nothing but the bytes (and a thread
//! budget). The decode functions verify the container was produced by the
//! method they are named after — calling `arc_hamming_decode` on
//! Reed-Solomon data is a programming error worth catching loudly.

use arc_ecc::parallel::DEFAULT_CHUNK_SIZE;
use arc_ecc::{EccConfig, EccMethod, ParallelCodec};

use crate::container::{self, ContainerMeta};
use crate::error::ArcError;
use crate::interface::{decode_with_threads, ArcDecodeReport};

/// Encode with an explicit configuration (the general engine entry point).
///
/// `threads` accepts [`arc_ecc::parallel::ANY_THREADS`] (0) for "all
/// available cores". Allocates the whole container — header prefix plus
/// encoded payload — once and scatter-writes both regions in place.
pub fn arc_engine_encode(
    data: &[u8],
    config: EccConfig,
    threads: usize,
) -> Result<Vec<u8>, ArcError> {
    let codec = ParallelCodec::with_chunk_size(config, threads, DEFAULT_CHUNK_SIZE)?;
    let meta = ContainerMeta {
        scheme_id: config.id(),
        chunk_size: DEFAULT_CHUNK_SIZE,
        data_len: data.len(),
        payload_len: codec.encoded_len(data.len()),
        data_crc: container::data_crc(data),
        sharding: None,
    };
    let hlen = container::header_len(&meta);
    let mut out = vec![0u8; hlen + meta.payload_len];
    container::write_header(&meta, &mut out[..hlen])?;
    codec.encode_into(data, &mut out[hlen..]);
    Ok(out)
}

/// Decode any engine-encoded container.
pub fn arc_engine_decode(
    bytes: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    decode_with_threads(bytes, threads)
}

/// Encode into a v2 **sharded** container: each `shard_size`-byte slice of
/// `data` is independently ECC'd and independently decodable, enabling
/// [`arc_engine_decode_range`] / [`crate::reader::ArcReader`] to serve a
/// byte range at per-shard cost. `arc_engine_encode` keeps producing
/// monolithic v1 containers; both decode through the same entry points.
pub fn arc_engine_encode_sharded(
    data: &[u8],
    config: EccConfig,
    threads: usize,
    shard_size: usize,
) -> Result<Vec<u8>, ArcError> {
    let codec = ParallelCodec::with_chunk_size(config, threads, DEFAULT_CHUNK_SIZE)?;
    container::encode_sharded(data, &codec, &config.id(), shard_size)
}

/// Random-access decode: return `offset..offset + len` of the original
/// data, touching only the shards that cover the range (v1 containers
/// fall back to a single-shard full decode). Opens a fresh
/// [`crate::reader::ArcReader`] per call; hold a reader for repeat reads.
pub fn arc_engine_decode_range(
    bytes: &[u8],
    offset: usize,
    len: usize,
    threads: usize,
) -> Result<(Vec<u8>, crate::reader::RangeReport), ArcError> {
    let mut reader = crate::reader::ArcReader::open(bytes, threads)?;
    reader.decode_range(offset, len)
}

fn decode_expecting(
    bytes: &[u8],
    threads: usize,
    method: EccMethod,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    let (data, report) = decode_with_threads(bytes, threads)?;
    let Some(config) = report.config else {
        return Err(ArcError::InvalidRequest(
            "decode resolved no ECC configuration for this container".into(),
        ));
    };
    if config.method() != method {
        return Err(ArcError::InvalidRequest(format!(
            "container was encoded with {config}, not {}",
            method.name()
        )));
    }
    Ok((data, report))
}

/// `arc_parity_encode()`: single-bit even parity over
/// `bytes_per_parity_bit`-byte blocks.
pub fn arc_parity_encode(
    data: &[u8],
    bytes_per_parity_bit: usize,
    threads: usize,
) -> Result<Vec<u8>, ArcError> {
    arc_engine_encode(data, EccConfig::parity(bytes_per_parity_bit)?, threads)
}

/// `arc_parity_decode()`.
pub fn arc_parity_decode(
    bytes: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    decode_expecting(bytes, threads, EccMethod::Parity)
}

/// `arc_hamming_encode()`: Hamming SEC over one-byte (`wide = false`) or
/// eight-byte (`wide = true`) blocks.
pub fn arc_hamming_encode(data: &[u8], wide: bool, threads: usize) -> Result<Vec<u8>, ArcError> {
    arc_engine_encode(data, EccConfig::hamming(wide), threads)
}

/// `arc_hamming_decode()`.
pub fn arc_hamming_decode(
    bytes: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    decode_expecting(bytes, threads, EccMethod::Hamming)
}

/// `arc_secded_encode()`: SEC-DED over one- or eight-byte blocks.
pub fn arc_secded_encode(data: &[u8], wide: bool, threads: usize) -> Result<Vec<u8>, ArcError> {
    arc_engine_encode(data, EccConfig::secded(wide), threads)
}

/// `arc_secded_decode()`.
pub fn arc_secded_decode(
    bytes: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    decode_expecting(bytes, threads, EccMethod::SecDed)
}

/// `arc_reed_solomon_encode()`: `k` data devices, `m` code devices.
pub fn arc_reed_solomon_encode(
    data: &[u8],
    k: usize,
    m: usize,
    threads: usize,
) -> Result<Vec<u8>, ArcError> {
    arc_engine_encode(data, EccConfig::rs(k, m)?, threads)
}

/// `arc_reed_solomon_decode()`.
pub fn arc_reed_solomon_decode(
    bytes: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    decode_expecting(bytes, threads, EccMethod::Rs)
}

/// The ARC Engine function table (Table 1 of the paper), for documentation
/// and the `tab01` harness.
pub const ENGINE_FUNCTIONS: [&str; 11] = [
    "arc_memory_optimizer()",
    "arc_throughput_optimizer()",
    "arc_joint_optimizer()",
    "arc_parity_encode()",
    "arc_parity_decode()",
    "arc_hamming_encode()",
    "arc_hamming_decode()",
    "arc_secded_encode()",
    "arc_secded_decode()",
    "arc_reed_solomon_encode()",
    "arc_reed_solomon_decode()",
];

#[cfg(test)]
mod tests {
    use super::*;

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 37) ^ (i >> 5)) as u8).collect()
    }

    #[test]
    fn every_engine_pair_round_trips() {
        let data = payload(30_000);
        let enc = arc_parity_encode(&data, 8, 2).unwrap();
        assert_eq!(arc_parity_decode(&enc, 2).unwrap().0, data);
        let enc = arc_hamming_encode(&data, true, 2).unwrap();
        assert_eq!(arc_hamming_decode(&enc, 2).unwrap().0, data);
        let enc = arc_secded_encode(&data, false, 2).unwrap();
        assert_eq!(arc_secded_decode(&enc, 2).unwrap().0, data);
        let enc = arc_reed_solomon_encode(&data, 16, 4, 2).unwrap();
        assert_eq!(arc_reed_solomon_decode(&enc, 2).unwrap().0, data);
    }

    #[test]
    fn mismatched_decode_function_is_rejected() {
        let data = payload(1_000);
        let enc = arc_secded_encode(&data, true, 1).unwrap();
        assert!(matches!(arc_hamming_decode(&enc, 1), Err(ArcError::InvalidRequest(_))));
        // The generic decode still works.
        assert_eq!(arc_engine_decode(&enc, 1).unwrap().0, data);
    }

    #[test]
    fn rs_corrects_burst_through_engine() {
        let data = payload(64_000);
        let mut enc = arc_reed_solomon_encode(&data, 16, 6, 2).unwrap();
        // Burst across ~2 devices inside the payload region.
        let start = enc.len() / 2;
        for b in &mut enc[start..start + 6_000] {
            *b = 0xDD;
        }
        let (out, report) = arc_reed_solomon_decode(&enc, 2).unwrap();
        assert_eq!(out, data);
        assert!(report.correction.corrected_devices >= 1);
    }

    #[test]
    fn secded_corrects_scattered_single_bit_errors() {
        let data = payload(64_000);
        let mut enc = arc_secded_encode(&data, true, 2).unwrap();
        for (i, bit) in [(1000usize, 3u8), (20_000, 6), (50_000, 0)] {
            enc[i] ^= 1 << bit;
        }
        let (out, report) = arc_secded_decode(&enc, 2).unwrap();
        assert_eq!(out, data);
        assert!(report.correction.corrected_bits >= 3);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(arc_parity_encode(&[1, 2, 3], 0, 1).is_err());
        assert!(arc_reed_solomon_encode(&[1, 2, 3], 200, 100, 1).is_err());
    }

    #[test]
    fn table_1_is_complete() {
        assert_eq!(ENGINE_FUNCTIONS.len(), 11);
        assert!(ENGINE_FUNCTIONS.iter().all(|f| f.ends_with("()")));
    }
}
