//! The ARC Interface (§5.1): `arc_init` → `arc_encode`/`arc_decode` →
//! `arc_close`, in idiomatic Rust clothing.
//!
//! [`ArcContext::init`] is `arc_init()`: it loads the cached training
//! table, measures any missing configuration × thread points, and leaves
//! the context ready to encode any `&[u8]`. [`ArcContext::encode`] is
//! `arc_encode()` with the three optional constraints;
//! [`ArcContext::decode`] is `arc_decode()`, returning the repaired bytes
//! or raising when damage exceeds the chosen code's ability.
//! [`ArcContext::close`] is `arc_close()`, persisting refreshed throughput
//! estimates. Dropping the context saves too, so forgetting `close` costs
//! nothing but determinism of the save timing.

use std::path::PathBuf;

use parking_lot::RwLock;

use arc_ecc::codec::CorrectionReport;
use arc_ecc::parallel::DEFAULT_CHUNK_SIZE;
use arc_ecc::{EccConfig, EccScheme, ParallelCodec};

use crate::constraints::EncodeRequest;
use crate::container::{self, ContainerMeta};
use crate::error::ArcError;
use crate::optimizer::{joint_optimizer, Selection};
use crate::training::{train, TrainingOptions, TrainingStats, TrainingTable};

/// Pass as `max_threads` (or any `threads` argument) to let ARC use every
/// available core (`ARC_ANY_THREADS`). Re-exported from
/// [`arc_ecc::parallel`], where the sentinel is resolved exactly once at
/// codec construction.
pub use arc_ecc::parallel::ANY_THREADS;

/// Options for [`ArcContext::init`].
#[derive(Debug, Clone)]
pub struct ArcOptions {
    /// Resource cap on worker threads; [`ANY_THREADS`] removes the cap.
    pub max_threads: usize,
    /// Training-cache location; `None` disables persistence.
    pub cache_path: Option<PathBuf>,
    /// Training probe sizes and configuration space.
    pub training: TrainingOptions,
    /// Chunk granularity for the parallel codecs.
    pub chunk_size: usize,
}

impl Default for ArcOptions {
    fn default() -> Self {
        ArcOptions {
            max_threads: ANY_THREADS,
            cache_path: default_cache_path(),
            training: TrainingOptions::default(),
            chunk_size: DEFAULT_CHUNK_SIZE,
        }
    }
}

/// Default cache location: `$ARC_CACHE_DIR/training.tsv`, else
/// `~/.cache/arc-rs/training.tsv` ("ARC checks its installation directory
/// for a cache of previously saved configurations", §5.1).
pub fn default_cache_path() -> Option<PathBuf> {
    if let Ok(dir) = std::env::var("ARC_CACHE_DIR") {
        return Some(PathBuf::from(dir).join("training.tsv"));
    }
    std::env::var_os("HOME")
        .map(|home| PathBuf::from(home).join(".cache").join("arc-rs").join("training.tsv"))
}

/// What [`ArcContext::decode`] reports alongside the repaired data.
#[derive(Debug, Clone, PartialEq)]
pub struct ArcDecodeReport {
    /// Identifier of the scheme that had protected the data.
    pub scheme_id: String,
    /// The built-in configuration, when the id names one (None for custom
    /// extension schemes).
    pub config: Option<EccConfig>,
    /// Repairs performed on the payload.
    pub correction: CorrectionReport,
    /// True when the primary header copy was unusable.
    pub used_backup_header: bool,
    /// Header bytes the RS codeword repaired.
    pub header_symbols_corrected: usize,
    /// How the shard index was recovered (v2 sharded containers only).
    pub index_repair: Option<container::IndexRepair>,
}

/// An initialized ARC instance.
pub struct ArcContext {
    max_threads: usize,
    chunk_size: usize,
    space: Vec<EccConfig>,
    table: RwLock<TrainingTable>,
    cache_path: Option<PathBuf>,
    training_stats: TrainingStats,
    closed: bool,
}

impl std::fmt::Debug for ArcContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcContext")
            .field("max_threads", &self.max_threads)
            .field("chunk_size", &self.chunk_size)
            .field("configs", &self.space.len())
            .field("trained_points", &self.table.read().len())
            .finish()
    }
}

impl ArcContext {
    /// `arc_init()`: load the cache, train missing configurations, return a
    /// ready context.
    pub fn init(options: ArcOptions) -> Result<ArcContext, ArcError> {
        let max_threads = arc_ecc::parallel::resolve_threads(options.max_threads);
        let mut table = match &options.cache_path {
            Some(p) => TrainingTable::load_or_default(p),
            None => TrainingTable::new(),
        };
        let stats = train(&mut table, max_threads, &options.training)?;
        let ctx = ArcContext {
            max_threads,
            chunk_size: options.chunk_size,
            space: options.training.space.clone(),
            table: RwLock::new(table),
            cache_path: options.cache_path,
            training_stats: stats,
            closed: false,
        };
        ctx.save_cache()?;
        Ok(ctx)
    }

    /// The resolved thread cap.
    pub fn max_threads(&self) -> usize {
        self.max_threads
    }

    /// Statistics from this init's training run (Fig 6's axes).
    pub fn training_stats(&self) -> TrainingStats {
        self.training_stats
    }

    /// A snapshot of the trained throughput table.
    pub fn training_table(&self) -> TrainingTable {
        self.table.read().clone()
    }

    /// The configuration space in use.
    pub fn config_space(&self) -> &[EccConfig] {
        &self.space
    }

    /// Run the optimizer without encoding (`arc_joint_optimizer()` and
    /// friends; "the user can ignore these suggestions for any reason").
    pub fn select(&self, request: &EncodeRequest) -> Result<Selection, ArcError> {
        joint_optimizer(&self.table.read(), &self.space, request, self.max_threads)
    }

    /// `arc_encode()`: choose a configuration under the constraints and
    /// protect `data`, returning the container and the selection made.
    pub fn encode(
        &self,
        data: &[u8],
        request: &EncodeRequest,
    ) -> Result<(Vec<u8>, Selection), ArcError> {
        let selection = self.select(request)?;
        let out = self.encode_with(data, selection.config, selection.threads)?;
        Ok((out, selection))
    }

    /// Engine-level encode with an explicit configuration and thread count
    /// (§5.2: "the user can ignore these suggestions").
    ///
    /// `threads` accepts [`ANY_THREADS`] (0), which here means "up to the
    /// context's thread cap"; explicit counts are likewise capped at
    /// `max_threads`. The whole container is allocated once and the payload
    /// is scatter-written in place after the header prefix; the timing fed
    /// back into the training table measures that real encode path.
    pub fn encode_with(
        &self,
        data: &[u8],
        config: EccConfig,
        threads: usize,
    ) -> Result<Vec<u8>, ArcError> {
        let _span = arc_telemetry::span("core.encode");
        let cap = self.max_threads.max(1);
        let threads = if threads == ANY_THREADS { cap } else { threads.min(cap) };
        let codec = ParallelCodec::with_chunk_size(config, threads, self.chunk_size)?;
        let meta = ContainerMeta {
            scheme_id: config.id(),
            chunk_size: self.chunk_size,
            data_len: data.len(),
            payload_len: codec.encoded_len(data.len()),
            data_crc: container::data_crc(data),
            sharding: None,
        };
        let hlen = container::header_len(&meta);
        // arc-lint: bounded(encode path; sized from the caller's own payload, not decoded input)
        let mut out = vec![0u8; hlen + meta.payload_len];
        container::write_header(&meta, &mut out[..hlen])?;
        let t0 = std::time::Instant::now();
        codec.encode_into(data, &mut out[hlen..]);
        let seconds = t0.elapsed().as_secs_f64();
        // Fold the observed throughput back into the table so estimates
        // stay current (§5.1: arc_close "update[s] all cached
        // configurations with up-to-date versions gathered during normal
        // ARC operations"). Skip degenerate timings.
        if seconds > 1e-4 && !data.is_empty() {
            let mbs = data.len() as f64 / 1e6 / seconds;
            let dec = self.table.read().get(&config, threads).map(|m| m.decode_mb_s);
            if let Some(dec) = dec {
                self.table.write().record(&config, threads, mbs, dec);
            }
        }
        Ok(out)
    }

    /// As [`ArcContext::encode`], but producing a v2 **sharded** container
    /// at [`container::DEFAULT_SHARD_SIZE`]: the optimizer picks the
    /// scheme, and the result supports random access via
    /// [`ArcContext::decode_range`] / [`crate::reader::ArcReader`].
    pub fn encode_sharded(
        &self,
        data: &[u8],
        request: &EncodeRequest,
    ) -> Result<(Vec<u8>, Selection), ArcError> {
        let selection = self.select(request)?;
        let out = self.encode_sharded_with(
            data,
            selection.config,
            selection.threads,
            container::DEFAULT_SHARD_SIZE,
        )?;
        Ok((out, selection))
    }

    /// Engine-level sharded encode with an explicit configuration, thread
    /// count, and shard size. `threads` follows the same cap rules as
    /// [`ArcContext::encode_with`].
    pub fn encode_sharded_with(
        &self,
        data: &[u8],
        config: EccConfig,
        threads: usize,
        shard_size: usize,
    ) -> Result<Vec<u8>, ArcError> {
        let _span = arc_telemetry::span("core.encode");
        let cap = self.max_threads.max(1);
        let threads = if threads == ANY_THREADS { cap } else { threads.min(cap) };
        let codec = ParallelCodec::with_chunk_size(config, threads, self.chunk_size)?;
        container::encode_sharded(data, &codec, &config.id(), shard_size)
    }

    /// `arc_decode()`: verify, repair if needed, and return the original
    /// byte array — or raise when the damage is uncorrectable (Fig 7b).
    pub fn decode(&self, bytes: &[u8]) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
        decode_with_threads(bytes, self.max_threads)
    }

    /// Random-access `arc_decode()`: decode only `offset..offset + len` of
    /// the original data, touching (and ECC-verifying) exactly the shards
    /// that cover the range. Works on v2 sharded containers at per-shard
    /// cost and on v1 containers as a single-shard full decode.
    ///
    /// Each call opens a fresh [`crate::reader::ArcReader`]; callers
    /// issuing many reads against one container should hold their own
    /// reader, whose LRU shard cache makes repeat reads cheap.
    pub fn decode_range(
        &self,
        bytes: &[u8],
        offset: usize,
        len: usize,
    ) -> Result<(Vec<u8>, crate::reader::RangeReport), ArcError> {
        let mut reader = crate::reader::ArcReader::open(bytes, self.max_threads)?;
        reader.decode_range(offset, len)
    }

    /// Zero-copy `arc_decode()`: repair the container's payload where it
    /// lies inside `bytes` and return the range holding the original data.
    /// See [`decode_in_place_with_threads`].
    pub fn decode_in_place(
        &self,
        bytes: &mut [u8],
    ) -> Result<(std::ops::Range<usize>, ArcDecodeReport), ArcError> {
        decode_in_place_with_threads(bytes, self.max_threads)
    }

    fn save_cache(&self) -> Result<(), ArcError> {
        if let Some(path) = &self.cache_path {
            self.table.read().save(path)?;
        }
        Ok(())
    }

    /// `arc_close()`: persist refreshed estimates and consume the context.
    pub fn close(mut self) -> Result<(), ArcError> {
        self.closed = true;
        if let Some(path) = &self.cache_path {
            self.table.read().save(path)?;
        }
        Ok(())
    }
}

impl Drop for ArcContext {
    fn drop(&mut self) {
        if !self.closed {
            if let Some(path) = &self.cache_path {
                let _ = self.table.read().save(path);
            }
        }
    }
}

/// Standalone decode (the container is self-describing, so decoding needs
/// no trained context — only a thread budget; [`ANY_THREADS`] uses every
/// core).
///
/// Copies the payload out of the borrowed container exactly once and
/// repairs it in place; use [`decode_in_place_with_threads`] to skip even
/// that copy when the container buffer is owned and expendable.
pub fn decode_with_threads(
    bytes: &[u8],
    threads: usize,
) -> Result<(Vec<u8>, ArcDecodeReport), ArcError> {
    let _span = arc_telemetry::span("core.decode");
    let unpacked = container::unpack(bytes)?;
    let meta = &unpacked.meta;
    let config = meta.builtin_config().ok_or_else(|| {
        ArcError::InvalidRequest(format!(
            "container uses extension scheme {:?}; decode it with \
             arc_core::extension::decode_with_registry",
            meta.scheme_id
        ))
    })?;
    // The original data is a subset of the ECC-encoded payload; a corrupt
    // data_len that slipped past the header codeword must not reach the
    // codec's length arithmetic.
    if meta.data_len > unpacked.payload.len() {
        return Err(ArcError::Corrupted(format!(
            "declared data length {} exceeds payload length {}",
            meta.data_len,
            unpacked.payload.len()
        )));
    }
    let codec = ParallelCodec::with_chunk_size(config, threads, meta.chunk_size)?;
    let (data, correction) = match &unpacked.index {
        Some(index) => decode_sharded_payload(&codec, unpacked.payload, index, meta.data_len)?,
        None => {
            let mut data = unpacked.payload.to_vec();
            let correction = codec.decode_in_place(&mut data, meta.data_len)?;
            data.truncate(meta.data_len);
            (data, correction)
        }
    };
    if container::data_crc(&data) != meta.data_crc {
        return Err(ArcError::Ecc(arc_ecc::EccError::Uncorrectable {
            scheme: config.name(),
            detail: "end-to-end CRC mismatch after ECC decode".into(),
        }));
    }
    Ok((
        data,
        ArcDecodeReport {
            scheme_id: meta.scheme_id.clone(),
            config: Some(config),
            correction,
            used_backup_header: unpacked.used_backup_header,
            header_symbols_corrected: unpacked.header_symbols_corrected,
            index_repair: unpacked.index.as_ref().map(|_| unpacked.index_repair),
        },
    ))
}

/// Decode every shard of a v2 payload into a fresh buffer, verifying each
/// shard's own CRC as it lands. The index has already been RS-verified,
/// but the per-shard geometry is still cross-checked against the codec so
/// a forged index can never drive out-of-contract length arithmetic.
///
/// Generic over the scheme so extension registries
/// ([`crate::extension::decode_with_registry`]) share the exact same
/// sharded-decode semantics as built-ins.
pub(crate) fn decode_sharded_payload<S: EccScheme>(
    codec: &ParallelCodec<S>,
    payload: &[u8],
    index: &container::ShardIndex,
    data_len: usize,
) -> Result<(Vec<u8>, CorrectionReport), ArcError> {
    // arc-lint: bounded(data_len <= unpacked.payload.len() checked by both callers)
    let mut data = vec![0u8; data_len];
    let mut merged = CorrectionReport::default();
    let mut scratch: Vec<u8> = Vec::new();
    let mut out_pos = 0usize;
    for (i, e) in index.entries.iter().enumerate() {
        check_shard_geometry(codec, e, i)?;
        let region = payload
            .get(e.offset..e.offset + e.encoded_len)
            .ok_or_else(|| ArcError::Corrupted(format!("shard {i}: region exceeds payload")))?;
        scratch.clear();
        scratch.extend_from_slice(region);
        let report = codec.decode_shard_in_place(&mut scratch, e.decoded_len)?;
        verify_shard_crc(codec, &scratch[..e.decoded_len], e.crc, i)?;
        data[out_pos..out_pos + e.decoded_len].copy_from_slice(&scratch[..e.decoded_len]);
        out_pos += e.decoded_len;
        merged.merge(&report);
    }
    Ok((data, merged))
}

/// A shard entry whose encoded length disagrees with the scheme's own
/// arithmetic is corrupt (the index is CRC+RS protected, so this is
/// defense in depth, not a hot path).
pub(crate) fn check_shard_geometry<S: EccScheme>(
    codec: &ParallelCodec<S>,
    e: &container::ShardEntry,
    shard: usize,
) -> Result<(), ArcError> {
    if e.encoded_len != codec.encoded_len(e.decoded_len) {
        return Err(ArcError::Corrupted(format!(
            "shard {shard}: encoded length {} inconsistent with scheme (expected {})",
            e.encoded_len,
            codec.encoded_len(e.decoded_len)
        )));
    }
    Ok(())
}

/// Per-shard end-to-end check, the sharded analogue of the whole-data CRC.
pub(crate) fn verify_shard_crc<S: EccScheme>(
    codec: &ParallelCodec<S>,
    decoded: &[u8],
    expect: u32,
    shard: usize,
) -> Result<(), ArcError> {
    if container::data_crc(decoded) != expect {
        return Err(ArcError::Ecc(arc_ecc::EccError::Uncorrectable {
            scheme: codec.config().name(),
            detail: format!("shard {shard}: end-to-end CRC mismatch after ECC decode"),
        }));
    }
    Ok(())
}

/// Zero-copy standalone decode: verify and repair the container's payload
/// where it lies inside `bytes`, returning the range of `bytes` that holds
/// the repaired original data alongside the usual report.
///
/// On the clean path nothing is copied or moved — the data bytes are
/// exactly where the encoder scatter-wrote them. On error the payload
/// region's contents are unspecified.
pub fn decode_in_place_with_threads(
    bytes: &mut [u8],
    threads: usize,
) -> Result<(std::ops::Range<usize>, ArcDecodeReport), ArcError> {
    let _span = arc_telemetry::span("core.decode");
    let (meta, payload_offset, used_backup_header, header_symbols_corrected, index, index_repair) = {
        let unpacked = container::unpack(bytes)?;
        (
            unpacked.meta,
            unpacked.payload_offset,
            unpacked.used_backup_header,
            unpacked.header_symbols_corrected,
            unpacked.index,
            unpacked.index_repair,
        )
    };
    let config = meta.builtin_config().ok_or_else(|| {
        ArcError::InvalidRequest(format!(
            "container uses extension scheme {:?}; decode it with \
             arc_core::extension::decode_with_registry",
            meta.scheme_id
        ))
    })?;
    // See decode_with_threads: bound data_len by the real payload before
    // any codec length arithmetic can see it.
    if meta.data_len > bytes.len() - payload_offset {
        return Err(ArcError::Corrupted(format!(
            "declared data length {} exceeds payload length {}",
            meta.data_len,
            bytes.len() - payload_offset
        )));
    }
    let codec = ParallelCodec::with_chunk_size(config, threads, meta.chunk_size)?;
    let correction = match &index {
        Some(index) => {
            // v2: repair every shard where it lies, then compact the
            // decoded prefixes left so the original data ends up
            // contiguous right after the header. Each destination start
            // never exceeds its source start (decoded ≤ encoded bytes,
            // cumulatively), so the overlapping copies are forward-safe.
            let payload = &mut bytes[payload_offset..payload_offset + meta.payload_len];
            let mut merged = CorrectionReport::default();
            let mut out_pos = 0usize;
            for (i, e) in index.entries.iter().enumerate() {
                check_shard_geometry(&codec, e, i)?;
                let region = &mut payload[e.offset..e.offset + e.encoded_len];
                let report = codec.decode_shard_in_place(region, e.decoded_len)?;
                verify_shard_crc(&codec, &region[..e.decoded_len], e.crc, i)?;
                payload.copy_within(e.offset..e.offset + e.decoded_len, out_pos);
                out_pos += e.decoded_len;
                merged.merge(&report);
            }
            merged
        }
        None => {
            let payload = &mut bytes[payload_offset..];
            codec.decode_in_place(payload, meta.data_len)?
        }
    };
    let data = &bytes[payload_offset..payload_offset + meta.data_len];
    if container::data_crc(data) != meta.data_crc {
        return Err(ArcError::Ecc(arc_ecc::EccError::Uncorrectable {
            scheme: config.name(),
            detail: "end-to-end CRC mismatch after ECC decode".into(),
        }));
    }
    Ok((
        payload_offset..payload_offset + meta.data_len,
        ArcDecodeReport {
            scheme_id: meta.scheme_id,
            config: Some(config),
            correction,
            used_backup_header,
            header_symbols_corrected,
            index_repair: index.as_ref().map(|_| index_repair),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constraints::{MemoryConstraint, ResiliencyConstraint, ThroughputConstraint};
    use arc_ecc::EccMethod;

    fn test_options(tag: &str) -> ArcOptions {
        let dir = std::env::temp_dir().join(format!("arc-iface-{}-{}", tag, std::process::id()));
        ArcOptions {
            max_threads: 2,
            cache_path: Some(dir.join("training.tsv")),
            training: TrainingOptions {
                sample_bytes: 32 << 10,
                rs_sample_bytes: 16 << 10,
                space: vec![
                    EccConfig::parity(8).unwrap(),
                    EccConfig::hamming(true),
                    EccConfig::secded(true),
                    EccConfig::rs(32, 8).unwrap(),
                ],
            },
            chunk_size: 16 << 10,
        }
    }

    fn payload(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 131) ^ (i >> 3)) as u8).collect()
    }

    #[test]
    fn init_encode_decode_close_lifecycle() {
        let ctx = ArcContext::init(test_options("lifecycle")).unwrap();
        assert!(ctx.training_stats().points_measured > 0);
        let data = payload(100_000);
        let (encoded, selection) = ctx.encode(&data, &EncodeRequest::default()).unwrap();
        assert!(encoded.len() > data.len());
        assert_eq!(selection.config.method(), EccMethod::Rs, "most robust by default");
        let (decoded, report) = ctx.decode(&encoded).unwrap();
        assert_eq!(decoded, data);
        assert!(report.correction.is_clean());
        ctx.close().unwrap();
    }

    #[test]
    fn second_init_reuses_cache() {
        let opts = test_options("cache-reuse");
        let ctx = ArcContext::init(opts.clone()).unwrap();
        let first_points = ctx.training_stats().points_measured;
        assert!(first_points > 0);
        ctx.close().unwrap();
        let ctx2 = ArcContext::init(opts).unwrap();
        assert_eq!(ctx2.training_stats().points_measured, 0, "fully cached");
        ctx2.close().unwrap();
    }

    #[test]
    fn encode_respects_memory_constraint() {
        let ctx = ArcContext::init(test_options("memcap")).unwrap();
        let data = payload(200_000);
        let req = EncodeRequest {
            memory: MemoryConstraint::Fraction(0.15),
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::Any,
        };
        let (encoded, selection) = ctx.encode(&data, &req).unwrap();
        assert!(selection.overhead <= 0.15);
        // Whole-container overhead stays near the configured rate (header
        // and CRC tables add a small constant).
        let actual = (encoded.len() - data.len()) as f64 / data.len() as f64;
        assert!(actual <= 0.17, "actual container overhead {actual}");
    }

    #[test]
    fn corrupted_container_is_repaired_end_to_end() {
        let ctx = ArcContext::init(test_options("repair")).unwrap();
        let data = payload(50_000);
        let req = EncodeRequest {
            memory: MemoryConstraint::Any,
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
        };
        let (mut encoded, _) = ctx.encode(&data, &req).unwrap();
        // A scattered handful of single-bit soft errors.
        for bit in [999u64, 40_001, 200_003, 399_990] {
            let idx = (bit / 8) as usize % encoded.len();
            encoded[idx] ^= 1 << (bit % 8);
        }
        let (decoded, report) = ctx.decode(&encoded).unwrap();
        assert_eq!(decoded, data);
        assert!(!report.correction.is_clean());
    }

    #[test]
    fn detection_only_scheme_raises_on_damage() {
        let ctx = ArcContext::init(test_options("raise")).unwrap();
        let data = payload(20_000);
        let encoded = ctx.encode_with(&data, EccConfig::parity(8).unwrap(), 1).unwrap();
        let mut bad = encoded.clone();
        let target = bad.len() / 2;
        bad[target] ^= 0x01;
        match ctx.decode(&bad) {
            Err(ArcError::Ecc(_)) | Err(ArcError::Corrupted(_)) => {}
            other => panic!("expected raised error, got {other:?}"),
        }
    }

    #[test]
    fn decode_in_place_returns_data_range() {
        let ctx = ArcContext::init(test_options("inplace")).unwrap();
        let data = payload(30_000);
        let (mut encoded, _) = ctx.encode(&data, &EncodeRequest::default()).unwrap();
        let (range, report) = ctx.decode_in_place(&mut encoded).unwrap();
        assert!(report.correction.is_clean());
        assert_eq!(&encoded[range], &data[..]);
    }

    #[test]
    fn decode_in_place_repairs_damage() {
        let ctx = ArcContext::init(test_options("inplace-repair")).unwrap();
        let data = payload(30_000);
        let mut encoded = ctx.encode_with(&data, EccConfig::secded(true), 2).unwrap();
        let mid = encoded.len() / 2;
        encoded[mid] ^= 0x10;
        let (range, report) = decode_in_place_with_threads(&mut encoded, 2).unwrap();
        assert!(!report.correction.is_clean());
        assert_eq!(&encoded[range], &data[..]);
    }

    #[test]
    fn decode_needs_no_context() {
        let ctx = ArcContext::init(test_options("ctxfree")).unwrap();
        let data = payload(10_000);
        let (encoded, _) = ctx.encode(&data, &EncodeRequest::default()).unwrap();
        drop(ctx);
        let (decoded, _) = decode_with_threads(&encoded, 2).unwrap();
        assert_eq!(decoded, data);
    }

    #[test]
    fn empty_input_round_trips() {
        let ctx = ArcContext::init(test_options("empty")).unwrap();
        let (encoded, _) = ctx.encode(&[], &EncodeRequest::default()).unwrap();
        let (decoded, _) = ctx.decode(&encoded).unwrap();
        assert!(decoded.is_empty());
    }

    #[test]
    fn four_line_integration_matches_algorithm_1() {
        // Algorithm 1's shape: init → encode → decode → close.
        let data = payload(4_096);
        let ctx = ArcContext::init(test_options("algo1")).unwrap(); // arc_init
        let (encoded, _) = ctx.encode(&data, &EncodeRequest::default()).unwrap(); // arc_encode
        let (decoded, _) = ctx.decode(&encoded).unwrap(); // arc_decode
        ctx.close().unwrap(); // arc_close
        assert_eq!(decoded, data);
    }
}
