//! Encoding optimization: pick the ECC configuration and thread count that
//! best satisfy the user's constraints (§5.1, Figures 11–12).
//!
//! Selection follows the paper's stated policy:
//!
//! 1. the resiliency constraint filters the configuration space;
//! 2. among admitted configurations, prefer those whose storage overhead is
//!    *under but closest to* the memory constraint and whose measured
//!    throughput is *above but closest to* the throughput constraint;
//! 3. when nothing satisfies both, fall back to the configuration closest
//!    to the memory budget (possibly over it — a warning is attached, as
//!    ARC "display[s] a warning and use[s] the … configuration that results
//!    in the lowest memory overhead possible");
//! 4. with no constraints at all, ARC "provide[s] the most robust ECC
//!    configuration" — the strongest (highest-overhead) admitted one.

use arc_ecc::{EccConfig, EccScheme};

use crate::constraints::{
    EncodeRequest, MemoryConstraint, ResiliencyConstraint, ThroughputConstraint,
};
use crate::error::ArcError;
use crate::training::TrainingTable;

/// The optimizer's decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Chosen ECC configuration.
    pub config: EccConfig,
    /// Thread count to run it at.
    pub threads: usize,
    /// Predicted encode throughput (from training) in MB/s.
    pub predicted_encode_mb_s: f64,
    /// Predicted decode throughput in MB/s.
    pub predicted_decode_mb_s: f64,
    /// Asymptotic storage overhead of the configuration.
    pub overhead: f64,
    /// True when the selection exceeds the memory budget.
    pub over_budget: bool,
    /// True when the selection cannot reach the throughput floor.
    pub under_throughput: bool,
    /// Human-readable notes (the paper's "warnings").
    pub notes: Vec<String>,
}

/// A candidate with its best thread choice resolved.
#[derive(Debug, Clone)]
struct Candidate {
    config: EccConfig,
    overhead: f64,
    threads: usize,
    encode_mb_s: f64,
    decode_mb_s: f64,
    meets_bw: bool,
}

/// Resolve the thread choice for one configuration: the *fewest* threads
/// whose measured throughput clears the floor (fewer threads reduce ARC's
/// impact on contended nodes, §6.2); with no floor, the fastest measured
/// point is used.
fn resolve_threads(
    table: &TrainingTable,
    config: &EccConfig,
    max_threads: usize,
    bw: &ThroughputConstraint,
) -> Option<(usize, f64, f64, bool)> {
    let mut points: Vec<(usize, f64, f64)> = table
        .thread_counts(config)
        .into_iter()
        .filter(|&t| t <= max_threads)
        .filter_map(|t| table.get(config, t).map(|m| (t, m.encode_mb_s, m.decode_mb_s)))
        .collect();
    if points.is_empty() {
        return None;
    }
    points.sort_by_key(|&(t, _, _)| t);
    match bw {
        ThroughputConstraint::Any => {
            // No floor: take the fastest measured point.
            let best = points.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1))?;
            Some((best.0, best.1, best.2, true))
        }
        ThroughputConstraint::MbPerS(floor) => {
            if let Some(&(t, e, d)) = points.iter().find(|&&(_, e, _)| e >= *floor) {
                Some((t, e, d, true))
            } else {
                let best = points.iter().cloned().max_by(|a, b| a.1.total_cmp(&b.1))?;
                Some((best.0, best.1, best.2, false))
            }
        }
    }
}

/// The joint optimizer (`arc_joint_optimizer()`); the memory-only and
/// throughput-only entry points below delegate here.
pub fn joint_optimizer(
    table: &TrainingTable,
    space: &[EccConfig],
    request: &EncodeRequest,
    max_threads: usize,
) -> Result<Selection, ArcError> {
    joint_optimizer_with(table, space, request, max_threads, |_| true)
}

/// [`joint_optimizer`] with an additional *custom constraint*: an arbitrary
/// predicate over candidate configurations, applied after the standard
/// resiliency filter. This is the "custom constraints" half of the paper's
/// future-work extension API (§7) — e.g. "only configurations whose parity
/// fits my burst-buffer stripe" becomes a closure.
pub fn joint_optimizer_with(
    table: &TrainingTable,
    space: &[EccConfig],
    request: &EncodeRequest,
    max_threads: usize,
    custom: impl Fn(&EccConfig) -> bool,
) -> Result<Selection, ArcError> {
    request.validate().map_err(ArcError::InvalidRequest)?;
    let mut admitted = request.resiliency.filter(space);
    admitted.retain(|c| custom(c));
    if admitted.is_empty() {
        return Err(ArcError::NoCandidates(format!(
            "resiliency constraint {:?} admits no configuration",
            request.resiliency
        )));
    }
    let mut candidates: Vec<Candidate> = Vec::new();
    for config in &admitted {
        if let Some((threads, enc, dec, meets_bw)) =
            resolve_threads(table, config, max_threads, &request.throughput)
        {
            candidates.push(Candidate {
                config: *config,
                overhead: config.storage_overhead(),
                threads,
                encode_mb_s: enc,
                decode_mb_s: dec,
                meets_bw,
            });
        }
    }
    if candidates.is_empty() {
        return Err(ArcError::NotTrained);
    }
    let mut notes = Vec::new();
    let chosen: Candidate = match (&request.memory, &request.throughput) {
        (MemoryConstraint::Fraction(f), _) => {
            let in_budget: Vec<&Candidate> =
                candidates.iter().filter(|c| c.overhead <= *f).collect();
            let feasible: Vec<&Candidate> =
                in_budget.iter().copied().filter(|c| c.meets_bw).collect();
            if let Some(best) = feasible.iter().max_by(|a, b| a.overhead.total_cmp(&b.overhead)) {
                (*best).clone()
            } else if let Some(best) =
                in_budget.iter().max_by(|a, b| a.encode_mb_s.total_cmp(&b.encode_mb_s))
            {
                notes.push(format!(
                    "no in-budget configuration reaches the throughput floor; \
                     using {} at {:.2} MB/s",
                    best.config, best.encode_mb_s
                ));
                (*best).clone()
            } else if let Some(best) = candidates
                .iter()
                .min_by(|a, b| (a.overhead - f).abs().total_cmp(&(b.overhead - f).abs()))
            {
                // Nothing fits the budget at all: closest overhead wins and
                // a warning is attached (Fig 12a's RS-at-0.05 case).
                notes.push(format!(
                    "memory constraint {f} is below every admitted configuration; \
                     going over budget with {} ({:.3})",
                    best.config, best.overhead
                ));
                best.clone()
            } else {
                // Unreachable (candidates is non-empty above), but the
                // optimizer must degrade, never abort.
                return Err(ArcError::NotTrained);
            }
        }
        (MemoryConstraint::Any, ThroughputConstraint::MbPerS(floor)) => {
            let feasible: Vec<&Candidate> = candidates.iter().filter(|c| c.meets_bw).collect();
            if let Some(best) = feasible
                .iter()
                .min_by(|a, b| (a.encode_mb_s - floor).total_cmp(&(b.encode_mb_s - floor)))
            {
                // Above but closest to the floor — the strongest protection
                // that still keeps pace (Fig 11b).
                (*best).clone()
            } else if let Some(best) =
                candidates.iter().max_by(|a, b| a.encode_mb_s.total_cmp(&b.encode_mb_s))
            {
                notes.push(format!(
                    "no admitted configuration reaches {floor} MB/s; \
                     best effort is {} at {:.2} MB/s",
                    best.config, best.encode_mb_s
                ));
                best.clone()
            } else {
                // Unreachable (candidates is non-empty above), but the
                // optimizer must degrade, never abort.
                return Err(ArcError::NotTrained);
            }
        }
        (MemoryConstraint::Any, ThroughputConstraint::Any) => {
            match &request.resiliency {
                // A concrete error-rate requirement: every admitted
                // configuration already provides adequate protection. At
                // low rates the paper prefers SEC-DED over Reed-Solomon
                // (§6.3: 1 error/MB selects "SEC-DED to every eight
                // bytes"), so take the fastest SEC-DED when one is
                // admitted, otherwise the fastest Reed-Solomon.
                ResiliencyConstraint::ErrorsPerMb(r) if *r > 0.0 => {
                    let fastest = |m: arc_ecc::EccMethod| {
                        candidates
                            .iter()
                            .filter(|c| c.config.method() == m)
                            .max_by(|a, b| a.encode_mb_s.total_cmp(&b.encode_mb_s))
                    };
                    // A custom constraint can admit neither SEC-DED nor
                    // Reed-Solomon; fall back to the most robust candidate
                    // rather than aborting the selection.
                    match fastest(arc_ecc::EccMethod::SecDed)
                        .or_else(|| fastest(arc_ecc::EccMethod::Rs))
                        .or_else(|| {
                            candidates.iter().max_by(|a, b| a.overhead.total_cmp(&b.overhead))
                        }) {
                        Some(best) => best.clone(),
                        None => return Err(ArcError::NotTrained),
                    }
                }
                // Otherwise: the most robust admitted configuration
                // (Algorithm 1's ARC_ANY_* defaults "provide the most
                // robust ECC configuration").
                _ => match candidates.iter().max_by(|a, b| a.overhead.total_cmp(&b.overhead)) {
                    Some(best) => best.clone(),
                    None => return Err(ArcError::NotTrained),
                },
            }
        }
    };
    let over_budget = match request.memory {
        MemoryConstraint::Fraction(f) => chosen.overhead > f,
        MemoryConstraint::Any => false,
    };
    let under_throughput = match request.throughput {
        ThroughputConstraint::MbPerS(floor) => chosen.encode_mb_s < floor,
        ThroughputConstraint::Any => false,
    };
    arc_telemetry::counter_add("core.optimizer.decisions", 1);
    arc_telemetry::event("core.optimizer.select", || {
        format!(
            "config={} threads={} predicted_encode_mb_s={:.1} overhead={:.4} \
             over_budget={over_budget} under_throughput={under_throughput}",
            chosen.config.id(),
            chosen.threads,
            chosen.encode_mb_s,
            chosen.overhead,
        )
    });
    Ok(Selection {
        config: chosen.config,
        threads: chosen.threads,
        predicted_encode_mb_s: chosen.encode_mb_s,
        predicted_decode_mb_s: chosen.decode_mb_s,
        overhead: chosen.overhead,
        over_budget,
        under_throughput,
        notes,
    })
}

/// `arc_memory_optimizer()`: memory + resiliency constraints only.
pub fn memory_optimizer(
    table: &TrainingTable,
    space: &[EccConfig],
    resiliency: &ResiliencyConstraint,
    memory: MemoryConstraint,
    max_threads: usize,
) -> Result<Selection, ArcError> {
    joint_optimizer(
        table,
        space,
        &EncodeRequest {
            memory,
            throughput: ThroughputConstraint::Any,
            resiliency: resiliency.clone(),
        },
        max_threads,
    )
}

/// `arc_throughput_optimizer()`: throughput + resiliency constraints only.
pub fn throughput_optimizer(
    table: &TrainingTable,
    space: &[EccConfig],
    resiliency: &ResiliencyConstraint,
    throughput: ThroughputConstraint,
    max_threads: usize,
) -> Result<Selection, ArcError> {
    joint_optimizer(
        table,
        space,
        &EncodeRequest {
            memory: MemoryConstraint::Any,
            throughput,
            resiliency: resiliency.clone(),
        },
        max_threads,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_ecc::EccMethod;

    /// A synthetic training table with paper-like throughput ordering:
    /// parity ≫ hamming > secded ≫ rs, all scaling with threads.
    fn synthetic_table(space: &[EccConfig], max_threads: usize) -> TrainingTable {
        let mut table = TrainingTable::new();
        for cfg in space {
            let base = match cfg {
                EccConfig::Parity(_) => 200.0,
                EccConfig::Hamming(_) => 12.0,
                EccConfig::SecDed(_) => 9.0,
                EccConfig::Rs(rs) => 40.0 / rs.m as f64,
            };
            for &t in &crate::training::thread_ladder(max_threads) {
                let speedup = t as f64 * 0.9;
                table.record(cfg, t, base * speedup, base * speedup * 1.5);
            }
        }
        table
    }

    fn space() -> Vec<EccConfig> {
        EccConfig::standard_space()
    }

    #[test]
    fn memory_constraint_fills_budget_from_below() {
        let space = space();
        let table = synthetic_table(&space, 40);
        for target in [0.05, 0.2, 0.5, 0.9] {
            let sel = memory_optimizer(
                &table,
                &space,
                &ResiliencyConstraint::Any,
                MemoryConstraint::Fraction(target),
                40,
            )
            .unwrap();
            assert!(sel.overhead <= target, "target {target}: overhead {}", sel.overhead);
            assert!(!sel.over_budget);
            // Best fill: no admitted config fits better.
            for c in &space {
                let o = c.storage_overhead();
                assert!(o > target || o <= sel.overhead, "{c} fits better");
            }
        }
    }

    #[test]
    fn paper_fig11a_case_02_selects_rs_near_195() {
        // Memory constraint 0.2 → an RS configuration near 19.5% overhead.
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = memory_optimizer(
            &table,
            &space,
            &ResiliencyConstraint::Any,
            MemoryConstraint::Fraction(0.2),
            40,
        )
        .unwrap();
        assert_eq!(sel.config.method(), EccMethod::Rs);
        assert!((0.15..=0.2).contains(&sel.overhead), "overhead {}", sel.overhead);
    }

    #[test]
    fn throughput_constraint_picks_above_but_closest() {
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = throughput_optimizer(
            &table,
            &space,
            &ResiliencyConstraint::Any,
            ThroughputConstraint::MbPerS(50.0),
            40,
        )
        .unwrap();
        assert!(sel.predicted_encode_mb_s >= 50.0);
        assert!(!sel.under_throughput);
        // It should not have picked something wildly faster than needed.
        assert!(sel.predicted_encode_mb_s < 500.0, "{}", sel.predicted_encode_mb_s);
    }

    #[test]
    fn joint_conflict_prefers_meeting_throughput() {
        // Paper's §6.2 example: memory 1.0 + throughput 100 MB/s → RS fits
        // the budget but cannot keep pace, so SEC-DED (or faster) wins.
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = joint_optimizer(
            &table,
            &space,
            &EncodeRequest {
                memory: MemoryConstraint::Fraction(1.0),
                throughput: ThroughputConstraint::MbPerS(100.0),
                resiliency: ResiliencyConstraint::Any,
            },
            40,
        )
        .unwrap();
        assert_ne!(sel.config.method(), EccMethod::Rs);
        assert!(sel.predicted_encode_mb_s >= 100.0);
    }

    #[test]
    fn impossible_memory_budget_goes_over_with_warning() {
        // Fig 12a: RS-only with a 0.05 budget cannot fit (smallest RS point
        // here is ~1%) — wait, the standard space includes 1% RS, so force
        // the conflict with a stronger response constraint and tiny budget.
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = joint_optimizer(
            &table,
            &space,
            &EncodeRequest {
                memory: MemoryConstraint::Fraction(0.001),
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::Methods(vec![EccMethod::Rs]),
            },
            40,
        )
        .unwrap();
        assert!(sel.over_budget);
        assert!(!sel.notes.is_empty());
        assert_eq!(sel.config.method(), EccMethod::Rs);
        // Lowest possible overhead was chosen.
        let min_rs = space
            .iter()
            .filter(|c| c.method() == EccMethod::Rs)
            .map(|c| c.storage_overhead())
            .fold(f64::INFINITY, f64::min);
        assert!((sel.overhead - min_rs).abs() < 1e-12);
    }

    #[test]
    fn unconstrained_request_picks_most_robust() {
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = joint_optimizer(&table, &space, &EncodeRequest::default(), 40).unwrap();
        assert_eq!(sel.config.method(), EccMethod::Rs);
        let max_overhead = space.iter().map(|c| c.storage_overhead()).fold(0.0f64, f64::max);
        assert!((sel.overhead - max_overhead).abs() < 1e-12);
    }

    #[test]
    fn fewest_threads_meeting_floor_are_used() {
        let space = vec![EccConfig::secded(true)];
        let table = synthetic_table(&space, 40);
        // secded base 9.0: 1 thread = 8.1 MB/s, 2 = 16.2, 4 = 32.4 …
        let sel = throughput_optimizer(
            &table,
            &space,
            &ResiliencyConstraint::Any,
            ThroughputConstraint::MbPerS(30.0),
            40,
        )
        .unwrap();
        assert_eq!(sel.threads, 4, "picked {} threads", sel.threads);
    }

    #[test]
    fn resiliency_constraint_is_hard() {
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = joint_optimizer(
            &table,
            &space,
            &EncodeRequest {
                memory: MemoryConstraint::Fraction(0.9),
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::Methods(vec![EccMethod::Parity]),
            },
            40,
        )
        .unwrap();
        assert_eq!(sel.config.method(), EccMethod::Parity);
    }

    #[test]
    fn errors_per_mb_unconstrained_selects_fast_adequate_scheme() {
        // §6.3: a 1-error-per-MB constraint with no storage/throughput
        // limits selects SEC-DED (fast, adequate), not maximal RS.
        let space = space();
        let table = synthetic_table(&space, 40);
        let sel = joint_optimizer(
            &table,
            &space,
            &EncodeRequest {
                memory: MemoryConstraint::Any,
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
            },
            40,
        )
        .unwrap();
        assert_eq!(sel.config.method(), EccMethod::SecDed, "picked {}", sel.config);
    }

    #[test]
    fn empty_table_errors() {
        let space = space();
        let table = TrainingTable::new();
        assert!(matches!(
            joint_optimizer(&table, &space, &EncodeRequest::default(), 4),
            Err(ArcError::NotTrained)
        ));
    }

    #[test]
    fn unsatisfiable_resiliency_errors() {
        let space = vec![EccConfig::parity(8).unwrap()];
        let table = synthetic_table(&space, 4);
        let err = joint_optimizer(
            &table,
            &space,
            &EncodeRequest {
                memory: MemoryConstraint::Any,
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
            },
            4,
        )
        .unwrap_err();
        assert!(matches!(err, ArcError::NoCandidates(_)));
    }

    #[test]
    fn max_threads_caps_thread_choice() {
        let space = vec![EccConfig::hamming(true)];
        let table = synthetic_table(&space, 40);
        let sel = throughput_optimizer(
            &table,
            &space,
            &ResiliencyConstraint::Any,
            ThroughputConstraint::MbPerS(1e6),
            8,
        )
        .unwrap();
        assert!(sel.threads <= 8);
        assert!(sel.under_throughput);
    }
}
