//! ARC's self-describing container format.
//!
//! `arc_decode()` receives nothing but a byte array, so the container must
//! carry the ECC configuration, chunk size, and lengths — and those fields
//! must survive the very soft errors ARC exists to protect against. The
//! header is therefore wrapped in a Reed-Solomon codeword with 32 parity
//! symbols (correcting 16 unknown-position byte errors on its own) and
//! stored **twice**; the 2-byte codeword-length prefix is stored three
//! times and majority-voted.
//!
//! Two container versions share the magic and the hardened header:
//!
//! **v1 — monolithic** (version byte `1`): the payload is one
//! chunk-parallel ECC encoding of the user's byte array.
//!
//! ```text
//! ┌─────────────┬───────────────┬───────────────┬─────────────┐
//! │ len ×3 (u16)│ header RS cw  │ header RS cw  │   payload   │
//! └─────────────┴───────────────┴───────────────┴─────────────┘
//! ```
//!
//! **v2 — sharded** (version byte `2`): the payload is split into
//! fixed-size shards, each independently ECC'd and independently
//! decodable, followed by a shard index that is RS-protected and stored
//! **three** times (bytewise majority vote as the last resort). The index
//! is the highest-consequence metadata in the container — losing it means
//! losing random access for every shard — so it gets strictly harder
//! protection than the bulk payload, the same discipline the header
//! already follows.
//!
//! ```text
//! ┌─────────────┬───────────┬───────────┬────────────────┬─────────┬─────────┬─────────┐
//! │ len ×3 (u16)│ header cw │ header cw │ shard payloads │ index ×1│ index ×2│ index ×3│
//! └─────────────┴───────────┴───────────┴────────────────┴─────────┴─────────┴─────────┘
//! ```
//!
//! The header additionally carries a CRC-32 of the *original* data, giving
//! end-to-end detection even for damage an ECC scheme can miss; v2 adds a
//! per-shard CRC-32 to the index so each shard is end-to-end checkable on
//! its own, which is what makes `decode_range` trustworthy without
//! touching the rest of the container.

use arc_ecc::crc::crc32;
use arc_ecc::{EccScheme, ParallelCodec, RsCodeword};

use arc_ecc::EccConfig;

use crate::error::ArcError;

/// Container magic.
pub const MAGIC: &[u8; 4] = b"ARC1";
/// Container format version for monolithic (v1) containers.
pub const VERSION: u8 = 1;
/// Container format version for sharded (v2) containers.
pub const VERSION_SHARDED: u8 = 2;
/// Parity symbols protecting the header codeword.
pub const HEADER_NSYM: usize = 32;
/// Parity symbols protecting each RS codeword of the shard index.
pub const INDEX_NSYM: usize = 32;
/// Default shard size for the sharded encode paths (4 MiB): small enough
/// that a tile read touches a sliver of a large field, large enough that
/// per-shard index overhead stays negligible.
pub const DEFAULT_SHARD_SIZE: usize = 4 << 20;

/// Serialized size of one shard-index entry: offset `u64`, encoded length
/// `u32`, decoded length `u32`, CRC-32 `u32`, scheme slot `u8` (reserved,
/// always 0 — every v2 container currently uses one scheme for all
/// shards).
pub(crate) const INDEX_ENTRY_BYTES: usize = 21;

/// Sharding parameters carried by a v2 header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardingMeta {
    /// Decoded bytes per shard (every shard but the last holds exactly
    /// this many; the last holds the remainder).
    pub shard_size: usize,
    /// Length in bytes of ONE RS-encoded copy of the shard index; three
    /// copies follow the payload back to back.
    pub index_len: usize,
}

/// Decoded header contents.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerMeta {
    /// Identifier of the scheme that encoded the payload: a built-in
    /// [`EccConfig`] id (`"secded:64"`, `"rs:223:32"`, …) or a custom
    /// extension id (`"x:<name>"`, see `arc_core::extension`).
    pub scheme_id: String,
    /// Chunk size the parallel codec used.
    pub chunk_size: usize,
    /// Original (unencoded) data length in bytes.
    pub data_len: usize,
    /// Encoded payload length in bytes.
    pub payload_len: usize,
    /// CRC-32 of the original data (end-to-end check).
    pub data_crc: u32,
    /// Sharding parameters; `None` for monolithic v1 containers.
    pub sharding: Option<ShardingMeta>,
}

impl ContainerMeta {
    /// Built-in configuration, when the id parses as one.
    pub fn builtin_config(&self) -> Option<EccConfig> {
        EccConfig::parse_id(&self.scheme_id).ok()
    }
}

/// One shard's entry in the v2 index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardEntry {
    /// Byte offset of the shard's encoded region within the payload.
    pub offset: usize,
    /// Encoded (ECC'd) length of the shard in bytes.
    pub encoded_len: usize,
    /// Decoded (original) length of the shard in bytes.
    pub decoded_len: usize,
    /// CRC-32 of the shard's original bytes (per-shard end-to-end check).
    pub crc: u32,
}

/// The recovered v2 shard index.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ShardIndex {
    /// Entries in payload order; offsets are contiguous from 0.
    pub entries: Vec<ShardEntry>,
}

impl ShardIndex {
    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.entries.len()
    }

    /// Cumulative decoded start offset of every shard (monotone,
    /// `entries.len()` values). Shard `i` holds decoded bytes
    /// `starts[i] .. starts[i] + entries[i].decoded_len`.
    pub fn decoded_starts(&self) -> Vec<usize> {
        let mut starts = Vec::with_capacity(self.entries.len());
        let mut pos = 0usize;
        for e in &self.entries {
            starts.push(pos);
            pos += e.decoded_len;
        }
        starts
    }
}

/// How the shard index was recovered during [`unpack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IndexRepair {
    /// Index bytes repaired by the RS codewords of the winning copy.
    pub symbols_corrected: usize,
    /// Which of the three copies decoded (0-based); meaningless when
    /// `majority_voted` is set.
    pub copy_used: usize,
    /// True when no single copy decoded and the bytewise majority vote of
    /// all three copies was needed.
    pub majority_voted: bool,
}

fn serialize_header(meta: &ContainerMeta) -> Vec<u8> {
    let id = &meta.scheme_id;
    let mut out = Vec::with_capacity(56 + id.len());
    out.extend_from_slice(MAGIC);
    out.push(if meta.sharding.is_some() { VERSION_SHARDED } else { VERSION });
    out.push(id.len() as u8);
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&(meta.chunk_size as u64).to_le_bytes());
    out.extend_from_slice(&(meta.data_len as u64).to_le_bytes());
    out.extend_from_slice(&(meta.payload_len as u64).to_le_bytes());
    if let Some(sh) = &meta.sharding {
        out.extend_from_slice(&(sh.shard_size as u64).to_le_bytes());
        out.extend_from_slice(&(sh.index_len as u64).to_le_bytes());
    }
    out.extend_from_slice(&meta.data_crc.to_le_bytes());
    out
}

pub(crate) fn parse_header(bytes: &[u8]) -> Result<ContainerMeta, ArcError> {
    let bad = |d: &str| ArcError::Corrupted(format!("header: {d}"));
    // arc-lint: bounded(bytes.len() < 6 short-circuits first in this condition)
    if bytes.len() < 6 || &bytes[..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    // arc-lint: bounded(bytes.len() >= 6 checked above)
    let version = bytes[4];
    if version != VERSION && version != VERSION_SHARDED {
        return Err(bad("unsupported version"));
    }
    let sharded = version == VERSION_SHARDED;
    // arc-lint: bounded(bytes.len() >= 6 checked above)
    let id_len = bytes[5] as usize;
    let fixed = 6 + id_len + 8 + 8 + 8 + if sharded { 8 + 8 } else { 0 } + 4;
    if bytes.len() < fixed {
        return Err(bad("truncated"));
    }
    // arc-lint: bounded(bytes.len() >= fixed >= 6 + id_len checked above)
    let id = std::str::from_utf8(&bytes[6..6 + id_len]).map_err(|_| bad("config id not UTF-8"))?;
    if id.is_empty() {
        return Err(bad("empty scheme id"));
    }
    // Built-in ids must parse; extension ids ("x:…") are resolved later
    // against the caller's registry.
    if !id.starts_with("x:") {
        EccConfig::parse_id(id).map_err(|e| bad(&format!("config id: {e}")))?;
    }
    let scheme_id = id.to_string();
    let mut pos = 6 + id_len;
    let mut read_u64 = |bytes: &[u8]| -> u64 {
        let v = le_u64(bytes, pos);
        pos += 8;
        v
    };
    let chunk_size = read_u64(bytes) as usize;
    let data_len = read_u64(bytes) as usize;
    let payload_len = read_u64(bytes) as usize;
    let sharding = if sharded {
        let shard_size = read_u64(bytes) as usize;
        let index_len = read_u64(bytes) as usize;
        if shard_size == 0 {
            return Err(bad("zero shard size"));
        }
        if index_len == 0 {
            return Err(bad("zero index length"));
        }
        Some(ShardingMeta { shard_size, index_len })
    } else {
        None
    };
    let data_crc = le_u32(bytes, pos);
    if chunk_size == 0 {
        return Err(bad("zero chunk size"));
    }
    Ok(ContainerMeta { scheme_id, chunk_size, data_len, payload_len, data_crc, sharding })
}

/// Clamped little-endian `u64` load: bytes past the end read as zero. The
/// `fixed` length check in [`parse_header`] guarantees the range exists;
/// the clamp keeps the parser total even if that invariant ever breaks.
fn le_u64(bytes: &[u8], pos: usize) -> u64 {
    let mut b = [0u8; 8];
    if let Some(src) = bytes.get(pos..pos + 8) {
        b.copy_from_slice(src);
    }
    u64::from_le_bytes(b)
}

/// Clamped little-endian `u32` load (see [`le_u64`]).
fn le_u32(bytes: &[u8], pos: usize) -> u32 {
    let mut b = [0u8; 4];
    if let Some(src) = bytes.get(pos..pos + 4) {
        b.copy_from_slice(src);
    }
    u32::from_le_bytes(b)
}

/// Clamped little-endian `u16` load (see [`le_u64`]).
pub(crate) fn le_u16(bytes: &[u8], pos: usize) -> u16 {
    let mut b = [0u8; 2];
    if let Some(src) = bytes.get(pos..pos + 2) {
        b.copy_from_slice(src);
    }
    u16::from_le_bytes(b)
}

/// Size of the container framing for `meta` — the triplicated length
/// prefix plus both header codewords — i.e. the byte offset at which the
/// payload begins. A pure function of the header fields, so callers can
/// allocate `header_len(meta) + meta.payload_len` (plus three index
/// copies for v2) up front and scatter-write the whole container into it.
pub fn header_len(meta: &ContainerMeta) -> usize {
    // serialize_header: magic 4 + version 1 + id-len byte 1 + id + 3×u64
    // + crc 4, plus shard_size/index_len u64s for sharded containers.
    let header = 34 + meta.scheme_id.len() + if meta.sharding.is_some() { 16 } else { 0 };
    6 + 2 * (header + HEADER_NSYM)
}

/// Write the container framing into `out`, which must be exactly
/// [`header_len`] bytes. `out` may hold arbitrary garbage; every byte is
/// overwritten. An over-long scheme id or a mis-sized buffer is an
/// [`ArcError::InvalidRequest`], never a panic.
pub fn write_header(meta: &ContainerMeta, out: &mut [u8]) -> Result<(), ArcError> {
    if meta.scheme_id.len() > 64 {
        return Err(ArcError::InvalidRequest(format!(
            "scheme id of {} bytes exceeds the container header's 64-byte cap",
            meta.scheme_id.len()
        )));
    }
    let header = serialize_header(meta);
    let Ok(rs) = RsCodeword::new(HEADER_NSYM) else {
        return Err(ArcError::InvalidRequest("header RS codeword unavailable".into()));
    };
    if header.len() > rs.max_message_len() {
        return Err(ArcError::InvalidRequest(format!(
            "header of {} bytes exceeds one RS codeword",
            header.len()
        )));
    }
    let codeword = rs.encode(&header);
    if out.len() != 6 + 2 * codeword.len() {
        return Err(ArcError::InvalidRequest(format!(
            "write_header: buffer is {} bytes, framing needs {}",
            out.len(),
            6 + 2 * codeword.len()
        )));
    }
    let len = (codeword.len() as u16).to_le_bytes();
    // arc-lint: bounded(out.len() == 6 + 2 * codeword.len() checked at entry)
    out[0..2].copy_from_slice(&len);
    // arc-lint: bounded(out.len() == 6 + 2 * codeword.len() checked at entry)
    out[2..4].copy_from_slice(&len);
    // arc-lint: bounded(out.len() == 6 + 2 * codeword.len() checked at entry)
    out[4..6].copy_from_slice(&len);
    // arc-lint: bounded(out.len() == 6 + 2 * codeword.len() checked at entry)
    out[6..6 + codeword.len()].copy_from_slice(&codeword);
    // arc-lint: bounded(out.len() == 6 + 2 * codeword.len() checked at entry)
    out[6 + codeword.len()..].copy_from_slice(&codeword);
    Ok(())
}

/// Serialize the shard index to its raw (pre-RS) byte form:
/// `count u64 ‖ entries (21 B each) ‖ CRC-32` of everything preceding.
/// Shared with the streaming encoder (`crate::stream`), which assembles
/// the identical index incrementally.
pub(crate) fn serialize_index(entries: &[ShardEntry]) -> Vec<u8> {
    let mut raw = Vec::with_capacity(12 + entries.len() * INDEX_ENTRY_BYTES);
    raw.extend_from_slice(&(entries.len() as u64).to_le_bytes());
    for e in entries {
        raw.extend_from_slice(&(e.offset as u64).to_le_bytes());
        raw.extend_from_slice(&(e.encoded_len as u32).to_le_bytes());
        raw.extend_from_slice(&(e.decoded_len as u32).to_le_bytes());
        raw.extend_from_slice(&e.crc.to_le_bytes());
        raw.push(0); // scheme slot, reserved
    }
    let crc = crc32(&raw);
    raw.extend_from_slice(&crc.to_le_bytes());
    raw
}

/// RS-protect a raw index: split into maximal messages and encode each as
/// its own codeword. The encoded length is a pure function of the raw
/// length (and vice versa), so no extra framing is needed.
pub(crate) fn rs_index_encode(raw: &[u8]) -> Result<Vec<u8>, ArcError> {
    let Ok(rs) = RsCodeword::new(INDEX_NSYM) else {
        return Err(ArcError::InvalidRequest("index RS codeword unavailable".into()));
    };
    let msg = rs.max_message_len();
    let mut out = Vec::with_capacity(raw.len() + raw.len().div_ceil(msg) * INDEX_NSYM);
    for chunk in raw.chunks(msg) {
        out.extend_from_slice(&rs.encode(chunk));
    }
    Ok(out)
}

/// Attempt to RS-decode one copy of the index. Returns the raw bytes and
/// the number of symbols repaired, or `None` when any codeword is beyond
/// repair (the caller falls through to the next copy / the majority vote).
fn rs_index_decode(encoded: &[u8]) -> Option<(Vec<u8>, usize)> {
    let rs = RsCodeword::new(INDEX_NSYM).ok()?;
    let cw = rs.max_message_len() + INDEX_NSYM;
    let tail = encoded.len() % cw;
    if encoded.is_empty() || (tail != 0 && tail <= INDEX_NSYM) {
        return None;
    }
    let mut raw = Vec::with_capacity(encoded.len());
    let mut fixed = 0usize;
    for chunk in encoded.chunks(cw) {
        let (msg, f) = rs.decode(chunk).ok()?;
        raw.extend_from_slice(&msg);
        fixed += f;
    }
    Some((raw, fixed))
}

/// Parse and validate a raw index against the (already RS-verified)
/// header fields. Everything here is pure arithmetic on small integers;
/// all sums use checked arithmetic so hostile values cannot wrap.
fn parse_index(raw: &[u8], meta: &ContainerMeta) -> Result<ShardIndex, ArcError> {
    let bad = |d: &str| ArcError::Corrupted(format!("shard index: {d}"));
    if raw.len() < 12 {
        return Err(bad("shorter than its framing"));
    }
    let count = le_u64(raw, 0) as usize;
    let expect = count
        .checked_mul(INDEX_ENTRY_BYTES)
        .and_then(|n| n.checked_add(12))
        .ok_or_else(|| bad("entry count overflows"))?;
    if raw.len() != expect {
        return Err(bad("length disagrees with entry count"));
    }
    // arc-lint: bounded(raw.len() == count * INDEX_ENTRY_BYTES + 12 >= 12 checked above)
    if le_u32(raw, raw.len() - 4) != crc32(&raw[..raw.len() - 4]) {
        return Err(bad("CRC mismatch"));
    }
    let sharding = meta.sharding.ok_or_else(|| bad("index present on an unsharded container"))?;
    // arc-lint: bounded(count * INDEX_ENTRY_BYTES + 12 == raw.len() checked above)
    let mut entries = Vec::with_capacity(count);
    let mut next_offset = 0usize;
    let mut total_decoded = 0usize;
    for i in 0..count {
        let base = 8 + i * INDEX_ENTRY_BYTES;
        let offset = le_u64(raw, base) as usize;
        let encoded_len = le_u32(raw, base + 8) as usize;
        let decoded_len = le_u32(raw, base + 12) as usize;
        let crc = le_u32(raw, base + 16);
        // arc-lint: bounded(base + 20 < raw.len() by the entry-count length equality above)
        if raw[base + 20] != 0 {
            return Err(bad("unknown per-shard scheme slot"));
        }
        if offset != next_offset {
            return Err(bad("shard offsets not contiguous"));
        }
        if decoded_len == 0 || decoded_len > sharding.shard_size {
            return Err(bad("shard decoded length out of range"));
        }
        if encoded_len < decoded_len {
            return Err(bad("shard encoded length below decoded length"));
        }
        next_offset =
            offset.checked_add(encoded_len).ok_or_else(|| bad("shard offsets overflow"))?;
        total_decoded = total_decoded
            .checked_add(decoded_len)
            .ok_or_else(|| bad("decoded lengths overflow"))?;
        entries.push(ShardEntry { offset, encoded_len, decoded_len, crc });
    }
    if next_offset != meta.payload_len {
        return Err(bad("encoded lengths disagree with payload length"));
    }
    if total_decoded != meta.data_len {
        return Err(bad("decoded lengths disagree with data length"));
    }
    Ok(ShardIndex { entries })
}

/// Recover the shard index from its three copies: first copy whose RS
/// codewords decode *and* whose contents validate wins; if none does, a
/// bitwise 2-of-3 majority vote across the copies gets one final attempt.
pub(crate) fn recover_index(
    copies: [&[u8]; 3],
    meta: &ContainerMeta,
) -> Result<(ShardIndex, IndexRepair), ArcError> {
    for (copy_used, copy) in copies.iter().enumerate() {
        if let Some((raw, symbols_corrected)) = rs_index_decode(copy) {
            if let Ok(index) = parse_index(&raw, meta) {
                if copy_used > 0 {
                    arc_telemetry::counter_add("core.index.copy_fallback", 1);
                }
                arc_telemetry::counter_add(
                    "core.index.symbols_corrected",
                    symbols_corrected as u64,
                );
                return Ok((
                    index,
                    IndexRepair { symbols_corrected, copy_used, majority_voted: false },
                ));
            }
        }
    }
    // Bitwise triple-modular-redundancy vote: each output bit is the
    // majority of the three copies' bits, which repairs any damage that
    // never hits the same bit in two copies.
    let voted: Vec<u8> = (0..copies[0].len())
        .map(|i| {
            (copies[0][i] & copies[1][i])
                | (copies[0][i] & copies[2][i])
                | (copies[1][i] & copies[2][i])
        })
        .collect();
    if let Some((raw, symbols_corrected)) = rs_index_decode(&voted) {
        if let Ok(index) = parse_index(&raw, meta) {
            arc_telemetry::counter_add("core.index.majority_voted", 1);
            return Ok((
                index,
                IndexRepair { symbols_corrected, copy_used: 0, majority_voted: true },
            ));
        }
    }
    Err(ArcError::Corrupted("shard index unrecoverable in all three copies".into()))
}

/// Assemble a container around an encoded payload.
///
/// Convenience wrapper over [`header_len`] + [`write_header`]; the zero-copy
/// encode paths skip it and scatter-write the payload directly after the
/// reserved header prefix. Produces monolithic (v1) containers only — the
/// sharded path is [`encode_sharded`].
pub fn pack(meta: &ContainerMeta, payload: &[u8]) -> Result<Vec<u8>, ArcError> {
    debug_assert_eq!(meta.payload_len, payload.len());
    let hlen = header_len(meta);
    let mut out = vec![0u8; hlen + payload.len()];
    write_header(meta, &mut out[..hlen])?;
    out[hlen..].copy_from_slice(payload);
    Ok(out)
}

/// Encode `data` into a v2 sharded container: every `shard_size`-byte
/// slice of the input becomes an independently ECC'd, independently
/// decodable shard, described by an RS-protected, triplicated index.
///
/// Allocates the whole container once and scatter-writes header, shard
/// payloads (via [`ParallelCodec::encode_sharded_into`], one pool pass
/// over all shards' chunks), and all three index copies in place.
pub fn encode_sharded<S: EccScheme>(
    data: &[u8],
    codec: &ParallelCodec<S>,
    scheme_id: &str,
    shard_size: usize,
) -> Result<Vec<u8>, ArcError> {
    if shard_size == 0 {
        return Err(ArcError::InvalidRequest("shard size must be >= 1".into()));
    }
    let mut entries = Vec::with_capacity(data.len().div_ceil(shard_size.max(1)));
    let mut offset = 0usize;
    for shard in data.chunks(shard_size) {
        let encoded_len = codec.encoded_len(shard.len());
        if encoded_len > u32::MAX as usize || shard.len() > u32::MAX as usize {
            return Err(ArcError::InvalidRequest(format!(
                "shard of {} bytes overflows the index's u32 length fields",
                shard.len()
            )));
        }
        entries.push(ShardEntry {
            offset,
            encoded_len,
            decoded_len: shard.len(),
            crc: crc32(shard),
        });
        offset = offset
            .checked_add(encoded_len)
            .ok_or_else(|| ArcError::InvalidRequest("payload length overflows".into()))?;
    }
    let payload_len = offset;
    let index = rs_index_encode(&serialize_index(&entries))?;
    let meta = ContainerMeta {
        scheme_id: scheme_id.to_string(),
        chunk_size: codec.chunk_size(),
        data_len: data.len(),
        payload_len,
        data_crc: crc32(data),
        sharding: Some(ShardingMeta { shard_size, index_len: index.len() }),
    };
    let hlen = header_len(&meta);
    let mut out = vec![0u8; hlen + payload_len + 3 * index.len()];
    write_header(&meta, &mut out[..hlen])?;
    codec.encode_sharded_into(data, shard_size, &mut out[hlen..hlen + payload_len])?;
    for copy in out[hlen + payload_len..].chunks_mut(index.len()) {
        copy.copy_from_slice(&index);
    }
    Ok(out)
}

/// Result of unpacking a container.
#[derive(Debug, Clone, PartialEq)]
pub struct Unpacked<'a> {
    /// Parsed header.
    pub meta: ContainerMeta,
    /// The (still ECC-encoded) payload region. For v2 containers this is
    /// exactly the shard payloads — the index copies that follow are
    /// already digested into `index`.
    pub payload: &'a [u8],
    /// Byte offset of the payload region within the container, so in-place
    /// decoders can re-borrow it mutably from the original buffer.
    pub payload_offset: usize,
    /// True when the primary header copy was unusable and the backup copy
    /// saved the day.
    pub used_backup_header: bool,
    /// Header bytes repaired by the RS codeword.
    pub header_symbols_corrected: usize,
    /// The recovered shard index (v2 containers only).
    pub index: Option<ShardIndex>,
    /// How the shard index was recovered (all-zero for v1 containers).
    pub index_repair: IndexRepair,
}

/// Parse and repair a container produced by [`pack`] or [`encode_sharded`].
pub fn unpack(bytes: &[u8]) -> Result<Unpacked<'_>, ArcError> {
    if bytes.len() < 6 {
        return Err(ArcError::Corrupted("container shorter than its length prefix".into()));
    }
    // Majority-vote the triplicated length field.
    let lens: [u16; 3] = [le_u16(bytes, 0), le_u16(bytes, 2), le_u16(bytes, 4)];
    let voted = if lens[0] == lens[1] || lens[0] == lens[2] {
        lens[0]
    } else if lens[1] == lens[2] {
        lens[1]
    } else {
        // No majority: try each in turn below.
        0
    };
    let Ok(rs) = RsCodeword::new(HEADER_NSYM) else {
        return Err(ArcError::Corrupted("header RS codeword unavailable".into()));
    };
    let try_len = |len: u16| -> Option<Unpacked<'_>> {
        let len = len as usize;
        if len <= HEADER_NSYM || bytes.len() < 6 + 2 * len {
            return None;
        }
        let primary = &bytes[6..6 + len];
        let backup = &bytes[6 + len..6 + 2 * len];
        let payload = &bytes[6 + 2 * len..];
        for (copy, used_backup) in [(primary, false), (backup, true)] {
            if let Ok((header_bytes, fixed)) = rs.decode(copy) {
                if let Ok(meta) = parse_header(&header_bytes) {
                    return Some(Unpacked {
                        meta,
                        payload,
                        payload_offset: 6 + 2 * len,
                        used_backup_header: used_backup,
                        header_symbols_corrected: fixed,
                        index: None,
                        index_repair: IndexRepair::default(),
                    });
                }
            }
        }
        None
    };
    let candidates: Vec<u16> = if voted != 0 { vec![voted] } else { lens.to_vec() };
    for len in candidates {
        if let Some(mut u) = try_len(len) {
            match u.meta.sharding {
                None => {
                    // Final consistency check against the buffer we have.
                    if u.payload.len() != u.meta.payload_len {
                        return Err(ArcError::Corrupted(format!(
                            "payload region {} bytes but header declares {}",
                            u.payload.len(),
                            u.meta.payload_len
                        )));
                    }
                }
                Some(sh) => {
                    // v2: the region after the header is payload plus three
                    // index copies, and the total must match *exactly* —
                    // checked arithmetic so hostile header values (already
                    // RS-verified, but belt and braces) cannot wrap, and
                    // checked *before* any index-sized allocation so a
                    // corrupt length cannot demand memory.
                    let expect =
                        sh.index_len.checked_mul(3).and_then(|i| u.meta.payload_len.checked_add(i));
                    let Some(expect) = expect else {
                        return Err(ArcError::Corrupted(
                            "header: payload/index lengths overflow".into(),
                        ));
                    };
                    if u.payload.len() != expect {
                        return Err(ArcError::Corrupted(format!(
                            "sharded region {} bytes but header declares {} payload + 3×{} index",
                            u.payload.len(),
                            u.meta.payload_len,
                            sh.index_len
                        )));
                    }
                    let istart = u.payload_offset + u.meta.payload_len;
                    let copies = [
                        &bytes[istart..istart + sh.index_len],
                        &bytes[istart + sh.index_len..istart + 2 * sh.index_len],
                        &bytes[istart + 2 * sh.index_len..istart + 3 * sh.index_len],
                    ];
                    let (index, repair) = recover_index(copies, &u.meta)?;
                    u.payload = &bytes[u.payload_offset..u.payload_offset + u.meta.payload_len];
                    u.index = Some(index);
                    u.index_repair = repair;
                }
            }
            return Ok(u);
        }
    }
    Err(ArcError::Corrupted("header unrecoverable in both copies".into()))
}

/// Convenience: the container's end-to-end CRC of original data.
pub fn data_crc(data: &[u8]) -> u32 {
    crc32(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ContainerMeta {
        ContainerMeta {
            scheme_id: EccConfig::secded(true).id(),
            chunk_size: 1 << 20,
            data_len: 123_456,
            payload_len: 64,
            data_crc: 0xDEADBEEF,
            sharding: None,
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let m = meta();
        let payload = vec![7u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let u = unpack(&packed).unwrap();
        assert_eq!(u.meta, m);
        assert_eq!(u.payload, &payload[..]);
        assert!(!u.used_backup_header);
        assert_eq!(u.header_symbols_corrected, 0);
        assert!(u.index.is_none());
    }

    #[test]
    fn header_survives_scattered_corruption() {
        let m = meta();
        let payload = vec![1u8; 64];
        let packed = pack(&m, &payload).unwrap();
        // Corrupt 10 bytes of the primary header codeword.
        let mut bad = packed.clone();
        for i in 0..10 {
            bad[6 + i * 3] ^= 0xFF;
        }
        let u = unpack(&bad).unwrap();
        assert_eq!(u.meta, m);
        assert!(u.header_symbols_corrected > 0);
    }

    #[test]
    fn destroyed_primary_header_falls_back_to_backup() {
        let m = meta();
        let payload = vec![1u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        let mut bad = packed.clone();
        for b in &mut bad[6..6 + len] {
            *b = 0xAA;
        }
        let u = unpack(&bad).unwrap();
        assert_eq!(u.meta, m);
        assert!(u.used_backup_header);
    }

    #[test]
    fn corrupted_length_prefix_is_voted_out() {
        let m = meta();
        let payload = vec![9u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let mut bad = packed.clone();
        bad[0] ^= 0xFF; // first copy of the length field
        bad[1] ^= 0x13;
        let u = unpack(&bad).unwrap();
        assert_eq!(u.meta, m);
    }

    #[test]
    fn both_headers_destroyed_is_detected() {
        let m = meta();
        let payload = vec![2u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        let mut bad = packed.clone();
        for b in &mut bad[6..6 + 2 * len] {
            *b = 0x55;
        }
        assert!(matches!(unpack(&bad), Err(ArcError::Corrupted(_))));
    }

    #[test]
    fn payload_length_mismatch_detected() {
        let m = meta();
        let payload = vec![3u8; 64];
        let mut packed = pack(&m, &payload).unwrap();
        packed.truncate(packed.len() - 10);
        assert!(matches!(unpack(&packed), Err(ArcError::Corrupted(_))));
    }

    #[test]
    fn every_single_byte_corruption_of_header_region_recovers_or_detects() {
        let m = meta();
        let payload = vec![4u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        for i in 0..6 + 2 * len {
            let mut bad = packed.clone();
            bad[i] ^= 0x40;
            match unpack(&bad) {
                Ok(u) => assert_eq!(u.meta, m, "byte {i}"),
                Err(e) => panic!("single-byte header damage at {i} unrecoverable: {e}"),
            }
        }
    }

    #[test]
    fn header_len_matches_pack_layout() {
        for config in EccConfig::standard_space() {
            let m = ContainerMeta { scheme_id: config.id(), ..meta() };
            let payload = vec![5u8; 64];
            let packed = pack(&m, &payload).unwrap();
            let hlen = header_len(&m);
            assert_eq!(packed.len(), hlen + payload.len(), "{}", m.scheme_id);
            assert_eq!(&packed[hlen..], &payload[..]);
            let u = unpack(&packed).unwrap();
            assert_eq!(u.payload_offset, hlen);
        }
    }

    #[test]
    fn write_header_overwrites_garbage() {
        let m = meta();
        let payload = vec![8u8; 64];
        let reference = pack(&m, &payload).unwrap();
        let hlen = header_len(&m);
        let mut buf = vec![0xCCu8; hlen];
        write_header(&m, &mut buf).unwrap();
        assert_eq!(&buf[..], &reference[..hlen]);
    }

    #[test]
    fn all_configs_serialize_in_header() {
        for config in EccConfig::standard_space() {
            let m = ContainerMeta { scheme_id: config.id(), ..meta() };
            let payload = vec![0u8; 64];
            let packed = pack(&m, &payload).unwrap();
            let u = unpack(&packed).unwrap();
            assert_eq!(u.meta.builtin_config(), Some(config));
        }
    }

    // ---- v2 sharded containers ----------------------------------------

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 37) ^ (i >> 5)) as u8).collect()
    }

    fn v2_container(data: &[u8], shard_size: usize) -> Vec<u8> {
        let codec = ParallelCodec::with_chunk_size(EccConfig::secded(true), 1, 4 << 10).unwrap();
        encode_sharded(data, &codec, &EccConfig::secded(true).id(), shard_size).unwrap()
    }

    #[test]
    fn sharded_header_round_trips() {
        let m = ContainerMeta {
            sharding: Some(ShardingMeta { shard_size: 4 << 20, index_len: 987 }),
            ..meta()
        };
        let header = serialize_header(&m);
        assert_eq!(header[4], VERSION_SHARDED);
        let parsed = parse_header(&header).unwrap();
        assert_eq!(parsed, m);
    }

    #[test]
    fn sharded_unpack_recovers_index() {
        let data = sample(50_000);
        let packed = v2_container(&data, 16 << 10);
        let u = unpack(&packed).unwrap();
        let index = u.index.expect("v2 container has an index");
        assert_eq!(index.shard_count(), data.len().div_ceil(16 << 10));
        assert_eq!(u.payload.len(), u.meta.payload_len);
        assert_eq!(u.index_repair, IndexRepair::default());
        let starts = index.decoded_starts();
        assert_eq!(starts[0], 0);
        assert_eq!(
            starts.last().copied().unwrap() + index.entries.last().unwrap().decoded_len,
            data.len()
        );
        // Per-shard CRCs match the original slices.
        for (e, start) in index.entries.iter().zip(&starts) {
            assert_eq!(e.crc, crc32(&data[*start..*start + e.decoded_len]));
        }
    }

    #[test]
    fn sharded_index_survives_one_destroyed_copy() {
        let data = sample(40_000);
        let packed = v2_container(&data, 8 << 10);
        let u = unpack(&packed).unwrap();
        let sh = u.meta.sharding.unwrap();
        let istart = u.payload_offset + u.meta.payload_len;
        // Destroy the entire first index copy.
        let mut bad = packed.clone();
        for b in &mut bad[istart..istart + sh.index_len] {
            *b = 0xAA;
        }
        let r = unpack(&bad).unwrap();
        assert_eq!(r.index, u.index);
        assert_eq!(r.index_repair.copy_used, 1);
        assert!(!r.index_repair.majority_voted);
    }

    #[test]
    fn sharded_index_majority_vote_rescues_three_damaged_copies() {
        let data = sample(40_000);
        let packed = v2_container(&data, 8 << 10);
        let u = unpack(&packed).unwrap();
        let sh = u.meta.sharding.unwrap();
        let istart = u.payload_offset + u.meta.payload_len;
        // Damage every copy beyond its own RS repair (nsym/2 = 16 bytes
        // per codeword), but at copy-distinct positions so the bitwise
        // vote still sees two clean copies of every byte.
        let mut bad = packed.clone();
        for copy in 0..3 {
            let base = istart + copy * sh.index_len;
            for i in 0..20 {
                bad[base + (copy + 3 * i) % sh.index_len] ^= 0xFF;
            }
        }
        let r = unpack(&bad).unwrap();
        assert_eq!(r.index, u.index);
        assert!(r.index_repair.majority_voted);
    }

    #[test]
    fn sharded_truncation_is_detected_at_every_boundary() {
        let data = sample(10_000);
        let packed = v2_container(&data, 4 << 10);
        for cut in 1..=64 {
            let short = &packed[..packed.len() - cut];
            assert!(unpack(short).is_err(), "cut {cut} accepted");
        }
    }

    #[test]
    fn sharded_empty_data_round_trips() {
        let packed = v2_container(&[], 4 << 10);
        let u = unpack(&packed).unwrap();
        assert_eq!(u.meta.data_len, 0);
        assert_eq!(u.index.unwrap().shard_count(), 0);
    }

    #[test]
    fn sharded_zero_shard_size_rejected() {
        let codec = ParallelCodec::new(EccConfig::secded(true), 1).unwrap();
        assert!(matches!(
            encode_sharded(&[1, 2, 3], &codec, "secded:64", 0),
            Err(ArcError::InvalidRequest(_))
        ));
    }

    #[test]
    fn index_rejects_tampered_entry() {
        let data = sample(30_000);
        let packed = v2_container(&data, 8 << 10);
        let u = unpack(&packed).unwrap();
        let sh = u.meta.sharding.unwrap();
        let istart = u.payload_offset + u.meta.payload_len;
        // Flip the same raw byte in all three copies *and* regenerate
        // nothing — RS + CRC must refuse the forged geometry rather than
        // serve a wrong index.
        let mut bad = packed.clone();
        for copy in 0..3 {
            let base = istart + copy * sh.index_len;
            for b in &mut bad[base..base + 40] {
                *b ^= 0x5A;
            }
        }
        assert!(unpack(&bad).is_err());
    }

    #[test]
    fn v1_and_v2_header_lens_differ_by_sharding_fields() {
        let v1 = meta();
        let v2 = ContainerMeta {
            sharding: Some(ShardingMeta { shard_size: 1 << 20, index_len: 44 }),
            ..meta()
        };
        assert_eq!(header_len(&v2), header_len(&v1) + 32); // 2 copies × 16 bytes
    }
}
