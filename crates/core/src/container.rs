//! ARC's self-describing container format.
//!
//! `arc_decode()` receives nothing but a byte array, so the container must
//! carry the ECC configuration, chunk size, and lengths — and those fields
//! must survive the very soft errors ARC exists to protect against. The
//! header is therefore wrapped in a Reed-Solomon codeword with 32 parity
//! symbols (correcting 16 unknown-position byte errors on its own) and
//! stored **twice**; the 2-byte codeword-length prefix is stored three
//! times and majority-voted.
//!
//! ```text
//! ┌────────────┬───────────────┬───────────────┬─────────────┐
//! │ len ×3 (u16)│ header RS cw  │ header RS cw  │   payload   │
//! └────────────┴───────────────┴───────────────┴─────────────┘
//! ```
//!
//! The payload is the chunk-parallel ECC encoding of the user's byte array
//! (`arc_ecc::ParallelCodec`). The header additionally carries a CRC-32 of
//! the *original* data, giving end-to-end detection even for damage an ECC
//! scheme can miss.

use arc_ecc::crc::crc32;
use arc_ecc::{EccConfig, RsCodeword};

use crate::error::ArcError;

/// Container magic.
pub const MAGIC: &[u8; 4] = b"ARC1";
/// Container format version.
pub const VERSION: u8 = 1;
/// Parity symbols protecting the header codeword.
pub const HEADER_NSYM: usize = 32;

/// Decoded header contents.
#[derive(Debug, Clone, PartialEq)]
pub struct ContainerMeta {
    /// Identifier of the scheme that encoded the payload: a built-in
    /// [`EccConfig`] id (`"secded:64"`, `"rs:223:32"`, …) or a custom
    /// extension id (`"x:<name>"`, see `arc_core::extension`).
    pub scheme_id: String,
    /// Chunk size the parallel codec used.
    pub chunk_size: usize,
    /// Original (unencoded) data length in bytes.
    pub data_len: usize,
    /// Encoded payload length in bytes.
    pub payload_len: usize,
    /// CRC-32 of the original data (end-to-end check).
    pub data_crc: u32,
}

impl ContainerMeta {
    /// Built-in configuration, when the id parses as one.
    pub fn builtin_config(&self) -> Option<EccConfig> {
        EccConfig::parse_id(&self.scheme_id).ok()
    }
}

fn serialize_header(meta: &ContainerMeta) -> Vec<u8> {
    let id = &meta.scheme_id;
    let mut out = Vec::with_capacity(40 + id.len());
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    out.push(id.len() as u8);
    out.extend_from_slice(id.as_bytes());
    out.extend_from_slice(&(meta.chunk_size as u64).to_le_bytes());
    out.extend_from_slice(&(meta.data_len as u64).to_le_bytes());
    out.extend_from_slice(&(meta.payload_len as u64).to_le_bytes());
    out.extend_from_slice(&meta.data_crc.to_le_bytes());
    out
}

fn parse_header(bytes: &[u8]) -> Result<ContainerMeta, ArcError> {
    let bad = |d: &str| ArcError::Corrupted(format!("header: {d}"));
    if bytes.len() < 6 || &bytes[..4] != MAGIC {
        return Err(bad("bad magic"));
    }
    if bytes[4] != VERSION {
        return Err(bad("unsupported version"));
    }
    let id_len = bytes[5] as usize;
    let fixed = 6 + id_len + 8 + 8 + 8 + 4;
    if bytes.len() < fixed {
        return Err(bad("truncated"));
    }
    let id = std::str::from_utf8(&bytes[6..6 + id_len]).map_err(|_| bad("config id not UTF-8"))?;
    if id.is_empty() {
        return Err(bad("empty scheme id"));
    }
    // Built-in ids must parse; extension ids ("x:…") are resolved later
    // against the caller's registry.
    if !id.starts_with("x:") {
        EccConfig::parse_id(id).map_err(|e| bad(&format!("config id: {e}")))?;
    }
    let scheme_id = id.to_string();
    let mut pos = 6 + id_len;
    let mut read_u64 = |bytes: &[u8]| -> u64 {
        let v = le_u64(bytes, pos);
        pos += 8;
        v
    };
    let chunk_size = read_u64(bytes) as usize;
    let data_len = read_u64(bytes) as usize;
    let payload_len = read_u64(bytes) as usize;
    let data_crc = le_u32(bytes, pos);
    if chunk_size == 0 {
        return Err(bad("zero chunk size"));
    }
    Ok(ContainerMeta { scheme_id, chunk_size, data_len, payload_len, data_crc })
}

/// Clamped little-endian `u64` load: bytes past the end read as zero. The
/// `fixed` length check in [`parse_header`] guarantees the range exists;
/// the clamp keeps the parser total even if that invariant ever breaks.
fn le_u64(bytes: &[u8], pos: usize) -> u64 {
    let mut b = [0u8; 8];
    if let Some(src) = bytes.get(pos..pos + 8) {
        b.copy_from_slice(src);
    }
    u64::from_le_bytes(b)
}

/// Clamped little-endian `u32` load (see [`le_u64`]).
fn le_u32(bytes: &[u8], pos: usize) -> u32 {
    let mut b = [0u8; 4];
    if let Some(src) = bytes.get(pos..pos + 4) {
        b.copy_from_slice(src);
    }
    u32::from_le_bytes(b)
}

/// Clamped little-endian `u16` load (see [`le_u64`]).
fn le_u16(bytes: &[u8], pos: usize) -> u16 {
    let mut b = [0u8; 2];
    if let Some(src) = bytes.get(pos..pos + 2) {
        b.copy_from_slice(src);
    }
    u16::from_le_bytes(b)
}

/// Size of the container framing for `meta` — the triplicated length
/// prefix plus both header codewords — i.e. the byte offset at which the
/// payload begins. A pure function of the header fields, so callers can
/// allocate `header_len(meta) + meta.payload_len` up front and scatter-write
/// the whole container into it.
pub fn header_len(meta: &ContainerMeta) -> usize {
    // serialize_header: magic 4 + version 1 + id-len byte 1 + id + 3×u64 + crc 4.
    let header = 34 + meta.scheme_id.len();
    6 + 2 * (header + HEADER_NSYM)
}

/// Write the container framing into `out`, which must be exactly
/// [`header_len`] bytes. `out` may hold arbitrary garbage; every byte is
/// overwritten. An over-long scheme id or a mis-sized buffer is an
/// [`ArcError::InvalidRequest`], never a panic.
pub fn write_header(meta: &ContainerMeta, out: &mut [u8]) -> Result<(), ArcError> {
    if meta.scheme_id.len() > 64 {
        return Err(ArcError::InvalidRequest(format!(
            "scheme id of {} bytes exceeds the container header's 64-byte cap",
            meta.scheme_id.len()
        )));
    }
    let header = serialize_header(meta);
    let Ok(rs) = RsCodeword::new(HEADER_NSYM) else {
        return Err(ArcError::InvalidRequest("header RS codeword unavailable".into()));
    };
    if header.len() > rs.max_message_len() {
        return Err(ArcError::InvalidRequest(format!(
            "header of {} bytes exceeds one RS codeword",
            header.len()
        )));
    }
    let codeword = rs.encode(&header);
    if out.len() != 6 + 2 * codeword.len() {
        return Err(ArcError::InvalidRequest(format!(
            "write_header: buffer is {} bytes, framing needs {}",
            out.len(),
            6 + 2 * codeword.len()
        )));
    }
    let len = (codeword.len() as u16).to_le_bytes();
    out[0..2].copy_from_slice(&len);
    out[2..4].copy_from_slice(&len);
    out[4..6].copy_from_slice(&len);
    out[6..6 + codeword.len()].copy_from_slice(&codeword);
    out[6 + codeword.len()..].copy_from_slice(&codeword);
    Ok(())
}

/// Assemble a container around an encoded payload.
///
/// Convenience wrapper over [`header_len`] + [`write_header`]; the zero-copy
/// encode paths skip it and scatter-write the payload directly after the
/// reserved header prefix.
pub fn pack(meta: &ContainerMeta, payload: &[u8]) -> Result<Vec<u8>, ArcError> {
    debug_assert_eq!(meta.payload_len, payload.len());
    let hlen = header_len(meta);
    let mut out = vec![0u8; hlen + payload.len()];
    write_header(meta, &mut out[..hlen])?;
    out[hlen..].copy_from_slice(payload);
    Ok(out)
}

/// Result of unpacking a container.
#[derive(Debug, Clone, PartialEq)]
pub struct Unpacked<'a> {
    /// Parsed header.
    pub meta: ContainerMeta,
    /// The (still ECC-encoded) payload region.
    pub payload: &'a [u8],
    /// Byte offset of the payload region within the container, so in-place
    /// decoders can re-borrow it mutably from the original buffer.
    pub payload_offset: usize,
    /// True when the primary header copy was unusable and the backup copy
    /// saved the day.
    pub used_backup_header: bool,
    /// Header bytes repaired by the RS codeword.
    pub header_symbols_corrected: usize,
}

/// Parse and repair a container produced by [`pack`].
pub fn unpack(bytes: &[u8]) -> Result<Unpacked<'_>, ArcError> {
    if bytes.len() < 6 {
        return Err(ArcError::Corrupted("container shorter than its length prefix".into()));
    }
    // Majority-vote the triplicated length field.
    let lens: [u16; 3] = [le_u16(bytes, 0), le_u16(bytes, 2), le_u16(bytes, 4)];
    let voted = if lens[0] == lens[1] || lens[0] == lens[2] {
        lens[0]
    } else if lens[1] == lens[2] {
        lens[1]
    } else {
        // No majority: try each in turn below.
        0
    };
    let Ok(rs) = RsCodeword::new(HEADER_NSYM) else {
        return Err(ArcError::Corrupted("header RS codeword unavailable".into()));
    };
    let try_len = |len: u16| -> Option<Unpacked<'_>> {
        let len = len as usize;
        if len <= HEADER_NSYM || bytes.len() < 6 + 2 * len {
            return None;
        }
        let primary = &bytes[6..6 + len];
        let backup = &bytes[6 + len..6 + 2 * len];
        let payload = &bytes[6 + 2 * len..];
        for (copy, used_backup) in [(primary, false), (backup, true)] {
            if let Ok((header_bytes, fixed)) = rs.decode(copy) {
                if let Ok(meta) = parse_header(&header_bytes) {
                    return Some(Unpacked {
                        meta,
                        payload,
                        payload_offset: 6 + 2 * len,
                        used_backup_header: used_backup,
                        header_symbols_corrected: fixed,
                    });
                }
            }
        }
        None
    };
    let candidates: Vec<u16> = if voted != 0 { vec![voted] } else { lens.to_vec() };
    for len in candidates {
        if let Some(u) = try_len(len) {
            // Final consistency check against the buffer we actually have.
            if u.payload.len() != u.meta.payload_len {
                return Err(ArcError::Corrupted(format!(
                    "payload region {} bytes but header declares {}",
                    u.payload.len(),
                    u.meta.payload_len
                )));
            }
            return Ok(u);
        }
    }
    Err(ArcError::Corrupted("header unrecoverable in both copies".into()))
}

/// Convenience: the container's end-to-end CRC of original data.
pub fn data_crc(data: &[u8]) -> u32 {
    crc32(data)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> ContainerMeta {
        ContainerMeta {
            scheme_id: EccConfig::secded(true).id(),
            chunk_size: 1 << 20,
            data_len: 123_456,
            payload_len: 64,
            data_crc: 0xDEADBEEF,
        }
    }

    #[test]
    fn pack_unpack_round_trip() {
        let m = meta();
        let payload = vec![7u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let u = unpack(&packed).unwrap();
        assert_eq!(u.meta, m);
        assert_eq!(u.payload, &payload[..]);
        assert!(!u.used_backup_header);
        assert_eq!(u.header_symbols_corrected, 0);
    }

    #[test]
    fn header_survives_scattered_corruption() {
        let m = meta();
        let payload = vec![1u8; 64];
        let packed = pack(&m, &payload).unwrap();
        // Corrupt 10 bytes of the primary header codeword.
        let mut bad = packed.clone();
        for i in 0..10 {
            bad[6 + i * 3] ^= 0xFF;
        }
        let u = unpack(&bad).unwrap();
        assert_eq!(u.meta, m);
        assert!(u.header_symbols_corrected > 0);
    }

    #[test]
    fn destroyed_primary_header_falls_back_to_backup() {
        let m = meta();
        let payload = vec![1u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        let mut bad = packed.clone();
        for b in &mut bad[6..6 + len] {
            *b = 0xAA;
        }
        let u = unpack(&bad).unwrap();
        assert_eq!(u.meta, m);
        assert!(u.used_backup_header);
    }

    #[test]
    fn corrupted_length_prefix_is_voted_out() {
        let m = meta();
        let payload = vec![9u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let mut bad = packed.clone();
        bad[0] ^= 0xFF; // first copy of the length field
        bad[1] ^= 0x13;
        let u = unpack(&bad).unwrap();
        assert_eq!(u.meta, m);
    }

    #[test]
    fn both_headers_destroyed_is_detected() {
        let m = meta();
        let payload = vec![2u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        let mut bad = packed.clone();
        for b in &mut bad[6..6 + 2 * len] {
            *b = 0x55;
        }
        assert!(matches!(unpack(&bad), Err(ArcError::Corrupted(_))));
    }

    #[test]
    fn payload_length_mismatch_detected() {
        let m = meta();
        let payload = vec![3u8; 64];
        let mut packed = pack(&m, &payload).unwrap();
        packed.truncate(packed.len() - 10);
        assert!(matches!(unpack(&packed), Err(ArcError::Corrupted(_))));
    }

    #[test]
    fn every_single_byte_corruption_of_header_region_recovers_or_detects() {
        let m = meta();
        let payload = vec![4u8; 64];
        let packed = pack(&m, &payload).unwrap();
        let len = u16::from_le_bytes(packed[0..2].try_into().unwrap()) as usize;
        for i in 0..6 + 2 * len {
            let mut bad = packed.clone();
            bad[i] ^= 0x40;
            match unpack(&bad) {
                Ok(u) => assert_eq!(u.meta, m, "byte {i}"),
                Err(e) => panic!("single-byte header damage at {i} unrecoverable: {e}"),
            }
        }
    }

    #[test]
    fn header_len_matches_pack_layout() {
        for config in EccConfig::standard_space() {
            let m = ContainerMeta { scheme_id: config.id(), ..meta() };
            let payload = vec![5u8; 64];
            let packed = pack(&m, &payload).unwrap();
            let hlen = header_len(&m);
            assert_eq!(packed.len(), hlen + payload.len(), "{}", m.scheme_id);
            assert_eq!(&packed[hlen..], &payload[..]);
            let u = unpack(&packed).unwrap();
            assert_eq!(u.payload_offset, hlen);
        }
    }

    #[test]
    fn write_header_overwrites_garbage() {
        let m = meta();
        let payload = vec![8u8; 64];
        let reference = pack(&m, &payload).unwrap();
        let hlen = header_len(&m);
        let mut buf = vec![0xCCu8; hlen];
        write_header(&m, &mut buf).unwrap();
        assert_eq!(&buf[..], &reference[..hlen]);
    }

    #[test]
    fn all_configs_serialize_in_header() {
        for config in EccConfig::standard_space() {
            let m = ContainerMeta { scheme_id: config.id(), ..meta() };
            let payload = vec![0u8; 64];
            let packed = pack(&m, &payload).unwrap();
            let u = unpack(&packed).unwrap();
            assert_eq!(u.meta.builtin_config(), Some(config));
        }
    }
}
