//! ARC's three user constraints (§5.1): storage, throughput, resiliency.
//!
//! * the **memory constraint** caps added storage as a fraction of the
//!   input (`0.25` → at most +25%); `MemoryConstraint::Any` is
//!   `ARC_ANY_SIZE`;
//! * the **throughput constraint** is a lower bound on encode throughput
//!   in MB/s; `ThroughputConstraint::Any` is `ARC_ANY_BW`;
//! * the **resiliency constraint** filters the candidate ECC methods by
//!   method flags (`ARC_PARITY`…`ARC_RS`), by error-response flags
//!   (`ARC_DET_SPARSE`, `ARC_COR_SPARSE`, `ARC_COR_BURST`), or by an
//!   expected uniformly-distributed soft-error rate per MB.

use arc_ecc::{EccConfig, EccMethod, EccScheme};

/// Upper bound on storage overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MemoryConstraint {
    /// `ARC_ANY_SIZE` — no storage restriction.
    Any,
    /// Added bytes must stay below `fraction · input_len`.
    Fraction(f64),
}

impl MemoryConstraint {
    /// Validate user input.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            MemoryConstraint::Any => Ok(()),
            MemoryConstraint::Fraction(f) if f.is_finite() && f > 0.0 => Ok(()),
            MemoryConstraint::Fraction(f) => Err(format!("memory constraint {f} must be > 0")),
        }
    }
}

/// Lower bound on encoding throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ThroughputConstraint {
    /// `ARC_ANY_BW` — no throughput restriction.
    Any,
    /// Encoding must sustain at least this many MB/s.
    MbPerS(f64),
}

impl ThroughputConstraint {
    /// Validate user input.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            ThroughputConstraint::Any => Ok(()),
            ThroughputConstraint::MbPerS(v) if v.is_finite() && v > 0.0 => Ok(()),
            ThroughputConstraint::MbPerS(v) => {
                Err(format!("throughput constraint {v} must be > 0"))
            }
        }
    }
}

/// Error-response capability flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorResponse {
    /// `ARC_DET_SPARSE` — detect sparse uniformly distributed errors.
    DetectSparse,
    /// `ARC_COR_SPARSE` — correct sparse uniformly distributed errors.
    CorrectSparse,
    /// `ARC_COR_BURST` — correct densely packed burst errors.
    CorrectBurst,
}

/// The resiliency constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum ResiliencyConstraint {
    /// `ARC_ANY_ECC` — every method is a candidate.
    Any,
    /// Restrict to the listed method families.
    Methods(Vec<EccMethod>),
    /// Restrict to methods with all the listed capabilities.
    Responses(Vec<ErrorResponse>),
    /// Expected uniformly distributed soft errors per MB of data; ARC keeps
    /// only methods able to correct that rate. Once every sixteenth of a MB
    /// is expected to see an error (≥16 errors/MB), the burst likelihood
    /// pushes ARC to Reed-Solomon alone (§5.1).
    ErrorsPerMb(f64),
}

/// The rate threshold above which only Reed-Solomon is considered — §5.1's
/// "over a sixteenth of each MB of data will encounter a soft error",
/// i.e. 16 errors per MB.
pub const BURST_RATE_THRESHOLD: f64 = 16.0;

impl ResiliencyConstraint {
    /// Validate user input.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ResiliencyConstraint::Any => Ok(()),
            ResiliencyConstraint::Methods(m) if !m.is_empty() => Ok(()),
            ResiliencyConstraint::Methods(_) => Err("empty method list".into()),
            ResiliencyConstraint::Responses(r) if !r.is_empty() => Ok(()),
            ResiliencyConstraint::Responses(_) => Err("empty response list".into()),
            ResiliencyConstraint::ErrorsPerMb(e) if e.is_finite() && *e >= 0.0 => Ok(()),
            ResiliencyConstraint::ErrorsPerMb(e) => Err(format!("error rate {e} must be >= 0")),
        }
    }

    /// True when `config` satisfies this constraint.
    pub fn admits(&self, config: &EccConfig) -> bool {
        match self {
            ResiliencyConstraint::Any => true,
            ResiliencyConstraint::Methods(methods) => methods.contains(&config.method()),
            ResiliencyConstraint::Responses(responses) => {
                let cap = config.capability();
                responses.iter().all(|r| match r {
                    ErrorResponse::DetectSparse => cap.detects_sparse,
                    ErrorResponse::CorrectSparse => cap.corrects_sparse,
                    ErrorResponse::CorrectBurst => cap.corrects_burst,
                })
            }
            ResiliencyConstraint::ErrorsPerMb(rate) => {
                if *rate == 0.0 {
                    return true;
                }
                // §5.1: above the burst threshold "ARC only uses
                // Reed-Solomon"; at lower rates "ARC uses SEC-DED or
                // Reed-Solomon" — plain Hamming is excluded because its
                // miscorrected double errors would be silent.
                let method_ok = if *rate > BURST_RATE_THRESHOLD {
                    config.method() == EccMethod::Rs
                } else {
                    matches!(config.method(), EccMethod::SecDed | EccMethod::Rs)
                };
                let cap = config.capability();
                method_ok && cap.corrects_sparse && cap.correctable_per_mb >= *rate
            }
        }
    }

    /// Filter a configuration space down to the admitted set.
    pub fn filter(&self, space: &[EccConfig]) -> Vec<EccConfig> {
        space.iter().filter(|c| self.admits(c)).copied().collect()
    }

    /// Capability-level [`ResiliencyConstraint::admits`] for extension
    /// schemes, which advertise a [`arc_ecc::Capability`] but belong to no
    /// built-in [`EccMethod`] family.
    ///
    /// [`ResiliencyConstraint::Methods`] names built-in families by
    /// definition, so it never admits an extension. The rate rule maps the
    /// paper's method names onto what they meant operationally: above
    /// [`BURST_RATE_THRESHOLD`] §5.1 trusts only Reed-Solomon *because*
    /// error clustering makes bursts likely, so an extension clears that
    /// bar only by correcting bursts.
    pub fn admits_capability(&self, cap: &arc_ecc::Capability) -> bool {
        match self {
            ResiliencyConstraint::Any => true,
            ResiliencyConstraint::Methods(_) => false,
            ResiliencyConstraint::Responses(responses) => responses.iter().all(|r| match r {
                ErrorResponse::DetectSparse => cap.detects_sparse,
                ErrorResponse::CorrectSparse => cap.corrects_sparse,
                ErrorResponse::CorrectBurst => cap.corrects_burst,
            }),
            ResiliencyConstraint::ErrorsPerMb(rate) => {
                if *rate == 0.0 {
                    return true;
                }
                let burst_ok = *rate <= BURST_RATE_THRESHOLD || cap.corrects_burst;
                burst_ok && cap.corrects_sparse && cap.correctable_per_mb >= *rate
            }
        }
    }
}

/// Bundle of the three constraints, as passed to `arc_encode()`.
#[derive(Debug, Clone, PartialEq)]
pub struct EncodeRequest {
    /// Storage cap.
    pub memory: MemoryConstraint,
    /// Throughput floor.
    pub throughput: ThroughputConstraint,
    /// ECC filter.
    pub resiliency: ResiliencyConstraint,
}

impl Default for EncodeRequest {
    /// `ARC_ANY_MEM, ARC_ANY_BW, ARC_ANY_ECC` — Algorithm 1's defaults.
    fn default() -> Self {
        EncodeRequest {
            memory: MemoryConstraint::Any,
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::Any,
        }
    }
}

impl EncodeRequest {
    /// Validate every constraint.
    pub fn validate(&self) -> Result<(), String> {
        self.memory.validate()?;
        self.throughput.validate()?;
        self.resiliency.validate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation() {
        assert!(MemoryConstraint::Fraction(0.25).validate().is_ok());
        assert!(MemoryConstraint::Fraction(-1.0).validate().is_err());
        assert!(ThroughputConstraint::MbPerS(200.0).validate().is_ok());
        assert!(ThroughputConstraint::MbPerS(f64::NAN).validate().is_err());
        assert!(ResiliencyConstraint::ErrorsPerMb(1.0).validate().is_ok());
        assert!(ResiliencyConstraint::Methods(vec![]).validate().is_err());
        assert!(EncodeRequest::default().validate().is_ok());
    }

    #[test]
    fn method_filter() {
        let space = EccConfig::standard_space();
        let rs_only = ResiliencyConstraint::Methods(vec![EccMethod::Rs]).filter(&space);
        assert!(!rs_only.is_empty());
        assert!(rs_only.iter().all(|c| c.method() == EccMethod::Rs));
        let two = ResiliencyConstraint::Methods(vec![EccMethod::Parity, EccMethod::SecDed])
            .filter(&space);
        assert!(two.iter().all(|c| matches!(c.method(), EccMethod::Parity | EccMethod::SecDed)));
    }

    #[test]
    fn response_filter_matches_paper_semantics() {
        let space = EccConfig::standard_space();
        // DET_SPARSE: everything detects sparse errors.
        let det = ResiliencyConstraint::Responses(vec![ErrorResponse::DetectSparse]).filter(&space);
        assert_eq!(det.len(), space.len());
        // COR_SPARSE: excludes parity.
        let cor =
            ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectSparse]).filter(&space);
        assert!(cor.iter().all(|c| c.method() != EccMethod::Parity));
        assert!(!cor.is_empty());
        // COR_BURST: Reed-Solomon only.
        let burst =
            ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectBurst]).filter(&space);
        assert!(burst.iter().all(|c| c.method() == EccMethod::Rs));
    }

    #[test]
    fn error_rate_filter() {
        let space = EccConfig::standard_space();
        // §6.3's case: 1 error per MB admits SEC-DED and RS only (§5.1
        // names "SEC-DED or Reed-Solomon" at low rates).
        let one = ResiliencyConstraint::ErrorsPerMb(1.0).filter(&space);
        assert!(one.iter().any(|c| c.method() == EccMethod::SecDed));
        assert!(one.iter().all(|c| matches!(c.method(), EccMethod::SecDed | EccMethod::Rs)));
        // §5.1's case: above one error per sixteenth-MB → Reed-Solomon only.
        let heavy = ResiliencyConstraint::ErrorsPerMb(20.0).filter(&space);
        assert!(!heavy.is_empty());
        assert!(heavy.iter().all(|c| c.method() == EccMethod::Rs));
        // Very heavy rates prune weak RS configs too.
        let extreme = ResiliencyConstraint::ErrorsPerMb(100.0).filter(&space);
        assert!(extreme.iter().all(|c| match c {
            EccConfig::Rs(rs) => rs.m >= 100,
            _ => false,
        }));
        // Zero rate admits everything.
        assert_eq!(ResiliencyConstraint::ErrorsPerMb(0.0).filter(&space).len(), space.len());
    }
}
