//! ARC's configuration training phase (§5.1).
//!
//! At `arc_init()` ARC measures the encode and decode throughput of every
//! ECC configuration at an increasing ladder of thread counts, then caches
//! the results on disk. The cache is consulted first on later runs; only
//! missing (configuration, threads) pairs are re-measured, so "ARC's
//! training phase represents a decreasing amount of ARC's total uptime as
//! it is used more on a system". `arc_close()` writes refreshed numbers
//! back (§5.1's `arc_save()`).

use std::collections::BTreeMap;
use std::io::{BufRead, Write};
use std::path::Path;

use arc_ecc::parallel::{timed_decode, timed_encode};
use arc_ecc::{EccConfig, ParallelCodec};

use crate::error::ArcError;

/// One measured point: a configuration at a thread count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Encoding throughput in MB/s.
    pub encode_mb_s: f64,
    /// Error-free decoding throughput in MB/s.
    pub decode_mb_s: f64,
    /// Number of runs folded into this measurement.
    pub samples: u32,
}

impl Measurement {
    /// Fold a new observation in (running average, §5.1's cache refresh).
    pub fn merge(&mut self, encode_mb_s: f64, decode_mb_s: f64) {
        let n = self.samples as f64;
        self.encode_mb_s = (self.encode_mb_s * n + encode_mb_s) / (n + 1.0);
        self.decode_mb_s = (self.decode_mb_s * n + decode_mb_s) / (n + 1.0);
        self.samples += 1;
    }
}

/// The trained throughput table: (configuration id, threads) → measurement.
#[derive(Debug, Clone, Default)]
pub struct TrainingTable {
    entries: BTreeMap<(String, usize), Measurement>,
}

/// Cache file header line. The version is part of the cost-model contract:
/// v2 coincides with the XOR-scheduled / GFNI / slice-by-16-CRC ECC kernels
/// (DESIGN.md §13), whose throughput differs from v1-era measurements by
/// integer factors — loading a v1 cache would feed the §4 optimizer a stale
/// cost model, so caches with any other version line are discarded and the
/// trainer re-measures.
const CACHE_HEADER: &str = "# arc training cache v2";

/// Prefix every versioned cache header starts with.
const CACHE_HEADER_PREFIX: &str = "# arc training cache v";

impl TrainingTable {
    /// Empty table.
    pub fn new() -> TrainingTable {
        TrainingTable::default()
    }

    /// Number of measured points.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been measured.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lookup a measurement.
    pub fn get(&self, config: &EccConfig, threads: usize) -> Option<Measurement> {
        self.entries.get(&(config.id(), threads)).copied()
    }

    /// Record (or merge) an observation.
    pub fn record(
        &mut self,
        config: &EccConfig,
        threads: usize,
        encode_mb_s: f64,
        decode_mb_s: f64,
    ) {
        self.entries
            .entry((config.id(), threads))
            .and_modify(|m| m.merge(encode_mb_s, decode_mb_s))
            .or_insert(Measurement { encode_mb_s, decode_mb_s, samples: 1 });
    }

    /// Thread counts measured for a configuration, ascending.
    pub fn thread_counts(&self, config: &EccConfig) -> Vec<usize> {
        let id = config.id();
        self.entries.keys().filter(|(cid, _)| *cid == id).map(|(_, t)| *t).collect()
    }

    /// Distinct configurations present in the table.
    pub fn config_ids(&self) -> Vec<String> {
        let mut ids: Vec<String> = self.entries.keys().map(|(c, _)| c.clone()).collect();
        ids.dedup();
        ids
    }

    /// The (configuration, threads) pairs still missing for a full grid.
    pub fn missing(&self, space: &[EccConfig], ladder: &[usize]) -> Vec<(EccConfig, usize)> {
        let mut out = Vec::new();
        for cfg in space {
            for &t in ladder {
                if self.get(cfg, t).is_none() {
                    out.push((*cfg, t));
                }
            }
        }
        out
    }

    /// Serialize to the on-disk cache format (plain text, one line per
    /// point; a resilience library keeps its own metadata greppable).
    pub fn save(&self, path: &Path) -> Result<(), ArcError> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| ArcError::Io(format!("create {parent:?}: {e}")))?;
        }
        let mut f = std::io::BufWriter::new(
            std::fs::File::create(path)
                .map_err(|e| ArcError::Io(format!("create {path:?}: {e}")))?,
        );
        writeln!(f, "{CACHE_HEADER}").map_err(|e| ArcError::Io(e.to_string()))?;
        for ((id, threads), m) in &self.entries {
            writeln!(
                f,
                "{id}\t{threads}\t{:.6}\t{:.6}\t{}",
                m.encode_mb_s, m.decode_mb_s, m.samples
            )
            .map_err(|e| ArcError::Io(e.to_string()))?;
        }
        Ok(())
    }

    /// Load a cache file, tolerating (and skipping) corrupt lines — the
    /// cache itself lives on the same failure-prone storage ARC protects.
    pub fn load(path: &Path) -> Result<TrainingTable, ArcError> {
        let f =
            std::fs::File::open(path).map_err(|e| ArcError::Io(format!("open {path:?}: {e}")))?;
        let reader = std::io::BufReader::new(f);
        let mut table = TrainingTable::new();
        for line in reader.lines() {
            let line = match line {
                Ok(l) => l,
                Err(_) => continue,
            };
            // A version header other than the current one means the file was
            // measured against older kernels: drop everything read so far
            // and ignore the rest — the caller re-trains from scratch.
            if line.starts_with(CACHE_HEADER_PREFIX) && line.trim_end() != CACHE_HEADER {
                return Ok(TrainingTable::new());
            }
            if line.starts_with('#') || line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split('\t');
            let (Some(id), Some(t), Some(enc), Some(dec), Some(n)) =
                (parts.next(), parts.next(), parts.next(), parts.next(), parts.next())
            else {
                continue;
            };
            let Ok(config) = EccConfig::parse_id(id) else { continue };
            let (Ok(t), Ok(enc), Ok(dec), Ok(n)) =
                (t.parse::<usize>(), enc.parse::<f64>(), dec.parse::<f64>(), n.parse::<u32>())
            else {
                continue;
            };
            if !enc.is_finite() || !dec.is_finite() || enc < 0.0 || dec < 0.0 || t == 0 {
                continue;
            }
            table.entries.insert(
                (config.id(), t),
                Measurement { encode_mb_s: enc, decode_mb_s: dec, samples: n.max(1) },
            );
        }
        Ok(table)
    }

    /// Load if the file exists, otherwise an empty table.
    pub fn load_or_default(path: &Path) -> TrainingTable {
        if path.exists() {
            TrainingTable::load(path).unwrap_or_default()
        } else {
            TrainingTable::new()
        }
    }
}

/// The thread ladder ARC trains: powers of two up to and including the
/// maximum (§5.1 "an increasing number of threads up to the maximum").
pub fn thread_ladder(max_threads: usize) -> Vec<usize> {
    let max = max_threads.max(1);
    let mut ladder = Vec::new();
    let mut t = 1usize;
    while t < max {
        ladder.push(t);
        t *= 2;
    }
    ladder.push(max);
    ladder
}

/// Tuning for the training phase.
#[derive(Debug, Clone)]
pub struct TrainingOptions {
    /// Probe buffer size for parity/Hamming/SEC-DED.
    pub sample_bytes: usize,
    /// Probe buffer size for Reed-Solomon (its O(m·n) encode makes the
    /// standard probe needlessly slow; throughput is size-invariant).
    pub rs_sample_bytes: usize,
    /// The configuration space to train.
    pub space: Vec<EccConfig>,
}

impl Default for TrainingOptions {
    fn default() -> Self {
        TrainingOptions {
            sample_bytes: 4 << 20,
            rs_sample_bytes: 1 << 20,
            space: EccConfig::standard_space(),
        }
    }
}

/// Summary of one training run (Fig 6's axes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainingStats {
    /// (configuration, threads) points measured in this run.
    pub points_measured: usize,
    /// Configurations now fully trained.
    pub configs_trained: usize,
    /// Wall-clock seconds spent training.
    pub seconds: f64,
}

/// Synthetic probe buffer: mildly compressible byte noise, deterministic.
pub fn probe_buffer(len: usize) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let x = (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
            ((x >> 29) as u8) ^ ((i / 64) as u8)
        })
        .collect()
}

/// Train every missing point in the grid, merging into `table`.
pub fn train(
    table: &mut TrainingTable,
    max_threads: usize,
    opts: &TrainingOptions,
) -> Result<TrainingStats, ArcError> {
    let _span = arc_telemetry::span("core.train");
    let ladder = thread_ladder(max_threads);
    let missing = table.missing(&opts.space, &ladder);
    arc_telemetry::counter_add("core.train.points_measured", missing.len() as u64);
    let t0 = std::time::Instant::now();
    let big = probe_buffer(opts.sample_bytes);
    let small = probe_buffer(opts.rs_sample_bytes);
    for (config, threads) in &missing {
        let data: &[u8] = if matches!(config, EccConfig::Rs(_)) { &small } else { &big };
        let codec = ParallelCodec::new(*config, *threads).map_err(ArcError::Ecc)?;
        let (encoded, enc_sample) = timed_encode(&codec, data);
        let (_, _, dec_sample) =
            timed_decode(&codec, &encoded, data.len()).map_err(ArcError::Ecc)?;
        arc_telemetry::event("core.train.measure", || {
            format!(
                "config={} threads={} encode_mb_s={:.1} decode_mb_s={:.1}",
                config.id(),
                threads,
                enc_sample.mb_per_s(),
                dec_sample.mb_per_s()
            )
        });
        table.record(config, *threads, enc_sample.mb_per_s(), dec_sample.mb_per_s());
    }
    Ok(TrainingStats {
        points_measured: missing.len(),
        configs_trained: opts.space.len(),
        seconds: t0.elapsed().as_secs_f64(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_opts() -> TrainingOptions {
        TrainingOptions {
            sample_bytes: 32 << 10,
            rs_sample_bytes: 16 << 10,
            space: vec![
                EccConfig::parity(8).unwrap(),
                EccConfig::secded(true),
                EccConfig::rs(32, 8).unwrap(),
            ],
        }
    }

    #[test]
    fn ladder_is_powers_of_two_plus_max() {
        assert_eq!(thread_ladder(1), vec![1]);
        assert_eq!(thread_ladder(2), vec![1, 2]);
        assert_eq!(thread_ladder(8), vec![1, 2, 4, 8]);
        assert_eq!(thread_ladder(40), vec![1, 2, 4, 8, 16, 32, 40]);
        assert_eq!(thread_ladder(0), vec![1]);
    }

    #[test]
    fn training_fills_the_grid() {
        let mut table = TrainingTable::new();
        let opts = tiny_opts();
        let stats = train(&mut table, 2, &opts).unwrap();
        assert_eq!(stats.points_measured, 3 * 2);
        assert!(table.missing(&opts.space, &thread_ladder(2)).is_empty());
        for cfg in &opts.space {
            let m = table.get(cfg, 1).unwrap();
            assert!(m.encode_mb_s > 0.0 && m.decode_mb_s > 0.0, "{cfg}");
        }
    }

    #[test]
    fn retraining_only_measures_missing_points() {
        let mut table = TrainingTable::new();
        let opts = tiny_opts();
        train(&mut table, 1, &opts).unwrap();
        // Raising the thread cap trains only the new column.
        let stats = train(&mut table, 2, &opts).unwrap();
        assert_eq!(stats.points_measured, 3);
        let stats = train(&mut table, 2, &opts).unwrap();
        assert_eq!(stats.points_measured, 0, "fully cached run measures nothing");
    }

    #[test]
    fn cache_round_trips_via_disk() {
        let mut table = TrainingTable::new();
        let opts = tiny_opts();
        train(&mut table, 2, &opts).unwrap();
        let dir = std::env::temp_dir().join(format!("arc-cache-test-{}", std::process::id()));
        let path = dir.join("training.tsv");
        table.save(&path).unwrap();
        let loaded = TrainingTable::load(&path).unwrap();
        assert_eq!(loaded.len(), table.len());
        for cfg in &opts.space {
            assert_eq!(loaded.get(cfg, 2).unwrap().samples, table.get(cfg, 2).unwrap().samples);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_cache_lines_are_skipped() {
        let dir = std::env::temp_dir().join(format!("arc-cache-corrupt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("training.tsv");
        std::fs::write(
            &path,
            "# arc training cache v2\n\
             secded:64\t4\t100.0\t200.0\t3\n\
             garbage line without tabs\n\
             rs:999:999\t2\t1.0\t1.0\t1\n\
             parity:8\tNaN\t5.0\t5.0\t1\n\
             parity:8\t2\tinf\t5.0\t1\n\
             hamming:64\t2\t50.0\t60.0\t2\n",
        )
        .unwrap();
        let table = TrainingTable::load(&path).unwrap();
        assert_eq!(table.len(), 2, "only the two valid lines survive");
        assert!(table.get(&EccConfig::secded(true), 4).is_some());
        assert!(table.get(&EccConfig::hamming(true), 2).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_cache_version_is_discarded() {
        let dir = std::env::temp_dir().join(format!("arc-cache-stale-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("training.tsv");
        // A v1-era cache measured the pre-scheduled kernels; its numbers
        // would poison the optimizer's cost model, so nothing loads.
        std::fs::write(
            &path,
            "# arc training cache v1\n\
             secded:64\t4\t100.0\t200.0\t3\n\
             hamming:64\t2\t50.0\t60.0\t2\n",
        )
        .unwrap();
        let table = TrainingTable::load(&path).unwrap();
        assert!(table.is_empty(), "v1 cache must be discarded, got {} entries", table.len());
        // Saving writes the current version, which round-trips.
        let mut fresh = TrainingTable::new();
        fresh.record(&EccConfig::secded(true), 4, 100.0, 200.0);
        fresh.save(&path).unwrap();
        let header = std::fs::read_to_string(&path).unwrap();
        assert!(header.starts_with("# arc training cache v2"));
        assert_eq!(TrainingTable::load(&path).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn merge_averages_observations() {
        let mut m = Measurement { encode_mb_s: 100.0, decode_mb_s: 200.0, samples: 1 };
        m.merge(200.0, 400.0);
        assert_eq!(m.samples, 2);
        assert!((m.encode_mb_s - 150.0).abs() < 1e-12);
        assert!((m.decode_mb_s - 300.0).abs() < 1e-12);
    }

    #[test]
    fn load_or_default_handles_missing_file() {
        let table = TrainingTable::load_or_default(Path::new("/definitely/not/here.tsv"));
        assert!(table.is_empty());
    }
}
