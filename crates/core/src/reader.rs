//! Random-access reads over ARC containers: [`ArcReader`] borrows a
//! container and serves `decode_range(offset, len)` requests by touching
//! only the shards that cover the range.
//!
//! Every shard a read touches is copied out of the borrowed container,
//! ECC-verified/corrected by the same [`ParallelCodec`] machinery the full
//! decode uses, and checked against its per-shard CRC-32 before a single
//! byte is returned — a range read gives the same end-to-end guarantee as
//! a full `arc_decode()`, just scoped to the shards it needed. Decoded
//! shards are kept in a bounded **LRU cache** (capacity in bytes), so a
//! tile-server access pattern — many small reads with locality — pays the
//! ECC cost once per shard, not once per read.
//!
//! Monolithic v1 containers open too: they are presented as a single
//! synthetic shard covering the whole payload, so `decode_range` stays
//! correct (the first read performs the one full decode, later reads hit
//! the cache).

use std::collections::HashMap;
use std::sync::Arc;

use arc_ecc::codec::CorrectionReport;
use arc_ecc::{EccScheme, ParallelCodec};

use crate::container::{self, ContainerMeta, IndexRepair, ShardEntry};
use crate::error::ArcError;
use crate::extension::{self, ExtensionRegistry};
use crate::interface::{check_shard_geometry, verify_shard_crc};

/// Default shard-cache capacity (64 MiB of decoded shards).
pub const DEFAULT_CACHE_CAPACITY: usize = 64 << 20;

/// Counters for the reader's decoded-shard cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Range-read shard lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode the shard.
    pub misses: u64,
    /// Decoded shards evicted to stay under the byte capacity.
    pub evictions: u64,
    /// Decoded bytes currently resident.
    pub resident_bytes: usize,
    /// Configured capacity in bytes.
    pub capacity: usize,
}

/// What one [`ArcReader::decode_range`] call did.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RangeReport {
    /// Shards overlapping the requested range.
    pub shards_touched: usize,
    /// Of those, how many were served from the cache.
    pub cache_hits: usize,
    /// Encoded payload bytes actually run through the ECC decoder by this
    /// call (0 when every shard was cached). The partial-read win is this
    /// number staying far below the container's payload length.
    pub encoded_bytes_decoded: usize,
    /// Repairs performed while decoding the touched shards.
    pub correction: CorrectionReport,
}

/// Bounded byte-capacity LRU of decoded shards.
///
/// Recency is a monotonic tick stamped on every hit/insert; eviction scans
/// for the minimum tick. The scan is O(resident shards), which is small by
/// construction (capacity / shard size), so no intrusive list is needed.
#[derive(Debug)]
struct ShardCache {
    capacity: usize,
    resident: usize,
    tick: u64,
    slots: HashMap<usize, (u64, Vec<u8>)>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ShardCache {
    fn new(capacity: usize) -> ShardCache {
        ShardCache {
            capacity,
            resident: 0,
            tick: 0,
            slots: HashMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// If `shard` is resident, refresh its recency, append `lo..hi` of its
    /// decoded bytes to `out`, and return true. Counts the hit/miss.
    fn copy_range(&mut self, shard: usize, lo: usize, hi: usize, out: &mut Vec<u8>) -> bool {
        self.tick += 1;
        match self.slots.get_mut(&shard) {
            Some((tick, data)) => {
                *tick = self.tick;
                out.extend_from_slice(&data[lo.min(data.len())..hi.min(data.len())]);
                self.hits += 1;
                arc_telemetry::counter_add("core.shard_cache.hits", 1);
                true
            }
            None => {
                self.misses += 1;
                arc_telemetry::counter_add("core.shard_cache.misses", 1);
                false
            }
        }
    }

    /// Insert a decoded shard, evicting least-recently-used shards until
    /// the byte budget holds. A shard larger than the whole capacity is
    /// not cached at all (the caller has already used its bytes).
    fn insert(&mut self, shard: usize, data: Vec<u8>) {
        if data.len() > self.capacity {
            return;
        }
        self.tick += 1;
        if let Some((_, old)) = self.slots.insert(shard, (self.tick, data.clone())) {
            // Re-inserting an evicted-then-decoded shard is the common
            // case; replacing a live one only happens if the caller races
            // itself, but keep the byte accounting exact regardless.
            self.resident -= old.len();
        }
        self.resident += data.len();
        while self.resident > self.capacity {
            let victim = self
                .slots
                .iter()
                .filter(|(k, _)| **k != shard)
                .min_by_key(|(_, (tick, _))| *tick)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            if let Some((_, evicted)) = self.slots.remove(&victim) {
                self.resident -= evicted.len();
                self.evictions += 1;
                arc_telemetry::counter_add("core.shard_cache.evictions", 1);
            }
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident,
            capacity: self.capacity,
        }
    }
}

/// A random-access handle over one ARC container.
///
/// Borrows the container bytes; decoding is per-shard and lazy. Repeat
/// reads are served from the LRU shard cache. The reader is `&mut self`
/// because reads mutate the cache — clone the underlying bytes into
/// multiple readers for concurrent access.
pub struct ArcReader<'a> {
    bytes: &'a [u8],
    meta: ContainerMeta,
    entries: Vec<ShardEntry>,
    starts: Vec<usize>,
    payload_offset: usize,
    codec: ParallelCodec<Arc<dyn EccScheme>>,
    cache: ShardCache,
    index_repair: IndexRepair,
    sharded: bool,
}

impl std::fmt::Debug for ArcReader<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ArcReader")
            .field("scheme_id", &self.meta.scheme_id)
            .field("data_len", &self.meta.data_len)
            .field("shards", &self.entries.len())
            .field("sharded", &self.sharded)
            .finish()
    }
}

impl<'a> ArcReader<'a> {
    /// Open a container for random access with the default cache capacity
    /// ([`DEFAULT_CACHE_CAPACITY`]). `threads` accepts
    /// [`arc_ecc::parallel::ANY_THREADS`] (0) for "all available cores";
    /// parallelism applies within each decoded shard's chunks.
    pub fn open(bytes: &'a [u8], threads: usize) -> Result<ArcReader<'a>, ArcError> {
        Self::with_cache_capacity(bytes, threads, DEFAULT_CACHE_CAPACITY)
    }

    /// As [`ArcReader::open`], additionally resolving extension scheme ids
    /// (`x:<name>`) against `registry`, so v2 containers produced by
    /// [`crate::extension::encode_sharded_with_scheme`] (or a
    /// registry-backed [`crate::stream::StreamEncoder`]) serve
    /// `decode_range` exactly like built-ins.
    pub fn open_with_registry(
        bytes: &'a [u8],
        threads: usize,
        registry: &ExtensionRegistry,
    ) -> Result<ArcReader<'a>, ArcError> {
        Self::build(bytes, threads, DEFAULT_CACHE_CAPACITY, Some(registry))
    }

    /// As [`ArcReader::open`] with an explicit decoded-shard cache
    /// capacity in bytes (0 disables caching).
    pub fn with_cache_capacity(
        bytes: &'a [u8],
        threads: usize,
        capacity: usize,
    ) -> Result<ArcReader<'a>, ArcError> {
        Self::build(bytes, threads, capacity, None)
    }

    fn build(
        bytes: &'a [u8],
        threads: usize,
        capacity: usize,
        registry: Option<&ExtensionRegistry>,
    ) -> Result<ArcReader<'a>, ArcError> {
        let unpacked = container::unpack(bytes)?;
        let meta = unpacked.meta;
        let scheme = extension::resolve_scheme(&meta.scheme_id, registry)?;
        if meta.data_len > unpacked.payload.len() {
            return Err(ArcError::Corrupted(format!(
                "declared data length {} exceeds payload length {}",
                meta.data_len,
                unpacked.payload.len()
            )));
        }
        let codec = ParallelCodec::with_chunk_size(scheme, threads, meta.chunk_size)?;
        let (entries, sharded) = match unpacked.index {
            Some(index) => (index.entries, true),
            None => {
                // v1 fallback: one synthetic shard spanning the payload,
                // end-to-end-checked by the container's whole-data CRC.
                let entries = if meta.data_len == 0 && meta.payload_len == 0 {
                    Vec::new()
                } else {
                    vec![ShardEntry {
                        offset: 0,
                        encoded_len: meta.payload_len,
                        decoded_len: meta.data_len,
                        crc: meta.data_crc,
                    }]
                };
                (entries, false)
            }
        };
        let mut starts = Vec::with_capacity(entries.len());
        let mut pos = 0usize;
        for e in &entries {
            starts.push(pos);
            pos += e.decoded_len;
        }
        Ok(ArcReader {
            bytes,
            index_repair: unpacked.index_repair,
            payload_offset: unpacked.payload_offset,
            meta,
            entries,
            starts,
            codec,
            cache: ShardCache::new(capacity),
            sharded,
        })
    }

    /// The container's parsed header.
    pub fn meta(&self) -> &ContainerMeta {
        &self.meta
    }

    /// Original data length in bytes.
    pub fn data_len(&self) -> usize {
        self.meta.data_len
    }

    /// Number of independently decodable shards (1 for v1 containers).
    pub fn shard_count(&self) -> usize {
        self.entries.len()
    }

    /// True for v2 sharded containers, false for the v1 fallback.
    pub fn is_sharded(&self) -> bool {
        self.sharded
    }

    /// How the shard index was recovered at open (all-zero for v1).
    pub fn index_repair(&self) -> IndexRepair {
        self.index_repair
    }

    /// Cache counters so far.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Decode exactly `offset..offset + len` of the original data.
    ///
    /// Touches only the shards covering the range; each is served from the
    /// LRU cache or ECC-decoded + CRC-verified on the spot. The empty
    /// range is valid anywhere in `0..=data_len`.
    pub fn decode_range(
        &mut self,
        offset: usize,
        len: usize,
    ) -> Result<(Vec<u8>, RangeReport), ArcError> {
        let _span = arc_telemetry::span("core.decode_range");
        arc_telemetry::counter_add("core.range.requests", 1);
        arc_telemetry::counter_add("core.range.bytes_requested", len as u64);
        let end = offset
            .checked_add(len)
            .ok_or_else(|| ArcError::InvalidRequest("range end overflows".into()))?;
        if end > self.meta.data_len {
            return Err(ArcError::InvalidRequest(format!(
                "range {offset}..{end} exceeds data length {}",
                self.meta.data_len
            )));
        }
        // arc-lint: bounded(len is the caller's request, validated against the container extent above)
        let mut out = Vec::with_capacity(len);
        let mut report = RangeReport::default();
        if len == 0 {
            return Ok((out, report));
        }
        // First covering shard: the last one starting at or before offset.
        let mut i = self.starts.partition_point(|s| *s <= offset).saturating_sub(1);
        while i < self.entries.len() && out.len() < len {
            let e = self.entries[i];
            let start = self.starts[i];
            // Overlap of [offset, end) with this shard, in shard-local bytes.
            let lo = offset.max(start) - start;
            let hi = end.min(start + e.decoded_len) - start;
            report.shards_touched += 1;
            if self.cache.copy_range(i, lo, hi, &mut out) {
                report.cache_hits += 1;
            } else {
                let (decoded, correction) = self.decode_shard(i, &e)?;
                out.extend_from_slice(&decoded[lo..hi]);
                report.encoded_bytes_decoded += e.encoded_len;
                report.correction.merge(&correction);
                self.cache.insert(i, decoded);
            }
            i += 1;
        }
        arc_telemetry::counter_add("core.range.shards_touched", report.shards_touched as u64);
        arc_telemetry::counter_add(
            "core.range.encoded_bytes_decoded",
            report.encoded_bytes_decoded as u64,
        );
        Ok((out, report))
    }

    /// Decode one shard out of the borrowed container into a fresh buffer,
    /// repairing and CRC-verifying it.
    fn decode_shard(
        &self,
        i: usize,
        e: &ShardEntry,
    ) -> Result<(Vec<u8>, CorrectionReport), ArcError> {
        if self.sharded {
            check_shard_geometry(&self.codec, e, i)?;
        }
        let payload = &self.bytes[self.payload_offset..self.payload_offset + self.meta.payload_len];
        let region = payload
            .get(e.offset..e.offset + e.encoded_len)
            .ok_or_else(|| ArcError::Corrupted(format!("shard {i}: region exceeds payload")))?;
        let mut buf = region.to_vec();
        let correction = self.codec.decode_shard_in_place(&mut buf, e.decoded_len)?;
        buf.truncate(e.decoded_len);
        verify_shard_crc(&self.codec, &buf, e.crc, i)?;
        Ok((buf, correction))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{arc_engine_encode, arc_engine_encode_sharded};
    use arc_ecc::EccConfig;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 131) ^ (i >> 3)) as u8).collect()
    }

    fn v2(data: &[u8], shard_size: usize) -> Vec<u8> {
        arc_engine_encode_sharded(data, EccConfig::secded(true), 1, shard_size).unwrap()
    }

    #[test]
    fn range_matches_full_decode_slice() {
        let data = sample(100_000);
        let enc = v2(&data, 16 << 10);
        let mut reader = ArcReader::open(&enc, 1).unwrap();
        assert!(reader.is_sharded());
        for (off, len) in
            [(0usize, 100usize), (16 << 10, 1), (50_000, 33_000), (99_999, 1), (0, 100_000)]
        {
            let (out, _) = reader.decode_range(off, len).unwrap();
            assert_eq!(out, &data[off..off + len], "{off}+{len}");
        }
    }

    #[test]
    fn cache_serves_repeat_reads() {
        let data = sample(64 << 10);
        let enc = v2(&data, 8 << 10);
        let mut reader = ArcReader::open(&enc, 1).unwrap();
        let (_, first) = reader.decode_range(0, 10_000).unwrap();
        assert_eq!(first.cache_hits, 0);
        assert!(first.encoded_bytes_decoded > 0);
        let (_, second) = reader.decode_range(0, 10_000).unwrap();
        assert_eq!(second.cache_hits, second.shards_touched);
        assert_eq!(second.encoded_bytes_decoded, 0);
        let stats = reader.cache_stats();
        assert!(stats.hits >= 2 && stats.misses >= 1);
    }

    #[test]
    fn tiny_cache_evicts_lru() {
        let data = sample(64 << 10);
        let enc = v2(&data, 8 << 10);
        // Room for exactly one decoded 8 KiB shard.
        let mut reader = ArcReader::with_cache_capacity(&enc, 1, 8 << 10).unwrap();
        reader.decode_range(0, 100).unwrap(); // shard 0 resident
        reader.decode_range(8 << 10, 100).unwrap(); // shard 1 evicts shard 0
        let (_, third) = reader.decode_range(0, 100).unwrap(); // shard 0 again: miss
        assert_eq!(third.cache_hits, 0);
        assert!(reader.cache_stats().evictions >= 1);
        assert!(reader.cache_stats().resident_bytes <= 8 << 10);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let data = sample(16 << 10);
        let enc = v2(&data, 4 << 10);
        let mut reader = ArcReader::with_cache_capacity(&enc, 1, 0).unwrap();
        reader.decode_range(0, 100).unwrap();
        let (_, second) = reader.decode_range(0, 100).unwrap();
        assert_eq!(second.cache_hits, 0);
        assert_eq!(reader.cache_stats().resident_bytes, 0);
    }

    #[test]
    fn v1_container_reads_as_single_shard() {
        let data = sample(30_000);
        let enc = arc_engine_encode(&data, EccConfig::secded(true), 1).unwrap();
        let mut reader = ArcReader::open(&enc, 1).unwrap();
        assert!(!reader.is_sharded());
        assert_eq!(reader.shard_count(), 1);
        let (out, report) = reader.decode_range(10_000, 5_000).unwrap();
        assert_eq!(out, &data[10_000..15_000]);
        assert_eq!(report.shards_touched, 1);
        // Second read is cached — the one full decode already happened.
        let (_, r2) = reader.decode_range(0, 30_000).unwrap();
        assert_eq!(r2.cache_hits, 1);
    }

    #[test]
    fn empty_range_and_bounds() {
        let data = sample(10_000);
        let enc = v2(&data, 4 << 10);
        let mut reader = ArcReader::open(&enc, 1).unwrap();
        let (out, report) = reader.decode_range(5_000, 0).unwrap();
        assert!(out.is_empty());
        assert_eq!(report.shards_touched, 0);
        let (out, _) = reader.decode_range(10_000, 0).unwrap();
        assert!(out.is_empty());
        assert!(reader.decode_range(10_000, 1).is_err());
        assert!(reader.decode_range(usize::MAX, 2).is_err());
    }

    #[test]
    fn extension_container_serves_ranges_with_registry() {
        let r = crate::extension::standard_extensions().unwrap();
        let data = sample(100_000);
        let enc =
            crate::extension::encode_sharded_with_scheme(&data, &r, "bch", 1, 16 << 10).unwrap();
        // Registry-less open refuses with a pointer to the registry entry
        // point rather than decoding garbage.
        assert!(matches!(ArcReader::open(&enc, 1), Err(ArcError::InvalidRequest(_))));
        let mut reader = ArcReader::open_with_registry(&enc, 1, &r).unwrap();
        assert!(reader.is_sharded());
        for (off, len) in [(0usize, 100usize), (50_000, 33_000), (99_999, 1)] {
            let (out, _) = reader.decode_range(off, len).unwrap();
            assert_eq!(out, &data[off..off + len], "{off}+{len}");
        }
    }

    #[test]
    fn corrupted_shard_is_repaired_and_reported() {
        let data = sample(64 << 10);
        let mut enc = v2(&data, 8 << 10);
        let reader = ArcReader::open(&enc, 1).unwrap();
        // Flip one bit inside shard 3's encoded region.
        let e = reader.entries[3];
        let off = reader.payload_offset + e.offset + 100;
        drop(reader);
        enc[off] ^= 0x04;
        let mut reader = ArcReader::open(&enc, 1).unwrap();
        let (out, report) = reader.decode_range(3 * (8 << 10) + 50, 200).unwrap();
        assert_eq!(out, &data[3 * (8 << 10) + 50..3 * (8 << 10) + 250]);
        assert_eq!(report.correction.corrected_bits, 1);
    }

    #[test]
    fn uncorrectable_shard_raises_without_poisoning_others() {
        let data = sample(64 << 10);
        let mut enc = v2(&data, 8 << 10);
        let reader = ArcReader::open(&enc, 1).unwrap();
        let e = reader.entries[2];
        let start = reader.payload_offset + e.offset;
        drop(reader);
        // Trash half of shard 2 — way beyond SEC-DED's power.
        for b in &mut enc[start + 1_000..start + 4_000] {
            *b = 0x77;
        }
        let mut reader = ArcReader::open(&enc, 1).unwrap();
        assert!(reader.decode_range(2 * (8 << 10), 100).is_err());
        // Other shards still read fine.
        let (out, _) = reader.decode_range(0, 100).unwrap();
        assert_eq!(out, &data[..100]);
        let (out, _) = reader.decode_range(5 * (8 << 10), 100).unwrap();
        assert_eq!(out, &data[5 * (8 << 10)..5 * (8 << 10) + 100]);
    }
}
