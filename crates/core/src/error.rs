//! Error types for the ARC core, including the workspace-wide decode-error
//! taxonomy ([`DecodeError`]) that every decompressor's failure folds into.

use std::fmt;

use arc_ecc::EccError;
use arc_lossless::LosslessError;
use arc_sz::SzError;
use arc_zfp::ZfpError;

/// Failures surfaced by the ARC interface and engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcError {
    /// A user constraint failed validation.
    InvalidRequest(String),
    /// The resiliency constraint admits no configuration.
    NoCandidates(String),
    /// The training table has no measurements for any candidate; call
    /// `ArcContext::init` (or `train`) first.
    NotTrained,
    /// An ECC-layer failure, including detected-but-uncorrectable damage —
    /// the error `arc_decode()` raises in Figure 7b.
    Ecc(EccError),
    /// The container itself is damaged beyond even the header's protection.
    Corrupted(String),
    /// Cache-file I/O failure.
    Io(String),
}

impl fmt::Display for ArcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcError::InvalidRequest(d) => write!(f, "invalid request: {d}"),
            ArcError::NoCandidates(d) => write!(f, "no ECC configuration admitted: {d}"),
            ArcError::NotTrained => write!(f, "ARC has not been trained; run arc_init first"),
            ArcError::Ecc(e) => write!(f, "ECC failure: {e}"),
            ArcError::Corrupted(d) => write!(f, "container corrupted: {d}"),
            ArcError::Io(d) => write!(f, "cache I/O: {d}"),
        }
    }
}

impl std::error::Error for ArcError {}

impl From<EccError> for ArcError {
    fn from(e: EccError) -> Self {
        ArcError::Ecc(e)
    }
}

/// Workspace-wide decode-error taxonomy.
///
/// Every decoder in the repository — the lossless substrate, both lossy
/// compressors, the ECC layer, and the container — reports corruption
/// through its own error type; `DecodeError` folds them into four classes
/// so harnesses and callers can reason uniformly about *how* a decode
/// refused hostile bytes (see DESIGN.md §11):
///
/// * [`Truncated`](DecodeError::Truncated) — the stream ended before its
///   declared content did.
/// * [`Malformed`](DecodeError::Malformed) — a field is structurally
///   impossible (bad magic, Kraft-violating Huffman table, zero-extent
///   dimension, …): the paper's *Compressor Exception* class.
/// * [`WorkBudgetExceeded`](DecodeError::WorkBudgetExceeded) — decoding
///   would exceed the caller's element/byte budget, usually because a
///   corrupt length field demands an absurd allocation: the guard that
///   maps to the paper's *Timeout* class.
/// * [`Uncorrectable`](DecodeError::Uncorrectable) — damage was detected
///   but exceeds the ECC scheme's correction power (Figure 7b's
///   `arc_decode` exception).
#[derive(Debug, Clone, PartialEq)]
pub enum DecodeError {
    /// The stream ended before the declared content did.
    Truncated(String),
    /// The stream is structurally invalid.
    Malformed(String),
    /// Decoding would exceed the caller's resource budget.
    WorkBudgetExceeded {
        /// Units (elements or bytes) the stream demands.
        demanded: u64,
        /// Units the caller allowed.
        budget: u64,
    },
    /// Corruption detected but beyond the scheme's correction power.
    Uncorrectable(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated(d) => write!(f, "truncated: {d}"),
            DecodeError::Malformed(d) => write!(f, "malformed: {d}"),
            DecodeError::WorkBudgetExceeded { demanded, budget } => {
                write!(f, "work budget exceeded: demanded {demanded}, budget {budget}")
            }
            DecodeError::Uncorrectable(d) => write!(f, "uncorrectable: {d}"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<LosslessError> for DecodeError {
    fn from(e: LosslessError) -> Self {
        match e {
            LosslessError::Truncated(d) => DecodeError::Truncated(d),
            LosslessError::Malformed(d) => DecodeError::Malformed(d),
            LosslessError::WorkBudgetExceeded { demanded, budget } => {
                DecodeError::WorkBudgetExceeded { demanded, budget }
            }
        }
    }
}

impl From<SzError> for DecodeError {
    fn from(e: SzError) -> Self {
        match e {
            SzError::Malformed(d) => DecodeError::Malformed(d),
            SzError::Lossless(inner) => inner.into(),
            SzError::WorkBudgetExceeded { demanded, budget } => {
                DecodeError::WorkBudgetExceeded { demanded, budget }
            }
        }
    }
}

impl From<ZfpError> for DecodeError {
    fn from(e: ZfpError) -> Self {
        match e {
            ZfpError::Truncated(d) => DecodeError::Truncated(d),
            ZfpError::Malformed(d) => DecodeError::Malformed(d),
            ZfpError::WorkBudgetExceeded { demanded, budget } => {
                DecodeError::WorkBudgetExceeded { demanded, budget }
            }
        }
    }
}

impl From<EccError> for DecodeError {
    fn from(e: EccError) -> Self {
        match e {
            EccError::Uncorrectable { .. } => DecodeError::Uncorrectable(e.to_string()),
            other => DecodeError::Malformed(other.to_string()),
        }
    }
}

impl From<ArcError> for DecodeError {
    fn from(e: ArcError) -> Self {
        match e {
            ArcError::Ecc(inner) => inner.into(),
            ArcError::Corrupted(d) => DecodeError::Uncorrectable(d),
            other => DecodeError::Malformed(other.to_string()),
        }
    }
}
