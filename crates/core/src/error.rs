//! Error type for the ARC core.

use std::fmt;

use arc_ecc::EccError;

/// Failures surfaced by the ARC interface and engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ArcError {
    /// A user constraint failed validation.
    InvalidRequest(String),
    /// The resiliency constraint admits no configuration.
    NoCandidates(String),
    /// The training table has no measurements for any candidate; call
    /// `ArcContext::init` (or `train`) first.
    NotTrained,
    /// An ECC-layer failure, including detected-but-uncorrectable damage —
    /// the error `arc_decode()` raises in Figure 7b.
    Ecc(EccError),
    /// The container itself is damaged beyond even the header's protection.
    Corrupted(String),
    /// Cache-file I/O failure.
    Io(String),
}

impl fmt::Display for ArcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArcError::InvalidRequest(d) => write!(f, "invalid request: {d}"),
            ArcError::NoCandidates(d) => write!(f, "no ECC configuration admitted: {d}"),
            ArcError::NotTrained => write!(f, "ARC has not been trained; run arc_init first"),
            ArcError::Ecc(e) => write!(f, "ECC failure: {e}"),
            ArcError::Corrupted(d) => write!(f, "container corrupted: {d}"),
            ArcError::Io(d) => write!(f, "cache I/O: {d}"),
        }
    }
}

impl std::error::Error for ArcError {}

impl From<EccError> for ArcError {
    fn from(e: EccError) -> Self {
        ArcError::Ecc(e)
    }
}
