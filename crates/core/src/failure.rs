//! System failure models for constraint selection (§6.4).
//!
//! The paper derives ARC constraints from Sridharan et al.'s field studies
//! of two decommissioned DOE machines: Cielo (8,500 nodes at 7,300 ft in
//! Los Alamos) and Hopper (6,000 nodes at 43 ft in Oakland). From their
//! per-device DRAM failure rates the paper computes a mean time between
//! soft-error failures of **1.9 days** for Cielo and **5.43 days** for
//! Hopper, attributes the ~2× difference primarily to altitude, and uses
//! the fault-type mix (single-bit vs multi-bit/burst) to recommend ECC.

use crate::constraints::{ErrorResponse, ResiliencyConstraint};

/// A machine's failure profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemProfile {
    /// Machine name.
    pub name: &'static str,
    /// Compute node count.
    pub nodes: u64,
    /// Elevation in feet (the paper's causal variable for the rate gap).
    pub elevation_ft: f64,
    /// Faults per node per day attributable to DRAM.
    pub faults_per_node_day: f64,
    /// Fraction of faults that are soft errors (Cielo 34.9%, Hopper 42.1%).
    pub soft_error_fraction: f64,
    /// Fraction of all faults caused by single-bit errors
    /// (Cielo 70.79%, Hopper 94.6%).
    pub single_bit_fraction: f64,
    /// Fraction of faults occurring as spatially-close burst errors.
    pub burst_fraction: f64,
    /// DRAM capacity per node in GB (for errors-per-MB estimates).
    pub memory_gb_per_node: f64,
}

impl SystemProfile {
    /// Cielo: LANL, 8,500 nodes, ~7,300 ft — the high-failure-rate machine.
    /// Calibrated so [`SystemProfile::mtbf_days`] reproduces the paper's
    /// 1.9 days.
    pub fn cielo() -> SystemProfile {
        SystemProfile {
            name: "Cielo",
            nodes: 8_500,
            elevation_ft: 7_300.0,
            faults_per_node_day: 1.0 / (1.9 * 8_500.0),
            soft_error_fraction: 0.349,
            single_bit_fraction: 0.7079,
            // §6.4: "most [multi-bit errors] occur as burst errors in the
            // same DRAM device" — model the bulk of the 29.21% as bursts.
            burst_fraction: 0.25,
            memory_gb_per_node: 32.0,
        }
    }

    /// Hopper: NERSC Oakland, 6,000 nodes, 43 ft — roughly half Cielo's
    /// failure rate; single-bit flips dominate (94.6%).
    pub fn hopper() -> SystemProfile {
        SystemProfile {
            name: "Hopper",
            nodes: 6_000,
            elevation_ft: 43.0,
            faults_per_node_day: 1.0 / (5.43 * 6_000.0),
            soft_error_fraction: 0.421,
            single_bit_fraction: 0.946,
            // §6.4: 4.05% of Hopper's multi-bit errors are bursts.
            burst_fraction: 0.0405 * (1.0 - 0.946),
            memory_gb_per_node: 32.0,
        }
    }

    /// Mean time between machine-wide soft-error failures in days.
    pub fn mtbf_days(&self) -> f64 {
        1.0 / (self.faults_per_node_day * self.nodes as f64)
    }

    /// Fraction of faults that are multi-bit.
    pub fn multi_bit_fraction(&self) -> f64 {
        1.0 - self.single_bit_fraction
    }

    /// Expected soft errors per MB of data resident in DRAM for
    /// `days_resident` days (uniform over the machine's memory).
    pub fn errors_per_mb(&self, days_resident: f64) -> f64 {
        let errors_per_node = self.faults_per_node_day * days_resident;
        errors_per_node / (self.memory_gb_per_node * 1024.0)
    }

    /// The resiliency constraint §6.4 argues for on this machine:
    /// burst-heavy profiles need Reed-Solomon (`ARC_COR_BURST`), single-bit
    /// dominated profiles are served by sparse correction
    /// (`ARC_COR_SPARSE`: Hamming / SEC-DED / RS).
    pub fn recommended_resiliency(&self) -> ResiliencyConstraint {
        if self.multi_bit_fraction() > 0.15 {
            ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectBurst])
        } else {
            ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectSparse])
        }
    }

    /// One-line summary in the style of the paper's §6.4 discussion.
    pub fn summary(&self) -> String {
        format!(
            "{}: {} nodes at {:.0} ft — soft-error MTBF {:.2} days; \
             {:.1}% of faults single-bit, {:.1}% multi-bit",
            self.name,
            self.nodes,
            self.elevation_ft,
            self.mtbf_days(),
            self.single_bit_fraction * 100.0,
            self.multi_bit_fraction() * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_ecc::EccMethod;

    #[test]
    fn cielo_mtbf_matches_paper() {
        let c = SystemProfile::cielo();
        assert!((c.mtbf_days() - 1.9).abs() < 1e-9, "{}", c.mtbf_days());
    }

    #[test]
    fn hopper_mtbf_matches_paper() {
        let h = SystemProfile::hopper();
        assert!((h.mtbf_days() - 5.43).abs() < 1e-9, "{}", h.mtbf_days());
    }

    #[test]
    fn cielo_fails_roughly_twice_as_often() {
        let c = SystemProfile::cielo();
        let h = SystemProfile::hopper();
        let ratio = c.faults_per_node_day / h.faults_per_node_day;
        assert!((1.3..3.0).contains(&ratio), "per-node rate ratio {ratio}");
        assert!(c.mtbf_days() < h.mtbf_days());
    }

    #[test]
    fn recommendations_match_section_6_4() {
        // Cielo (29.21% multi-bit, mostly bursts) → Reed-Solomon.
        let cielo = SystemProfile::cielo().recommended_resiliency();
        let space = arc_ecc::EccConfig::standard_space();
        let allowed = cielo.filter(&space);
        assert!(allowed.iter().all(|c| c.method() == EccMethod::Rs));
        // Hopper (94.6% single-bit) → sparse correction, SEC-DED suffices.
        let hopper = SystemProfile::hopper().recommended_resiliency();
        let allowed = hopper.filter(&space);
        assert!(allowed.iter().any(|c| c.method() == EccMethod::SecDed));
        assert!(allowed.iter().all(|c| c.method() != EccMethod::Parity));
    }

    #[test]
    fn errors_per_mb_scales_with_residency() {
        let c = SystemProfile::cielo();
        let short = c.errors_per_mb(1.0);
        let long = c.errors_per_mb(30.0);
        assert!(long > short);
        assert!((long / short - 30.0).abs() < 1e-9);
        assert!(short > 0.0 && short < 1.0, "per-MB rates are small: {short}");
    }

    #[test]
    fn summary_mentions_key_numbers() {
        let s = SystemProfile::cielo().summary();
        assert!(s.contains("Cielo") && s.contains("8500"));
        assert!(s.contains("1.90"));
    }
}
