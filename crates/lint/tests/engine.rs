//! Integration tests: the fixture corpus (one flagged and one clean file per
//! rule), the workspace self-lint against the committed baseline, the
//! baseline ratchet on a scratch tree, and output determinism.

use std::path::{Path, PathBuf};

use arc_lint::baseline::Baseline;
use arc_lint::engine::{run, Options};
use arc_lint::rules::default_rules;

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    crate_dir().join("../..").canonicalize().expect("workspace root resolves")
}

/// Run a single rule over one fixture directory, path filters off.
fn run_rule(rule: &str, dir: &Path) -> arc_lint::engine::RunResult {
    let opts =
        Options { respect_filters: false, only_rule: Some(rule.to_string()), ..Options::default() };
    run(dir, &opts).expect("fixture run succeeds")
}

#[test]
fn every_rule_flags_its_bad_fixture_and_passes_its_good_one() {
    for rule in default_rules() {
        let key = rule.key();
        let dir = crate_dir().join("fixtures").join(key.replace('-', "_"));
        assert!(dir.is_dir(), "missing fixture directory for rule {key}");

        let result = run_rule(key, &dir);
        let bad: Vec<_> = result.findings.iter().filter(|f| f.file == "bad.rs").collect();
        let good: Vec<_> = result.findings.iter().filter(|f| f.file == "good.rs").collect();
        assert!(!bad.is_empty(), "rule {key} failed to flag fixtures/{key}/bad.rs");
        assert!(
            good.is_empty(),
            "rule {key} false-positived on fixtures/{key}/good.rs: {:?}",
            good.iter().map(|f| f.line).collect::<Vec<_>>()
        );
        for f in &result.findings {
            assert_eq!(f.rule, key, "only the selected rule may fire");
        }
    }
}

#[test]
fn suppression_comments_waive_findings_but_stay_reported() {
    let dir = crate_dir().join("fixtures/no_panic_in_lib");
    let result = run_rule("no-panic-in-lib", &dir);
    let waived: Vec<_> = result.suppressed.iter().filter(|f| f.file == "good.rs").collect();
    assert_eq!(waived.len(), 1, "the allow() comment in good.rs waives exactly one site");
}

#[test]
fn workspace_self_lint_is_clean_against_committed_baseline() {
    let root = workspace_root();
    let result = run(&root, &Options::default()).expect("workspace run succeeds");
    let actual = Baseline::from_findings(&result.findings);
    let committed = std::fs::read_to_string(root.join("lint-baseline.json"))
        .expect("lint-baseline.json is committed at the workspace root");
    let allowed = Baseline::parse(&committed).expect("committed baseline parses");
    let ratchet = allowed.ratchet(&actual);
    assert!(
        ratchet.new.is_empty(),
        "new lint violations beyond the committed baseline: {:?}",
        ratchet
            .new
            .iter()
            .map(|e| format!("{} {} ({} > {})", e.rule, e.file, e.actual, e.allowed))
            .collect::<Vec<_>>()
    );
    assert!(
        ratchet.stale.is_empty(),
        "stale baseline entries (run scripts/lint_baseline.sh to shrink): {:?}",
        ratchet
            .stale
            .iter()
            .map(|e| format!("{} {} ({} < {})", e.rule, e.file, e.actual, e.allowed))
            .collect::<Vec<_>>()
    );
}

#[test]
fn ecc_and_lint_hold_the_hardened_invariants_with_no_baseline_debt() {
    let root = workspace_root();
    let result = run(&root, &Options::default()).expect("workspace run succeeds");
    for f in &result.findings {
        assert!(
            f.rule != "unsafe-needs-safety",
            "unjustified unsafe must stay at zero workspace-wide: {}:{}",
            f.file,
            f.line
        );
        assert!(
            !(f.rule == "no-panic-in-lib" && f.file.starts_with("crates/ecc/")),
            "ecc library paths must stay abort-free: {}:{}",
            f.file,
            f.line
        );
        assert!(
            !f.file.starts_with("crates/lint/"),
            "the linter must lint itself clean: {} {}:{}",
            f.rule,
            f.file,
            f.line
        );
    }
}

#[test]
fn baseline_ratchet_on_a_scratch_tree() {
    let scratch = std::env::temp_dir().join(format!("arc-lint-ratchet-{}", std::process::id()));
    let src = scratch.join("src");
    std::fs::create_dir_all(&src).expect("scratch dir");
    std::fs::write(src.join("a.rs"), "pub fn f(v: &[u8]) -> u8 { v.first().copied().unwrap() }\n")
        .expect("write fixture");

    let opts = Options {
        respect_filters: false,
        only_rule: Some("no-panic-in-lib".into()),
        ..Options::default()
    };
    let result = run(&scratch, &opts).expect("scratch run succeeds");
    let actual = Baseline::from_findings(&result.findings);
    assert_eq!(actual.total(), 1);

    // Honest baseline: clean ratchet.
    let clean = actual.clone().ratchet(&actual);
    assert!(clean.new.is_empty() && clean.stale.is_empty());

    // New debt beyond the baseline fails.
    let empty = Baseline::default();
    let grown = empty.ratchet(&actual);
    assert_eq!(grown.new.len(), 1);

    // Paying debt down makes the old baseline stale — it may only shrink.
    let paid = actual.ratchet(&Baseline::default());
    assert_eq!(paid.stale.len(), 1);

    std::fs::remove_dir_all(&scratch).ok();
}

#[test]
fn runs_are_deterministic() {
    let root = workspace_root();
    let a = run(&root, &Options::default()).expect("first run succeeds");
    let b = run(&root, &Options::default()).expect("second run succeeds");
    let key = |r: &arc_lint::engine::RunResult| {
        r.findings.iter().map(|f| (f.file.clone(), f.line, f.rule)).collect::<Vec<_>>()
    };
    assert_eq!(key(&a), key(&b));
    assert_eq!(a.files_scanned, b.files_scanned);
    assert_eq!(
        Baseline::from_findings(&a.findings).to_json(),
        Baseline::from_findings(&b.findings).to_json(),
        "baseline serialization must be byte-identical across runs"
    );
    // Findings arrive sorted.
    let k = key(&a);
    let mut sorted = k.clone();
    sorted.sort();
    assert_eq!(k, sorted);
}
