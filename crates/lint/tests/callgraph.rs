//! Integration tests for the interprocedural layer: the cone-rule fixture
//! corpus, `--graph` dump determinism, the lint-crate graph exclusion, and
//! the hostile-sweep ↔ decode-root correspondence.

use std::path::{Path, PathBuf};

use arc_lint::cone;
use arc_lint::engine::{run, GraphFormat, Options};

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    crate_dir().join("../..").canonicalize().expect("workspace root resolves")
}

/// Run a single cone rule over one fixture directory, path filters off.
fn run_rule(rule: &str, dir: &Path) -> arc_lint::engine::RunResult {
    let opts =
        Options { respect_filters: false, only_rule: Some(rule.to_string()), ..Options::default() };
    run(dir, &opts).expect("fixture run succeeds")
}

#[test]
fn cone_rules_flag_their_bad_fixture_and_pass_their_good_one() {
    for (key, _desc) in cone::cone_rule_descriptions() {
        let dir = crate_dir().join("fixtures").join(key.replace('-', "_"));
        assert!(dir.is_dir(), "missing fixture directory for rule {key}");

        let result = run_rule(key, &dir);
        let bad: Vec<_> = result.findings.iter().filter(|f| f.file == "bad.rs").collect();
        let good: Vec<_> = result.findings.iter().filter(|f| f.file == "good.rs").collect();
        assert!(!bad.is_empty(), "rule {key} failed to flag fixtures/{key}/bad.rs");
        assert!(
            good.is_empty(),
            "rule {key} false-positived on fixtures/{key}/good.rs: {:?}",
            good.iter().map(|f| (f.line, f.message.clone())).collect::<Vec<_>>()
        );
        for f in &result.findings {
            assert_eq!(f.rule, key, "only the selected rule may fire");
        }
        assert!(result.cone_size > 0, "fixture roots for {key} must produce a non-empty cone");
    }
}

#[test]
fn graph_json_dump_is_byte_identical_across_runs() {
    let root = workspace_root();
    let opts = Options { graph: Some(GraphFormat::Json), ..Options::default() };
    let a = run(&root, &opts).expect("first graph run succeeds");
    let b = run(&root, &opts).expect("second graph run succeeds");
    let da = a.graph_dump.expect("first run produced a dump");
    let db = b.graph_dump.expect("second run produced a dump");
    assert_eq!(da, db, "--graph json must be byte-identical across runs");
    assert!(a.cone_size > 0, "the workspace cone must be non-empty");
    assert_eq!(a.cone_size, b.cone_size);
}

/// The engine leaves `crates/lint/` out of the call graph on the grounds
/// that no workspace crate depends on it (see `is_graph_source`). This test
/// keeps that premise honest: the day some crate grows an `arc-lint`
/// dependency, the exclusion must be revisited.
#[test]
fn nothing_outside_the_lint_crate_imports_it() {
    let root = workspace_root();
    let crates_dir = root.join("crates");
    let rd = std::fs::read_dir(&crates_dir).expect("crates/ is readable");
    for entry in rd {
        let dir = entry.expect("dir entry").path();
        if !dir.is_dir() || dir.file_name().is_some_and(|n| n == "lint") {
            continue;
        }
        let manifest = dir.join("Cargo.toml");
        let text = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|e| panic!("cannot read {}: {e}", manifest.display()));
        assert!(
            !text.contains("arc-lint"),
            "{} depends on arc-lint; the call-graph exclusion of crates/lint is no longer sound",
            manifest.display()
        );
    }
}

/// Every decode entry point the hostile sweep attacks
/// (`crates/faultsim/src/hostile.rs`, `builtin_targets`) must be declared in
/// `lint-roots.toml` and must actually sit in the analyzed cone — the static
/// gate and the dynamic sweep have to cover the same surface.
#[test]
fn every_hostile_decode_target_is_a_declared_root() {
    // (call as written in hostile.rs, spec in lint-roots.toml, cone label)
    let surface = [
        (
            "arc_sz::decompress_with_limits",
            "arc_sz::decompress_with_limits",
            "arc_sz::decompress_with_limits",
        ),
        (
            "arc_zfp::decompress_with_limits",
            "arc_zfp::decompress_with_limits",
            "arc_zfp::decompress_with_limits",
        ),
        (
            "arc_lossless::deflate::decompress_with_limit",
            "deflate::decompress_with_limit",
            "arc_lossless::deflate::decompress_with_limit",
        ),
        (
            "arc_lossless::zstd_like::decompress_with_limit",
            "zstd_like::decompress_with_limit",
            "arc_lossless::zstd_like::decompress_with_limit",
        ),
        (
            "arc_core::decode_with_threads",
            "interface::decode_with_threads",
            "arc_core::interface::decode_with_threads",
        ),
        ("arc_core::ArcReader::open", "ArcReader::open", "arc_core::reader::ArcReader::open"),
        (
            "reader.decode_range",
            "ArcReader::decode_range",
            "arc_core::reader::ArcReader::decode_range",
        ),
        ("dec.push", "StreamDecoder::push", "arc_core::stream::StreamDecoder::push"),
        ("dec.finish", "StreamDecoder::finish", "arc_core::stream::StreamDecoder::finish"),
        ("arc_core::container::unpack", "container::unpack", "arc_core::container::unpack"),
    ];

    let root = workspace_root();
    let hostile = std::fs::read_to_string(root.join("crates/faultsim/src/hostile.rs"))
        .expect("hostile.rs is readable");
    let roots_toml = std::fs::read_to_string(root.join("lint-roots.toml"))
        .expect("lint-roots.toml is committed at the workspace root");
    let opts = Options { graph: Some(GraphFormat::Json), ..Options::default() };
    let dump =
        run(&root, &opts).expect("graph run succeeds").graph_dump.expect("graph dump produced");

    for (call, spec, label) in surface {
        assert!(
            hostile.contains(call),
            "hostile.rs no longer calls `{call}` — update this test's surface table"
        );
        assert!(
            roots_toml.contains(&format!("\"{spec}\"")),
            "hostile sweep attacks `{call}` but lint-roots.toml declares no root `{spec}`"
        );
        assert!(
            dump.contains(&format!("\"fn\": \"{label}\"")),
            "declared root `{spec}` did not land in the analyzed cone as `{label}`"
        );
    }

    // The sweep driver itself is a root too: it hands hostile bytes to every
    // target above, so its own frame must be in the cone.
    assert!(roots_toml.contains("\"hostile::run_case\""));
    assert!(dump.contains("\"fn\": \"arc_faultsim::hostile::run_case\""));
}
