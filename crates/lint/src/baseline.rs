//! The ratcheted debt baseline.
//!
//! `lint-baseline.json` records, per rule and per file, how many violations
//! existed when the rule landed. The gate fails when any (rule, file) count
//! *exceeds* its baseline — new debt is forbidden — while counts below the
//! baseline are reported as stale entries so the file can only ever shrink
//! (`--strict-baseline` turns stale entries into failures too, which is how
//! CI stops the baseline from being quietly inflated).
//!
//! The format is a two-level JSON object with integer leaves:
//!
//! ```json
//! { "no-lossy-cast": { "crates/ecc/src/gf256.rs": 12 } }
//! ```
//!
//! Keys are emitted in sorted order with fixed indentation, so regenerating
//! the file on any machine produces byte-identical output.

use std::collections::BTreeMap;

use crate::json::{escape, Parser};
use crate::rules::Finding;

/// Violation counts per rule, per file. `BTreeMap` everywhere: iteration
/// order — and therefore serialized output — is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    /// rule key → (file path → violation count).
    pub counts: BTreeMap<String, BTreeMap<String, u64>>,
}

/// One (rule, file) pair where the actual count differs from the baseline.
#[derive(Debug, Clone)]
pub struct RatchetEntry {
    /// Rule key.
    pub rule: String,
    /// Workspace-relative file path.
    pub file: String,
    /// Violations found in this run.
    pub actual: u64,
    /// Violations the baseline allows.
    pub allowed: u64,
}

/// Result of comparing a run against the committed baseline.
#[derive(Debug, Clone, Default)]
pub struct Ratchet {
    /// Pairs with more violations than the baseline allows — these fail.
    pub new: Vec<RatchetEntry>,
    /// Pairs with fewer violations than recorded — the baseline should be
    /// regenerated to lock in the improvement.
    pub stale: Vec<RatchetEntry>,
}

impl Baseline {
    /// Aggregate findings into per-(rule, file) counts.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        for f in findings {
            *counts.entry(f.rule.to_string()).or_default().entry(f.file.clone()).or_default() += 1;
        }
        Baseline { counts }
    }

    /// Total recorded violations.
    pub fn total(&self) -> u64 {
        self.counts.values().flat_map(|m| m.values()).sum()
    }

    /// Allowed count for a (rule, file) pair; zero when absent.
    pub fn allowed(&self, rule: &str, file: &str) -> u64 {
        self.counts.get(rule).and_then(|m| m.get(file)).copied().unwrap_or(0)
    }

    /// Serialize with sorted keys and fixed layout (byte-stable).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        let mut first_rule = true;
        for (rule, files) in &self.counts {
            if files.is_empty() {
                continue;
            }
            if !first_rule {
                out.push_str(",\n");
            }
            first_rule = false;
            out.push_str(&format!("  \"{}\": {{\n", escape(rule)));
            let mut first_file = true;
            for (file, count) in files {
                if !first_file {
                    out.push_str(",\n");
                }
                first_file = false;
                out.push_str(&format!("    \"{}\": {count}", escape(file)));
            }
            out.push_str("\n  }");
        }
        out.push_str("\n}\n");
        out
    }

    /// Parse the two-level baseline format. Unknown value shapes are errors:
    /// the gate refuses to run against a baseline it cannot fully interpret.
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut p = Parser::new(text);
        let mut counts: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
        p.consume('{')?;
        if !p.peek_is('}') {
            loop {
                let rule = p.string()?;
                p.consume(':')?;
                p.consume('{')?;
                let files = counts.entry(rule).or_default();
                if !p.peek_is('}') {
                    loop {
                        let file = p.string()?;
                        p.consume(':')?;
                        let count = p.integer()?;
                        files.insert(file, count);
                        if !p.comma_or_close('}')? {
                            break;
                        }
                    }
                }
                p.consume('}')?;
                if !p.comma_or_close('}')? {
                    break;
                }
            }
        }
        p.consume('}')?;
        p.expect_end()?;
        Ok(Baseline { counts })
    }

    /// Compare actual counts against this baseline's allowances.
    pub fn ratchet(&self, actual: &Baseline) -> Ratchet {
        let mut r = Ratchet::default();
        // Every (rule, file) present in either map is examined once; the
        // union keeps entries deterministic (BTreeMap order on both sides).
        let mut pairs: BTreeMap<(String, String), (u64, u64)> = BTreeMap::new();
        for (rule, files) in &actual.counts {
            for (file, n) in files {
                pairs.insert((rule.clone(), file.clone()), (*n, self.allowed(rule, file)));
            }
        }
        for (rule, files) in &self.counts {
            for (file, allowed) in files {
                pairs
                    .entry((rule.clone(), file.clone()))
                    .or_insert((actual.allowed(rule, file), *allowed));
            }
        }
        for ((rule, file), (n, allowed)) in pairs {
            if n > allowed {
                r.new.push(RatchetEntry { rule, file, actual: n, allowed });
            } else if n < allowed {
                r.stale.push(RatchetEntry { rule, file, actual: n, allowed });
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Severity;

    fn f(rule: &'static str, file: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            file: file.into(),
            line: 1,
            message: String::new(),
        }
    }

    #[test]
    fn json_round_trip_is_stable() {
        let b = Baseline::from_findings(&[
            f("no-panic-in-lib", "crates/sz/src/lib.rs"),
            f("no-panic-in-lib", "crates/sz/src/lib.rs"),
            f("no-lossy-cast", "crates/ecc/src/gf256.rs"),
        ]);
        let j1 = b.to_json();
        let parsed = Baseline::parse(&j1).unwrap();
        assert_eq!(parsed, b);
        assert_eq!(parsed.to_json(), j1, "serialization must be byte-stable");
        assert_eq!(b.allowed("no-panic-in-lib", "crates/sz/src/lib.rs"), 2);
    }

    #[test]
    fn sorted_key_order_is_independent_of_insertion_order() {
        let a = Baseline::from_findings(&[f("z-rule", "b.rs"), f("a-rule", "a.rs")]);
        let b = Baseline::from_findings(&[f("a-rule", "a.rs"), f("z-rule", "b.rs")]);
        assert_eq!(a.to_json(), b.to_json());
        let json = a.to_json();
        assert!(json.find("a-rule").unwrap() < json.find("z-rule").unwrap());
    }

    #[test]
    fn ratchet_classifies_new_and_stale() {
        let allowed = Baseline::parse("{\"r\": {\"a.rs\": 2, \"gone.rs\": 1}}").unwrap();
        let actual = Baseline::from_findings(&[
            f("r", "a.rs"),
            f("r", "a.rs"),
            f("r", "a.rs"),
            f("r", "b.rs"),
        ]);
        let r = allowed.ratchet(&actual);
        let new: Vec<_> = r.new.iter().map(|e| e.file.as_str()).collect();
        let stale: Vec<_> = r.stale.iter().map(|e| e.file.as_str()).collect();
        assert_eq!(new, vec!["a.rs", "b.rs"]);
        assert_eq!(stale, vec!["gone.rs"]);
    }

    #[test]
    fn empty_baseline_serializes_and_parses() {
        let b = Baseline::default();
        assert_eq!(b.to_json(), "{\n\n}\n");
        assert_eq!(Baseline::parse(&b.to_json()).unwrap(), b);
        assert_eq!(Baseline::parse("{}").unwrap(), b);
    }

    #[test]
    fn malformed_baseline_is_an_error_not_a_panic() {
        assert!(Baseline::parse("").is_err());
        assert!(Baseline::parse("{\"r\": 3}").is_err());
        assert!(Baseline::parse("{\"r\": {\"f\": \"x\"}}").is_err());
        assert!(Baseline::parse("{\"r\": {\"f\": 1}} trailing").is_err());
    }
}
