//! Per-file analysis context shared by every rule.
//!
//! Rules see a [`FileCtx`]: the token stream plus line-granular metadata —
//! which lines are comment-only or attribute-only, which lines sit inside
//! `#[cfg(test)]` / `#[test]` regions, what comment text each line carries,
//! and where `// arc-lint: allow(rule, reason)` suppressions apply.

use std::collections::{BTreeMap, BTreeSet};

use crate::lexer::{lex, LexError, TokKind, Token};

/// A parsed inline suppression: `// arc-lint: allow(<rule>, <reason>)`.
#[derive(Debug, Clone)]
pub struct Suppression {
    /// Rule key the suppression targets.
    pub rule: String,
    /// Free-text justification (may be empty if the author omitted it).
    pub reason: String,
    /// Line the comment sits on; it covers this line and the next.
    pub line: usize,
}

/// A parsed bounds proof: `// arc-lint: bounded(<why>)`. Unlike `allow`,
/// which waives one named rule, `bounded` is a *semantic* claim — the index
/// or allocation size on the covered line cannot exceed its container or
/// budget — honored by both `decode-no-direct-index` and
/// `decode-bounded-alloc`.
#[derive(Debug, Clone)]
pub struct BoundsProof {
    /// Free-text proof of the bound (why the site cannot go out of range).
    pub reason: String,
    /// Line the comment sits on; it covers this line and the next.
    pub line: usize,
}

/// Everything a rule needs to know about one source file.
pub struct FileCtx {
    /// Workspace-relative path with forward slashes (stable across OSes).
    pub rel: String,
    /// The token stream (comments included).
    pub tokens: Vec<Token>,
    /// Raw source lines (index 0 = line 1).
    pub lines: Vec<String>,
    /// Lines inside `#[cfg(test)]` items or `#[test]` functions.
    test_lines: BTreeSet<usize>,
    /// Lines whose only tokens are comments.
    comment_only: BTreeSet<usize>,
    /// Lines that begin an attribute (`#[…]` / `#![…]`), including every
    /// line a multi-line attribute spans.
    attr_lines: BTreeSet<usize>,
    /// Concatenated comment text per line (trailing comments included).
    comment_text: BTreeMap<usize, String>,
    /// Parsed `arc-lint: allow` suppressions.
    pub suppressions: Vec<Suppression>,
    /// Parsed `arc-lint: bounded` proofs.
    pub bounds_proofs: Vec<BoundsProof>,
}

impl FileCtx {
    /// Lex and analyze one file. `rel` must use forward slashes.
    pub fn build(rel: String, text: &str) -> Result<FileCtx, LexError> {
        let tokens = lex(text)?;
        let lines: Vec<String> = text.lines().map(str::to_string).collect();
        let mut ctx = FileCtx {
            rel,
            tokens,
            lines,
            test_lines: BTreeSet::new(),
            comment_only: BTreeSet::new(),
            attr_lines: BTreeSet::new(),
            comment_text: BTreeMap::new(),
            suppressions: Vec::new(),
            bounds_proofs: Vec::new(),
        };
        ctx.index_lines();
        ctx.index_test_regions();
        ctx.index_suppressions();
        Ok(ctx)
    }

    /// True if `line` is inside a `#[cfg(test)]` item or `#[test]` function.
    pub fn in_test_code(&self, line: usize) -> bool {
        self.test_lines.contains(&line)
    }

    /// True if every token on `line` is a comment.
    pub fn is_comment_line(&self, line: usize) -> bool {
        self.comment_only.contains(&line)
    }

    /// True if `line` is part of an attribute.
    pub fn is_attr_line(&self, line: usize) -> bool {
        self.attr_lines.contains(&line)
    }

    /// All comment text appearing on `line` (empty if none).
    pub fn comment_on(&self, line: usize) -> &str {
        self.comment_text.get(&line).map(String::as_str).unwrap_or("")
    }

    /// True when a suppression for `rule` covers `line` (the comment's own
    /// line or the line directly below it).
    pub fn is_suppressed(&self, rule: &str, line: usize) -> bool {
        self.suppressions.iter().any(|s| s.rule == rule && (s.line == line || s.line + 1 == line))
    }

    /// True when a `bounded(<why>)` proof covers `line` (the comment's own
    /// line — trailing comments — or the line directly below it).
    pub fn is_bounded(&self, line: usize) -> bool {
        self.bounds_proofs.iter().any(|b| b.line == line || b.line + 1 == line)
    }

    fn index_lines(&mut self) {
        // Group token kinds per line to classify comment-only lines and
        // accumulate comment text.
        let mut kinds_by_line: BTreeMap<usize, Vec<TokKind>> = BTreeMap::new();
        for t in &self.tokens {
            kinds_by_line.entry(t.line).or_default().push(t.kind);
            if matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                let entry = self.comment_text.entry(t.line).or_default();
                entry.push_str(&t.text);
                entry.push(' ');
            }
        }
        for (line, kinds) in &kinds_by_line {
            if kinds.iter().all(|k| matches!(k, TokKind::LineComment | TokKind::BlockComment)) {
                self.comment_only.insert(*line);
            }
        }
        // Attribute spans: a `#` punct followed by `[` (or `![`) opens an
        // attribute; every line up to the matching `]` is an attr line.
        let toks = &self.tokens;
        let mut i = 0;
        while i < toks.len() {
            if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
                let mut j = i + 1;
                if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "!" {
                    j += 1;
                }
                if j < toks.len() && toks[j].kind == TokKind::Punct && toks[j].text == "[" {
                    let mut depth = 0usize;
                    let mut k = j;
                    while k < toks.len() {
                        if toks[k].kind == TokKind::Punct {
                            match toks[k].text.as_str() {
                                "[" => depth += 1,
                                "]" => {
                                    depth = depth.saturating_sub(1);
                                    if depth == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        k += 1;
                    }
                    let end_line = toks.get(k).map(|t| t.line).unwrap_or(toks[i].line);
                    for l in toks[i].line..=end_line {
                        self.attr_lines.insert(l);
                    }
                    i = k + 1;
                    continue;
                }
            }
            i += 1;
        }
    }

    /// Mark the line span of every item annotated `#[cfg(test)]` (in any
    /// position inside the cfg predicate, e.g. `cfg(all(test, unix))`) or
    /// `#[test]`: skip any further attributes, then brace-match the body.
    fn index_test_regions(&mut self) {
        let toks = &self.tokens;
        let mut i = 0;
        while i < toks.len() {
            if !(toks[i].kind == TokKind::Punct && toks[i].text == "#") {
                i += 1;
                continue;
            }
            let Some(open) = non_comment_after(toks, i) else {
                i += 1;
                continue;
            };
            if !(toks[open].kind == TokKind::Punct && toks[open].text == "[") {
                i += 1;
                continue;
            }
            // Scan the attribute tokens up to the matching `]`.
            let mut depth = 0usize;
            let mut k = open;
            let mut is_test_attr = false;
            let mut saw_cfg_or_bare = false;
            while k < toks.len() {
                let t = &toks[k];
                if t.kind == TokKind::Punct {
                    match t.text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                } else if t.kind == TokKind::Ident {
                    if t.text == "cfg" {
                        saw_cfg_or_bare = true;
                    }
                    if t.text == "test" {
                        // `#[test]` (bare, first ident) or `test` anywhere
                        // inside a `cfg(...)` predicate.
                        if saw_cfg_or_bare || k == open + 1 {
                            is_test_attr = true;
                        }
                    }
                }
                k += 1;
            }
            if !is_test_attr {
                i = k + 1;
                continue;
            }
            // Skip any further attributes, then find the item body `{ … }`
            // (or a terminating `;` for `mod name;` style items).
            let mut j = k + 1;
            while let Some(n) = non_comment_at_or_after(toks, j) {
                if toks[n].kind == TokKind::Punct && toks[n].text == "#" {
                    // Another attribute: jump past its closing `]`.
                    let mut d = 0usize;
                    let mut m = n;
                    while m < toks.len() {
                        if toks[m].kind == TokKind::Punct {
                            match toks[m].text.as_str() {
                                "[" => d += 1,
                                "]" => {
                                    d = d.saturating_sub(1);
                                    if d == 0 {
                                        break;
                                    }
                                }
                                _ => {}
                            }
                        }
                        m += 1;
                    }
                    j = m + 1;
                    continue;
                }
                break;
            }
            // Find the opening brace of the item body.
            let mut m = j;
            let mut body_open = None;
            while m < toks.len() {
                if toks[m].kind == TokKind::Punct {
                    if toks[m].text == "{" {
                        body_open = Some(m);
                        break;
                    }
                    if toks[m].text == ";" {
                        // `#[cfg(test)] mod tests;` — the region is the
                        // referenced file, which is walked separately.
                        break;
                    }
                }
                m += 1;
            }
            if let Some(b) = body_open {
                let mut d = 0usize;
                let mut e = b;
                while e < toks.len() {
                    if toks[e].kind == TokKind::Punct {
                        match toks[e].text.as_str() {
                            "{" => d += 1,
                            "}" => {
                                d = d.saturating_sub(1);
                                if d == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    e += 1;
                }
                let start = toks[i].line;
                let end = toks.get(e).map(|t| t.line).unwrap_or(start);
                for l in start..=end {
                    self.test_lines.insert(l);
                }
                i = e + 1;
                continue;
            }
            i = m + 1;
        }
    }

    /// Parse `arc-lint: allow(<rule>, <reason>)` and `arc-lint:
    /// bounded(<why>)` out of comment tokens. A single comment may carry
    /// several clauses.
    fn index_suppressions(&mut self) {
        for t in &self.tokens {
            if !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment) {
                continue;
            }
            let Some(at) = t.text.find("arc-lint:") else { continue };
            let directive = &t.text[at + "arc-lint:".len()..];
            let mut rest = directive;
            while let Some(open) = rest.find("allow(") {
                let body = &rest[open + "allow(".len()..];
                let Some(close) = body.find(')') else { break };
                let clause = &body[..close];
                let (rule, reason) = match clause.split_once(',') {
                    Some((r, why)) => (r.trim(), why.trim()),
                    None => (clause.trim(), ""),
                };
                if !rule.is_empty() {
                    self.suppressions.push(Suppression {
                        rule: rule.to_string(),
                        reason: reason.to_string(),
                        line: t.line,
                    });
                }
                rest = &body[close + 1..];
            }
            let mut rest = directive;
            while let Some(open) = rest.find("bounded(") {
                let body = &rest[open + "bounded(".len()..];
                // The proof text may itself contain calls (`i < v.len()`),
                // so match the close paren by nesting depth, not first-hit.
                let Some(close) = matching_close(body) else { break };
                let reason = body[..close].trim();
                self.bounds_proofs.push(BoundsProof { reason: reason.to_string(), line: t.line });
                rest = &body[close + 1..];
            }
        }
    }
}

/// Byte index of the `)` closing an already-open paren group in `body`
/// (depth starts at 1), or `None` if the group never closes.
fn matching_close(body: &str) -> Option<usize> {
    let mut depth = 1usize;
    for (i, c) in body.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Index of the first non-comment token strictly after `i`.
fn non_comment_after(toks: &[Token], i: usize) -> Option<usize> {
    non_comment_at_or_after(toks, i + 1)
}

/// Index of the first non-comment token at or after `i`.
fn non_comment_at_or_after(toks: &[Token], i: usize) -> Option<usize> {
    let mut j = i;
    while j < toks.len() {
        if !matches!(toks[j].kind, TokKind::LineComment | TokKind::BlockComment) {
            return Some(j);
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx {
        FileCtx::build("test.rs".into(), src).unwrap()
    }

    #[test]
    fn cfg_test_mod_region_is_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let c = ctx(src);
        assert!(!c.in_test_code(1));
        assert!(c.in_test_code(2));
        assert!(c.in_test_code(3));
        assert!(c.in_test_code(4));
        assert!(c.in_test_code(5));
        assert!(!c.in_test_code(6));
    }

    #[test]
    fn test_fn_attribute_marks_its_body() {
        let src = "#[test]\nfn t() {\n    body();\n}\nfn lib() {}\n";
        let c = ctx(src);
        assert!(c.in_test_code(3));
        assert!(!c.in_test_code(5));
    }

    #[test]
    fn cfg_all_test_is_recognized() {
        let src = "#[cfg(all(test, unix))]\nmod tests {\n    fn t() {}\n}\n";
        let c = ctx(src);
        assert!(c.in_test_code(3));
    }

    #[test]
    fn cfg_feature_string_test_is_not_a_test_region() {
        let src = "#[cfg(feature = \"test\")]\nfn f() {\n    body();\n}\n";
        let c = ctx(src);
        assert!(!c.in_test_code(3));
    }

    #[test]
    fn comment_and_attr_line_classification() {
        let src = "// top comment\n#[derive(Debug)]\nstruct S; // trailing\n";
        let c = ctx(src);
        assert!(c.is_comment_line(1));
        assert!(c.is_attr_line(2));
        assert!(!c.is_comment_line(3));
        assert!(c.comment_on(3).contains("trailing"));
    }

    #[test]
    fn suppressions_cover_their_line_and_the_next() {
        let src = "// arc-lint: allow(no-panic-in-lib, length proven above)\nlet x = v.unwrap();\nlet y = w.unwrap();\n";
        let c = ctx(src);
        assert!(c.is_suppressed("no-panic-in-lib", 1));
        assert!(c.is_suppressed("no-panic-in-lib", 2));
        assert!(!c.is_suppressed("no-panic-in-lib", 3));
        assert!(!c.is_suppressed("other-rule", 2));
        assert_eq!(c.suppressions[0].reason, "length proven above");
    }

    #[test]
    fn bounded_proofs_cover_their_line_and_the_next() {
        let src = "let a = v[i]; // arc-lint: bounded(i < v.len() checked above)\nlet b = v[j];\nlet c = v[k];\n";
        let c = ctx(src);
        assert!(c.is_bounded(1));
        assert!(c.is_bounded(2));
        assert!(!c.is_bounded(3));
        assert_eq!(c.bounds_proofs[0].reason, "i < v.len() checked above");
    }
}
