//! The decode-cone rules: totality invariants enforced transitively over
//! every function reachable from a declared decode root.
//!
//! The token-level `no-panic-in-lib` rule polices *files*; these rules
//! police the *call graph*. A decoder facing hostile bytes must terminate
//! in one of ARC's outcome classes (Completed / Terminated / Timeout), so
//! nothing it can reach — however many calls deep — may:
//!
//! - abort (`decode-no-panic-transitive`): `panic!`-family macros,
//!   `.unwrap()`, `.expect(…)`;
//! - index without proof (`decode-no-direct-index`): `x[i]` panics on a
//!   hostile offset — use `.get(…)` or carry
//!   `// arc-lint: bounded(<why>)`;
//! - size an allocation from attacker-influenceable input
//!   (`decode-bounded-alloc`): `with_capacity(n)` / `resize(n, …)` /
//!   `vec![x; n]` where `n` derives from a parameter or header load needs
//!   a budget clamp (`.min(limit)`) or a `bounded` annotation.
//!
//! Because resolution over-approximates (see [`crate::callgraph`]), a
//! finding here means "possibly reachable from a decode root" — the
//! witness root in the message names the declared entry point whose cone
//! contains the function.

use std::collections::BTreeMap;

use crate::callgraph::CallGraph;
use crate::context::FileCtx;
use crate::rules::{Finding, Severity};

/// Rule key: no panic-family site reachable from a decode root.
pub const DECODE_NO_PANIC: &str = "decode-no-panic-transitive";
/// Rule key: no unproven direct indexing reachable from a decode root.
pub const DECODE_NO_INDEX: &str = "decode-no-direct-index";
/// Rule key: no unbounded allocation size reachable from a decode root.
pub const DECODE_BOUNDED_ALLOC: &str = "decode-bounded-alloc";

/// Pseudo-rule for `lint-roots.toml` problems (parse errors, specs that
/// resolve to nothing). Reported as findings so a renamed entry point
/// fails the `--deny` gate instead of silently shrinking the cone.
pub const LINT_ROOTS_ERROR: &str = "lint-roots-error";

/// Keys and `--list-rules` descriptions of the cone rules, in report order.
pub fn cone_rule_descriptions() -> [(&'static str, &'static str); 3] {
    [
        (
            DECODE_NO_PANIC,
            "no `.unwrap()`/`panic!`-family site anywhere in the decode-root call cone",
        ),
        (
            DECODE_NO_INDEX,
            "direct `x[i]` in the decode cone must become `.get()` or carry \
             `arc-lint: bounded(..)`",
        ),
        (
            DECODE_BOUNDED_ALLOC,
            "allocation sizes in the decode cone derived from input need a clamp or \
             `arc-lint: bounded(..)`",
        ),
    ]
}

/// True when `key` names a cone rule (used for `--rule` filtering).
pub fn is_cone_rule(key: &str) -> bool {
    key == DECODE_NO_PANIC || key == DECODE_NO_INDEX || key == DECODE_BOUNDED_ALLOC
}

/// Check every function in `cone` against the three rules, appending
/// findings. `ctxs` maps workspace-relative paths to their file contexts
/// (for `bounded(…)` proofs); `only` restricts to a single rule key.
pub fn check_cone(
    graph: &CallGraph,
    cone: &BTreeMap<usize, String>,
    ctxs: &BTreeMap<String, FileCtx>,
    only: Option<&str>,
    out: &mut Vec<Finding>,
) {
    let want = |key: &str| only.is_none_or(|o| o == key);
    for (id, root) in cone {
        let node = &graph.nodes[*id];
        let item = &node.item;
        let ctx = ctxs.get(&item.file);
        if want(DECODE_NO_PANIC) {
            for p in &item.panics {
                out.push(Finding {
                    rule: DECODE_NO_PANIC,
                    severity: Severity::Error,
                    file: item.file.clone(),
                    line: p.line,
                    message: format!(
                        "`{}` in `{}`, reachable from decode root `{root}`",
                        p.what,
                        item.display()
                    ),
                });
            }
        }
        if want(DECODE_NO_INDEX) {
            for ix in &item.indexes {
                if ctx.is_some_and(|c| c.is_bounded(ix.line)) {
                    continue;
                }
                out.push(Finding {
                    rule: DECODE_NO_INDEX,
                    severity: Severity::Error,
                    file: item.file.clone(),
                    line: ix.line,
                    message: format!(
                        "direct index `{}[…]` in `{}`, reachable from decode root `{root}` — \
                         use `.get()` or annotate `arc-lint: bounded(..)`",
                        ix.receiver,
                        item.display()
                    ),
                });
            }
        }
        if want(DECODE_BOUNDED_ALLOC) {
            for al in &item.allocs {
                if al.size_is_bounded || ctx.is_some_and(|c| c.is_bounded(al.line)) {
                    continue;
                }
                out.push(Finding {
                    rule: DECODE_BOUNDED_ALLOC,
                    severity: Severity::Error,
                    file: item.file.clone(),
                    line: al.line,
                    message: format!(
                        "`{}` sized by `{}` in `{}`, reachable from decode root `{root}` — \
                         clamp to a budget or annotate `arc-lint: bounded(..)`",
                        al.what,
                        al.size_desc,
                        item.display()
                    ),
                });
            }
        }
    }
}
