//! Conservative workspace call graph and decode-root reachability.
//!
//! Built from the per-file [`FnItem`] lists that [`crate::syntax`]
//! recovers. Resolution is **conservative over-approximation**: where the
//! tokens cannot identify a unique callee, every plausible callee gets an
//! edge, and the ambiguity is counted in [`CallGraph::ambiguous_calls`].
//! An edge too many widens the decode cone and at worst demands an extra
//! annotation; an edge too few would let a panic hide below a decode entry
//! point. The resolution rules (DESIGN.md §10 documents the caveats):
//!
//! - **Method calls** `recv.name(…)` — no type information, so the call
//!   resolves to *every* workspace method named `name`.
//! - **Bare free calls** `name(…)` — every free function named `name`
//!   (locals shadowing a function, and closures called through a binding,
//!   also land here; both over-approximate).
//! - **Qualified calls** `a::b::name(…)` — methods whose self type equals
//!   the last qualifier, or free functions — in both cases the remaining
//!   qualifiers must appear, in order, in the callee's module path
//!   (subsequence match, so re-exports like `arc_core::decode_with_threads`
//!   still resolve to `arc_core::interface::decode_with_threads`).
//! - `Self::name(…)` resolves `Self` to the caller's impl self type.
//!
//! Module paths are derived from file paths: `crates/<c>/src/<m>.rs` maps
//! to `arc_<c>::<m>` (with `lib`/`main`/`mod` segments dropped), matching
//! the workspace's `arc-<c>` package naming.
//!
//! `#[cfg(test)]` functions are excluded from the graph entirely: test
//! code may panic, and a test calling `decode_range` must not pull the
//! test itself into the cone.

use std::collections::BTreeMap;

use crate::syntax::{CallSite, FnItem};

/// One function in the graph: the parsed item plus its module path.
pub struct FnNode {
    /// The parsed function.
    pub item: FnItem,
    /// Module path derived from the file path (crate name first).
    pub module_path: Vec<String>,
}

/// The workspace call graph.
pub struct CallGraph {
    /// All non-test functions, sorted by (file, line) — index order is the
    /// node id order everywhere below.
    pub nodes: Vec<FnNode>,
    /// `edges[i]` = sorted, deduplicated callee ids of node `i`.
    pub edges: Vec<Vec<usize>>,
    /// Call sites that resolved to more than one callee.
    pub ambiguous_calls: u64,
    /// Call sites that resolved to no workspace function (std/vendor
    /// calls, macros' internals, turbofish forms the parser misses).
    pub unresolved_calls: u64,
}

/// Derive a module path from a workspace-relative file path. Workspace
/// crates live at `crates/<dir>` and are named `arc-<dir>`, so their lib
/// target is `arc_<dir>`; the root facade crate at `src/` is `arc`. Paths
/// outside either shape (fixture trees) use their components verbatim.
pub fn module_path_for(rel: &str) -> Vec<String> {
    let parts: Vec<&str> = rel.split('/').collect();
    let mut out = Vec::new();
    let rest: &[&str] = if parts.len() >= 4 && parts[0] == "crates" && parts[2] == "src" {
        out.push(format!("arc_{}", parts[1].replace('-', "_")));
        &parts[3..]
    } else if parts.len() >= 2 && parts[0] == "src" {
        out.push("arc".to_string());
        &parts[1..]
    } else {
        &parts[..]
    };
    for comp in rest {
        let stem = comp.strip_suffix(".rs").unwrap_or(comp);
        if stem == "lib" || stem == "main" || stem == "mod" || stem == "bin" {
            continue;
        }
        out.push(stem.replace('-', "_"));
    }
    out
}

/// True when `quals` appears, in order, within `module_path` (subsequence
/// match). The empty qualifier list matches everything.
fn quals_match(quals: &[String], module_path: &[String]) -> bool {
    let mut mi = 0usize;
    for q in quals {
        let mut found = false;
        while mi < module_path.len() {
            if &module_path[mi] == q {
                found = true;
                mi += 1;
                break;
            }
            mi += 1;
        }
        if !found {
            return false;
        }
    }
    true
}

impl CallGraph {
    /// Build the graph from parsed items (test functions are dropped).
    pub fn build(mut items: Vec<FnItem>) -> CallGraph {
        items.retain(|f| !f.is_test);
        items.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
        let nodes: Vec<FnNode> = items
            .into_iter()
            .map(|item| {
                let module_path = module_path_for(&item.file);
                FnNode { item, module_path }
            })
            .collect();
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        let mut ambiguous = 0u64;
        let mut unresolved = 0u64;
        for i in 0..nodes.len() {
            for call in &nodes[i].item.calls {
                let callees = resolve_call(&nodes, i, call);
                match callees.len() {
                    0 => unresolved += 1,
                    1 => {}
                    _ => ambiguous += 1,
                }
                edges[i].extend(callees);
            }
            edges[i].sort_unstable();
            edges[i].dedup();
        }
        CallGraph { nodes, edges, ambiguous_calls: ambiguous, unresolved_calls: unresolved }
    }

    /// Resolve a root *spec* from `lint-roots.toml`. Accepted forms:
    /// `name` (any function, free or method), `Type::name` / `module::name`
    /// (qualified, resolved like a call path). Returns sorted node ids;
    /// empty means the spec names nothing in the workspace.
    pub fn resolve_spec(&self, spec: &str) -> Vec<usize> {
        let path: Vec<String> =
            spec.split("::").map(str::trim).filter(|s| !s.is_empty()).map(String::from).collect();
        let mut out = Vec::new();
        let Some(name) = path.last() else { return out };
        for (id, node) in self.nodes.iter().enumerate() {
            if &node.item.name != name {
                continue;
            }
            let ok = if path.len() == 1 {
                true
            } else {
                let quals = &path[..path.len() - 1];
                match &node.item.self_ty {
                    Some(ty) => {
                        quals.last().is_some_and(|q| q == ty)
                            && quals_match(&quals[..quals.len() - 1], &node.module_path)
                    }
                    None => quals_match(quals, &node.module_path),
                }
            };
            if ok {
                out.push(id);
            }
        }
        out
    }

    /// Node ids carrying a `// arc-lint: decode-root` marker.
    pub fn marked_roots(&self) -> Vec<usize> {
        (0..self.nodes.len()).filter(|&i| self.nodes[i].item.is_decode_root).collect()
    }

    /// Multi-source reachability. `roots` pairs node ids with the label of
    /// the root spec that declared them, *in declaration order*; the map
    /// records, for every reachable node, the first declared root that
    /// reaches it (the "witness" used in rule messages). Cycles are handled
    /// by the visited set; declaration order makes witnesses deterministic.
    pub fn reachable(&self, roots: &[(usize, String)]) -> BTreeMap<usize, String> {
        let mut cone: BTreeMap<usize, String> = BTreeMap::new();
        for (root, label) in roots {
            if *root >= self.nodes.len() || cone.contains_key(root) {
                continue;
            }
            let mut queue = vec![*root];
            cone.insert(*root, label.clone());
            while let Some(n) = queue.pop() {
                for &callee in &self.edges[n] {
                    if let std::collections::btree_map::Entry::Vacant(e) = cone.entry(callee) {
                        e.insert(label.clone());
                        queue.push(callee);
                    }
                }
            }
        }
        cone
    }

    /// Display name for a node id: `file::Type::name` without the path.
    fn node_label(&self, id: usize) -> String {
        let n = &self.nodes[id];
        let mut label = n.module_path.join("::");
        if let Some(ty) = &n.item.self_ty {
            label.push_str("::");
            label.push_str(ty);
        }
        label.push_str("::");
        label.push_str(&n.item.name);
        label
    }

    /// Byte-stable JSON dump of the decode cone: nodes (in id order, which
    /// is (file, line) order), intra-cone edges, and summary counters.
    pub fn cone_json(&self, cone: &BTreeMap<usize, String>) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"total_functions\": {},\n", self.nodes.len()));
        out.push_str(&format!("  \"cone_size\": {},\n", cone.len()));
        out.push_str(&format!("  \"ambiguous_calls\": {},\n", self.ambiguous_calls));
        out.push_str(&format!("  \"unresolved_calls\": {},\n", self.unresolved_calls));
        out.push_str("  \"nodes\": [\n");
        let ids: Vec<usize> = cone.keys().copied().collect();
        for (i, id) in ids.iter().enumerate() {
            let n = &self.nodes[*id];
            out.push_str(&format!(
                "    {{\"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \"root\": \"{}\"}}{}\n",
                crate::json::escape(&self.node_label(*id)),
                crate::json::escape(&n.item.file),
                n.item.line,
                crate::json::escape(cone.get(id).map(String::as_str).unwrap_or("")),
                if i + 1 < ids.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"edges\": [\n");
        let mut lines = Vec::new();
        for id in &ids {
            for callee in &self.edges[*id] {
                if cone.contains_key(callee) {
                    lines.push(format!(
                        "    {{\"from\": \"{}\", \"to\": \"{}\"}}",
                        crate::json::escape(&self.node_label(*id)),
                        crate::json::escape(&self.node_label(*callee))
                    ));
                }
            }
        }
        for (i, l) in lines.iter().enumerate() {
            out.push_str(l);
            out.push_str(if i + 1 < lines.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Graphviz dump of the decode cone (same node ordering as the JSON).
    pub fn cone_dot(&self, cone: &BTreeMap<usize, String>) -> String {
        let mut out = String::from("digraph decode_cone {\n  rankdir=LR;\n  node [shape=box];\n");
        for id in cone.keys() {
            let n = &self.nodes[*id];
            out.push_str(&format!(
                "  \"{}\" [label=\"{}\\n{}:{}\"];\n",
                self.node_label(*id),
                self.node_label(*id),
                n.item.file,
                n.item.line
            ));
        }
        for id in cone.keys() {
            for callee in &self.edges[*id] {
                if cone.contains_key(callee) {
                    out.push_str(&format!(
                        "  \"{}\" -> \"{}\";\n",
                        self.node_label(*id),
                        self.node_label(*callee)
                    ));
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Resolve one call site from node `caller` to candidate callee ids.
fn resolve_call(nodes: &[FnNode], caller: usize, call: &CallSite) -> Vec<usize> {
    // `Self::name` — substitute the caller's impl type for `Self`.
    let path: Vec<String> = call
        .path
        .iter()
        .map(|seg| {
            if seg == "Self" {
                nodes[caller].item.self_ty.clone().unwrap_or_else(|| seg.clone())
            } else {
                seg.clone()
            }
        })
        .collect();
    let Some(name) = path.last() else { return Vec::new() };
    let mut out = Vec::new();
    for (id, node) in nodes.iter().enumerate() {
        if &node.item.name != name {
            continue;
        }
        let ok = if call.method {
            // `recv.name(…)`: any method of that name, anywhere.
            node.item.self_ty.is_some()
        } else if path.len() == 1 {
            // Bare `name(…)`: any free function of that name.
            node.item.self_ty.is_none()
        } else {
            let quals = &path[..path.len() - 1];
            match &node.item.self_ty {
                Some(ty) => {
                    quals.last().is_some_and(|q| q == ty)
                        && quals_match(&quals[..quals.len() - 1], &node.module_path)
                }
                None => quals_match(quals, &node.module_path),
            }
        };
        if ok {
            out.push(id);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FileCtx;
    use crate::syntax::parse_items;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let mut items = Vec::new();
        for (rel, src) in files {
            let ctx = FileCtx::build((*rel).to_string(), src).unwrap();
            items.extend(parse_items(&ctx));
        }
        CallGraph::build(items)
    }

    fn id_of(g: &CallGraph, name: &str) -> usize {
        (0..g.nodes.len()).find(|&i| g.nodes[i].item.name == name).unwrap()
    }

    #[test]
    fn module_paths_follow_workspace_layout() {
        assert_eq!(module_path_for("crates/core/src/container.rs"), vec!["arc_core", "container"]);
        assert_eq!(module_path_for("crates/sz/src/lib.rs"), vec!["arc_sz"]);
        assert_eq!(module_path_for("src/facade.rs"), vec!["arc", "facade"]);
        assert_eq!(module_path_for("crates/x/src/a/mod.rs"), vec!["arc_x", "a"]);
    }

    #[test]
    fn cross_file_qualified_calls_resolve() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "pub fn entry() { helper::work(); }\n"),
            ("crates/a/src/helper.rs", "pub fn work() {}\n"),
        ]);
        let entry = id_of(&g, "entry");
        let work = id_of(&g, "work");
        assert_eq!(g.edges[entry], vec![work]);
        assert_eq!(g.ambiguous_calls, 0);
        assert_eq!(g.unresolved_calls, 0);
    }

    #[test]
    fn reexport_style_paths_resolve_by_subsequence() {
        // `arc_a::work` resolves into `crates/a/src/inner.rs` even though
        // `inner` is absent from the call path (lib.rs re-export shape).
        let g = graph(&[
            ("crates/b/src/lib.rs", "pub fn caller() { arc_a::work(); }\n"),
            ("crates/a/src/inner.rs", "pub fn work() {}\n"),
        ]);
        assert_eq!(g.edges[id_of(&g, "caller")], vec![id_of(&g, "work")]);
    }

    #[test]
    fn ambiguous_method_calls_over_approximate() {
        // Two types expose `push`; a method call must edge to BOTH.
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct A; impl A { pub fn push(&self) {} }\n\
             pub struct B; impl B { pub fn push(&self) {} }\n\
             pub fn driver(x: &A) { x.push(); }\n",
        )]);
        let driver = id_of(&g, "driver");
        assert_eq!(g.edges[driver].len(), 2);
        assert_eq!(g.ambiguous_calls, 1);
    }

    #[test]
    fn cycles_terminate_and_stay_in_cone() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn a() { b(); }\npub fn b() { a(); }\npub fn lonely() {}\n",
        )]);
        let a = id_of(&g, "a");
        let cone = g.reachable(&[(a, "a".to_string())]);
        assert_eq!(cone.len(), 2);
        assert!(cone.contains_key(&id_of(&g, "b")));
        assert!(!cone.contains_key(&id_of(&g, "lonely")));
    }

    #[test]
    fn witness_root_is_first_in_declaration_order() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn r1() { shared(); }\npub fn r2() { shared(); }\npub fn shared() {}\n",
        )]);
        let roots = vec![(id_of(&g, "r1"), "r1".to_string()), (id_of(&g, "r2"), "r2".to_string())];
        let cone = g.reachable(&roots);
        assert_eq!(cone.get(&id_of(&g, "shared")).unwrap(), "r1");
    }

    #[test]
    fn self_calls_resolve_to_the_impl_type() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub struct T;\n\
             impl T { pub fn a(&self) { Self::b(); } pub fn b() {} }\n\
             pub struct U;\n\
             impl U { pub fn b() {} }\n",
        )]);
        let a = id_of(&g, "a");
        // Exactly one callee: T::b, not U::b.
        assert_eq!(g.edges[a].len(), 1);
        let callee = g.edges[a][0];
        assert_eq!(g.nodes[callee].item.self_ty.as_deref(), Some("T"));
    }

    #[test]
    fn test_fns_are_excluded_from_the_graph() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { lib(); }\n}\n",
        )]);
        assert_eq!(g.nodes.len(), 1);
    }

    #[test]
    fn resolve_spec_forms() {
        let g = graph(&[(
            "crates/core/src/reader.rs",
            "pub struct ArcReader;\n\
             impl ArcReader { pub fn decode_range(&self) {} }\n\
             pub fn unpack() {}\n",
        )]);
        assert_eq!(g.resolve_spec("ArcReader::decode_range").len(), 1);
        assert_eq!(g.resolve_spec("decode_range").len(), 1);
        assert_eq!(g.resolve_spec("reader::unpack").len(), 1);
        assert_eq!(g.resolve_spec("container::unpack").len(), 0);
        assert_eq!(g.resolve_spec("nosuch").len(), 0);
    }

    #[test]
    fn cone_dumps_are_stable_and_well_formed() {
        let g = graph(&[("crates/a/src/lib.rs", "pub fn root() { leaf(); }\npub fn leaf() {}\n")]);
        let cone = g.reachable(&[(id_of(&g, "root"), "root".to_string())]);
        let j1 = g.cone_json(&cone);
        let j2 = g.cone_json(&cone);
        assert_eq!(j1, j2);
        assert!(j1.contains("\"cone_size\": 2"));
        let dot = g.cone_dot(&cone);
        assert!(dot.starts_with("digraph decode_cone {"));
        assert!(dot.contains("->"));
    }
}
