//! The driver: deterministic workspace walk, rule dispatch, call-graph
//! construction, suppression filtering.
//!
//! A run has two phases. Phase one lexes every file and applies the
//! token-level rules exactly as before. Phase two parses items out of the
//! retained file contexts ([`crate::syntax`]), builds the workspace call
//! graph ([`crate::callgraph`]), resolves the decode roots declared in
//! `lint-roots.toml` (plus `// arc-lint: decode-root` markers), and runs
//! the transitive cone rules ([`crate::cone`]) over the reachable set.
//!
//! Directory entries are sorted by name at every level, findings are
//! sorted by (file, line, rule), nodes are sorted by (file, line), and
//! BFS witnesses follow root declaration order — two runs over the same
//! tree, on any machine, produce identical findings, baselines, and
//! `--graph` dumps.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::callgraph::CallGraph;
use crate::cone;
use crate::context::FileCtx;
use crate::roots;
use crate::rules::{default_rules, Finding, Rule, Severity};
use crate::syntax::parse_items;

/// Directory names never descended into. `fixtures` holds the lint crate's
/// own corpus of *intentional* violations; `vendor` is third-party shim
/// code; the rest is build/VCS output.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

/// Pseudo-rule key reported when a file cannot be lexed. It participates in
/// the baseline like any other rule (an unparseable file is debt too).
pub const LEX_ERROR_RULE: &str = "lex-error";

/// Name of the committed root-declaration file, looked up under `--root`.
pub const ROOTS_FILE: &str = "lint-roots.toml";

/// Output format for the `--graph` reachability dump.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphFormat {
    /// Graphviz `digraph` text.
    Dot,
    /// Byte-stable JSON (nodes, edges, summary counters).
    Json,
}

/// Engine configuration.
pub struct Options {
    /// Apply each rule's path scope (`Rule::applies`) and restrict the call
    /// graph to library/binary source. Fixture tests turn this off to point
    /// the engine at an arbitrary directory.
    pub respect_filters: bool,
    /// Run only the rule with this key.
    pub only_rule: Option<String>,
    /// Also produce a reachability-cone dump in this format.
    pub graph: Option<GraphFormat>,
}

impl Default for Options {
    fn default() -> Options {
        Options { respect_filters: true, only_rule: None, graph: None }
    }
}

/// Outcome of one engine run.
pub struct RunResult {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by `arc-lint: allow` comments (kept for reporting).
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of functions in the decode cone (0 when the graph phase did
    /// not run).
    pub cone_size: usize,
    /// The `--graph` dump, when one was requested.
    pub graph_dump: Option<String>,
}

/// Recursively collect `.rs` files under `root` in sorted order.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    // Sort by file name at each level: the whole traversal — and therefore
    // every downstream report and baseline — is machine-independent.
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// True when `rel` belongs in the call graph: crate library/binary source
/// (tests, benches, and example trees call decoders too, but hostile bytes
/// only *enter* through library code, and test fns are dropped anyway).
///
/// `crates/lint` itself is excluded: no workspace crate depends on
/// `arc-lint` (a leaf dev tool), so its functions cannot sit below a decode
/// root — but method-name over-approximation (`.build(…)`, `.parse(…)`)
/// would otherwise drag its internals into every cone. The
/// `nothing_outside_the_lint_crate_imports_it` integration test keeps this
/// exclusion honest.
fn is_graph_source(rel: &str) -> bool {
    if rel.starts_with("crates/lint/") {
        return false;
    }
    (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/")
}

/// Run the default rule set over every `.rs` file under `root`.
pub fn run(root: &Path, opts: &Options) -> Result<RunResult, String> {
    let rules = default_rules();
    let selected: Vec<&dyn Rule> = rules
        .iter()
        .filter(|r| opts.only_rule.as_deref().is_none_or(|k| k == r.key()))
        .map(|r| r.as_ref())
        .collect();
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    // Contexts are retained for the graph phase (and for suppression
    // filtering of cone findings at the end).
    let mut ctxs: BTreeMap<String, FileCtx> = BTreeMap::new();
    for path in &files {
        let rel = rel_path(root, path);
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files_scanned += 1;
        match FileCtx::build(rel.clone(), &text) {
            Ok(ctx) => {
                ctxs.insert(rel, ctx);
            }
            Err(e) => {
                findings.push(Finding {
                    rule: LEX_ERROR_RULE,
                    severity: Severity::Error,
                    file: rel,
                    line: e.line,
                    message: e.message,
                });
            }
        }
    }

    // Phase one: token-level rules, file by file.
    for ctx in ctxs.values() {
        for rule in &selected {
            if opts.respect_filters && !rule.applies(&ctx.rel) {
                continue;
            }
            rule.check(ctx, &mut findings);
        }
    }

    // Phase two: the call graph and the transitive decode-cone rules. Runs
    // unless `--rule` narrowed the run to a token-level rule.
    let cone_wanted = match opts.only_rule.as_deref() {
        None => true,
        Some(key) => cone::is_cone_rule(key),
    };
    let mut cone_size = 0usize;
    let mut graph_dump = None;
    if cone_wanted || opts.graph.is_some() {
        let mut items = Vec::new();
        for ctx in ctxs.values() {
            if opts.respect_filters && !is_graph_source(&ctx.rel) {
                continue;
            }
            items.extend(parse_items(ctx));
        }
        let graph = CallGraph::build(items);
        let root_ids = resolve_roots(root, &graph, &mut findings);
        let reachable = graph.reachable(&root_ids);
        cone_size = reachable.len();
        if cone_wanted {
            cone::check_cone(&graph, &reachable, &ctxs, opts.only_rule.as_deref(), &mut findings);
        }
        graph_dump = match opts.graph {
            Some(GraphFormat::Json) => Some(graph.cone_json(&reachable)),
            Some(GraphFormat::Dot) => Some(graph.cone_dot(&reachable)),
            None => None,
        };
    }

    // Suppression filtering over everything, file rules and cone rules
    // alike (lex-error findings have no context and pass through).
    let mut kept = Vec::new();
    let mut suppressed = Vec::new();
    for f in findings {
        if ctxs.get(&f.file).is_some_and(|c| c.is_suppressed(f.rule, f.line)) {
            suppressed.push(f);
        } else {
            kept.push(f);
        }
    }
    kept.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    suppressed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(RunResult { findings: kept, suppressed, files_scanned, cone_size, graph_dump })
}

/// Load `lint-roots.toml` (if present), resolve every spec plus every
/// `decode-root`-marked function, and return `(node id, witness label)`
/// pairs in declaration order. Parse errors and unresolved specs become
/// `lint-roots-error` findings — the gate must fail loudly when the cone
/// silently shrinks.
fn resolve_roots(
    root: &Path,
    graph: &CallGraph,
    findings: &mut Vec<Finding>,
) -> Vec<(usize, String)> {
    let mut out: Vec<(usize, String)> = Vec::new();
    let path = root.join(ROOTS_FILE);
    if let Ok(text) = std::fs::read_to_string(&path) {
        match roots::parse(&text) {
            Ok(decls) => {
                for spec in &decls.specs {
                    let ids = graph.resolve_spec(&spec.text);
                    if ids.is_empty() {
                        findings.push(Finding {
                            rule: cone::LINT_ROOTS_ERROR,
                            severity: Severity::Error,
                            file: ROOTS_FILE.to_string(),
                            line: spec.line,
                            message: format!(
                                "root `{}` resolves to no workspace function — renamed or \
                                 removed entry point?",
                                spec.text
                            ),
                        });
                    }
                    for id in ids {
                        out.push((id, spec.text.clone()));
                    }
                }
            }
            Err(msg) => {
                findings.push(Finding {
                    rule: cone::LINT_ROOTS_ERROR,
                    severity: Severity::Error,
                    file: ROOTS_FILE.to_string(),
                    line: 1,
                    message: format!("malformed {ROOTS_FILE}: {msg}"),
                });
            }
        }
    }
    for id in graph.marked_roots() {
        let label = graph.nodes[id].item.display();
        out.push((id, label));
    }
    out
}
