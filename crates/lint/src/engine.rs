//! The driver: deterministic workspace walk, rule dispatch, suppression
//! filtering.
//!
//! Directory entries are sorted by name at every level and findings are
//! sorted by (file, line, rule), so two runs over the same tree — on any
//! machine — produce identical output and identical baselines.

use std::path::{Path, PathBuf};

use crate::context::FileCtx;
use crate::rules::{default_rules, Finding, Rule, Severity};

/// Directory names never descended into. `fixtures` holds the lint crate's
/// own corpus of *intentional* violations; `vendor` is third-party shim
/// code; the rest is build/VCS output.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "results"];

/// Pseudo-rule key reported when a file cannot be lexed. It participates in
/// the baseline like any other rule (an unparseable file is debt too).
pub const LEX_ERROR_RULE: &str = "lex-error";

/// Engine configuration.
pub struct Options {
    /// Apply each rule's path scope (`Rule::applies`). Fixture tests turn
    /// this off to point a single rule at an arbitrary directory.
    pub respect_filters: bool,
    /// Run only the rule with this key.
    pub only_rule: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options { respect_filters: true, only_rule: None }
    }
}

/// Outcome of one engine run.
pub struct RunResult {
    /// Unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Findings silenced by `arc-lint: allow` comments (kept for reporting).
    pub suppressed: Vec<Finding>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Recursively collect `.rs` files under `root` in sorted order.
pub fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    walk(root, &mut out)?;
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let rd = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read directory {}: {e}", dir.display()))?;
    let mut entries: Vec<PathBuf> = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("walk error under {}: {e}", dir.display()))?;
        entries.push(entry.path());
    }
    // Sort by file name at each level: the whole traversal — and therefore
    // every downstream report and baseline — is machine-independent.
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Run the default rule set over every `.rs` file under `root`.
pub fn run(root: &Path, opts: &Options) -> Result<RunResult, String> {
    let rules = default_rules();
    let selected: Vec<&dyn Rule> = rules
        .iter()
        .filter(|r| opts.only_rule.as_deref().is_none_or(|k| k == r.key()))
        .map(|r| r.as_ref())
        .collect();
    let files = collect_files(root)?;
    let mut findings = Vec::new();
    let mut suppressed = Vec::new();
    let mut files_scanned = 0usize;
    for path in &files {
        let rel = rel_path(root, path);
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        files_scanned += 1;
        let ctx = match FileCtx::build(rel.clone(), &text) {
            Ok(ctx) => ctx,
            Err(e) => {
                findings.push(Finding {
                    rule: LEX_ERROR_RULE,
                    severity: Severity::Error,
                    file: rel,
                    line: e.line,
                    message: e.message,
                });
                continue;
            }
        };
        let mut file_findings = Vec::new();
        for rule in &selected {
            if opts.respect_filters && !rule.applies(&ctx.rel) {
                continue;
            }
            rule.check(&ctx, &mut file_findings);
        }
        for f in file_findings {
            if ctx.is_suppressed(f.rule, f.line) {
                suppressed.push(f);
            } else {
                findings.push(f);
            }
        }
    }
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    suppressed.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(RunResult { findings, suppressed, files_scanned })
}
