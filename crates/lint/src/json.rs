//! Minimal JSON helpers: string escaping for output and a small pull parser
//! for the baseline format. Hand-rolled because the build environment has no
//! route to crates.io and the lint gate must stay dependency-free.

/// Escape a string for embedding in a JSON double-quoted literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A pull parser over JSON text, exposing only what the baseline format
/// needs: objects, strings, and unsigned integers. Every method returns
/// `Result` — malformed input is a reported error, never a panic.
pub struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    /// Start parsing `text`.
    pub fn new(text: &str) -> Parser {
        Parser { chars: text.chars().collect(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.chars.get(self.pos).is_some_and(|c| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    /// Consume the expected punctuation character.
    pub fn consume(&mut self, c: char) -> Result<(), String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(&got) if got == c => {
                self.pos += 1;
                Ok(())
            }
            Some(&got) => Err(format!("expected '{c}', found '{got}' at offset {}", self.pos)),
            None => Err(format!("expected '{c}', found end of input")),
        }
    }

    /// True when the next non-whitespace char is `c` (not consumed).
    pub fn peek_is(&mut self, c: char) -> bool {
        self.skip_ws();
        self.chars.get(self.pos) == Some(&c)
    }

    /// After a value: consume `,` and return true, or — if the next char is
    /// `close` — return false leaving it unconsumed.
    pub fn comma_or_close(&mut self, close: char) -> Result<bool, String> {
        self.skip_ws();
        match self.chars.get(self.pos) {
            Some(',') => {
                self.pos += 1;
                Ok(true)
            }
            Some(&c) if c == close => Ok(false),
            Some(&c) => Err(format!("expected ',' or '{close}', found '{c}'")),
            None => Err(format!("expected ',' or '{close}', found end of input")),
        }
    }

    /// Parse a double-quoted string with standard escapes.
    pub fn string(&mut self) -> Result<String, String> {
        self.consume('"')?;
        let mut out = String::new();
        loop {
            match self.chars.get(self.pos).copied() {
                Some('"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some('\\') => {
                    self.pos += 1;
                    match self.chars.get(self.pos).copied() {
                        Some('n') => out.push('\n'),
                        Some('r') => out.push('\r'),
                        Some('t') => out.push('\t'),
                        Some('u') => {
                            let hex: String =
                                self.chars.iter().skip(self.pos + 1).take(4).collect();
                            let code = u32::from_str_radix(&hex, 16)
                                .map_err(|_| format!("bad \\u escape '{hex}'"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        Some(c) => out.push(c),
                        None => return Err("unterminated escape in string".into()),
                    }
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
                None => return Err("unterminated string".into()),
            }
        }
    }

    /// Parse an unsigned integer.
    pub fn integer(&mut self) -> Result<u64, String> {
        self.skip_ws();
        let start = self.pos;
        while self.chars.get(self.pos).is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(format!("expected integer at offset {start}"));
        }
        let digits: String = self.chars[start..self.pos].iter().collect();
        digits.parse::<u64>().map_err(|e| format!("bad integer '{digits}': {e}"))
    }

    /// Require that only whitespace remains.
    pub fn expect_end(&mut self) -> Result<(), String> {
        self.skip_ws();
        if self.pos == self.chars.len() {
            Ok(())
        } else {
            Err(format!("trailing data at offset {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn string_unescapes() {
        let mut p = Parser::new("\"a\\\"b\\\\c\\nd\"");
        assert_eq!(p.string().unwrap(), "a\"b\\c\nd");
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(Parser::new("42").integer().unwrap(), 42);
        assert!(Parser::new("x").integer().is_err());
    }
}
