//! Item-level syntax layer on the lexer: just enough structure for an
//! interprocedural analysis.
//!
//! [`parse_items`] recovers, from the token stream alone:
//!
//! - `fn` items (free functions, inherent/trait methods, trait default
//!   bodies, functions nested inside other bodies), each with its name,
//!   parameter names, body span, and — for methods — the self type of the
//!   innermost enclosing `impl`/`trait` block;
//! - call expressions (`path::to::fn(…)`) and method-call expressions
//!   (`recv.name(…)`), recorded as path segments for the call graph to
//!   resolve;
//! - panic sites (`panic!`-family macros, `.unwrap()`, `.expect(…)`);
//! - index expressions (`expr[…]`, including range indexing, excluding the
//!   never-panicking full-range `expr[..]`);
//! - allocation sites whose size is an expression: `with_capacity(n)`,
//!   `.resize(n, v)`, `.reserve(n)` / `.reserve_exact(n)`, and
//!   `vec![x; n]`, with a token-level boundedness classification of `n`.
//!
//! This is **not** an AST and it performs no type or dataflow analysis;
//! every consumer over-approximates where the tokens are ambiguous (see
//! DESIGN.md §10 for the soundness caveats). Known blind spot: turbofish
//! call forms (`f::<T>()`, `recv.m::<T>()`) are not recognized as calls.
//!
//! Site-to-function assignment is innermost-wins: a panic inside a closure
//! belongs to the enclosing `fn`; a panic inside a `fn` nested in another
//! `fn` body belongs to the nested one.

use crate::context::FileCtx;
use crate::lexer::{TokKind, Token};

/// One `fn` item recovered from a file.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name (raw-identifier prefix stripped by the lexer).
    pub name: String,
    /// Self type of the innermost enclosing `impl`/`trait` block, if any.
    pub self_ty: Option<String>,
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Whether the item sits in `#[cfg(test)]` / `#[test]` code.
    pub is_test: bool,
    /// Whether a `// arc-lint: decode-root` marker covers the item.
    pub is_decode_root: bool,
    /// Parameter identifier names (binding patterns only; destructured
    /// parameters contribute nothing).
    pub params: Vec<String>,
    /// Call and method-call expressions inside the body.
    pub calls: Vec<CallSite>,
    /// Panic-family sites inside the body.
    pub panics: Vec<PanicSite>,
    /// Index expressions inside the body.
    pub indexes: Vec<IndexSite>,
    /// Sized allocation sites inside the body.
    pub allocs: Vec<AllocSite>,
}

impl FnItem {
    /// Display name: `Type::name` for methods, `name` for free functions.
    pub fn display(&self) -> String {
        match &self.self_ty {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A call or method-call expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Path segments as written (`["container", "unpack"]`, `["push"]`).
    /// `crate`/`self`/`super` segments are dropped; `Self` segments are
    /// kept verbatim and resolved by the call graph against the calling
    /// function's self type.
    pub path: Vec<String>,
    /// True for `recv.name(…)` receiver calls (path is the bare name).
    pub method: bool,
    /// 1-based line of the called name.
    pub line: usize,
}

/// A panic-family site.
#[derive(Debug, Clone)]
pub struct PanicSite {
    /// What fired: `panic!`, `unreachable!`, `.unwrap()`, `.expect()`, …
    pub what: String,
    /// 1-based line.
    pub line: usize,
}

/// An index expression `expr[…]`.
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// 1-based line of the opening bracket.
    pub line: usize,
    /// The token directly before `[` (receiver identifier, or `)` / `]`
    /// for compound receivers) — used only in messages.
    pub receiver: String,
}

/// A sized allocation site.
#[derive(Debug, Clone)]
pub struct AllocSite {
    /// 1-based line.
    pub line: usize,
    /// The allocating form: `with_capacity`, `resize`, `reserve`,
    /// `reserve_exact`, or `vec![…; n]`.
    pub what: String,
    /// Token-level boundedness of the size expression: true when the size
    /// is built only from literals and `ALL_CAPS` constants, or carries a
    /// clamping call (`.min(…)`, `.clamp(…)`) or measures existing data
    /// (`.len()`, `.capacity()`).
    pub size_is_bounded: bool,
    /// Short rendering of the size expression for messages.
    pub size_desc: String,
}

/// Keywords that can be directly followed by `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 20] = [
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "fn", "move", "ref", "mut", "where", "impl", "dyn", "use",
];

/// Keywords that *precede* an identifier in declaration or pattern
/// position: `fn name(…)`, `struct Name(…)`, `let Pat(…) = …` declare, they
/// don't call.
const DECL_KEYWORDS: [&str; 9] =
    ["fn", "struct", "enum", "union", "mod", "trait", "impl", "let", "dyn"];

/// Primitive type names never treated as value identifiers in size
/// expressions (they appear as cast targets: `n as usize`).
const PRIMITIVE_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

/// Calls inside a size expression that make it bounded: clamps, and
/// measurements of data that already exists in memory.
const BOUNDING_CALLS: [&str; 4] = ["min", "clamp", "len", "capacity"];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// An `impl`/`trait` scope: token span of the braced body plus self type.
struct Scope {
    open: usize,
    close: usize,
    self_ty: String,
}

/// Parse every `fn` item in the file. Items come back in source order.
pub fn parse_items(ctx: &FileCtx) -> Vec<FnItem> {
    let toks: Vec<&Token> = ctx
        .tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
        .collect();
    let scopes = collect_scopes(&toks);
    let mut fns = collect_fns(ctx, &toks, &scopes);
    collect_sites(&toks, &mut fns);
    fns.into_iter().map(|f| f.item).collect()
}

fn is_punct(t: &Token, c: char) -> bool {
    t.kind == TokKind::Punct && t.text.len() == 1 && t.text.starts_with(c)
}

fn is_ident(t: &Token, s: &str) -> bool {
    t.kind == TokKind::Ident && t.text == s
}

/// Index of the matching close token for the open token at `open`
/// (`{`/`}`, `(`/`)`, `[`/`]`). Returns the last token index when the file
/// ends unbalanced (lint never aborts on odd input).
fn match_delim(toks: &[&Token], open: usize, oc: char, cc: char) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks[i], oc) {
            depth += 1;
        } else if is_punct(toks[i], cc) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    toks.len().saturating_sub(1)
}

/// Skip a generic parameter/argument list starting at `<`; returns the
/// index just past the matching `>`. `->` arrows do not close angles.
fn skip_angles(toks: &[&Token], open: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < toks.len() {
        if is_punct(toks[i], '<') {
            depth += 1;
        } else if is_punct(toks[i], '>') {
            let arrow = i > 0 && is_punct(toks[i - 1], '-');
            if !arrow {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    toks.len()
}

/// Collect `impl`/`trait` scopes: brace spans and their self types. For
/// `impl Trait for Type` the self type is `Type` (the last path segment
/// before the body); for `impl Type` and `trait Name` it is the type/trait
/// name itself.
fn collect_scopes(toks: &[&Token]) -> Vec<Scope> {
    let mut scopes = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let t = toks[i];
        if !(is_ident(t, "impl") || is_ident(t, "trait")) {
            i += 1;
            continue;
        }
        // Item position only: `-> impl Trait`, `(impl Fn…)`, `: impl …` and
        // friends are type-position uses that must not open a scope. In
        // item position the previous token is a statement/item boundary or
        // a visibility/unsafety modifier.
        let item_position = match i.checked_sub(1).map(|p| toks[p]) {
            None => true,
            Some(p) => {
                is_punct(p, ';')
                    || is_punct(p, '{')
                    || is_punct(p, '}')
                    || is_punct(p, ']')
                    || is_punct(p, ')')
                    || is_ident(p, "pub")
                    || is_ident(p, "unsafe")
            }
        };
        if !item_position {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if j < toks.len() && is_punct(toks[j], '<') {
            j = skip_angles(toks, j);
        }
        // Walk to the body `{`, remembering the last type-path ident seen
        // at angle depth 0 (stopping updates at `where`). `for` restarts
        // the path: the self type of a trait impl is the implementing type.
        let mut last_ident: Option<String> = None;
        let mut frozen = false;
        while j < toks.len() {
            let tj = toks[j];
            if is_punct(tj, '{') {
                break;
            }
            if is_punct(tj, ';') {
                // `trait Alias = …;` or malformed — no body to scan.
                break;
            }
            if is_punct(tj, '<') {
                j = skip_angles(toks, j);
                continue;
            }
            if tj.kind == TokKind::Ident {
                if tj.text == "where" {
                    frozen = true;
                } else if tj.text == "for" {
                    last_ident = None;
                } else if !frozen {
                    last_ident = Some(tj.text.clone());
                }
            }
            j += 1;
        }
        if j < toks.len() && is_punct(toks[j], '{') {
            if let Some(ty) = last_ident {
                let close = match_delim(toks, j, '{', '}');
                scopes.push(Scope { open: j, close, self_ty: ty });
            }
            // Descend into the body: nested impls (e.g. inside fns) are
            // picked up by the continuing linear scan.
            i = j + 1;
            continue;
        }
        i = j + 1;
    }
    scopes
}

/// A parsed fn plus its body token span (used for site assignment).
struct ParsedFn {
    item: FnItem,
    /// Token span of the body braces, `open..=close`; `None` for bodyless
    /// trait-method declarations.
    body: Option<(usize, usize)>,
}

fn collect_fns(ctx: &FileCtx, toks: &[&Token], scopes: &[Scope]) -> Vec<ParsedFn> {
    let mut fns = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if !is_ident(toks[i], "fn") {
            i += 1;
            continue;
        }
        // `fn(` is a function-pointer type, not an item.
        let Some(name_tok) = toks.get(i + 1) else { break };
        if name_tok.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let name = name_tok.text.clone();
        let mut j = i + 2;
        if j < toks.len() && is_punct(toks[j], '<') {
            j = skip_angles(toks, j);
        }
        if !(j < toks.len() && is_punct(toks[j], '(')) {
            i += 1;
            continue;
        }
        let params_close = match_delim(toks, j, '(', ')');
        let params = collect_params(toks, j, params_close);
        // Scan past the return type / where clause to the body `{` (or a
        // terminating `;` for trait declarations).
        let mut k = params_close + 1;
        let mut body = None;
        while k < toks.len() {
            if is_punct(toks[k], '{') {
                body = Some((k, match_delim(toks, k, '{', '}')));
                break;
            }
            if is_punct(toks[k], ';') {
                break;
            }
            k += 1;
        }
        let fn_pos = i;
        let line = toks[i].line;
        // Innermost enclosing impl/trait scope supplies the self type.
        let self_ty = scopes
            .iter()
            .filter(|s| s.open < fn_pos && fn_pos < s.close)
            .min_by_key(|s| s.close - s.open)
            .map(|s| s.self_ty.clone());
        fns.push(ParsedFn {
            item: FnItem {
                name,
                self_ty,
                file: ctx.rel.clone(),
                line,
                is_test: ctx.in_test_code(line),
                is_decode_root: has_decode_root_marker(ctx, line),
                params,
                calls: Vec::new(),
                panics: Vec::new(),
                indexes: Vec::new(),
                allocs: Vec::new(),
            },
            body,
        });
        // Continue scanning *inside* the signature/body so nested fns and
        // impls are found too.
        i += 2;
    }
    fns
}

/// Parameter binding names: idents directly followed by `:` at paren
/// depth 1 inside the parameter list (`self` and destructured patterns
/// contribute nothing).
fn collect_params(toks: &[&Token], open: usize, close: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < close && i < toks.len() {
        if is_punct(toks[i], '(') {
            depth += 1;
        } else if is_punct(toks[i], ')') {
            depth = depth.saturating_sub(1);
        } else if depth == 1
            && toks[i].kind == TokKind::Ident
            && toks[i].text != "mut"
            && toks[i].text != "self"
            && toks.get(i + 1).is_some_and(|n| is_punct(n, ':'))
            && !toks.get(i + 2).is_some_and(|n| is_punct(n, ':'))
        {
            out.push(toks[i].text.clone());
        }
        i += 1;
    }
    out
}

/// Whether a `// arc-lint: decode-root` marker covers the `fn` on `line`:
/// trailing on the line itself, or anywhere in the contiguous block of
/// comment/attribute lines directly above.
fn has_decode_root_marker(ctx: &FileCtx, line: usize) -> bool {
    let marker = |text: &str| text.contains("arc-lint: decode-root");
    if marker(ctx.comment_on(line)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if ctx.is_comment_line(l) {
            if marker(ctx.comment_on(l)) {
                return true;
            }
            continue;
        }
        if ctx.is_attr_line(l) {
            continue;
        }
        return false;
    }
    false
}

/// Index of the innermost fn whose body span contains token `pos`.
fn innermost_fn(fns: &[ParsedFn], pos: usize) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (span length, idx)
    for (idx, f) in fns.iter().enumerate() {
        if let Some((open, close)) = f.body {
            if open < pos && pos < close {
                let len = close - open;
                if best.is_none_or(|(blen, _)| len < blen) {
                    best = Some((len, idx));
                }
            }
        }
    }
    best.map(|(_, idx)| idx)
}

/// One linear pass over the token stream, attributing every call, panic,
/// index, and allocation site to its innermost enclosing fn.
fn collect_sites(toks: &[&Token], fns: &mut [ParsedFn]) {
    for i in 0..toks.len() {
        let t = toks[i];
        let prev = i.checked_sub(1).and_then(|p| toks.get(p).copied());
        let next = toks.get(i + 1).copied();

        // Panic sites and macro allocs key off identifiers.
        if t.kind == TokKind::Ident {
            let next_is = |c: char| next.is_some_and(|n| is_punct(n, c));
            let prev_is_dot = prev.is_some_and(|p| is_punct(p, '.'));
            if PANIC_MACROS.contains(&t.text.as_str()) && next_is('!') {
                push_site(fns, i, |f| {
                    f.panics.push(PanicSite { what: format!("{}!", t.text), line: t.line })
                });
                continue;
            }
            if (t.text == "unwrap" || t.text == "expect") && prev_is_dot && next_is('(') {
                push_site(fns, i, |f| {
                    f.panics.push(PanicSite { what: format!(".{}()", t.text), line: t.line })
                });
                // `.expect(…)` is still a call token-wise; no call edge is
                // wanted for it, so short-circuit here.
                continue;
            }
            // `vec![elem; n]` sized-macro allocation.
            if t.text == "vec" && next_is('!') && toks.get(i + 2).is_some_and(|n| is_punct(n, '['))
            {
                let open = i + 2;
                let close = match_delim(toks, open, '[', ']');
                if let Some(semi) = top_level_semicolon(toks, open, close) {
                    let (bounded, desc) = classify_size(toks, semi + 1, close);
                    push_site(fns, i, |f| {
                        f.allocs.push(AllocSite {
                            line: t.line,
                            what: "vec![…; n]".into(),
                            size_is_bounded: bounded,
                            size_desc: desc.clone(),
                        })
                    });
                }
                continue;
            }
            // Call expressions: `name(` that is neither a keyword, a macro
            // bang, nor an identifier in declaration/pattern position
            // (`fn name(…)`, `struct Name(…)`, `let Pat(…) = …`).
            let prev_declares = prev.is_some_and(|p| DECL_KEYWORDS.contains(&p.text.as_str()));
            if next_is('(') && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) && !prev_declares {
                let method = prev_is_dot;
                let path = if method { vec![t.text.clone()] } else { path_segments(toks, i) };
                // Sized allocation calls double as alloc sites.
                match t.text.as_str() {
                    "with_capacity" | "reserve" | "reserve_exact" | "resize" | "resize_with" => {
                        let open = i + 1;
                        let close = match_delim(toks, open, '(', ')');
                        let end = top_level_comma(toks, open, close).unwrap_or(close);
                        let (bounded, desc) = classify_size(toks, open + 1, end);
                        push_site(fns, i, |f| {
                            f.allocs.push(AllocSite {
                                line: t.line,
                                what: t.text.clone(),
                                size_is_bounded: bounded,
                                size_desc: desc.clone(),
                            })
                        });
                    }
                    _ => {}
                }
                push_site(fns, i, |f| {
                    f.calls.push(CallSite { path: path.clone(), method, line: t.line })
                });
                continue;
            }
        }

        // Index expressions: a `[` in postfix position. Attribute brackets
        // (`#[…]`) follow `#`, macro brackets follow `!`, array literals
        // and types follow other punctuation — none match.
        if is_punct(t, '[')
            && prev.is_some_and(|p| {
                p.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&p.text.as_str())
                    || is_punct(p, ')')
                    || is_punct(p, ']')
            })
        {
            let close = match_delim(toks, i, '[', ']');
            // `expr[..]` (full range) never panics; everything else —
            // point and partial-range indexing — can.
            let inner_is_full_range =
                close == i + 3 && is_punct(toks[i + 1], '.') && is_punct(toks[i + 2], '.');
            if !inner_is_full_range {
                let recv = prev.map(|p| p.text.clone()).unwrap_or_default();
                let receiver = if recv == ")" || recv == "]" { "<expr>".to_string() } else { recv };
                push_site(fns, i, |f| {
                    f.indexes.push(IndexSite { line: t.line, receiver: receiver.clone() })
                });
            }
        }
    }
}

fn push_site(fns: &mut [ParsedFn], pos: usize, apply: impl Fn(&mut FnItem)) {
    if let Some(idx) = innermost_fn_mut(fns, pos) {
        if let Some(f) = fns.get_mut(idx) {
            apply(&mut f.item);
        }
    }
}

fn innermost_fn_mut(fns: &[ParsedFn], pos: usize) -> Option<usize> {
    innermost_fn(fns, pos)
}

/// Walk a qualified path backwards from the called name at `i`:
/// `a::b::name(` yields `["a", "b", "name"]`. `crate`/`self`/`super`
/// segments are dropped.
fn path_segments(toks: &[&Token], i: usize) -> Vec<String> {
    let mut rev = vec![toks[i].text.clone()];
    let mut j = i;
    while j >= 3
        && is_punct(toks[j - 1], ':')
        && is_punct(toks[j - 2], ':')
        && toks[j - 3].kind == TokKind::Ident
    {
        let seg = &toks[j - 3].text;
        if seg != "crate" && seg != "self" && seg != "super" {
            rev.push(seg.clone());
        }
        j -= 3;
    }
    rev.reverse();
    rev
}

/// Index of the first top-level `;` strictly inside `open..close`.
fn top_level_semicolon(toks: &[&Token], open: usize, close: usize) -> Option<usize> {
    scan_top_level(toks, open, close, ';')
}

/// Index of the first top-level `,` strictly inside `open..close`.
fn top_level_comma(toks: &[&Token], open: usize, close: usize) -> Option<usize> {
    scan_top_level(toks, open, close, ',')
}

fn scan_top_level(toks: &[&Token], open: usize, close: usize, what: char) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = open;
    while i < close && i < toks.len() {
        let t = toks[i];
        if is_punct(t, '(') || is_punct(t, '[') || is_punct(t, '{') {
            depth += 1;
        } else if is_punct(t, ')') || is_punct(t, ']') || is_punct(t, '}') {
            depth = depth.saturating_sub(1);
        } else if depth == 1 && is_punct(t, what) {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Token-level boundedness of a size expression in `from..to`.
///
/// Bounded when every identifier is an `ALL_CAPS` constant or a primitive
/// type (cast target), or when the expression carries a bounding call
/// (`.min(…)`, `.clamp(…)`, `.len()`, `.capacity()`). Anything else — a
/// parameter, a header-loaded local, arithmetic over either — is treated
/// as attacker-influenceable and must be guarded or annotated.
fn classify_size(toks: &[&Token], from: usize, to: usize) -> (bool, String) {
    let mut has_free_ident = false;
    let mut has_bounding_call = false;
    let mut desc = String::new();
    let mut i = from;
    while i < to && i < toks.len() {
        let t = toks[i];
        if desc.len() < 48 {
            if !desc.is_empty()
                && (t.kind == TokKind::Ident || t.kind == TokKind::NumLit)
                && !desc.ends_with(['.', ':', '('])
            {
                desc.push(' ');
            }
            desc.push_str(&t.text);
        } else if !desc.ends_with('…') {
            desc.push('…');
        }
        if t.kind == TokKind::Ident {
            let after_as = i > from && is_ident(toks[i - 1], "as");
            let is_call = toks.get(i + 1).is_some_and(|n| is_punct(n, '('));
            let all_caps = t.text.chars().all(|c| !c.is_lowercase());
            if is_call && BOUNDING_CALLS.contains(&t.text.as_str()) {
                has_bounding_call = true;
            } else if !(all_caps
                || after_as
                || PRIMITIVE_TYPES.contains(&t.text.as_str())
                || t.text == "as")
            {
                has_free_ident = true;
            }
        }
        i += 1;
    }
    (!has_free_ident || has_bounding_call, desc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> Vec<FnItem> {
        let ctx = FileCtx::build("test.rs".into(), src).unwrap();
        parse_items(&ctx)
    }

    #[test]
    fn free_fns_methods_and_trait_defaults() {
        let src = "fn free() {}\n\
                   impl Foo { fn m(&self) {} }\n\
                   impl Bar for Foo { fn n(&self) {} }\n\
                   trait T { fn d(&self) { helper(); } fn sig(&self); }\n";
        let f = items(src);
        let names: Vec<(String, Option<String>)> =
            f.iter().map(|x| (x.name.clone(), x.self_ty.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("m".into(), Some("Foo".into())),
                ("n".into(), Some("Foo".into())),
                ("d".into(), Some("T".into())),
                ("sig".into(), Some("T".into())),
            ]
        );
        // The trait default body's call is attributed to `d`.
        assert_eq!(f[3].calls.len(), 1);
        assert_eq!(f[3].calls[0].path, vec!["helper"]);
        // The bodyless signature has no sites.
        assert!(f[4].calls.is_empty());
    }

    #[test]
    fn generic_impls_resolve_the_implementing_type() {
        let src = "impl<'a, T: Clone> Wrapper<'a, T> where T: Default { fn g(&self) {} }\n\
                   impl<F: Fn() -> usize> Holder<F> { fn h(&self) {} }\n";
        let f = items(src);
        assert_eq!(f[0].self_ty.as_deref(), Some("Wrapper"));
        assert_eq!(f[1].self_ty.as_deref(), Some("Holder"));
    }

    #[test]
    fn nested_fns_and_impls_get_innermost_attribution() {
        let src = "fn outer() {\n\
                       inner_call();\n\
                       fn nested() { nested_call(); }\n\
                       struct G;\n\
                       impl Drop for G { fn drop(&mut self) { drop_call(); } }\n\
                   }\n";
        let f = items(src);
        let outer = f.iter().find(|x| x.name == "outer").unwrap();
        let nested = f.iter().find(|x| x.name == "nested").unwrap();
        let dropfn = f.iter().find(|x| x.name == "drop").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].path, vec!["inner_call"]);
        assert_eq!(nested.calls[0].path, vec!["nested_call"]);
        assert_eq!(dropfn.self_ty.as_deref(), Some("G"));
        assert_eq!(dropfn.calls[0].path, vec!["drop_call"]);
    }

    #[test]
    fn qualified_paths_and_method_calls() {
        let src = "fn f() { a::b::target(); recv.method(); crate::x::y(); Self::assoc(); }\n";
        let f = items(src);
        let paths: Vec<(Vec<String>, bool)> =
            f[0].calls.iter().map(|c| (c.path.clone(), c.method)).collect();
        assert_eq!(
            paths,
            vec![
                (vec!["a".into(), "b".into(), "target".into()], false),
                (vec!["method".into()], true),
                (vec!["x".into(), "y".into()], false),
                (vec!["Self".into(), "assoc".into()], false),
            ]
        );
    }

    #[test]
    fn panic_sites_cover_macros_and_methods() {
        let src = "fn f(v: Option<u8>) {\n\
                       v.unwrap();\n\
                       v.expect(\"msg\");\n\
                       panic!(\"boom\");\n\
                       unreachable!();\n\
                       let _ = v.unwrap_or(0);\n\
                   }\n";
        let f = items(src);
        let whats: Vec<&str> = f[0].panics.iter().map(|p| p.what.as_str()).collect();
        assert_eq!(whats, vec![".unwrap()", ".expect()", "panic!", "unreachable!"]);
    }

    #[test]
    fn index_sites_skip_types_attrs_and_full_ranges() {
        let src = "#[derive(Debug)]\n\
                   fn f(v: &[u8], i: usize) -> u8 {\n\
                       let _t: [u8; 4] = [0; 4];\n\
                       let _all = &v[..];\n\
                       let _pre = &v[..i];\n\
                       let _m = vec![0u8; 4];\n\
                       v[i]\n\
                   }\n";
        let f = items(src);
        let lines: Vec<usize> = f[0].indexes.iter().map(|x| x.line).collect();
        // Only the partial range `v[..i]` and the point index `v[i]`.
        assert_eq!(lines, vec![5, 7]);
        assert_eq!(f[0].indexes[1].receiver, "v");
    }

    #[test]
    fn alloc_sites_classify_boundedness() {
        let src = "fn f(n: usize, data: &[u8]) {\n\
                       let mut a = Vec::with_capacity(n);\n\
                       let b: Vec<u8> = Vec::with_capacity(64);\n\
                       let c = vec![0u8; n * 8];\n\
                       let d = vec![0u8; MAX_SYMBOLS];\n\
                       let e = Vec::with_capacity(data.len());\n\
                       let g = Vec::with_capacity(n.min(4096));\n\
                       a.resize(n, 0u8);\n\
                       a.reserve(n as usize);\n\
                       let _ = (b, c, d, e, g);\n\
                   }\n";
        let f = items(src);
        let got: Vec<(String, bool)> =
            f[0].allocs.iter().map(|a| (a.what.clone(), a.size_is_bounded)).collect();
        assert_eq!(
            got,
            vec![
                ("with_capacity".into(), false),
                ("with_capacity".into(), true),
                ("vec![…; n]".into(), false),
                ("vec![…; n]".into(), true),
                ("with_capacity".into(), true),
                ("with_capacity".into(), true),
                ("resize".into(), false),
                ("reserve".into(), false),
            ]
        );
    }

    #[test]
    fn decode_root_marker_and_params() {
        let src = "// arc-lint: decode-root\n\
                   pub fn entry(bytes: &[u8], limit: u64) {}\n\
                   fn plain(x: usize) {}\n";
        let f = items(src);
        assert!(f[0].is_decode_root);
        assert_eq!(f[0].params, vec!["bytes", "limit"]);
        assert!(!f[1].is_decode_root);
        assert_eq!(f[1].params, vec!["x"]);
    }

    #[test]
    fn test_region_fns_are_marked() {
        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let f = items(src);
        assert!(!f[0].is_test);
        assert!(f[1].is_test);
    }
}
