//! The rule registry: ARC's resiliency invariants as token-level checks.
//!
//! Every rule has a stable key (used in suppressions and the baseline), a
//! severity, a path scope (which workspace files it audits), and a token
//! walk. Rules never look at raw text except through [`FileCtx`]'s per-line
//! comment metadata, so string/char literals can never trigger them.

use crate::context::FileCtx;
use crate::lexer::{TokKind, Token};

/// How serious a finding is. Both levels gate under `--deny`; the tag exists
/// so reports read correctly and future rules can be advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Violates an invariant the protection layer depends on.
    Error,
    /// Discipline issue worth tracking but not a direct corruption risk.
    Warning,
}

impl Severity {
    /// Lowercase label used in text and JSON output.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule key (e.g. `unsafe-needs-safety`).
    pub rule: &'static str,
    /// Severity of the owning rule.
    pub severity: Severity,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// A lint rule: scope + token-level check.
pub trait Rule {
    /// Stable identifier used in suppressions, the baseline, and output.
    fn key(&self) -> &'static str;

    /// Severity attached to this rule's findings.
    fn severity(&self) -> Severity;

    /// One-line description for `--list-rules`.
    fn describe(&self) -> &'static str;

    /// Whether this rule audits the file at workspace-relative `rel`.
    fn applies(&self, rel: &str) -> bool;

    /// Scan one file, appending findings (suppressions are filtered by the
    /// engine, not here).
    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>);
}

/// The default registry, in stable report order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(UnsafeNeedsSafety),
        Box::new(NoPanicInLib),
        Box::new(NoLossyCast),
        Box::new(AtomicOrderingAudit),
        Box::new(FeatureGateHygiene),
    ]
}

fn finding(rule: &dyn Rule, ctx: &FileCtx, line: usize, message: String) -> Finding {
    Finding { rule: rule.key(), severity: rule.severity(), file: ctx.rel.clone(), line, message }
}

/// True when `rel` is library source inside a workspace crate (or the root
/// facade crate) — the scope where panics and ad-hoc cfg gates are policed.
fn is_library_source(rel: &str) -> bool {
    (rel.starts_with("crates/") && rel.contains("/src/")) || rel.starts_with("src/")
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety
// ---------------------------------------------------------------------------

/// Every `unsafe` block, fn, or impl must be justified: either a
/// `// SAFETY:` comment in the contiguous comment/attribute block directly
/// above it (or trailing on the same line), or — for `unsafe fn`s — a
/// `# Safety` section in the doc comment.
pub struct UnsafeNeedsSafety;

impl Rule for UnsafeNeedsSafety {
    fn key(&self) -> &'static str {
        "unsafe-needs-safety"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn describe(&self) -> &'static str {
        "every `unsafe` site needs an immediately preceding `// SAFETY:` comment \
         (or a `# Safety` doc section on an `unsafe fn`)"
    }

    fn applies(&self, rel: &str) -> bool {
        // Everywhere, tests included: the counting-allocator harnesses carry
        // `unsafe impl GlobalAlloc` and must document it too.
        rel.ends_with(".rs")
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        for t in &ctx.tokens {
            if !(t.kind == TokKind::Ident && t.text == "unsafe") {
                continue;
            }
            if has_safety_justification(ctx, t.line) {
                continue;
            }
            out.push(finding(
                self,
                ctx,
                t.line,
                "`unsafe` without an immediately preceding `// SAFETY:` comment".into(),
            ));
        }
    }
}

/// Walk upward from the line above `line` through the contiguous block of
/// comment and attribute lines; accept a `SAFETY:` marker anywhere in that
/// block (doc-comment `# Safety` headings included), or trailing on the
/// `unsafe` line itself.
fn has_safety_justification(ctx: &FileCtx, line: usize) -> bool {
    let marker = |text: &str| text.contains("SAFETY:") || text.contains("# Safety");
    if marker(ctx.comment_on(line)) {
        return true;
    }
    let mut l = line;
    while l > 1 {
        l -= 1;
        if ctx.is_comment_line(l) {
            if marker(ctx.comment_on(l)) {
                return true;
            }
            continue;
        }
        if ctx.is_attr_line(l) {
            continue;
        }
        return false;
    }
    false
}

// ---------------------------------------------------------------------------
// no-panic-in-lib
// ---------------------------------------------------------------------------

/// The protection layer must never abort on the data it protects: library
/// code (non-test, inside `crates/*/src` or the root `src/`) may not call
/// `.unwrap()` / `.expect(…)` or invoke `panic!` / `unreachable!` / `todo!` /
/// `unimplemented!`. Propagate through the crate's typed error enum, or
/// carry an `arc-lint: allow(no-panic-in-lib, <proof>)` for the provably
/// infallible cases.
pub struct NoPanicInLib;

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

impl Rule for NoPanicInLib {
    fn key(&self) -> &'static str {
        "no-panic-in-lib"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn describe(&self) -> &'static str {
        "no `.unwrap()`/`.expect()`/`panic!`-family escape hatches in non-test library code"
    }

    fn applies(&self, rel: &str) -> bool {
        // Binary targets may abort on startup/CLI errors; the invariant is
        // about code that other crates call with data they cannot lose.
        is_library_source(rel) && !rel.contains("/src/bin/") && !rel.ends_with("/main.rs")
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = ctx
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || ctx.in_test_code(t.line) {
                continue;
            }
            let next_is = |text: &str| {
                toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == text)
            };
            let prev_is_dot =
                i > 0 && toks[i - 1].kind == TokKind::Punct && toks[i - 1].text == ".";
            if PANIC_MACROS.contains(&t.text.as_str()) && next_is("!") {
                out.push(finding(
                    self,
                    ctx,
                    t.line,
                    format!("`{}!` aborts on the data it was asked to protect", t.text),
                ));
            } else if (t.text == "unwrap" || t.text == "expect") && prev_is_dot && next_is("(") {
                out.push(finding(
                    self,
                    ctx,
                    t.line,
                    format!(
                        "`.{}()` on a library path — propagate through the crate's error type",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// no-lossy-cast
// ---------------------------------------------------------------------------

/// In the ECC and ZFP hot paths, `as` casts to narrower integer types
/// silently truncate — exactly the class of bug that turns a correctable
/// symbol into silent corruption. Use `try_into`/`try_from`, widen the
/// arithmetic, or carry an allow with the value-range proof.
pub struct NoLossyCast;

const NARROW_TARGETS: [&str; 6] = ["u8", "i8", "u16", "i16", "u32", "i32"];

impl Rule for NoLossyCast {
    fn key(&self) -> &'static str {
        "no-lossy-cast"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn describe(&self) -> &'static str {
        "no narrowing `as` casts in the ecc/zfp hot paths; use try_into or prove the range"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/ecc/src/") || rel.starts_with("crates/zfp/src/")
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = ctx
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, t) in toks.iter().enumerate() {
            if t.kind != TokKind::Ident || t.text != "as" || ctx.in_test_code(t.line) {
                continue;
            }
            let Some(target) = toks.get(i + 1) else { continue };
            if target.kind == TokKind::Ident && NARROW_TARGETS.contains(&target.text.as_str()) {
                out.push(finding(
                    self,
                    ctx,
                    t.line,
                    format!("narrowing `as {}` cast can silently truncate", target.text),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// atomic-ordering-audit
// ---------------------------------------------------------------------------

/// `Ordering::Relaxed` on the telemetry crate's cross-thread counters is
/// usually correct (monotonic, no inter-variable ordering), but each site
/// must say *why* with a `// relaxed: <reason>` comment on the same line or
/// within the three lines above, so a reviewer can audit the claim.
pub struct AtomicOrderingAudit;

impl Rule for AtomicOrderingAudit {
    fn key(&self) -> &'static str {
        "atomic-ordering-audit"
    }

    fn severity(&self) -> Severity {
        Severity::Warning
    }

    fn describe(&self) -> &'static str {
        "`Ordering::Relaxed` in arc-telemetry needs a nearby `// relaxed:` justification"
    }

    fn applies(&self, rel: &str) -> bool {
        rel.starts_with("crates/telemetry/src/")
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = ctx
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, t) in toks.iter().enumerate() {
            if !(t.kind == TokKind::Ident && t.text == "Relaxed") {
                continue;
            }
            // Require the `Ordering::Relaxed` form (the crate never imports
            // `Relaxed` bare, and this keeps idents in other roles out).
            let qualified = i >= 3
                && toks[i - 1].text == ":"
                && toks[i - 2].text == ":"
                && toks[i - 3].kind == TokKind::Ident
                && toks[i - 3].text == "Ordering";
            if !qualified || ctx.in_test_code(t.line) {
                continue;
            }
            let justified = (t.line.saturating_sub(3)..=t.line)
                .any(|l| ctx.comment_on(l).to_lowercase().contains("relaxed:"));
            if !justified {
                out.push(finding(
                    self,
                    ctx,
                    t.line,
                    "`Ordering::Relaxed` without a nearby `// relaxed:` justification".into(),
                ));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// feature-gate-hygiene
// ---------------------------------------------------------------------------

/// Telemetry call sites must go through the always-compiled `arc-telemetry`
/// facade (which no-ops without the feature), never through ad-hoc
/// `#[cfg(feature = "telemetry")]` gates sprinkled over other crates — those
/// bit-rot in the untested configuration. Only the telemetry crate itself
/// may mention the feature.
pub struct FeatureGateHygiene;

impl Rule for FeatureGateHygiene {
    fn key(&self) -> &'static str {
        "feature-gate-hygiene"
    }

    fn severity(&self) -> Severity {
        Severity::Error
    }

    fn describe(&self) -> &'static str {
        "no ad-hoc `cfg(feature = \"telemetry\")` outside the arc-telemetry facade"
    }

    fn applies(&self, rel: &str) -> bool {
        is_library_source(rel) && !rel.starts_with("crates/telemetry/")
    }

    fn check(&self, ctx: &FileCtx, out: &mut Vec<Finding>) {
        let toks: Vec<&Token> = ctx
            .tokens
            .iter()
            .filter(|t| !matches!(t.kind, TokKind::LineComment | TokKind::BlockComment))
            .collect();
        for (i, t) in toks.iter().enumerate() {
            if !(t.kind == TokKind::Ident && t.text == "feature") {
                continue;
            }
            let eq = toks.get(i + 1).is_some_and(|n| n.kind == TokKind::Punct && n.text == "=");
            let telemetry =
                toks.get(i + 2).is_some_and(|n| n.kind == TokKind::StrLit && n.text == "telemetry");
            if eq && telemetry {
                out.push(finding(
                    self,
                    ctx,
                    t.line,
                    "gate telemetry through the arc-telemetry facade, not ad-hoc cfg".into(),
                ));
            }
        }
    }
}
