//! A hand-rolled Rust lexer, just deep enough for lint rules.
//!
//! The rules in this crate reason about *tokens*, never raw text, so that a
//! `panic!` inside a string literal or a `// SAFETY:` inside a doc example
//! can never confuse them. The lexer therefore has to get the genuinely
//! tricky parts of Rust's surface syntax right:
//!
//! - raw strings with arbitrary `#` fences (`r##"…"##`), byte and raw-byte
//!   strings, and raw identifiers (`r#match`);
//! - nested block comments (`/* /* */ */`);
//! - lifetimes vs. char literals (`'a` vs `'a'` vs `'\u{1F980}'`);
//! - doc comments, which are kept as comment tokens because the
//!   `unsafe-needs-safety` rule accepts `/// # Safety` sections.
//!
//! It does **not** build an AST: rules pattern-match short token windows
//! plus per-line metadata, which is all the current rule set needs and keeps
//! the engine dependency-free and fast.

/// Classification of a single token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw identifiers, stored without `r#`).
    Ident,
    /// A lifetime such as `'a` or `'static` (stored with the leading `'`).
    Lifetime,
    /// Character literal, including byte chars (`'x'`, `b'\n'`).
    CharLit,
    /// String literal of any flavour (regular, raw, byte, raw byte). The
    /// stored text is the literal body *without* quotes or fences, so rules
    /// can compare contents directly.
    StrLit,
    /// Numeric literal (integers, floats, any radix, with suffixes).
    NumLit,
    /// `// …` comment, doc or not. Text includes the leading slashes.
    LineComment,
    /// `/* … */` comment (possibly spanning lines). Text includes delimiters.
    BlockComment,
    /// Any single punctuation character (`.`, `!`, `{`, …).
    Punct,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind conventions).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: usize,
    /// 1-based column of the token's first character.
    pub col: usize,
}

/// A lexing failure (unterminated literal or comment). The engine reports
/// these as findings instead of panicking — the lint gate must never abort
/// on malformed input, per the invariant it exists to enforce.
#[derive(Debug, Clone)]
pub struct LexError {
    /// 1-based line where the unterminated construct started.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: usize,
    col: usize,
}

impl Cursor {
    fn new(text: &str) -> Cursor {
        Cursor { chars: text.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied();
        if let Some(c) = c {
            self.pos += 1;
            if c == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        c
    }

    fn eat(&mut self, expected: char) -> bool {
        if self.peek() == Some(expected) {
            self.bump();
            true
        } else {
            false
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `text` into a token stream. Whitespace is dropped; comments are kept.
pub fn lex(text: &str) -> Result<Vec<Token>, LexError> {
    let mut cur = Cursor::new(text);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        if c == '/' {
            match cur.peek_at(1) {
                Some('/') => {
                    out.push(lex_line_comment(&mut cur, line, col));
                    continue;
                }
                Some('*') => {
                    out.push(lex_block_comment(&mut cur, line, col)?);
                    continue;
                }
                _ => {}
            }
        }
        // Raw strings / byte strings / C strings / raw identifiers start with
        // `r`, `b`, or `c` and must be recognized before generic identifier
        // lexing.
        if (c == 'r' || c == 'b' || c == 'c')
            && lex_prefixed_literal(&mut cur, &mut out, line, col)?
        {
            continue;
        }
        if c == '"' {
            out.push(lex_string(&mut cur, line, col)?);
            continue;
        }
        if c == '\'' {
            out.push(lex_quote(&mut cur, line, col)?);
            continue;
        }
        if c.is_ascii_digit() {
            out.push(lex_number(&mut cur, line, col));
            continue;
        }
        if is_ident_start(c) {
            out.push(lex_ident(&mut cur, line, col));
            continue;
        }
        cur.bump();
        out.push(Token { kind: TokKind::Punct, text: c.to_string(), line, col });
    }
    Ok(out)
}

fn lex_line_comment(cur: &mut Cursor, line: usize, col: usize) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c == '\n' {
            break;
        }
        text.push(c);
        cur.bump();
    }
    Token { kind: TokKind::LineComment, text, line, col }
}

fn lex_block_comment(cur: &mut Cursor, line: usize, col: usize) -> Result<Token, LexError> {
    let mut text = String::new();
    let mut depth = 0usize;
    loop {
        match (cur.peek(), cur.peek_at(1)) {
            (Some('/'), Some('*')) => {
                depth += 1;
                text.push('/');
                text.push('*');
                cur.bump();
                cur.bump();
            }
            (Some('*'), Some('/')) => {
                depth -= 1;
                text.push('*');
                text.push('/');
                cur.bump();
                cur.bump();
                if depth == 0 {
                    return Ok(Token { kind: TokKind::BlockComment, text, line, col });
                }
            }
            (Some(_), _) => {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            (None, _) => {
                return Err(LexError { line, message: "unterminated block comment".into() });
            }
        }
    }
}

/// Handle `r"…"`, `r#"…"#`, `b"…"`, `b'…'`, `br#"…"#`, `c"…"`, `cr#"…"#`
/// and raw identifiers. Returns `Ok(true)` when a token was produced,
/// `Ok(false)` when the `r`/`b`/`c` is just the start of an ordinary
/// identifier.
fn lex_prefixed_literal(
    cur: &mut Cursor,
    out: &mut Vec<Token>,
    line: usize,
    col: usize,
) -> Result<bool, LexError> {
    let c = cur.peek().unwrap_or(' ');
    // How many chars of prefix before a possible fence/quote?
    let (skip, raw) = match (c, cur.peek_at(1)) {
        ('r', Some('"')) | ('r', Some('#')) => (1, true),
        ('b', Some('"')) | ('c', Some('"')) => (1, false),
        ('b', Some('\'')) => {
            // Byte char literal: consume `b`, then lex as a quote literal.
            cur.bump();
            let tok = lex_quote(cur, line, col)?;
            out.push(tok);
            return Ok(true);
        }
        ('b', Some('r')) | ('c', Some('r')) => match cur.peek_at(2) {
            Some('"') | Some('#') => (2, true),
            _ => return Ok(false),
        },
        _ => return Ok(false),
    };
    if raw {
        // Count the `#` fence, then require `"`. `r#ident` (raw identifier)
        // has ident chars after a single `#` instead of a quote.
        let mut fence = 0usize;
        while cur.peek_at(skip + fence) == Some('#') {
            fence += 1;
        }
        if cur.peek_at(skip + fence) != Some('"') {
            if fence == 1 && skip == 1 {
                // Raw identifier `r#match`: skip the prefix, lex the ident.
                cur.bump();
                cur.bump();
                let tok = lex_ident(cur, line, col);
                out.push(tok);
                return Ok(true);
            }
            return Ok(false);
        }
        for _ in 0..skip + fence + 1 {
            cur.bump();
        }
        let mut text = String::new();
        loop {
            match cur.peek() {
                Some('"') => {
                    // A closing quote must be followed by `fence` hashes.
                    let mut matched = true;
                    for i in 0..fence {
                        if cur.peek_at(1 + i) != Some('#') {
                            matched = false;
                            break;
                        }
                    }
                    if matched {
                        for _ in 0..fence + 1 {
                            cur.bump();
                        }
                        out.push(Token { kind: TokKind::StrLit, text, line, col });
                        return Ok(true);
                    }
                    text.push('"');
                    cur.bump();
                }
                Some(_) => {
                    if let Some(ch) = cur.bump() {
                        text.push(ch);
                    }
                }
                None => {
                    return Err(LexError { line, message: "unterminated raw string".into() });
                }
            }
        }
    } else {
        // Byte string `b"…"` / C string `c"…"`: skip the prefix, lex like a
        // normal string.
        cur.bump();
        let tok = lex_string(cur, line, col)?;
        out.push(tok);
        Ok(true)
    }
}

fn lex_string(cur: &mut Cursor, line: usize, col: usize) -> Result<Token, LexError> {
    cur.bump(); // opening quote
    let mut text = String::new();
    loop {
        match cur.bump() {
            Some('"') => return Ok(Token { kind: TokKind::StrLit, text, line, col }),
            Some('\\') => {
                text.push('\\');
                if let Some(esc) = cur.bump() {
                    text.push(esc);
                }
            }
            Some(c) => text.push(c),
            None => return Err(LexError { line, message: "unterminated string literal".into() }),
        }
    }
}

/// Disambiguate `'a` (lifetime) from `'a'` / `'\n'` / `'é'` (char literal).
fn lex_quote(cur: &mut Cursor, line: usize, col: usize) -> Result<Token, LexError> {
    cur.bump(); // the opening `'`
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume the backslash and the escaped
            // char unconditionally (so `'\''` does not close on the escaped
            // quote), then scan to the closing quote (covers `'\u{…}'`).
            let mut text = String::from("'");
            for _ in 0..2 {
                if let Some(c) = cur.bump() {
                    text.push(c);
                }
            }
            while let Some(c) = cur.bump() {
                text.push(c);
                if c == '\'' {
                    return Ok(Token { kind: TokKind::CharLit, text, line, col });
                }
            }
            Err(LexError { line, message: "unterminated char literal".into() })
        }
        Some(c) if is_ident_start(c) => {
            // Could be `'a'` (char) or `'a` / `'static` (lifetime): scan the
            // identifier, then look for a closing quote.
            let mut text = String::from("'");
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.eat('\'') {
                text.push('\'');
                Ok(Token { kind: TokKind::CharLit, text, line, col })
            } else {
                Ok(Token { kind: TokKind::Lifetime, text, line, col })
            }
        }
        Some(c) => {
            // Single non-identifier char such as `'('` or `'é'`.
            cur.bump();
            if cur.eat('\'') {
                Ok(Token { kind: TokKind::CharLit, text: format!("'{c}'"), line, col })
            } else {
                Err(LexError { line, message: "unterminated char literal".into() })
            }
        }
        None => Err(LexError { line, message: "dangling quote at end of file".into() }),
    }
}

fn lex_number(cur: &mut Cursor, line: usize, col: usize) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
            // Allow an exponent sign directly after `e`/`E` in float syntax.
            if (c == 'e' || c == 'E') && matches!(cur.peek(), Some('+') | Some('-')) {
                // Only if a digit follows the sign — `1e-3` yes, `1e - x` no.
                if cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
                    if let Some(sign) = cur.bump() {
                        text.push(sign);
                    }
                }
            }
        } else if c == '.' && cur.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            // Fractional part; `1..n` range syntax keeps the dot as punct.
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token { kind: TokKind::NumLit, text, line, col }
}

fn lex_ident(cur: &mut Cursor, line: usize, col: usize) -> Token {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if is_ident_continue(c) {
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    Token { kind: TokKind::Ident, text, line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).unwrap().into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a u8) { let c = 'a'; let d = '\\n'; let s = '_'; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).map(|(_, t)| t.clone()).collect();
        let chars: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::CharLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        assert_eq!(chars, vec!["'a'", "'\\n'", "'_'"]);
    }

    #[test]
    fn escaped_quote_char_literal() {
        let toks = kinds("let q = '\\''; let l = 'a;");
        assert!(toks.contains(&(TokKind::CharLit, "'\\''".into())));
        assert!(toks.contains(&(TokKind::Lifetime, "'a".into())));
    }

    #[test]
    fn static_lifetime_and_unicode_char() {
        let toks = kinds("let x: &'static str = \"s\"; let c = 'é';");
        assert!(toks.contains(&(TokKind::Lifetime, "'static".into())));
        assert!(toks.contains(&(TokKind::CharLit, "'é'".into())));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = kinds(r####"let a = r"x"; let b = r#"say "hi""#; let c = r##"#"##;"####);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec!["x", "say \"hi\"", "#"]);
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = kinds("let a = b\"bytes\"; let c = b'x';");
        assert!(toks.contains(&(TokKind::StrLit, "bytes".into())));
        assert!(toks.contains(&(TokKind::CharLit, "'x'".into())));
    }

    #[test]
    fn raw_byte_strings_with_fences() {
        let toks = kinds(r####"let a = br"x"; let b = br#"say "hi""#;"####);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec!["x", "say \"hi\""]);
    }

    #[test]
    fn c_strings_plain_and_raw() {
        let toks = kinds(r####"let a = c"nul-terminated"; let b = cr#"raw "c""#;"####);
        let strs: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::StrLit).map(|(_, t)| t.clone()).collect();
        assert_eq!(strs, vec!["nul-terminated", "raw \"c\""]);
        // A `;` inside a C string must not look like a statement boundary to
        // downstream rules.
        let toks = kinds("let a = c\"one; two\";");
        assert!(toks.contains(&(TokKind::StrLit, "one; two".into())));
    }

    #[test]
    fn c_and_cr_still_lex_as_identifiers() {
        let toks = kinds("let c = cr + 1; fn crate_fn(c: u8) {}");
        let idents: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokKind::Ident).map(|(_, t)| t.clone()).collect();
        assert!(idents.contains(&"c".to_string()));
        assert!(idents.contains(&"cr".to_string()));
        assert!(idents.contains(&"crate_fn".to_string()));
    }

    #[test]
    fn raw_identifiers() {
        let toks = kinds("let r#match = 1;");
        assert!(toks.contains(&(TokKind::Ident, "match".into())));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still outer */ fn f() {}");
        assert_eq!(toks[0].0, TokKind::BlockComment);
        assert!(toks[0].1.contains("inner"));
        assert!(toks.contains(&(TokKind::Ident, "fn".into())));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("/* never closed").is_err());
        assert!(lex("let s = \"open").is_err());
    }

    #[test]
    fn keywords_in_strings_are_not_idents() {
        let toks = kinds("let s = \"unsafe panic! unwrap()\";");
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "unsafe"));
        assert!(!toks.iter().any(|(k, t)| *k == TokKind::Ident && t == "panic"));
    }

    #[test]
    fn numbers_floats_and_ranges() {
        let toks = kinds("let a = 1.5e-3; let b = 0x1F; for i in 1..10 {}");
        assert!(toks.contains(&(TokKind::NumLit, "1.5e-3".into())));
        assert!(toks.contains(&(TokKind::NumLit, "0x1F".into())));
        // `1..10` must lex as number, punct, punct, number.
        assert!(toks.contains(&(TokKind::NumLit, "1".into())));
        assert!(toks.contains(&(TokKind::NumLit, "10".into())));
    }

    #[test]
    fn line_positions_are_tracked() {
        let toks = lex("a\nbb\n  ccc").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 1));
        assert_eq!((toks[2].line, toks[2].col), (3, 3));
    }
}
