//! `arc-lint` CLI — the workspace lint gate.
//!
//! ```text
//! cargo run -p arc-lint -- [--deny] [--strict-baseline] [--format json]
//!                          [--root DIR] [--baseline PATH] [--no-baseline]
//!                          [--rule KEY] [--write-baseline] [--list-rules]
//!                          [--graph dot|json]
//! ```
//!
//! Exit status: 0 when the workspace is clean relative to the baseline;
//! 1 under `--deny` when new violations exist (or, with `--strict-baseline`,
//! when the committed baseline is stale and should be shrunk); 2 on usage
//! or I/O errors. Without `--deny` the run is informational and exits 0.
//!
//! `--graph dot|json` dumps the decode-root reachability cone (the set of
//! functions the transitive rules police) instead of the findings report.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

use arc_lint::baseline::Baseline;
use arc_lint::cone::cone_rule_descriptions;
use arc_lint::engine::{run, GraphFormat, Options};
use arc_lint::json::escape;
use arc_lint::rules::{default_rules, Finding};

/// Version of the `--format json` report shape. Bump when fields change
/// meaning or move; additions bump it too so consumers can key on it.
const JSON_SCHEMA_VERSION: u32 = 2;

struct Cli {
    root: Option<PathBuf>,
    format_json: bool,
    deny: bool,
    strict_baseline: bool,
    baseline_path: Option<PathBuf>,
    no_baseline: bool,
    write_baseline: bool,
    rule: Option<String>,
    list_rules: bool,
    graph: Option<GraphFormat>,
}

fn parse_cli(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        root: None,
        format_json: false,
        deny: false,
        strict_baseline: false,
        baseline_path: None,
        no_baseline: false,
        write_baseline: false,
        rule: None,
        list_rules: false,
        graph: None,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |name: &str| -> Result<String, String> {
            it.next().cloned().ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--root" => cli.root = Some(PathBuf::from(take("--root")?)),
            "--baseline" => cli.baseline_path = Some(PathBuf::from(take("--baseline")?)),
            "--rule" => cli.rule = Some(take("--rule")?),
            "--format" => {
                let v = take("--format")?;
                match v.as_str() {
                    "json" => cli.format_json = true,
                    "text" => cli.format_json = false,
                    other => return Err(format!("unknown format '{other}' (text|json)")),
                }
            }
            "--graph" => {
                let v = take("--graph")?;
                match v.as_str() {
                    "dot" => cli.graph = Some(GraphFormat::Dot),
                    "json" => cli.graph = Some(GraphFormat::Json),
                    other => return Err(format!("unknown graph format '{other}' (dot|json)")),
                }
            }
            "--deny" => cli.deny = true,
            "--strict-baseline" => cli.strict_baseline = true,
            "--no-baseline" => cli.no_baseline = true,
            "--write-baseline" => cli.write_baseline = true,
            "--list-rules" => cli.list_rules = true,
            "--help" | "-h" => {
                return Err("usage: arc-lint [--deny] [--strict-baseline] [--format text|json] \
                            [--root DIR] [--baseline PATH] [--no-baseline] [--rule KEY] \
                            [--write-baseline] [--list-rules] [--graph dot|json]"
                    .into())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    Ok(cli)
}

/// Find the workspace root: the nearest ancestor of the current directory
/// whose `Cargo.toml` declares `[workspace]`.
fn find_workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cannot get cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace root found above the current directory \
                        (pass --root explicitly)"
                .into());
        }
    }
}

fn print_text_report(
    new_pairs: &BTreeMap<(String, String), (u64, u64)>,
    findings: &[Finding],
    suppressed: usize,
    stale: &[arc_lint::baseline::RatchetEntry],
    files_scanned: usize,
    cone_size: usize,
) {
    let mut new_count = 0u64;
    for f in findings {
        if let Some((actual, allowed)) = new_pairs.get(&(f.rule.to_string(), f.file.clone())) {
            println!(
                "{}:{}: [{}] {}: {} ({actual} found, baseline allows {allowed})",
                f.file,
                f.line,
                f.severity.label(),
                f.rule,
                f.message
            );
            new_count += 1;
        }
    }
    for e in stale {
        println!(
            "lint-baseline.json: stale entry {} / {} (allows {}, found {}) — \
             run scripts/lint_baseline.sh to shrink it",
            e.rule, e.file, e.allowed, e.actual
        );
    }
    let baselined = findings.len() as u64 - new_count;
    println!(
        "arc-lint: {} file(s), {} fn(s) in decode cone, {} finding(s): {} new, \
         {} baselined, {} suppressed, {} stale baseline entr(ies)",
        files_scanned,
        cone_size,
        findings.len(),
        new_count,
        baselined,
        suppressed,
        stale.len()
    );
}

fn print_json_report(
    new_pairs: &BTreeMap<(String, String), (u64, u64)>,
    findings: &[Finding],
    suppressed: usize,
    stale: &[arc_lint::baseline::RatchetEntry],
    files_scanned: usize,
    cone_size: usize,
) {
    // Hand-rolled with fixed key order: output is byte-stable across runs.
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"schema_version\": {JSON_SCHEMA_VERSION},\n"));
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"cone_size\": {cone_size},\n"));
    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let is_new = new_pairs.contains_key(&(f.rule.to_string(), f.file.clone()));
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"severity\": \"{}\", \
             \"message\": \"{}\", \"new\": {}}}{}\n",
            escape(&f.file),
            f.line,
            escape(f.rule),
            f.severity.label(),
            escape(&f.message),
            is_new,
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"stale_baseline_entries\": [\n");
    for (i, e) in stale.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"file\": \"{}\", \"allowed\": {}, \"actual\": {}}}{}\n",
            escape(&e.rule),
            escape(&e.file),
            e.allowed,
            e.actual,
            if i + 1 < stale.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!("  \"suppressed\": {suppressed}\n"));
    out.push_str("}\n");
    print!("{out}");
}

/// Per-rule before/after totals when regenerating the baseline, so a
/// `scripts/lint_baseline.sh` run shows exactly which debt moved.
fn print_baseline_delta(old: &Baseline, new: &Baseline) {
    let mut rules: Vec<&String> = old.counts.keys().chain(new.counts.keys()).collect();
    rules.sort();
    rules.dedup();
    let total = |b: &Baseline, rule: &str| -> u64 {
        b.counts.get(rule).map(|m| m.values().sum()).unwrap_or(0)
    };
    println!("{:<28} {:>8} {:>8} {:>8}", "rule", "before", "after", "delta");
    for rule in rules {
        let before = total(old, rule);
        let after = total(new, rule);
        let delta = after as i64 - before as i64;
        println!("{rule:<28} {before:>8} {after:>8} {delta:>+8}");
    }
}

fn real_main() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = parse_cli(&args)?;

    if cli.list_rules {
        for r in default_rules() {
            println!("{:<26} [{}] {}", r.key(), r.severity().label(), r.describe());
        }
        for (key, what) in cone_rule_descriptions() {
            println!("{key:<26} [error] {what}");
        }
        return Ok(ExitCode::SUCCESS);
    }

    let root = match &cli.root {
        Some(r) => r.clone(),
        None => find_workspace_root()?,
    };
    let opts = Options { respect_filters: true, only_rule: cli.rule.clone(), graph: cli.graph };
    let result = run(&root, &opts)?;

    if let Some(dump) = &result.graph_dump {
        print!("{dump}");
        return Ok(ExitCode::SUCCESS);
    }

    let actual = Baseline::from_findings(&result.findings);

    let baseline_path =
        cli.baseline_path.clone().unwrap_or_else(|| root.join("lint-baseline.json"));

    if cli.write_baseline {
        let old = match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)
                .map_err(|e| format!("malformed {}: {e}", baseline_path.display()))?,
            Err(_) => Baseline::default(),
        };
        std::fs::write(&baseline_path, actual.to_json())
            .map_err(|e| format!("cannot write {}: {e}", baseline_path.display()))?;
        print_baseline_delta(&old, &actual);
        println!(
            "arc-lint: wrote {} ({} entr(ies), {} violation(s))",
            baseline_path.display(),
            actual.counts.values().map(|m| m.len()).sum::<usize>(),
            actual.total()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let allowed = if cli.no_baseline {
        Baseline::default()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => Baseline::parse(&text)
                .map_err(|e| format!("malformed {}: {e}", baseline_path.display()))?,
            Err(_) => Baseline::default(),
        }
    };
    let ratchet = allowed.ratchet(&actual);
    let new_pairs: BTreeMap<(String, String), (u64, u64)> = ratchet
        .new
        .iter()
        .map(|e| ((e.rule.clone(), e.file.clone()), (e.actual, e.allowed)))
        .collect();

    if cli.format_json {
        print_json_report(
            &new_pairs,
            &result.findings,
            result.suppressed.len(),
            &ratchet.stale,
            result.files_scanned,
            result.cone_size,
        );
    } else {
        print_text_report(
            &new_pairs,
            &result.findings,
            result.suppressed.len(),
            &ratchet.stale,
            result.files_scanned,
            result.cone_size,
        );
    }

    let fail =
        cli.deny && (!ratchet.new.is_empty() || (cli.strict_baseline && !ratchet.stale.is_empty()));
    Ok(if fail { ExitCode::FAILURE } else { ExitCode::SUCCESS })
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("arc-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
