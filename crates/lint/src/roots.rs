//! Decode-root declarations: the committed `lint-roots.toml`.
//!
//! Roots are the functions hostile bytes enter through; the decode cone —
//! everything the three `decode-*` rules police — is what's reachable from
//! them in the call graph. The file is deliberately tiny (this crate has
//! no TOML dependency, so only the subset below is accepted):
//!
//! ```toml
//! # comments and blank lines are fine
//! schema = 1
//! roots = [
//!     "container::unpack",          # module-qualified free fn
//!     "ArcReader::decode_range",    # Type::method
//!     "StreamDecoder::push",
//! ]
//! ```
//!
//! Each spec is `name`, `module::name`, or `Type::method`, resolved by
//! [`crate::callgraph::CallGraph::resolve_spec`]. A spec that resolves to
//! nothing is reported as a `lint-roots-error` finding — a root pointing
//! at a renamed function must fail the gate, not silently shrink the cone.
//! Functions can also self-declare with a `// arc-lint: decode-root`
//! comment; those are unioned with the file's list.

/// One declared root spec.
#[derive(Debug, Clone)]
pub struct Spec {
    /// The spec exactly as written (`container::unpack`).
    pub text: String,
    /// 1-based line in `lint-roots.toml` (for unresolved-root findings).
    pub line: usize,
}

/// Parsed root declarations, in file order.
#[derive(Debug, Default)]
pub struct Roots {
    /// Root specs in declaration order (order = witness priority).
    pub specs: Vec<Spec>,
}

/// Parse the `lint-roots.toml` subset. Returns `Err(message)` on anything
/// outside the accepted grammar so a typo cannot silently drop roots.
pub fn parse(text: &str) -> Result<Roots, String> {
    let mut roots = Roots::default();
    let mut saw_schema = false;
    let mut in_list = false;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if in_list {
            let body = if let Some(rest) = line.strip_suffix(']') {
                in_list = false;
                rest.trim()
            } else {
                line.as_str()
            };
            for part in body.split(',') {
                let part = part.trim();
                if part.is_empty() {
                    continue;
                }
                roots.specs.push(Spec { text: unquote(part, lineno)?, line: lineno });
            }
            continue;
        }
        if let Some(value) = line.strip_prefix("schema") {
            let value = value.trim().strip_prefix('=').map(str::trim).unwrap_or("");
            if value != "1" {
                return Err(format!("line {lineno}: unsupported schema '{value}' (expected 1)"));
            }
            saw_schema = true;
            continue;
        }
        if let Some(value) = line.strip_prefix("roots") {
            let value = value.trim().strip_prefix('=').map(str::trim).unwrap_or("");
            let Some(rest) = value.strip_prefix('[') else {
                return Err(format!("line {lineno}: roots must be a [ … ] list"));
            };
            let rest = rest.trim();
            if let Some(body) = rest.strip_suffix(']') {
                for part in body.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    roots.specs.push(Spec { text: unquote(part, lineno)?, line: lineno });
                }
            } else {
                in_list = true;
                for part in rest.split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    roots.specs.push(Spec { text: unquote(part, lineno)?, line: lineno });
                }
            }
            continue;
        }
        return Err(format!("line {lineno}: unrecognized line '{line}'"));
    }
    if in_list {
        return Err("unterminated roots list (missing ])".to_string());
    }
    if !saw_schema {
        return Err("missing `schema = 1` declaration".to_string());
    }
    Ok(roots)
}

/// Drop a trailing `# comment`, respecting `"…"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Strip the mandatory double quotes around a root spec.
fn unquote(part: &str, lineno: usize) -> Result<String, String> {
    let inner = part
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| format!("line {lineno}: root spec {part} must be double-quoted"))?;
    if inner.is_empty() {
        return Err(format!("line {lineno}: empty root spec"));
    }
    Ok(inner.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multiline_list_with_comments() {
        let text = "# decode roots\nschema = 1\nroots = [\n    \"container::unpack\",  # the v2 container\n    \"ArcReader::decode_range\",\n]\n";
        let r = parse(text).unwrap();
        let texts: Vec<&str> = r.specs.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["container::unpack", "ArcReader::decode_range"]);
        assert_eq!(r.specs[0].line, 4);
        assert_eq!(r.specs[1].line, 5);
    }

    #[test]
    fn parses_single_line_list() {
        let r = parse("schema = 1\nroots = [\"a\", \"b::c\"]\n").unwrap();
        let texts: Vec<&str> = r.specs.iter().map(|s| s.text.as_str()).collect();
        assert_eq!(texts, vec!["a", "b::c"]);
    }

    #[test]
    fn rejects_bad_schema_and_unquoted_specs() {
        assert!(parse("schema = 2\nroots = []\n").is_err());
        assert!(parse("schema = 1\nroots = [bare]\n").is_err());
        assert!(parse("roots = [\"a\"]\n").is_err());
        assert!(parse("schema = 1\nroots = [\n\"a\",\n").is_err());
        assert!(parse("schema = 1\nbogus = true\n").is_err());
    }
}
