//! `arc-lint` — a zero-dependency workspace lint engine enforcing ARC's
//! resiliency invariants.
//!
//! ARC's value proposition is that the *protection layer itself* never
//! corrupts or aborts on the data it was asked to protect. That discipline
//! has to be machine-checked, not conventional: this crate walks every
//! `.rs` file in the workspace with a hand-rolled Rust lexer and enforces
//! two layers of invariants.
//!
//! Token-level rules ([`rules`]), checked per file:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety`    | every `unsafe` site carries a `// SAFETY:` proof |
//! | `no-panic-in-lib`        | no `.unwrap()`/`panic!`-family aborts in library code |
//! | `no-lossy-cast`          | no narrowing `as` casts in the ecc/zfp hot paths |
//! | `atomic-ordering-audit`  | `Ordering::Relaxed` in telemetry is justified in-line |
//! | `feature-gate-hygiene`   | telemetry is gated through the facade, never ad-hoc cfg |
//!
//! Transitive rules ([`cone`]), checked over the workspace call graph
//! ([`syntax`] parses items, [`callgraph`] resolves calls) on every
//! function reachable from the decode roots declared in `lint-roots.toml`
//! ([`roots`]) or marked `// arc-lint: decode-root`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | `decode-no-panic-transitive` | nothing a decode root can reach may abort |
//! | `decode-no-direct-index`     | `x[i]` in the cone needs `.get()` or a `bounded(..)` proof |
//! | `decode-bounded-alloc`       | input-derived allocation sizes need a clamp or proof |
//!
//! Pre-existing debt lives in a committed, ratcheted `lint-baseline.json`
//! ([`baseline`]): new violations fail the gate, and the baseline may only
//! shrink. Individual sites can be waived in place with
//! `// arc-lint: allow(<rule>, <reason>)`; index/alloc sites can instead be
//! *proven* with `// arc-lint: bounded(<why>)`.
//!
//! See DESIGN.md §10 for the rule catalogue, the call-graph architecture,
//! and its soundness caveats.

pub mod baseline;
pub mod callgraph;
pub mod cone;
pub mod context;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod roots;
pub mod rules;
pub mod syntax;
