//! `arc-lint` — a zero-dependency workspace lint engine enforcing ARC's
//! resiliency invariants.
//!
//! ARC's value proposition is that the *protection layer itself* never
//! corrupts or aborts on the data it was asked to protect. That discipline
//! has to be machine-checked, not conventional: this crate walks every
//! `.rs` file in the workspace with a hand-rolled Rust lexer and enforces
//! five invariants (see [`rules`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | `unsafe-needs-safety`    | every `unsafe` site carries a `// SAFETY:` proof |
//! | `no-panic-in-lib`        | no `.unwrap()`/`panic!`-family aborts in library code |
//! | `no-lossy-cast`          | no narrowing `as` casts in the ecc/zfp hot paths |
//! | `atomic-ordering-audit`  | `Ordering::Relaxed` in telemetry is justified in-line |
//! | `feature-gate-hygiene`   | telemetry is gated through the facade, never ad-hoc cfg |
//!
//! Pre-existing debt lives in a committed, ratcheted `lint-baseline.json`
//! ([`baseline`]): new violations fail the gate, and the baseline may only
//! shrink. Individual sites can be waived in place with
//! `// arc-lint: allow(<rule>, <reason>)`.
//!
//! See DESIGN.md §10 for the rule catalogue and policy.

pub mod baseline;
pub mod context;
pub mod engine;
pub mod json;
pub mod lexer;
pub mod rules;
