// Fixture: other feature gates are fine, and the telemetry gate named in a
// string literal is data, not a cfg.

#[cfg(feature = "simd")]
pub fn fast_path() {}

pub fn docs() -> &'static str {
    "enable with --features telemetry, i.e. feature = \"telemetry\""
}
