// Fixture: ad-hoc telemetry cfg gates outside the facade must be flagged.

#[cfg(feature = "telemetry")]
pub fn emit() {}

pub fn hot_path() {
    #[cfg(feature = "telemetry")]
    emit();
}
