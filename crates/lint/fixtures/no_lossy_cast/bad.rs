// Fixture: narrowing `as` casts must be flagged.

pub fn shrink(x: u64) -> u8 {
    x as u8
}

pub fn reinterpret(x: u64) -> i32 {
    (x >> 3) as i32
}
