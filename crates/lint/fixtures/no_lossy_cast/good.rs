// Fixture: widening casts, checked conversions, and exempt regions.

pub fn widen(x: u8) -> u64 {
    x as u64
}

pub fn checked(x: u64) -> Option<u8> {
    u8::try_from(x).ok()
}

pub fn to_float(x: u64) -> f64 {
    x as f64
}

#[cfg(test)]
mod tests {
    #[test]
    fn narrowing_is_fine_in_tests() {
        let x = 300u64;
        assert_eq!(x as u8, 44);
    }
}
