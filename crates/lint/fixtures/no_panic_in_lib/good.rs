// Fixture: non-aborting idioms and exempt regions the rule must accept.

#[derive(Debug)]
pub struct DecodeError;

pub fn first(v: &[u8]) -> Result<u8, DecodeError> {
    v.first().copied().ok_or(DecodeError)
}

pub fn first_or_zero(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or(0)
}

pub fn first_or_default(v: &[u8]) -> u8 {
    v.first().copied().unwrap_or_default()
}

pub fn mentions_unwrap_in_a_string() -> &'static str {
    "calling .unwrap() here would panic!()"
}

pub fn waived(v: &[u8]) -> u8 {
    // arc-lint: allow(no-panic-in-lib, fixture exercising the waiver path)
    v.first().copied().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v = [1u8];
        assert_eq!(v.first().copied().unwrap(), 1);
    }
}
