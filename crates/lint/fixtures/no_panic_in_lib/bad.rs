// Fixture: abort paths in library code must be flagged.

pub fn first(v: &[u8]) -> u8 {
    v.first().copied().unwrap()
}

pub fn second(v: &[u8]) -> u8 {
    v.get(1).copied().expect("at least two bytes")
}

pub fn route(x: u32) -> u32 {
    match x {
        0 => 1,
        _ => unreachable!(),
    }
}

pub fn later() {
    todo!()
}
