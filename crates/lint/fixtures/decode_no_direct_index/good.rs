//! Every subscript in the cone is either `.get()`-based or carries a
//! written bounds proof; outside the cone the rule stays quiet.

// arc-lint: decode-root
pub fn decode(bytes: &[u8]) -> u8 {
    pick(bytes).wrapping_add(checked(bytes))
}

fn pick(bytes: &[u8]) -> u8 {
    bytes.first().copied().unwrap_or(0)
}

fn checked(bytes: &[u8]) -> u8 {
    if bytes.len() > 1 {
        // arc-lint: bounded(len > 1 checked above)
        bytes[1]
    } else {
        0
    }
}

/// Unreachable from the root: direct indexing here is the caller's problem.
pub fn offline_tool_path(v: &[u8]) -> u8 {
    v[0]
}
