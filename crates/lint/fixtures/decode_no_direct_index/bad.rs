//! A raw `bytes[0]` below a decode root: hostile input chooses the length.

// arc-lint: decode-root
pub fn decode(bytes: &[u8]) -> u8 {
    pick(bytes)
}

fn pick(bytes: &[u8]) -> u8 {
    bytes[0]
}
