// Fixture: `unsafe` without a SAFETY justification must be flagged.

pub fn first_byte(v: &[u8]) -> u8 {
    unsafe { *v.as_ptr() }
}

pub unsafe fn raw_read(p: *const u8) -> u8 {
    unsafe { *p }
}
