// Fixture: every justified `unsafe` form the rule must accept.

pub fn first_byte(v: &[u8]) -> u8 {
    assert!(!v.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *v.as_ptr() }
}

/// Reads one byte from a raw pointer.
///
/// # Safety
/// `p` must be valid for reads.
pub unsafe fn raw_read(p: *const u8) -> u8 {
    // SAFETY: contract forwarded from this function's own `# Safety` doc.
    unsafe { *p }
}

pub fn mentions_unsafe_in_a_string() -> &'static str {
    "unsafe { this is data, not code }"
}
