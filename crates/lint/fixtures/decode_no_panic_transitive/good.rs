//! The whole decode cone is total; a panic *outside* the cone is not this
//! rule's business.

// arc-lint: decode-root
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, String> {
    inner(bytes)
}

fn inner(bytes: &[u8]) -> Result<Vec<u8>, String> {
    helper(bytes).ok_or_else(|| "empty input".to_string())
}

fn helper(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        None
    } else {
        Some(bytes.to_vec())
    }
}

/// Never called from the root: free to panic without tripping the cone rule.
pub fn offline_tool_path(x: usize) -> usize {
    assert!(x < 100, "tool misuse");
    x * 2
}
