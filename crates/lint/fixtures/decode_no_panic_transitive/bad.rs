//! The panic is two calls below the root: only a transitive analysis
//! catches it.

// arc-lint: decode-root
pub fn decode(bytes: &[u8]) -> Vec<u8> {
    inner(bytes)
}

fn inner(bytes: &[u8]) -> Vec<u8> {
    helper(bytes).expect("valid input")
}

fn helper(bytes: &[u8]) -> Option<Vec<u8>> {
    if bytes.is_empty() {
        None
    } else {
        Some(bytes.to_vec())
    }
}
