//! `declared` comes straight out of the input framing; allocating it
//! unclamped lets a 10-byte container demand gigabytes.

// arc-lint: decode-root
pub fn decode(bytes: &[u8]) -> Vec<u8> {
    let declared = read_len(bytes);
    grow(declared)
}

fn grow(declared: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(declared);
    out.resize(declared, 0);
    out
}

fn read_len(bytes: &[u8]) -> usize {
    bytes.first().copied().unwrap_or(0) as usize * 65536
}
