//! Input-derived sizes are clamped to an explicit budget, or carry a
//! written proof of the upstream guard.

// arc-lint: decode-root
pub fn decode(bytes: &[u8]) -> Result<Vec<u8>, String> {
    let declared = read_len(bytes);
    if declared > bytes.len() {
        return Err("declared length exceeds the input".to_string());
    }
    // A bounding call in the size expression is proof enough on its own.
    let mut out = Vec::with_capacity(declared.min(1 << 20));
    // arc-lint: bounded(declared <= bytes.len() checked above)
    out.resize(declared, 0);
    Ok(out)
}

fn read_len(bytes: &[u8]) -> usize {
    bytes.first().copied().unwrap_or(0) as usize * 65536
}
