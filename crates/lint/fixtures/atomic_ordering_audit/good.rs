// Fixture: justified relaxed orderings and stronger orderings.

use std::sync::atomic::{AtomicU64, Ordering};

pub static HITS: AtomicU64 = AtomicU64::new(0);

pub fn bump() {
    // relaxed: advisory counter, nothing synchronizes on it.
    HITS.fetch_add(1, Ordering::Relaxed);
}

pub fn read() -> u64 {
    HITS.load(Ordering::SeqCst)
}
