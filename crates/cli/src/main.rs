//! Thin shell around the testable [`arc_cli`] library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match arc_cli::parse_invocation(&args) {
        Ok(inv) => arc_cli::run_invocation(inv),
        Err(e) => {
            eprintln!("arc-cli: {e}");
            eprintln!("{}", arc_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
