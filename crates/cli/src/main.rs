//! Thin shell around the testable [`arc_cli`] library.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match arc_cli::parse(&args) {
        Ok(cmd) => arc_cli::run(cmd),
        Err(e) => {
            eprintln!("arc-cli: {e}");
            eprintln!("{}", arc_cli::USAGE);
            2
        }
    };
    std::process::exit(code);
}
