//! # arc-cli — command-line interface to ARC
//!
//! File-level access to the ARC pipeline: `protect` a file under
//! storage/throughput/resiliency constraints, `recover` it (repairing any
//! soft errors picked up in storage), `verify` without writing, `inspect`
//! the container header, pre-`train` the throughput cache, and print the
//! §6.4 `failure-model` guidance.
//!
//! The argument parser is hand-rolled and lives here (in the library) so it
//! can be unit-tested; `main.rs` is a thin shell around [`run`].

#![warn(missing_docs)]

use std::path::PathBuf;

use arc_core::{
    decode_with_threads, ArcContext, ArcOptions, EncodeRequest, ErrorResponse, MemoryConstraint,
    ResiliencyConstraint, SystemProfile, ThroughputConstraint, TrainingOptions, ANY_THREADS,
};
use arc_ecc::EccMethod;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Protect `input` into `output` under the given constraints.
    Protect {
        /// Source file.
        input: PathBuf,
        /// Destination container.
        output: PathBuf,
        /// Encode constraints.
        request: EncodeRequest,
        /// Thread cap (0 = all).
        threads: usize,
        /// Cache directory override.
        cache: Option<PathBuf>,
        /// Use small training probes (fast first run, coarser estimates).
        quick_train: bool,
    },
    /// Decode `input` into `output`, repairing if needed.
    Recover {
        /// Container file.
        input: PathBuf,
        /// Destination for the recovered bytes.
        output: PathBuf,
        /// Thread cap (0 = all).
        threads: usize,
    },
    /// Decode and report, writing nothing.
    Verify {
        /// Container file.
        input: PathBuf,
        /// Thread cap (0 = all).
        threads: usize,
    },
    /// Print the container header without decoding the payload.
    Inspect {
        /// Container file.
        input: PathBuf,
    },
    /// Warm the training cache.
    Train {
        /// Thread cap (0 = all).
        threads: usize,
        /// Cache directory override.
        cache: Option<PathBuf>,
        /// Use small training probes.
        quick_train: bool,
    },
    /// Print §6.4 guidance for a named system profile.
    FailureModel {
        /// "cielo" or "hopper".
        system: String,
        /// Data residency in days for the errors-per-MB estimate.
        days: f64,
    },
    /// Print usage.
    Help,
}

/// Usage text.
pub const USAGE: &str = "\
arc-cli — Automated Resiliency for Compression

USAGE:
  arc-cli protect <input> <output> [--mem F] [--bw MBPS]
          [--errors-per-mb R | --ecc METHOD[,METHOD…] | --burst | --sparse]
          [--threads N] [--cache DIR] [--quick-train]
  arc-cli recover <input> <output> [--threads N]
  arc-cli verify  <input> [--threads N]
  arc-cli inspect <input>
  arc-cli train   [--threads N] [--cache DIR] [--quick-train]
  arc-cli failure-model <cielo|hopper> [--days D]
  arc-cli help

GLOBAL FLAGS:
  --metrics[=PATH]   after the command, dump telemetry (Prometheus text,
                     or JSON when PATH ends in .json) to stdout or PATH;
                     needs a build with --features telemetry

CONSTRAINTS (protect):
  --mem F            storage cap as a fraction of the input (e.g. 0.25)
  --bw MBPS          encoding-throughput floor in MB/s
  --errors-per-mb R  expected uniformly distributed soft errors per MB
  --ecc METHODS      restrict to methods: parity, hamming, secded, rs
  --burst            require burst correction (ARC_COR_BURST)
  --sparse           require sparse correction (ARC_COR_SPARSE)
";

/// A full command-line invocation: the command plus global flags that
/// apply to every command (currently only `--metrics`).
#[derive(Debug, Clone, PartialEq)]
pub struct Invocation {
    /// The parsed command.
    pub command: Command,
    /// Telemetry export destination: `None` = not requested, `Some("")` =
    /// stdout, `Some(path)` = file (JSON when the path ends in `.json`,
    /// Prometheus text otherwise).
    pub metrics: Option<String>,
}

/// Parse an argument vector (without the program name), splitting off the
/// global `--metrics[=PATH]` flag before command parsing.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, String> {
    let mut metrics = None;
    let mut rest: Vec<String> = Vec::with_capacity(args.len());
    for a in args {
        if a == "--metrics" {
            metrics = Some(String::new());
        } else if let Some(path) = a.strip_prefix("--metrics=") {
            if path.is_empty() {
                return Err("--metrics= needs a path (or omit `=` for stdout)".into());
            }
            metrics = Some(path.to_string());
        } else {
            rest.push(a.clone());
        }
    }
    Ok(Invocation { command: parse(&rest)?, metrics })
}

/// Execute a parsed invocation: run the command, then export telemetry if
/// `--metrics` was given. Returns the process exit code.
pub fn run_invocation(inv: Invocation) -> i32 {
    let code = run(inv.command);
    if let Some(dest) = &inv.metrics {
        if let Err(e) = emit_metrics(dest) {
            eprintln!("arc-cli: --metrics: {e}");
            return if code == 0 { 1 } else { code };
        }
    }
    code
}

/// Render the telemetry snapshot to `dest` ("" = stdout; a path ending in
/// `.json` gets JSON, anything else Prometheus text exposition).
fn emit_metrics(dest: &str) -> Result<(), String> {
    if !arc_telemetry::enabled() {
        eprintln!(
            "arc-cli: note: built without the `telemetry` feature; \
             metrics output will be empty"
        );
    }
    let snap = arc_telemetry::snapshot();
    let text = if dest.ends_with(".json") { snap.to_json() } else { snap.to_prometheus_text() };
    if dest.is_empty() {
        print!("{text}");
        Ok(())
    } else {
        std::fs::write(dest, text).map_err(|e| format!("write {dest:?}: {e}"))
    }
}

fn parse_method(s: &str) -> Result<EccMethod, String> {
    match s {
        "parity" => Ok(EccMethod::Parity),
        "hamming" => Ok(EccMethod::Hamming),
        "secded" => Ok(EccMethod::SecDed),
        "rs" | "reed-solomon" => Ok(EccMethod::Rs),
        other => Err(format!("unknown ECC method {other:?}")),
    }
}

/// Parse an argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter().peekable();
    let cmd = it.next().map(String::as_str).unwrap_or("help");
    let mut positional: Vec<String> = Vec::new();
    let mut mem = MemoryConstraint::Any;
    let mut bw = ThroughputConstraint::Any;
    let mut resiliency = ResiliencyConstraint::Any;
    let mut threads = ANY_THREADS;
    let mut cache: Option<PathBuf> = None;
    let mut quick_train = false;
    let mut days = 30.0f64;
    let take_value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                      flag: &str|
     -> Result<String, String> {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--mem" => {
                let v: f64 = take_value(&mut it, "--mem")?
                    .parse()
                    .map_err(|_| "--mem needs a number".to_string())?;
                mem = MemoryConstraint::Fraction(v);
            }
            "--bw" => {
                let v: f64 = take_value(&mut it, "--bw")?
                    .parse()
                    .map_err(|_| "--bw needs a number".to_string())?;
                bw = ThroughputConstraint::MbPerS(v);
            }
            "--errors-per-mb" => {
                let v: f64 = take_value(&mut it, "--errors-per-mb")?
                    .parse()
                    .map_err(|_| "--errors-per-mb needs a number".to_string())?;
                resiliency = ResiliencyConstraint::ErrorsPerMb(v);
            }
            "--ecc" => {
                let list = take_value(&mut it, "--ecc")?;
                let methods: Result<Vec<EccMethod>, String> =
                    list.split(',').map(parse_method).collect();
                resiliency = ResiliencyConstraint::Methods(methods?);
            }
            "--burst" => {
                resiliency = ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectBurst])
            }
            "--sparse" => {
                resiliency = ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectSparse])
            }
            "--threads" => {
                threads = take_value(&mut it, "--threads")?
                    .parse()
                    .map_err(|_| "--threads needs an integer".to_string())?;
            }
            "--cache" => cache = Some(PathBuf::from(take_value(&mut it, "--cache")?)),
            "--quick-train" => quick_train = true,
            "--days" => {
                days = take_value(&mut it, "--days")?
                    .parse()
                    .map_err(|_| "--days needs a number".to_string())?;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown flag {flag}")),
            pos => positional.push(pos.to_string()),
        }
    }
    let need = |n: usize, what: &str| -> Result<(), String> {
        if positional.len() != n {
            Err(format!("{cmd}: expected {what}"))
        } else {
            Ok(())
        }
    };
    match cmd {
        "protect" => {
            need(2, "<input> <output>")?;
            Ok(Command::Protect {
                input: PathBuf::from(&positional[0]),
                output: PathBuf::from(&positional[1]),
                request: EncodeRequest { memory: mem, throughput: bw, resiliency },
                threads,
                cache,
                quick_train,
            })
        }
        "recover" => {
            need(2, "<input> <output>")?;
            Ok(Command::Recover {
                input: PathBuf::from(&positional[0]),
                output: PathBuf::from(&positional[1]),
                threads,
            })
        }
        "verify" => {
            need(1, "<input>")?;
            Ok(Command::Verify { input: PathBuf::from(&positional[0]), threads })
        }
        "inspect" => {
            need(1, "<input>")?;
            Ok(Command::Inspect { input: PathBuf::from(&positional[0]) })
        }
        "train" => {
            need(0, "no positional arguments")?;
            Ok(Command::Train { threads, cache, quick_train })
        }
        "failure-model" => {
            need(1, "<cielo|hopper>")?;
            Ok(Command::FailureModel { system: positional[0].clone(), days })
        }
        "help" | "--help" | "-h" => Ok(Command::Help),
        other => Err(format!("unknown command {other:?}; try `arc-cli help`")),
    }
}

fn options(threads: usize, cache: Option<PathBuf>, quick_train: bool) -> ArcOptions {
    let mut opts = ArcOptions { max_threads: threads, ..Default::default() };
    if let Some(dir) = cache {
        opts.cache_path = Some(dir.join("training.tsv"));
    }
    if quick_train {
        opts.training = TrainingOptions {
            sample_bytes: 256 << 10,
            rs_sample_bytes: 64 << 10,
            ..Default::default()
        };
    }
    opts
}

/// Execute a parsed command; returns the process exit code.
pub fn run(cmd: Command) -> i32 {
    match execute(cmd) {
        Ok(()) => 0,
        Err(e) => {
            eprintln!("arc-cli: {e}");
            1
        }
    }
}

fn execute(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Protect { input, output, request, threads, cache, quick_train } => {
            let data = std::fs::read(&input).map_err(|e| format!("read {input:?}: {e}"))?;
            let ctx = ArcContext::init(options(threads, cache, quick_train))
                .map_err(|e| e.to_string())?;
            let (encoded, sel) = ctx.encode(&data, &request).map_err(|e| e.to_string())?;
            std::fs::write(&output, &encoded).map_err(|e| format!("write {output:?}: {e}"))?;
            println!(
                "protected {} -> {} with {} on {} thread(s); overhead {:.2}% ({} -> {} bytes)",
                input.display(),
                output.display(),
                sel.config,
                sel.threads,
                100.0 * (encoded.len() as f64 - data.len() as f64) / data.len().max(1) as f64,
                data.len(),
                encoded.len()
            );
            for note in &sel.notes {
                println!("warning: {note}");
            }
            ctx.close().map_err(|e| e.to_string())
        }
        Command::Recover { input, output, threads } => {
            let bytes = std::fs::read(&input).map_err(|e| format!("read {input:?}: {e}"))?;
            let threads = resolve_threads(threads);
            let (data, report) = decode_with_threads(&bytes, threads).map_err(|e| e.to_string())?;
            std::fs::write(&output, &data).map_err(|e| format!("write {output:?}: {e}"))?;
            println!(
                "recovered {} bytes via {}; {} bit(s) and {} device(s) repaired{}",
                data.len(),
                report.scheme_id,
                report.correction.corrected_bits,
                report.correction.corrected_devices,
                if report.used_backup_header { " (backup header used)" } else { "" }
            );
            Ok(())
        }
        Command::Verify { input, threads } => {
            let bytes = std::fs::read(&input).map_err(|e| format!("read {input:?}: {e}"))?;
            let threads = resolve_threads(threads);
            match decode_with_threads(&bytes, threads) {
                Ok((data, report)) => {
                    if report.correction.is_clean() {
                        println!("OK: {} bytes verified clean ({})", data.len(), report.scheme_id);
                    } else {
                        println!(
                            "REPAIRABLE: {} bit(s), {} device(s) damaged but correctable",
                            report.correction.corrected_bits, report.correction.corrected_devices
                        );
                    }
                    Ok(())
                }
                Err(e) => Err(format!("verification failed: {e}")),
            }
        }
        Command::Inspect { input } => {
            let bytes = std::fs::read(&input).map_err(|e| format!("read {input:?}: {e}"))?;
            let u = arc_core::container::unpack(&bytes).map_err(|e| e.to_string())?;
            println!("scheme:        {}", u.meta.scheme_id);
            println!("chunk size:    {} bytes", u.meta.chunk_size);
            println!("data length:   {} bytes", u.meta.data_len);
            println!("payload:       {} bytes", u.meta.payload_len);
            println!("data CRC-32:   {:08x}", u.meta.data_crc);
            println!(
                "header health: {}{}",
                if u.header_symbols_corrected == 0 {
                    "clean".to_string()
                } else {
                    format!("{} symbol(s) repaired", u.header_symbols_corrected)
                },
                if u.used_backup_header { ", backup copy used" } else { "" }
            );
            Ok(())
        }
        Command::Train { threads, cache, quick_train } => {
            let ctx = ArcContext::init(options(threads, cache, quick_train))
                .map_err(|e| e.to_string())?;
            let s = ctx.training_stats();
            println!(
                "trained {} point(s) across {} configuration(s) in {:.2}s",
                s.points_measured, s.configs_trained, s.seconds
            );
            ctx.close().map_err(|e| e.to_string())
        }
        Command::FailureModel { system, days } => {
            let profile = match system.as_str() {
                "cielo" => SystemProfile::cielo(),
                "hopper" => SystemProfile::hopper(),
                other => return Err(format!("unknown system {other:?} (cielo|hopper)")),
            };
            println!("{}", profile.summary());
            println!(
                "expected soft errors per MB over {days} day(s) of residency: {:.3e}",
                profile.errors_per_mb(days)
            );
            println!("recommended resiliency constraint: {:?}", profile.recommended_resiliency());
            Ok(())
        }
    }
}

fn resolve_threads(threads: usize) -> usize {
    if threads == ANY_THREADS {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_protect_with_constraints() {
        let cmd = parse(&args(
            "protect in.dat out.arc --mem 0.25 --bw 150 --errors-per-mb 1 --threads 4",
        ))
        .unwrap();
        match cmd {
            Command::Protect { request, threads, .. } => {
                assert_eq!(request.memory, MemoryConstraint::Fraction(0.25));
                assert_eq!(request.throughput, ThroughputConstraint::MbPerS(150.0));
                assert_eq!(request.resiliency, ResiliencyConstraint::ErrorsPerMb(1.0));
                assert_eq!(threads, 4);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_ecc_method_lists() {
        let cmd = parse(&args("protect a b --ecc secded,rs")).unwrap();
        match cmd {
            Command::Protect { request, .. } => {
                assert_eq!(
                    request.resiliency,
                    ResiliencyConstraint::Methods(vec![EccMethod::SecDed, EccMethod::Rs])
                );
            }
            other => panic!("{other:?}"),
        }
        assert!(parse(&args("protect a b --ecc bogus")).is_err());
    }

    #[test]
    fn parses_burst_and_sparse_flags() {
        match parse(&args("protect a b --burst")).unwrap() {
            Command::Protect { request, .. } => assert_eq!(
                request.resiliency,
                ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectBurst])
            ),
            other => panic!("{other:?}"),
        }
        match parse(&args("protect a b --sparse")).unwrap() {
            Command::Protect { request, .. } => assert_eq!(
                request.resiliency,
                ResiliencyConstraint::Responses(vec![ErrorResponse::CorrectSparse])
            ),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse(&args("protect onlyone")).is_err());
        assert!(parse(&args("recover x")).is_err());
        assert!(parse(&args("frobnicate a b")).is_err());
        assert!(parse(&args("protect a b --mem")).is_err());
        assert!(parse(&args("protect a b --mem notanumber")).is_err());
        assert!(parse(&args("protect a b --wat")).is_err());
    }

    #[test]
    fn parses_simple_commands() {
        assert_eq!(parse(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert!(matches!(parse(&args("verify f.arc")).unwrap(), Command::Verify { .. }));
        assert!(matches!(parse(&args("inspect f.arc")).unwrap(), Command::Inspect { .. }));
        assert!(matches!(
            parse(&args("failure-model cielo --days 7")).unwrap(),
            Command::FailureModel { days, .. } if days == 7.0
        ));
        assert!(matches!(
            parse(&args("train --quick-train --cache /tmp/c")).unwrap(),
            Command::Train { quick_train: true, .. }
        ));
    }

    #[test]
    fn parse_invocation_strips_metrics_flag() {
        // Bare --metrics → stdout sentinel; command parses as if absent.
        let inv = parse_invocation(&args("verify f.arc --metrics")).unwrap();
        assert_eq!(inv.metrics, Some(String::new()));
        assert_eq!(inv.command, parse(&args("verify f.arc")).unwrap());
        // --metrics=PATH anywhere in the line, .json or not.
        let inv = parse_invocation(&args("--metrics=out.json inspect f.arc")).unwrap();
        assert_eq!(inv.metrics, Some("out.json".to_string()));
        assert!(matches!(inv.command, Command::Inspect { .. }));
        // No flag → None.
        assert_eq!(parse_invocation(&args("help")).unwrap().metrics, None);
        // Empty path is rejected; other parse errors still surface.
        assert!(parse_invocation(&args("verify f.arc --metrics=")).is_err());
        assert!(parse_invocation(&args("frobnicate --metrics")).is_err());
    }

    #[test]
    fn metrics_file_export_writes_document() {
        let dir = std::env::temp_dir().join(format!("arc-cli-metrics-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let json = dir.join("m.json");
        let prom = dir.join("m.prom");
        let inv = Invocation {
            command: Command::FailureModel { system: "cielo".into(), days: 1.0 },
            metrics: Some(json.display().to_string()),
        };
        assert_eq!(run_invocation(inv), 0);
        let body = std::fs::read_to_string(&json).unwrap();
        // Valid JSON skeleton whether or not the feature is compiled in.
        assert!(body.starts_with('{') && body.contains("\"spans\""));
        let inv = Invocation {
            command: Command::FailureModel { system: "hopper".into(), days: 1.0 },
            metrics: Some(prom.display().to_string()),
        };
        assert_eq!(run_invocation(inv), 0);
        assert!(prom.exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn protect_recover_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("arc-cli-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let input = dir.join("input.bin");
        let container = dir.join("protected.arc");
        let recovered = dir.join("recovered.bin");
        let payload: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&input, &payload).unwrap();

        let cmd = parse(&[
            "protect".into(),
            input.display().to_string(),
            container.display().to_string(),
            "--mem".into(),
            "0.3".into(),
            "--threads".into(),
            "2".into(),
            "--cache".into(),
            dir.display().to_string(),
            "--quick-train".into(),
        ])
        .unwrap();
        assert_eq!(run(cmd), 0);

        // Strike the stored container with a soft error.
        let mut stored = std::fs::read(&container).unwrap();
        let mid = stored.len() / 2;
        stored[mid] ^= 0x20;
        std::fs::write(&container, &stored).unwrap();

        let cmd = parse(&[
            "recover".into(),
            container.display().to_string(),
            recovered.display().to_string(),
            "--threads".into(),
            "2".into(),
        ])
        .unwrap();
        assert_eq!(run(cmd), 0);
        assert_eq!(std::fs::read(&recovered).unwrap(), payload);

        // Verify and inspect also succeed.
        assert_eq!(run(parse(&["verify".into(), container.display().to_string()]).unwrap()), 0);
        assert_eq!(run(parse(&["inspect".into(), container.display().to_string()]).unwrap()), 0);
        std::fs::remove_dir_all(&dir).ok();
    }
}
