//! # arc-datasets — synthetic SDRBench stand-ins
//!
//! Deterministic generators mimicking the three datasets of the paper's
//! fault-injection study (§4.1.2): the CESM CLDLOW 2-D cloud-fraction
//! field, the Hurricane Isabel 3-D pressure field, and the NYX 3-D
//! temperature field. The real files cannot ship with this repository; the
//! generators reproduce their dimensionality, value regimes, and
//! multi-scale smoothness, which is what the compressed-stream structure —
//! and therefore the fault-injection behaviour — depends on. See DESIGN.md
//! §2 for the substitution rationale.
//!
//! ```
//! use arc_datasets::SdrDataset;
//!
//! let field = SdrDataset::CesmCldlow.generate_test();
//! assert_eq!(field.dims, vec![180, 360]);
//! ```

#![warn(missing_docs)]

pub mod fields;
pub mod noise;

pub use fields::{cesm_cldlow, isabel_pressure, nyx_temperature, Field, SdrDataset};
pub use noise::{Fbm, ValueNoise};
