//! Synthetic stand-ins for the paper's three SDRBench datasets (§4.1.2).
//!
//! | paper dataset | field | dims (paper) | character |
//! |---------------|-------|--------------|-----------|
//! | CESM          | CLDLOW cloud fraction | 1800×3600 (25.8 MB) | 2-D, values in [0,1], mean ≈ 0.33, patchy multi-scale cloud structure |
//! | Hurricane Isabel | pressure | 100×500×500 (100 MB) | 3-D, smooth large-scale gradient plus a deep vortex low |
//! | NYX           | temperature | 512³ (536 MB) | 3-D, positive, spans orders of magnitude along web-like filaments |
//!
//! Generation is fully deterministic per seed. Default "test" dims keep the
//! same aspect ratios at laptop scale; the paper dims are available for
//! full-scale runs.

use crate::noise::Fbm;

/// A generated scalar field.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Values, row-major (slowest dim first).
    pub data: Vec<f32>,
    /// Extents, slowest-varying first.
    pub dims: Vec<usize>,
    /// Which dataset this mimics.
    pub name: &'static str,
}

impl Field {
    /// Total elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the field is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Size in bytes of the raw f32 data.
    pub fn byte_len(&self) -> usize {
        self.data.len() * 4
    }
}

/// The three SDRBench datasets the paper evaluates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SdrDataset {
    /// CESM CLDLOW — 2-D low-cloud fraction.
    CesmCldlow,
    /// Hurricane Isabel — 3-D pressure.
    IsabelPressure,
    /// NYX — 3-D temperature.
    NyxTemperature,
}

impl SdrDataset {
    /// All three datasets in the paper's order.
    pub const ALL: [SdrDataset; 3] =
        [SdrDataset::CesmCldlow, SdrDataset::IsabelPressure, SdrDataset::NyxTemperature];

    /// Dataset name as the paper uses it.
    pub fn name(&self) -> &'static str {
        match self {
            SdrDataset::CesmCldlow => "CESM",
            SdrDataset::IsabelPressure => "Hurricane Isabel",
            SdrDataset::NyxTemperature => "NYX",
        }
    }

    /// Full paper-scale dimensions (25.8 MB / 100 MB / 536 MB of f32).
    pub fn paper_dims(&self) -> Vec<usize> {
        match self {
            SdrDataset::CesmCldlow => vec![1800, 3600],
            SdrDataset::IsabelPressure => vec![100, 500, 500],
            SdrDataset::NyxTemperature => vec![512, 512, 512],
        }
    }

    /// Scaled-down dimensions with the same aspect ratios, for tests and
    /// quick harness runs.
    pub fn test_dims(&self) -> Vec<usize> {
        match self {
            SdrDataset::CesmCldlow => vec![180, 360],
            SdrDataset::IsabelPressure => vec![20, 100, 100],
            SdrDataset::NyxTemperature => vec![64, 64, 64],
        }
    }

    /// Generate at the given dims (must match the dataset's dimensionality).
    pub fn generate(&self, dims: &[usize], seed: u64) -> Field {
        match self {
            SdrDataset::CesmCldlow => {
                assert_eq!(dims.len(), 2, "CESM CLDLOW is 2-D");
                cesm_cldlow(dims[0], dims[1], seed)
            }
            SdrDataset::IsabelPressure => {
                assert_eq!(dims.len(), 3, "Isabel pressure is 3-D");
                isabel_pressure(dims[0], dims[1], dims[2], seed)
            }
            SdrDataset::NyxTemperature => {
                assert_eq!(dims.len(), 3, "NYX temperature is 3-D");
                nyx_temperature(dims[0], dims[1], dims[2], seed)
            }
        }
    }

    /// Generate at test scale with the default seed.
    pub fn generate_test(&self) -> Field {
        self.generate(&self.test_dims(), 0x5EED)
    }
}

/// CESM CLDLOW: cloud fraction in `[0, 1]`, patchy, mean ≈ 0.33 (the paper
/// quotes an average of 0.3298 for the real field, §4.4).
pub fn cesm_cldlow(rows: usize, cols: usize, seed: u64) -> Field {
    let fbm = Fbm::new(seed, 6, 5, 0.55, 2);
    let mut data = Vec::with_capacity(rows * cols);
    for r in 0..rows {
        // Zonal banding: clouds favour mid-latitudes.
        let lat = (r as f32 / rows.max(1) as f32) * std::f32::consts::PI;
        let band = 0.25 + 0.35 * (2.0 * lat).sin().abs();
        for c in 0..cols {
            let u = c as f32 / cols as f32;
            let v = r as f32 / rows as f32;
            let n = fbm.sample(u, v, 0.0); // roughly [-1, 1]
                                           // Sharpen into patchy cover and clamp to a physical fraction.
            let val = (band + 0.75 * n).clamp(0.0, 1.0);
            data.push(val);
        }
    }
    Field { data, dims: vec![rows, cols], name: "CESM" }
}

/// Hurricane Isabel pressure: a synoptic-scale gradient, fBm weather, and a
/// deep axisymmetric vortex low whose centre drifts with height.
pub fn isabel_pressure(nz: usize, ny: usize, nx: usize, seed: u64) -> Field {
    let fbm = Fbm::new(seed ^ 0x0015_ABE1, 4, 5, 0.5, 3);
    let mut data = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz {
        let w = z as f32 / nz.max(1) as f32;
        // Vortex centre drifts with altitude.
        let (cy, cx) = (0.45 + 0.1 * w, 0.55 - 0.12 * w);
        for y in 0..ny {
            let v = y as f32 / ny as f32;
            for x in 0..nx {
                let u = x as f32 / nx as f32;
                let base = 500.0 - 3000.0 * w; // hydrostatic-ish decrease
                let grad = 800.0 * (u - 0.5) + 400.0 * (v - 0.5);
                let weather = 350.0 * fbm.sample(u, v, w);
                let r2 = ((u - cx).powi(2) + (v - cy).powi(2)) / 0.015;
                let vortex = -2500.0 * (-r2).exp() * (1.0 - 0.4 * w);
                data.push(base + grad + weather + vortex);
            }
        }
    }
    Field { data, dims: vec![nz, ny, nx], name: "Hurricane Isabel" }
}

/// NYX temperature: positive, log-normal-like, hot along web-like filaments
/// — spans several orders of magnitude, which is what makes the real field
/// a point-wise-relative-bound workload.
pub fn nyx_temperature(nz: usize, ny: usize, nx: usize, seed: u64) -> Field {
    let density = Fbm::new(seed ^ 0x07A0, 3, 5, 0.6, 3);
    let mut data = Vec::with_capacity(nz * ny * nx);
    for z in 0..nz {
        let w = z as f32 / nz.max(1) as f32;
        for y in 0..ny {
            let v = y as f32 / ny as f32;
            for x in 0..nx {
                let u = x as f32 / nx as f32;
                let d = density.sample(u, v, w); // [-1, 1]
                                                 // Filaments: sharpen |d| near 0 → hot sheets.
                let filament = (1.0 - d.abs()).powi(4);
                let log_t = 3.0 + 2.5 * filament + 1.2 * d;
                data.push(10f32.powf(log_t));
            }
        }
    }
    Field { data, dims: vec![nz, ny, nx], name: "NYX" }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cesm_statistics_match_paper_regime() {
        let f = SdrDataset::CesmCldlow.generate(&[90, 180], 42);
        assert_eq!(f.len(), 90 * 180);
        let mean: f64 = f.data.iter().map(|&x| x as f64).sum::<f64>() / f.len() as f64;
        assert!((0.2..0.5).contains(&mean), "mean {mean} vs paper's 0.3298");
        assert!(f.data.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn isabel_has_a_pressure_low() {
        let f = SdrDataset::IsabelPressure.generate(&[10, 50, 50], 42);
        let min = f.data.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = f.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(max - min > 2000.0, "range {} too small for a hurricane", max - min);
        assert!(f.data.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn nyx_spans_orders_of_magnitude() {
        let f = SdrDataset::NyxTemperature.generate(&[24, 24, 24], 42);
        let min = f.data.iter().cloned().fold(f32::INFINITY, f32::min);
        let max = f.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        assert!(min > 0.0, "temperature must be positive");
        assert!(max / min > 100.0, "span {}x too narrow", max / min);
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in SdrDataset::ALL {
            let dims = ds.test_dims();
            let a = ds.generate(&dims, 7);
            let b = ds.generate(&dims, 7);
            assert_eq!(a.data, b.data, "{}", ds.name());
            let c = ds.generate(&dims, 8);
            assert_ne!(a.data, c.data, "{}", ds.name());
        }
    }

    #[test]
    fn paper_dims_match_cited_sizes() {
        // 25.82 MB, 100 MB, 536 MB of f32 (§4.1.2).
        let mb = |d: &SdrDataset| d.paper_dims().iter().product::<usize>() * 4;
        assert_eq!(mb(&SdrDataset::CesmCldlow), 25_920_000);
        assert_eq!(mb(&SdrDataset::IsabelPressure), 100_000_000);
        assert_eq!(mb(&SdrDataset::NyxTemperature), 536_870_912);
    }

    #[test]
    fn fields_are_compressible() {
        // The whole point of the stand-ins: smooth enough that SZ achieves a
        // real compression ratio at the paper's ε = 0.1-style bounds.
        let f = SdrDataset::CesmCldlow.generate(&[64, 128], 1);
        let cfg = arc_sz_probe(&f);
        assert!(cfg > 3.0, "CESM stand-in only compresses {cfg}x");
    }

    // Tiny local probe to avoid a dev-dependency cycle: emulate "is this
    // field smooth" by measuring mean |∇| relative to the value range.
    fn arc_sz_probe(f: &Field) -> f64 {
        let cols = f.dims[1];
        let mut tv = 0.0f64;
        for i in 1..f.data.len() {
            if i % cols != 0 {
                tv += (f.data[i] as f64 - f.data[i - 1] as f64).abs();
            }
        }
        let range = {
            let min = f.data.iter().cloned().fold(f32::INFINITY, f32::min) as f64;
            let max = f.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max) as f64;
            max - min
        };
        let mean_grad = tv / f.data.len() as f64;
        // Smoothness proxy: range / mean gradient ≈ feature size in cells.
        range / mean_grad.max(1e-12)
    }

    #[test]
    #[should_panic]
    fn wrong_dimensionality_panics() {
        SdrDataset::CesmCldlow.generate(&[4, 4, 4], 0);
    }
}
