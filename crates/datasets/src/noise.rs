//! Deterministic smooth value noise (fractal Brownian motion) used to
//! synthesize HPC-like scalar fields.
//!
//! The SDRBench files the paper uses cannot be redistributed here, so the
//! generators build fields with the same statistical character: smooth at
//! fine scales (hence compressible with tight bounds), structured across
//! several octaves, deterministic for a given seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A lattice of random values with smooth (cosine) interpolation between
/// lattice points — the classic "value noise" construction.
#[derive(Debug)]
pub struct ValueNoise {
    lattice: Vec<f32>,
    nx: usize,
    ny: usize,
    nz: usize,
}

#[inline]
fn smoothstep(t: f32) -> f32 {
    t * t * (3.0 - 2.0 * t)
}

impl ValueNoise {
    /// Build a 3-D lattice (use `nz = 1` for 2-D, `ny = nz = 1` for 1-D);
    /// lattice extents are in *cells*, values are sampled at `cells + 1`
    /// lattice points per axis.
    pub fn new(seed: u64, nx: usize, ny: usize, nz: usize) -> ValueNoise {
        let mut rng = StdRng::seed_from_u64(seed);
        let (px, py, pz) = (nx + 1, ny + 1, nz + 1);
        let lattice = (0..px * py * pz).map(|_| rng.random::<f32>() * 2.0 - 1.0).collect();
        ValueNoise { lattice, nx: px, ny: py, nz: pz }
    }

    #[inline]
    fn at(&self, x: usize, y: usize, z: usize) -> f32 {
        self.lattice[(z * self.ny + y) * self.nx + x]
    }

    /// Sample at continuous coordinates, each in `[0, cells]` per axis;
    /// coordinates are clamped to the lattice.
    pub fn sample(&self, x: f32, y: f32, z: f32) -> f32 {
        let cx = x.clamp(0.0, (self.nx - 1) as f32 - 1e-3);
        let cy = y.clamp(0.0, (self.ny - 1) as f32 - 1e-3);
        let cz = z.clamp(0.0, (self.nz - 1) as f32 - 1e-3);
        let (x0, y0, z0) = (cx as usize, cy as usize, cz as usize);
        let (tx, ty, tz) =
            (smoothstep(cx - x0 as f32), smoothstep(cy - y0 as f32), smoothstep(cz - z0 as f32));
        let (x1, y1, z1) =
            ((x0 + 1).min(self.nx - 1), (y0 + 1).min(self.ny - 1), (z0 + 1).min(self.nz - 1));
        let lerp = |a: f32, b: f32, t: f32| a + (b - a) * t;
        let c00 = lerp(self.at(x0, y0, z0), self.at(x1, y0, z0), tx);
        let c10 = lerp(self.at(x0, y1, z0), self.at(x1, y1, z0), tx);
        let c01 = lerp(self.at(x0, y0, z1), self.at(x1, y0, z1), tx);
        let c11 = lerp(self.at(x0, y1, z1), self.at(x1, y1, z1), tx);
        let c0 = lerp(c00, c10, ty);
        let c1 = lerp(c01, c11, ty);
        lerp(c0, c1, tz)
    }
}

/// Multi-octave fractal noise: `octaves` layers of [`ValueNoise`] with
/// per-octave frequency doubling and `persistence` amplitude decay.
#[derive(Debug)]
pub struct Fbm {
    octaves: Vec<ValueNoise>,
    persistence: f32,
}

impl Fbm {
    /// Build `octaves` layers; octave `o` has `base_cells << o` lattice
    /// cells per axis (capped to keep memory sane).
    pub fn new(seed: u64, base_cells: usize, octaves: usize, persistence: f32, d: usize) -> Fbm {
        let layers = (0..octaves)
            .map(|o| {
                let cells = (base_cells << o).min(256);
                let (nx, ny, nz) = match d {
                    1 => (cells, 1, 1),
                    2 => (cells, cells, 1),
                    _ => (cells, cells, cells),
                };
                ValueNoise::new(seed.wrapping_add(o as u64 * 0x9E37), nx, ny, nz)
            })
            .collect();
        Fbm { octaves: layers, persistence }
    }

    /// Sample with unit coordinates in `[0, 1]` per axis.
    pub fn sample(&self, u: f32, v: f32, w: f32) -> f32 {
        let mut amp = 1.0f32;
        let mut total = 0.0f32;
        let mut norm = 0.0f32;
        for layer in &self.octaves {
            let sx = (layer.nx - 1) as f32;
            let sy = (layer.ny - 1) as f32;
            let sz = (layer.nz - 1) as f32;
            total += amp * layer.sample(u * sx, v * sy, w * sz);
            norm += amp;
            amp *= self.persistence;
        }
        total / norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = ValueNoise::new(7, 8, 8, 1);
        let b = ValueNoise::new(7, 8, 8, 1);
        let c = ValueNoise::new(8, 8, 8, 1);
        assert_eq!(a.sample(3.3, 4.4, 0.0), b.sample(3.3, 4.4, 0.0));
        assert_ne!(a.sample(3.3, 4.4, 0.0), c.sample(3.3, 4.4, 0.0));
    }

    #[test]
    fn values_bounded() {
        let n = ValueNoise::new(1, 16, 16, 4);
        for i in 0..200 {
            let v = n.sample(i as f32 * 0.08, i as f32 * 0.05, i as f32 * 0.02);
            assert!((-1.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn interpolation_is_continuous() {
        let n = ValueNoise::new(3, 8, 8, 1);
        let mut prev = n.sample(0.0, 2.0, 0.0);
        for step in 1..=400 {
            let x = step as f32 * 0.01;
            let cur = n.sample(x, 2.0, 0.0);
            assert!((cur - prev).abs() < 0.1, "jump at x={x}");
            prev = cur;
        }
    }

    #[test]
    fn fbm_adds_fine_detail() {
        // More octaves ⇒ more high-frequency variation.
        let smooth = Fbm::new(5, 4, 1, 0.5, 2);
        let rough = Fbm::new(5, 4, 5, 0.7, 2);
        let tv = |f: &Fbm| -> f32 {
            let mut t = 0.0;
            let mut prev = f.sample(0.0, 0.3, 0.0);
            for i in 1..500 {
                let cur = f.sample(i as f32 / 500.0, 0.3, 0.0);
                t += (cur - prev).abs();
                prev = cur;
            }
            t
        };
        assert!(tv(&rough) > tv(&smooth), "{} vs {}", tv(&rough), tv(&smooth));
    }

    #[test]
    fn clamping_at_borders() {
        let n = ValueNoise::new(9, 4, 4, 1);
        let v = n.sample(-5.0, 100.0, 0.0);
        assert!(v.is_finite());
    }
}
