//! Table 1: the available ARC Engine functions, demonstrated live.
//!
//! Prints the paper's function table and exercises every encode/decode pair
//! once so the listing doubles as a smoke test.

use arc_bench::print_table;
use arc_core::{
    arc_hamming_decode, arc_hamming_encode, arc_parity_decode, arc_parity_encode,
    arc_reed_solomon_decode, arc_reed_solomon_encode, arc_secded_decode, arc_secded_encode,
    ENGINE_FUNCTIONS,
};

fn main() {
    let rows: Vec<Vec<String>> = ENGINE_FUNCTIONS
        .chunks(2)
        .map(|pair| {
            let mut row: Vec<String> = pair.iter().map(|s| s.to_string()).collect();
            while row.len() < 2 {
                row.push(String::new());
            }
            row
        })
        .collect();
    print_table("Table 1: available ARC Engine functions", &["", ""], &rows);

    // Live demonstration on a small buffer.
    let data: Vec<u8> = (0..32_768).map(|i| (i % 255) as u8).collect();
    let mut demo = Vec::new();
    let enc = arc_parity_encode(&data, 8, 2).unwrap();
    demo.push(("parity (1 bit / 8 B)", enc.len(), arc_parity_decode(&enc, 2).unwrap().0 == data));
    let enc = arc_hamming_encode(&data, true, 2).unwrap();
    demo.push(("hamming (72,64)-ish", enc.len(), arc_hamming_decode(&enc, 2).unwrap().0 == data));
    let enc = arc_secded_encode(&data, true, 2).unwrap();
    demo.push(("secded (72,64)", enc.len(), arc_secded_decode(&enc, 2).unwrap().0 == data));
    let enc = arc_reed_solomon_encode(&data, 223, 32, 2).unwrap();
    demo.push((
        "reed-solomon (223,32)",
        enc.len(),
        arc_reed_solomon_decode(&enc, 2).unwrap().0 == data,
    ));
    let rows: Vec<Vec<String>> = demo
        .iter()
        .map(|(name, len, ok)| {
            vec![
                name.to_string(),
                format!("{:.1}%", 100.0 * (*len as f64 - data.len() as f64) / data.len() as f64),
                if *ok { "ok".into() } else { "FAILED".into() },
            ]
        })
        .collect();
    print_table(
        "engine smoke test (32 KiB buffer)",
        &["method", "container overhead", "round trip"],
        &rows,
    );
}
