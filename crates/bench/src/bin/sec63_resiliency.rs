//! §6.3: ARC's resiliency evaluation — protect each dataset's compressed
//! stream with a 1-error-per-MB resiliency constraint and rerun the fault
//! injection study through ARC.
//!
//! Paper findings: ARC selects SEC-DED over every eight bytes and corrects
//! **all** injected single-bit errors; raising the memory budget upgrades
//! the Reed-Solomon option from ~15 code devices (0.2) to ~103 (0.9) for
//! multi-bit/burst protection.

use arc_bench::{compress_field, dataset_at, print_table, RunScale};
use arc_core::{
    ArcContext, ArcOptions, EncodeRequest, MemoryConstraint, ResiliencyConstraint,
    ThroughputConstraint, TrainingOptions,
};
use arc_datasets::SdrDataset;
use arc_ecc::{EccConfig, EccMethod};
use arc_faultsim::sample_bits;
use arc_pressio::CompressorSpec;

fn main() {
    let scale = RunScale::from_env();
    let trials = scale.trials(150, 600, 3000);
    let cache = std::env::temp_dir().join("arc-bench-sec63");
    let ctx = ArcContext::init(ArcOptions {
        cache_path: Some(cache.join("training.tsv")),
        training: TrainingOptions {
            sample_bytes: scale.trials(128 << 10, 1 << 20, 4 << 20),
            rs_sample_bytes: scale.trials(64 << 10, 512 << 10, 1 << 20),
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("arc_init");
    let req = EncodeRequest {
        memory: MemoryConstraint::Any,
        throughput: ThroughputConstraint::Any,
        resiliency: ResiliencyConstraint::ErrorsPerMb(1.0),
    };
    let mut rows = Vec::new();
    for ds in SdrDataset::ALL {
        let field = dataset_at(scale, ds);
        let (_, stream) = compress_field(CompressorSpec::SzAbs(0.1), &field).expect("compress");
        let (protected, sel) = ctx.encode(&stream, &req).expect("arc_encode");
        let bits = sample_bits(protected.len() as u64 * 8, trials, 0x63);
        let mut corrected = 0usize;
        let mut detected = 0usize;
        let mut silent = 0usize;
        for &bit in &bits {
            let mut bad = protected.clone();
            bad[(bit / 8) as usize] ^= 1 << (bit % 8);
            match ctx.decode(&bad) {
                Ok((data, _)) => {
                    if data == stream {
                        corrected += 1;
                    } else {
                        silent += 1;
                    }
                }
                Err(_) => detected += 1,
            }
        }
        rows.push(vec![
            ds.name().to_string(),
            sel.config.to_string(),
            trials.to_string(),
            format!("{:.2}%", 100.0 * corrected as f64 / trials as f64),
            format!("{:.2}%", 100.0 * detected as f64 / trials as f64),
            format!("{:.2}%", 100.0 * silent as f64 / trials as f64),
        ]);
    }
    print_table(
        "Sec 6.3: single-bit fault injection through ARC (1 error/MB constraint)",
        &[
            "dataset",
            "ARC chose",
            "trials",
            "corrected",
            "detected-uncorrectable",
            "silent corruption",
        ],
        &rows,
    );
    println!("paper: ARC corrects 100% of injected single-bit errors (SEC-DED per 8 bytes).");

    // Multi-bit protection scales with the memory budget (ARC_RS cases).
    let mut rows = Vec::new();
    for budget in [0.2, 0.9] {
        let sel = ctx
            .select(&EncodeRequest {
                memory: MemoryConstraint::Fraction(budget),
                throughput: ThroughputConstraint::Any,
                resiliency: ResiliencyConstraint::Methods(vec![EccMethod::Rs]),
            })
            .expect("selection");
        let (k, m) = match sel.config {
            EccConfig::Rs(rs) => (rs.k, rs.m),
            _ => unreachable!("RS forced"),
        };
        rows.push(vec![
            format!("{budget}"),
            format!("RS(k={k}, m={m})"),
            m.to_string(),
            format!("{:.1}%", sel.overhead * 100.0),
        ]);
    }
    print_table(
        "Sec 6.3: ARC_RS memory budget vs code devices (paper: 15 @0.2 → 103 @0.9)",
        &["memory constraint", "configuration", "code devices", "overhead"],
        &rows,
    );
    ctx.close().expect("arc_close");
}
