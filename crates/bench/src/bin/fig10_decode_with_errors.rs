//! Figure 10: decoding throughput with 1 and with 100,000 correctable soft
//! errors present in the encoded data.
//!
//! Paper findings: with a single correctable error only Reed-Solomon slows
//! down (repair cost drops its 40-thread speedup from 18.3× to 2.7×); with
//! 100,000 correctable errors all correcting methods drop hard (40-thread
//! speedups 2.64× / 2.43× / 1.1×) yet stay above ~7 MB/s and still repair
//! everything. Parity is excluded — it cannot correct.

use arc_bench::{ecc_probe_bytes, fmt, inject_correctable, print_table, scaling_schemes, RunScale};
use arc_core::thread_ladder;
use arc_ecc::parallel::{timed_decode, timed_encode, DEFAULT_CHUNK_SIZE};
use arc_ecc::{EccConfig, ParallelCodec};

fn main() {
    let scale = RunScale::from_env();
    let data = ecc_probe_bytes(scale);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let ladder = thread_ladder(max_threads);
    let heavy_errors = scale.trials(2_000, 20_000, 100_000);
    println!(
        "probe {:.1} MB, threads {:?}, heavy-error count {}",
        data.len() as f64 / 1e6,
        ladder,
        heavy_errors
    );
    for error_count in [1usize, heavy_errors] {
        let mut rows = Vec::new();
        for (name, config) in scaling_schemes() {
            if matches!(config, EccConfig::Parity(_)) {
                continue; // cannot correct — excluded as in the paper
            }
            let probe: &[u8] = if name == "Reed-Solomon" {
                &data[..(data.len() / 4).max(1 << 20).min(data.len())]
            } else {
                &data
            };
            let enc_codec = ParallelCodec::new(config, max_threads).expect("codec");
            let (mut encoded, _) = timed_encode(&enc_codec, probe);
            let injected = inject_correctable(
                &mut encoded,
                &config,
                DEFAULT_CHUNK_SIZE,
                probe.len(),
                error_count,
                0x000F_1610,
            );
            let mut per_thread = Vec::new();
            for &t in &ladder {
                let codec = ParallelCodec::new(config, t).expect("codec");
                let (out, report, sample) =
                    timed_decode(&codec, &encoded, probe.len()).expect("correctable decode");
                assert_eq!(out, probe, "{name}: repair must restore the data");
                assert!(!report.is_clean(), "{name}: something must have been repaired");
                per_thread.push(sample.mb_per_s());
            }
            let speedup = per_thread.last().unwrap() / per_thread.first().unwrap().max(1e-12);
            let mut row = vec![name.to_string(), injected.to_string()];
            row.extend(per_thread.iter().map(|v| fmt(*v)));
            row.push(format!("{speedup:.1}x"));
            rows.push(row);
        }
        let mut headers: Vec<String> = vec!["method".into(), "injected".into()];
        headers.extend(ladder.iter().map(|t| format!("{t}T MB/s")));
        headers.push("speedup".into());
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        print_table(
            &format!("Fig 10: decode throughput with {error_count} correctable error(s)"),
            &header_refs,
            &rows,
        );
    }
    println!(
        "\npaper shape: 1 error leaves Hamming/SEC-DED untouched but drops RS hard\n\
         (repair cost); heavy errors drop every method's scaling, yet all still\n\
         correct the data and stay usable."
    );
}
