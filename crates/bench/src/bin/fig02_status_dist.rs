//! Figure 2: distribution of decompression return statuses across all
//! fault-injection trials — three datasets × five compressor modes.
//!
//! Paper findings to compare against: 95.28% of all trials *Completed*
//! (decoded corrupt data without noticing — the SDC path), the remaining
//! 4.72% split among Compressor Exception / Terminated / Timeout, and
//! **100% of ZFP trials Completed**.

use arc_bench::{compress_field, dataset_at, paper_modes, print_table, RunScale};
use arc_datasets::SdrDataset;
use arc_faultsim::{run_campaign, sample_bits, ReturnStatus};

fn main() {
    let scale = RunScale::from_env();
    let trials_per_pair = scale.trials(150, 600, 4000);
    let mut rows = Vec::new();
    let mut grand = [0usize; 4];
    let mut grand_total = 0usize;
    let mut zfp_completed = 0usize;
    let mut zfp_total = 0usize;
    for ds in SdrDataset::ALL {
        let field = dataset_at(scale, ds);
        for spec in paper_modes() {
            let (comp, stream) = compress_field(spec, &field).expect("compress");
            let bits = sample_bits(stream.len() as u64 * 8, trials_per_pair, 0x000F_1602);
            let report = run_campaign(comp.as_ref(), &field.data, &stream, &bits);
            let counts = report.status_counts();
            for (i, (_, c)) in counts.iter().enumerate() {
                grand[i] += c;
            }
            grand_total += report.trials.len();
            if spec.family().starts_with("ZFP") {
                zfp_completed += counts[0].1;
                zfp_total += report.trials.len();
            }
            rows.push(vec![
                ds.name().to_string(),
                spec.family().to_string(),
                format!("{:.2}%", report.percent(ReturnStatus::Completed)),
                format!("{:.2}%", report.percent(ReturnStatus::CompressorException)),
                format!("{:.2}%", report.percent(ReturnStatus::Terminated)),
                format!("{:.2}%", report.percent(ReturnStatus::Timeout)),
            ]);
        }
    }
    print_table(
        "Fig 2: return-status distribution per (dataset, mode)",
        &["dataset", "mode", "Completed", "CompressorException", "Terminated", "Timeout"],
        &rows,
    );
    println!("\naggregate over {grand_total} trials:");
    for (i, status) in ReturnStatus::ALL.iter().enumerate() {
        println!(
            "  {:<22} {:>7.2}%   (paper: Completed 95.28% overall)",
            status.label(),
            100.0 * grand[i] as f64 / grand_total.max(1) as f64
        );
    }
    println!(
        "ZFP modes Completed: {:.2}% (paper: 100%)",
        100.0 * zfp_completed as f64 / zfp_total.max(1) as f64
    );
}
