//! Figure 3: percent of elements violating the error bound per fault
//! location — CESM, four bounded modes.
//!
//! Paper findings: SZ-ABS averages 10.04% incorrect (range 0.01–80%),
//! SZ-PWREL 9.57%, ZFP-ACC 10.32%, while ZFP-Rate averages **3.53
//! elements** (0–16) because its fixed-size blocks stop propagation.

use arc_bench::{compress_field, dataset_at, fmt, print_table, RunScale};
use arc_datasets::SdrDataset;
use arc_faultsim::{run_campaign_with_bound, sample_bits};
use arc_pressio::{BoundSpec, CompressorSpec};

fn main() {
    let scale = RunScale::from_env();
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    let trials = scale.trials(200, 800, 5000);
    let modes: Vec<(CompressorSpec, BoundSpec)> = vec![
        (CompressorSpec::SzAbs(0.1), BoundSpec::Abs(0.1)),
        (CompressorSpec::SzPwRel(0.1), BoundSpec::PwRel(0.1)),
        (CompressorSpec::ZfpAcc(0.1), BoundSpec::Abs(0.1)),
        // ZFP-Rate cannot bound error; evaluated against the study's ε.
        (CompressorSpec::ZfpRate(8.0), BoundSpec::Abs(0.1)),
    ];
    let mut summary = Vec::new();
    for (spec, bound) in modes {
        let (comp, stream) = compress_field(spec, &field).expect("compress");
        let total_bits = stream.len() as u64 * 8;
        let bits = sample_bits(total_bits, trials, 0x000F_1603);
        let report =
            run_campaign_with_bound(comp.as_ref(), &field.data, &stream, &bits, Some(bound));
        // Positional profile: deciles of the stream, mean % incorrect each.
        let mut decile_sum = [0.0f64; 10];
        let mut decile_n = [0usize; 10];
        for t in &report.trials {
            if let (Some(bit), Some(m)) = (t.bit, &t.metrics) {
                if let Some(p) = m.percent_incorrect {
                    let d = ((bit * 10) / total_bits.max(1)).min(9) as usize;
                    decile_sum[d] += p;
                    decile_n[d] += 1;
                }
            }
        }
        let deciles: Vec<String> = (0..10)
            .map(|d| {
                if decile_n[d] == 0 {
                    "-".into()
                } else {
                    format!("{:.1}", decile_sum[d] / decile_n[d] as f64)
                }
            })
            .collect();
        let avg_pct = report.avg_percent_incorrect().unwrap_or(0.0);
        let avg_elems = report.avg_incorrect_elements().unwrap_or(0.0);
        let (lo, hi) = report.percent_incorrect_range().unwrap_or((0.0, 0.0));
        summary.push(vec![
            spec.family().to_string(),
            fmt(avg_pct),
            fmt(avg_elems),
            format!("{} – {}", fmt(lo), fmt(hi)),
            deciles.join(" "),
        ]);
    }
    print_table(
        "Fig 3: CESM, % of elements violating the bound per fault location",
        &["mode", "avg %", "avg elems", "range %", "mean % by stream decile (0..9)"],
        &summary,
    );
    println!("\npaper: SZ-ABS 10.04% | SZ-PWREL 9.57% | ZFP-ACC 10.32% | ZFP-Rate 3.53 *elements*");
    println!("shape check: ZFP-Rate's avg-elements column should be orders of magnitude\nbelow the serial modes' element counts, and its range should stay within one 4^d block.");
}
