//! Figure 4: fault sensitivity at increasing levels of loss — CESM
//! compressed to target ratios 50×, 25×, 13×, 7× with SZ-ABS, SZ-PWREL and
//! ZFP-ACC (ZFP-Rate omitted, as in the paper, because its behaviour is
//! constant across ratios).
//!
//! Paper findings: higher compression ratios mask soft errors (the looser
//! bound absorbs them) — but those bounds are too loose for real science;
//! at 13× and 7× every mode shows a downward slope with the most damage
//! from flips near the stream head (the entropy-coder tables).

use arc_bench::{dataset_at, fmt, print_table, RunScale};
use arc_datasets::SdrDataset;
use arc_faultsim::{run_campaign_with_bound, sample_bits};
use arc_pressio::{tune_for_ratio, BoundSpec, CompressorSpec, Dataset};

fn main() {
    let scale = RunScale::from_env();
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    let ds = Dataset { data: &field.data, dims: &field.dims };
    let trials = scale.trials(120, 400, 2000);
    let targets = [50.0, 25.0, 13.0, 7.0];
    let modes =
        [CompressorSpec::SzAbs(0.1), CompressorSpec::SzPwRel(0.1), CompressorSpec::ZfpAcc(0.1)];
    let mut rows = Vec::new();
    for spec in modes {
        for &target in &targets {
            let tuned = tune_for_ratio(spec, &ds, target, 1e-7, 1e3, 18);
            let spec_t = spec.with_param(tuned.param);
            let comp = spec_t.build();
            let stream = comp.compress(&ds).expect("tuned compression");
            let total_bits = stream.len() as u64 * 8;
            let bits = sample_bits(total_bits, trials, 0x000F_1604);
            let bound = match spec {
                CompressorSpec::SzPwRel(_) => BoundSpec::PwRel(tuned.param),
                _ => BoundSpec::Abs(tuned.param),
            };
            let report =
                run_campaign_with_bound(comp.as_ref(), &field.data, &stream, &bits, Some(bound));
            // Head-vs-tail slope: mean % incorrect in the first vs last
            // third of the stream.
            let (mut head, mut hn, mut tail, mut tn) = (0.0f64, 0usize, 0.0f64, 0usize);
            for t in &report.trials {
                if let (Some(bit), Some(m)) = (t.bit, &t.metrics) {
                    if let Some(p) = m.percent_incorrect {
                        if bit * 3 < total_bits {
                            head += p;
                            hn += 1;
                        } else if bit * 3 >= 2 * total_bits {
                            tail += p;
                            tn += 1;
                        }
                    }
                }
            }
            rows.push(vec![
                spec.family().to_string(),
                format!("{target}x"),
                fmt(tuned.achieved_ratio),
                fmt(tuned.param),
                fmt(report.avg_percent_incorrect().unwrap_or(0.0)),
                fmt(head / hn.max(1) as f64),
                fmt(tail / tn.max(1) as f64),
            ]);
        }
    }
    print_table(
        "Fig 4: CESM fault sensitivity at target compression ratios",
        &[
            "mode",
            "target CR",
            "achieved CR",
            "bound used",
            "avg % incorrect",
            "head-third %",
            "tail-third %",
        ],
        &rows,
    );
    println!(
        "\nshape checks vs the paper: (1) avg %% incorrect falls as CR rises (looser\n\
         bounds mask flips); (2) at 13x/7x the head-third exceeds the tail-third —\n\
         early bits (entropy tables) cause the most corruption."
    );
}
