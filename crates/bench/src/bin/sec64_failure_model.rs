//! §6.4: ease-of-use evaluation — deriving ARC constraints from a system's
//! failure profile (Sridharan et al.'s Cielo and Hopper field studies).
//!
//! Paper findings: Cielo fails to a soft error every **1.9 days**, Hopper
//! every **5.43 days** (altitude being the main driver); single-bit errors
//! cause 70.79% of Cielo's faults but 94.6% of Hopper's; hence Cielo wants
//! Reed-Solomon (`ARC_COR_BURST`) and Hopper is served by SEC-DED-class
//! sparse correction.

use arc_bench::{fmt, print_table};
use arc_core::{ResiliencyConstraint, SystemProfile};
use arc_ecc::{EccConfig, EccScheme};

fn main() {
    let systems = [SystemProfile::cielo(), SystemProfile::hopper()];
    let mut rows = Vec::new();
    for s in &systems {
        rows.push(vec![
            s.name.to_string(),
            s.nodes.to_string(),
            format!("{:.0} ft", s.elevation_ft),
            format!("{:.2} days", s.mtbf_days()),
            format!("{:.1}%", s.single_bit_fraction * 100.0),
            format!("{:.1}%", s.multi_bit_fraction() * 100.0),
            format!("{:.1}%", s.soft_error_fraction * 100.0),
        ]);
    }
    print_table(
        "Sec 6.4: system failure profiles (paper: Cielo 1.9 d, Hopper 5.43 d)",
        &[
            "system",
            "nodes",
            "elevation",
            "soft-error MTBF",
            "single-bit",
            "multi-bit",
            "soft/all faults",
        ],
        &rows,
    );

    let space = EccConfig::standard_space();
    for s in &systems {
        let rec = s.recommended_resiliency();
        let allowed = rec.filter(&space);
        let methods: std::collections::BTreeSet<&str> = allowed.iter().map(|c| c.name()).collect();
        println!("\n{}", s.summary());
        println!("  recommended resiliency constraint: {rec:?}");
        println!("  admitted ECC methods: {methods:?}");
    }

    // Expected errors per MB as a function of how long data sits in DRAM —
    // the number a user would hand to ResiliencyConstraint::ErrorsPerMb.
    let mut rows = Vec::new();
    for days in [1.0, 7.0, 30.0, 90.0] {
        let mut row = vec![format!("{days} days")];
        for s in &systems {
            row.push(fmt(s.errors_per_mb(days)));
        }
        rows.push(row);
    }
    print_table(
        "expected soft errors per MB vs data residency",
        &["residency", "Cielo", "Hopper"],
        &rows,
    );
    let c = &systems[0];
    let rate = c.errors_per_mb(30.0);
    let constraint = ResiliencyConstraint::ErrorsPerMb(rate.max(1e-6));
    let admitted = constraint.filter(&space).len();
    println!(
        "\ne.g. a 30-day Cielo checkpoint ⇒ ErrorsPerMb({:.2e}) ⇒ {} admitted configurations",
        rate, admitted
    );
    println!(
        "\ntakeaway (paper §6.4): pick constraints from the machine's failure rate and\n\
         fault mix — burst-heavy Cielo forces Reed-Solomon; single-bit Hopper is\n\
         served by SEC-DED at a fraction of the storage cost."
    );
}
