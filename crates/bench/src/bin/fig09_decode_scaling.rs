//! Figure 9: error-free ECC decoding throughput against thread count.
//!
//! Paper findings: 40-vs-1 speedups of 18.6× (parity), 33.5× (Hamming),
//! 33.5× (SEC-DED), 18.3× (Reed-Solomon); range 10.64–3602 MB/s. Note
//! Reed-Solomon *decodes* fast when clean — verification is a checksum
//! sweep — even though it encodes slowly (Fig 8d vs 9d).

use arc_bench::{ecc_probe_bytes, fmt, print_table, scaling_schemes, RunScale};
use arc_core::thread_ladder;
use arc_ecc::parallel::{timed_decode, timed_encode};
use arc_ecc::ParallelCodec;

fn main() {
    let scale = RunScale::from_env();
    let data = ecc_probe_bytes(scale);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let ladder = thread_ladder(max_threads);
    println!("probe: CESM bytes ({:.1} MB), threads {:?}", data.len() as f64 / 1e6, ladder);
    let reps = scale.trials(1, 3, 10);
    let mut rows = Vec::new();
    for (name, config) in scaling_schemes() {
        let probe: &[u8] = if name == "Reed-Solomon" {
            &data[..(data.len() / 4).max(1 << 20).min(data.len())]
        } else {
            &data
        };
        // Encode once at max threads; decode at each ladder step.
        let enc_codec = ParallelCodec::new(config, max_threads).expect("codec");
        let (encoded, _) = timed_encode(&enc_codec, probe);
        let mut per_thread = Vec::new();
        for &t in &ladder {
            let codec = ParallelCodec::new(config, t).expect("codec");
            let mut best = 0.0f64;
            for _ in 0..reps {
                let (_, report, sample) =
                    timed_decode(&codec, &encoded, probe.len()).expect("clean decode");
                assert!(report.is_clean());
                best = best.max(sample.mb_per_s());
            }
            per_thread.push(best);
        }
        let speedup = per_thread.last().unwrap() / per_thread.first().unwrap().max(1e-12);
        let mut row = vec![name.to_string()];
        row.extend(per_thread.iter().map(|v| fmt(*v)));
        row.push(format!("{speedup:.1}x"));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["method".into()];
    headers.extend(ladder.iter().map(|t| format!("{t}T MB/s")));
    headers.push(format!("{}v1 speedup", ladder.last().unwrap()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 9: error-free decoding throughput vs threads", &header_refs, &rows);
    println!("\npaper speedups at 40 threads: parity 18.6x, hamming 33.5x, secded 33.5x, rs 18.3x");
    println!(
        "shape checks: near-linear scaling; Reed-Solomon decode ≫ Reed-Solomon encode\n\
         (clean decode is a CRC sweep, Fig 9d vs Fig 8d)."
    );
}
