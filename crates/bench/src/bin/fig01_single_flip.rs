//! Figure 1: the effect of a single-bit soft error at different locations
//! in the SZ-ABS(ε = 0.1) compressed Hurricane Isabel pressure field.
//!
//! The paper shows two flips — bit 400,005 and bit 465,840 — producing
//! 49.6% and 99.4% incorrect elements. Our stream layout differs, so this
//! harness sweeps a deterministic set of locations, prints the damage at
//! each, and highlights the mildest and harshest Completed trials,
//! reproducing the figure's message: *where* the bit lands decides whether
//! half or nearly all of the data is destroyed.

use arc_bench::{compress_field, dataset_at, fmt, print_table, RunScale};
use arc_datasets::SdrDataset;
use arc_faultsim::{stride_bits, ReturnStatus, TrialContext};
use arc_pressio::CompressorSpec;

fn main() {
    let scale = RunScale::from_env();
    let field = dataset_at(scale, SdrDataset::IsabelPressure);
    let spec = CompressorSpec::SzAbs(0.1);
    let (comp, stream) = compress_field(spec, &field).expect("compress");
    println!(
        "Hurricane Isabel pressure {:?} — {} compressed {} -> {} bytes (CR {:.1}x)",
        field.dims,
        spec.name(),
        field.byte_len(),
        stream.len(),
        field.byte_len() as f64 / stream.len() as f64
    );

    let ctx = TrialContext::new(comp.as_ref(), &field.data, &stream);
    let control = ctx.run_control();
    let cm = control.metrics.expect("control completes");
    println!(
        "control: status={}, incorrect={}%, max|diff|={}",
        control.status.label(),
        fmt(cm.percent_incorrect.unwrap_or(0.0)),
        fmt(cm.max_abs_diff)
    );

    let n_sites = scale.trials(24, 48, 96);
    let bits = stride_bits(stream.len() as u64 * 8, n_sites);
    let mut rows = Vec::new();
    let mut best: Option<(u64, f64)> = None;
    let mut worst: Option<(u64, f64)> = None;
    for &bit in &bits {
        let out = ctx.run_flip(bit);
        let (incorrect, maxd, psnr) = match &out.metrics {
            Some(m) => (m.percent_incorrect.unwrap_or(f64::NAN), m.max_abs_diff, m.psnr),
            None => (f64::NAN, f64::NAN, f64::NAN),
        };
        if out.status == ReturnStatus::Completed && incorrect.is_finite() && incorrect > 0.0 {
            if best.map(|(_, v)| incorrect < v).unwrap_or(true) {
                best = Some((bit, incorrect));
            }
            if worst.map(|(_, v)| incorrect > v).unwrap_or(true) {
                worst = Some((bit, incorrect));
            }
        }
        rows.push(vec![
            bit.to_string(),
            out.status.label().to_string(),
            fmt(incorrect),
            fmt(maxd),
            fmt(psnr),
        ]);
    }
    print_table(
        "Fig 1: single-bit flips in SZ-ABS(0.1) Isabel",
        &["bit", "status", "% incorrect", "max |diff|", "PSNR (dB)"],
        &rows,
    );
    if let (Some((b1, p1)), Some((b2, p2))) = (best, worst) {
        println!(
            "\npaper analogue: flip at bit {b1} -> {:.1}% incorrect (Fig 1b: 49.6%), \
             flip at bit {b2} -> {:.1}% incorrect (Fig 1c: 99.4%)",
            p1, p2
        );
        println!(
            "takeaway: a single soft error leaves the data unusable; severity depends on location."
        );
    }
}
