//! `hostile_corpus` — the full hostile-input sweep with allocation
//! accounting.
//!
//! Runs every mutation family of [`arc_faultsim::hostile`] against every
//! workspace decoder at the default (full-size) configuration, and layers
//! one extra invariant on top of the harness's panic/timeout/output-budget
//! checks: no single case may **allocate** more than [`ALLOC_BUDGET`]
//! bytes, however it returns. A decoder that politely errors *after*
//! reserving a 2 GiB buffer for a corrupt length field still fails here.
//!
//! Exit status is non-zero when any case violates the totality contract;
//! each violation is printed with its `(target, stream, case)` triple and
//! the sweep seed, which together reproduce the exact corrupt buffer.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use arc_faultsim::hostile::{builtin_targets, mutations, run_case, CaseStatus, HostileConfig};

struct CountingAlloc;

static BYTES: AtomicUsize = AtomicUsize::new(0);

// SAFETY: a pure forwarding allocator — every method delegates to `System`
// with unchanged arguments, so `System`'s allocation guarantees carry over;
// the side counter is an atomic with no effect on the returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc`; discharged below
    // by forwarding to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size(), Ordering::SeqCst);
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::alloc_zeroed`; discharged
    // below by forwarding to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        BYTES.fetch_add(layout.size(), Ordering::SeqCst);
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc`; discharged
    // below by forwarding to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was produced by `System` in `alloc`/`alloc_zeroed`/
        // `realloc` above with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::realloc`; discharged
    // below by forwarding to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        BYTES.fetch_add(new_size, Ordering::SeqCst);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation and
        // `new_size` is forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// Per-case allocation ceiling. Deliberately generous — the worker copies
/// the case buffer and may legitimately produce up to the 32 MiB output
/// budget plus codec scratch — but far below what an unchecked hostile
/// length field (up to 2^31 and beyond) would demand.
const ALLOC_BUDGET: usize = 256 << 20;

fn main() {
    // Panicking cases are expected to be *caught and classified* by the
    // harness; silence the default hook so a failure sweep stays readable.
    std::panic::set_hook(Box::new(|_| {}));

    let cfg = HostileConfig::default();
    let targets = builtin_targets();

    let mut cases = 0usize;
    let mut rejected = 0usize;
    let mut completed = 0usize;
    let mut worst = Duration::ZERO;
    let mut worst_alloc = 0usize;
    let mut failures: Vec<String> = Vec::new();

    for target in &targets {
        for stream in &target.streams {
            for (case, buf) in mutations(stream, &cfg) {
                let bytes0 = BYTES.load(Ordering::SeqCst);
                let (status, elapsed) = run_case(&target.decode, &buf, &cfg);
                let allocated = BYTES.load(Ordering::SeqCst).saturating_sub(bytes0);
                cases += 1;
                worst = worst.max(elapsed);
                worst_alloc = worst_alloc.max(allocated);
                let id = format!("{}/{}/{}", target.name, stream.name, case);
                match &status {
                    CaseStatus::Rejected => rejected += 1,
                    CaseStatus::Completed { .. } => completed += 1,
                    other => failures.push(format!("{id}: {other:?}")),
                }
                if !status.is_failure() && allocated > ALLOC_BUDGET {
                    failures
                        .push(format!("{id}: allocated {allocated} bytes (budget {ALLOC_BUDGET})"));
                }
            }
        }
    }

    let _ = std::panic::take_hook();
    println!(
        "hostile_corpus: {cases} cases over {} targets (seed {:#x}): \
         {rejected} rejected, {completed} completed, {} violations",
        targets.len(),
        cfg.seed,
        failures.len()
    );
    println!(
        "  worst case {worst:?}, peak per-case allocation {:.1} MiB",
        worst_alloc as f64 / (1024.0 * 1024.0)
    );
    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }
}
