//! Figure 8: ECC encoding throughput against thread count, per method.
//!
//! Paper findings on the 40-core node: near-linear scaling for every
//! method; 40-vs-1 speedups of 19.7× (parity), 26.8× (Hamming), 33.9×
//! (SEC-DED), 16.4× (Reed-Solomon); throughput ordering parity ≫ Hamming >
//! SEC-DED ≫ Reed-Solomon, spanning 0.04–3730 MB/s.

use arc_bench::{ecc_probe_bytes, fmt, print_table, scaling_schemes, RunScale};
use arc_core::thread_ladder;
use arc_ecc::parallel::timed_encode;
use arc_ecc::ParallelCodec;

fn main() {
    let scale = RunScale::from_env();
    let data = ecc_probe_bytes(scale);
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let ladder = thread_ladder(max_threads);
    println!("probe: CESM bytes ({:.1} MB), threads {:?}", data.len() as f64 / 1e6, ladder);
    let reps = scale.trials(1, 3, 10);
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for (name, config) in scaling_schemes() {
        // Reed-Solomon encodes slowly; shrink its probe to keep runs sane.
        let probe: &[u8] = if name == "Reed-Solomon" {
            &data[..(data.len() / 8).max(1 << 20).min(data.len())]
        } else {
            &data
        };
        let mut per_thread = Vec::new();
        for &t in &ladder {
            let codec = ParallelCodec::new(config, t).expect("codec");
            let mut best = 0.0f64;
            for _ in 0..reps {
                let (_, sample) = timed_encode(&codec, probe);
                best = best.max(sample.mb_per_s());
            }
            per_thread.push(best);
        }
        let speedup = per_thread.last().unwrap() / per_thread.first().unwrap().max(1e-12);
        speedups.push((name, speedup));
        let mut row = vec![name.to_string()];
        row.extend(per_thread.iter().map(|v| fmt(*v)));
        row.push(format!("{speedup:.1}x"));
        rows.push(row);
    }
    let mut headers: Vec<String> = vec!["method".into()];
    headers.extend(ladder.iter().map(|t| format!("{t}T MB/s")));
    headers.push(format!("{}v1 speedup", ladder.last().unwrap()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    print_table("Fig 8: encoding throughput vs threads", &header_refs, &rows);
    println!("\npaper speedups at 40 threads: parity 19.7x, hamming 26.8x, secded 33.9x, rs 16.4x");
    println!(
        "shape checks: near-linear scaling per method; ordering parity > hamming >\n\
         secded > reed-solomon in absolute MB/s."
    );
}
