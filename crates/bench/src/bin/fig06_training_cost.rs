//! Figure 6: ARC's training cost against the maximum OpenMP-thread budget,
//! and the number of configurations trained.
//!
//! Paper findings: more available threads ⇒ more (configuration, threads)
//! points trained ⇒ more choice for the optimizer; total time grows roughly
//! logarithmically because each extra ladder step runs *faster* per probe
//! (more threads), and the cache makes the cost one-time per machine.

use arc_bench::{fmt, print_table, RunScale};
use arc_core::{thread_ladder, train, TrainingOptions, TrainingTable};

fn main() {
    let scale = RunScale::from_env();
    let max_available = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let opts = TrainingOptions {
        sample_bytes: scale.trials(256 << 10, 4 << 20, 26 << 20),
        rs_sample_bytes: scale.trials(64 << 10, 1 << 20, 4 << 20),
        ..Default::default()
    };
    println!(
        "training the standard space ({} configs), probe {} KiB (RS {} KiB)",
        opts.space.len(),
        opts.sample_bytes >> 10,
        opts.rs_sample_bytes >> 10
    );
    let mut rows = Vec::new();
    let mut caps: Vec<usize> = vec![1, 2, 4, 8, 16, 32, 40];
    caps.retain(|&c| c <= max_available.max(1) * 2);
    for cap in caps {
        let mut table = TrainingTable::new();
        let stats = train(&mut table, cap, &opts).expect("training");
        let points: usize = thread_ladder(cap).len() * opts.space.len();
        rows.push(vec![
            cap.to_string(),
            thread_ladder(cap).len().to_string(),
            points.to_string(),
            stats.points_measured.to_string(),
            fmt(stats.seconds),
        ]);
    }
    print_table(
        "Fig 6: training cost vs maximum thread budget (cold cache)",
        &["max threads", "ladder steps", "grid points", "measured", "seconds"],
        &rows,
    );
    println!(
        "\nshape checks vs the paper: grid points (≈ 'ARC configurations trained')\n\
         grow with the thread budget; wall-clock grows sub-linearly in the number\n\
         of points because higher-thread probes run faster. A warm cache re-run\n\
         measures 0 points (§5.1: one-time cost per machine)."
    );
}
