//! Ablations of design choices called out in DESIGN.md §5:
//!
//! 1. **SZ final lossless pass on/off** — the ZStd-like stage buys
//!    compression ratio but widens the span a bit flip can destroy.
//! 2. **Hamming/SEC-DED block width** — 8- vs 64-bit codewords trade
//!    storage overhead against correction density and throughput.
//! 3. **Reed-Solomon chunk granularity** — smaller chunks bound burst
//!    damage per stripe group but add fixed costs.

use arc_bench::{dataset_at, fmt, print_table, RunScale};
use arc_datasets::SdrDataset;
use arc_ecc::parallel::{timed_decode, timed_encode};
use arc_ecc::{EccConfig, EccScheme, ParallelCodec};
use arc_faultsim::{sample_bits, ReturnStatus, TrialContext};
use arc_pressio::{BoundSpec, Compressor, Dataset, DecodedDataset, PressioError};

/// Minimal adapter so the fault harness can drive the no-lossless variant.
struct SzVariant {
    cfg: arc_sz::SzConfig,
}

impl Compressor for SzVariant {
    fn name(&self) -> String {
        format!("sz-variant(lossless={})", self.cfg.final_lossless)
    }
    fn compress(&self, ds: &Dataset<'_>) -> Result<Vec<u8>, PressioError> {
        arc_sz::compress(ds.data, ds.dims, &self.cfg)
            .map_err(|e| PressioError::Codec(e.to_string()))
    }
    fn decompress_with_limit(
        &self,
        bytes: &[u8],
        max_elements: u64,
    ) -> Result<DecodedDataset, PressioError> {
        let out = arc_sz::decompress_with_limits(bytes, &arc_sz::DecodeLimits { max_elements })
            .map_err(|e| match e {
                arc_sz::SzError::WorkBudgetExceeded { demanded, budget } => {
                    PressioError::Timeout { demanded, budget }
                }
                other => PressioError::Codec(other.to_string()),
            })?;
        Ok(DecodedDataset { data: out.data, dims: out.dims })
    }
    fn bound_spec(&self) -> Option<BoundSpec> {
        match self.cfg.bound {
            arc_sz::ErrorBound::Abs(e) => Some(BoundSpec::Abs(e)),
            _ => None,
        }
    }
}

fn sz_lossless_ablation(scale: RunScale) {
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    let trials = scale.trials(100, 300, 1500);
    let mut rows = Vec::new();
    for final_lossless in [true, false] {
        let comp = SzVariant {
            cfg: arc_sz::SzConfig {
                bound: arc_sz::ErrorBound::Abs(0.01),
                final_lossless,
                ..Default::default()
            },
        };
        let stream =
            comp.compress(&Dataset { data: &field.data, dims: &field.dims }).expect("compress");
        let cr = field.byte_len() as f64 / stream.len() as f64;
        let ctx = TrialContext::new(&comp, &field.data, &stream);
        let bits = sample_bits(stream.len() as u64 * 8, trials, 0xAB1);
        let mut completed = 0usize;
        let mut pct_sum = 0.0f64;
        let mut pct_n = 0usize;
        for &bit in &bits {
            let out = ctx.run_flip(bit);
            if out.status == ReturnStatus::Completed {
                completed += 1;
                if let Some(p) = out.metrics.and_then(|m| m.percent_incorrect) {
                    pct_sum += p;
                    pct_n += 1;
                }
            }
        }
        rows.push(vec![
            if final_lossless { "with zstd-like pass" } else { "without" }.to_string(),
            fmt(cr),
            format!("{:.1}%", 100.0 * completed as f64 / trials as f64),
            fmt(pct_sum / pct_n.max(1) as f64),
        ]);
    }
    print_table(
        "Ablation 1: SZ final lossless pass (CESM, ε = 0.01)",
        &["variant", "compression ratio", "Completed", "avg % incorrect"],
        &rows,
    );
    println!(
        "reading: the pass raises CR; it also concentrates detectable structure\n\
         (tables/framing), so some flips raise exceptions instead of completing —\n\
         without it every flip lands in quantization codes and silently propagates."
    );
}

fn block_width_ablation(scale: RunScale) {
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    let data: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
    let mut rows = Vec::new();
    for (label, config) in [
        ("hamming w8", EccConfig::hamming(false)),
        ("hamming w64", EccConfig::hamming(true)),
        ("secded w8", EccConfig::secded(false)),
        ("secded w64", EccConfig::secded(true)),
    ] {
        let codec = ParallelCodec::new(config, 1).expect("codec");
        let (encoded, enc) = timed_encode(&codec, &data);
        let (_, _, dec) = timed_decode(&codec, &encoded, data.len()).expect("decode");
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", config.storage_overhead() * 100.0),
            fmt(enc.mb_per_s()),
            fmt(dec.mb_per_s()),
        ]);
    }
    print_table(
        "Ablation 2: Hamming/SEC-DED block width (1 thread)",
        &["config", "overhead", "encode MB/s", "decode MB/s"],
        &rows,
    );
    println!("expected: w64 variants cost ~4-5x less storage; w8 corrects denser errors.");
}

fn rs_chunk_ablation(scale: RunScale) {
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    let data: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
    let data = &data[..data.len().min(4 << 20)];
    let config = EccConfig::rs(223, 32).expect("static");
    let mut rows = Vec::new();
    for chunk in [64 << 10, 256 << 10, 1 << 20, 4 << 20] {
        let codec = ParallelCodec::with_chunk_size(config, 1, chunk).expect("codec");
        let (encoded, enc) = timed_encode(&codec, data);
        let (_, _, dec) = timed_decode(&codec, &encoded, data.len()).expect("decode");
        // Burst tolerance per chunk: m/... device size grows with chunk.
        let device = 223usize.div_ceil(1).max(1);
        let _ = device;
        let dev_bytes = chunk.div_ceil(223);
        rows.push(vec![
            format!("{} KiB", chunk >> 10),
            fmt(enc.mb_per_s()),
            fmt(dec.mb_per_s()),
            format!("{} KiB", (dev_bytes * 32) >> 10),
        ]);
    }
    print_table(
        "Ablation 3: Reed-Solomon chunk granularity (RS(223,32), 1 thread)",
        &["chunk", "encode MB/s", "decode MB/s", "max burst repaired per chunk (m·device)"],
        &rows,
    );
    println!("expected: throughput roughly flat; larger chunks repair longer bursts\nbut concentrate risk (m devices per chunk regardless of chunk size).");
}

fn ecc_vs_replication_ablation(scale: RunScale) {
    // §2.2: ECC "requires significantly less overhead compared to keeping
    // multiple copies of a dataset". Quantify it against N-modular
    // replication at equivalent protection classes.
    use arc_ecc::Replication;
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    let data: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
    let data = &data[..data.len().min(2 << 20)];
    let mut rows = Vec::new();
    let schemes: Vec<(&str, &str, Box<dyn arc_ecc::EccScheme>)> = vec![
        ("SEC-DED w64", "corrects sparse single-bit", Box::new(arc_ecc::SecDed::w64())),
        (
            "RS(223,32)",
            "corrects bursts (32 devices)",
            Box::new(arc_ecc::ReedSolomon::new(223, 32).unwrap()),
        ),
        ("2x replication", "detects (cannot vote)", Box::new(Replication::new(2).unwrap())),
        ("3x replication (TMR)", "corrects sparse + burst", Box::new(Replication::tmr())),
    ];
    for (name, class, scheme) in &schemes {
        let enc = scheme.encode(data);
        let t0 = std::time::Instant::now();
        let _ = scheme.encode(data);
        let secs = t0.elapsed().as_secs_f64();
        rows.push(vec![
            name.to_string(),
            class.to_string(),
            format!("{:.1}%", 100.0 * (enc.len() - data.len()) as f64 / data.len() as f64),
            fmt(data.len() as f64 / 1e6 / secs),
        ]);
    }
    print_table(
        "Ablation 4: ECC vs keeping copies (the §2.2 storage argument)",
        &["scheme", "protection class", "storage overhead", "encode MB/s"],
        &rows,
    );
    println!("expected: comparable protection at 12.5-14% (ECC) vs 100-200% (copies).");
}

fn main() {
    let scale = RunScale::from_env();
    sz_lossless_ablation(scale);
    block_width_ablation(scale);
    rs_chunk_ablation(scale);
    ecc_vs_replication_ablation(scale);
}
