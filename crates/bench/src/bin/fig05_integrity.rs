//! Figure 5: average data-integrity metrics for all Completed trials —
//! decompression bandwidth, maximum absolute difference, and PSNR, with
//! their control (no-flip) baselines.
//!
//! Paper findings: corrupt-trial bandwidth averages near control but with
//! far higher variance; the average max-difference explodes by orders of
//! magnitude (flips rebuilding exponent bits); PSNR collapses for every
//! mode except ZFP-Rate.

use arc_bench::{compress_field, dataset_at, fmt, paper_modes, print_table, RunScale};
use arc_datasets::SdrDataset;
use arc_faultsim::run_campaign;
use arc_faultsim::sample_bits;

fn main() {
    let scale = RunScale::from_env();
    let trials = scale.trials(120, 500, 3000);
    let mut rows = Vec::new();
    for ds in SdrDataset::ALL {
        let field = dataset_at(scale, ds);
        for spec in paper_modes() {
            let (comp, stream) = compress_field(spec, &field).expect("compress");
            let bits = sample_bits(stream.len() as u64 * 8, trials, 0x000F_1605);
            let report = run_campaign(comp.as_ref(), &field.data, &stream, &bits);
            let (bw_mean, bw_sd) = report.metric_stats(|m| m.bandwidth_mb_s);
            let (maxd_mean, _) = report.metric_stats(|m| m.max_abs_diff);
            let (psnr_mean, psnr_sd) = report.metric_stats(|m| m.psnr);
            let control = report.control.metrics.as_ref();
            rows.push(vec![
                ds.name().to_string(),
                spec.family().to_string(),
                fmt(control.map(|m| m.bandwidth_mb_s).unwrap_or(f64::NAN)),
                format!("{} ± {}", fmt(bw_mean), fmt(bw_sd)),
                fmt(control.map(|m| m.max_abs_diff).unwrap_or(f64::NAN)),
                fmt(maxd_mean),
                fmt(control.map(|m| m.psnr).unwrap_or(f64::NAN)),
                format!("{} ± {}", fmt(psnr_mean), fmt(psnr_sd)),
            ]);
        }
    }
    print_table(
        "Fig 5: integrity metrics, control vs corrupted (Completed trials)",
        &[
            "dataset",
            "mode",
            "ctl BW MB/s",
            "corrupt BW MB/s",
            "ctl max|diff|",
            "corrupt max|diff|",
            "ctl PSNR",
            "corrupt PSNR",
        ],
        &rows,
    );
    println!(
        "\nshape checks vs the paper: corrupt max|diff| ≫ control (orders of\n\
         magnitude); corrupt PSNR collapses except for ZFP-Rate; corrupt bandwidth\n\
         mean ≈ control with larger spread."
    );
}
