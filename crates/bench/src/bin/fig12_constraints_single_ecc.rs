//! Figure 12: constraint satisfaction when the resiliency constraint pins
//! ARC to a single ECC method.
//!
//! Paper findings: each method traces a step function against the memory
//! target (Hamming and SEC-DED have only two configurations; parity steps
//! at its byte-level block sizes; Reed-Solomon tracks the target closely);
//! with a 0.05 budget and RS forced, ARC must go over budget and warn.
//! Throughput targets beyond a slow method's reach are best-effort.

use arc_bench::{fmt, print_table, RunScale};
use arc_core::{
    memory_optimizer, throughput_optimizer, train, MemoryConstraint, ResiliencyConstraint,
    ThroughputConstraint, TrainingOptions, TrainingTable,
};
use arc_ecc::{EccConfig, EccMethod};

fn main() {
    let scale = RunScale::from_env();
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let opts = TrainingOptions {
        sample_bytes: scale.trials(128 << 10, 2 << 20, 8 << 20),
        rs_sample_bytes: scale.trials(64 << 10, 512 << 10, 2 << 20),
        ..Default::default()
    };
    let mut table = TrainingTable::new();
    train(&mut table, max_threads, &opts).expect("training");
    let space = EccConfig::standard_space();

    // (a) memory sweep per single method.
    let targets = [0.02, 0.05, 0.1, 0.15, 0.2, 0.3, 0.4, 0.5, 0.625, 0.75, 0.9, 1.0];
    let mut rows = Vec::new();
    for method in EccMethod::ALL {
        let res = ResiliencyConstraint::Methods(vec![method]);
        for &t in &targets {
            let sel =
                memory_optimizer(&table, &space, &res, MemoryConstraint::Fraction(t), max_threads)
                    .expect("selection");
            rows.push(vec![
                method.name().to_string(),
                fmt(t),
                sel.config.to_string(),
                fmt(sel.overhead),
                if sel.over_budget { "OVER".into() } else { "ok".into() },
            ]);
        }
    }
    print_table(
        "Fig 12a: single-ECC memory sweep — target vs true overhead",
        &["method", "target", "chosen", "true overhead", "budget"],
        &rows,
    );

    // (b) throughput sweep per single method.
    let bw_targets = [0.5, 5.0, 25.0, 100.0, 250.0, 500.0];
    let mut rows = Vec::new();
    for method in EccMethod::ALL {
        let res = ResiliencyConstraint::Methods(vec![method]);
        for &t in &bw_targets {
            let sel = throughput_optimizer(
                &table,
                &space,
                &res,
                ThroughputConstraint::MbPerS(t),
                max_threads,
            )
            .expect("selection");
            rows.push(vec![
                method.name().to_string(),
                fmt(t),
                sel.config.to_string(),
                sel.threads.to_string(),
                fmt(sel.predicted_encode_mb_s),
                if sel.under_throughput { "UNDER".into() } else { "ok".into() },
            ]);
        }
    }
    print_table(
        "Fig 12b: single-ECC throughput sweep — target vs predicted MB/s",
        &["method", "target MB/s", "chosen", "threads", "predicted", "floor"],
        &rows,
    );
    println!(
        "\nshape checks vs the paper: hamming/secded show two-level step functions;\n\
         parity steps at its block sizes; RS tracks the memory target closely and\n\
         goes OVER at tiny budgets; slow methods mark UNDER at high MB/s targets\n\
         but still return their best configuration."
    );
    // Highlight the paper's explicit 0.05 + RS over-budget case.
    let sel = memory_optimizer(
        &table,
        &space,
        &ResiliencyConstraint::Methods(vec![EccMethod::Rs]),
        MemoryConstraint::Fraction(0.005),
        max_threads,
    )
    .expect("selection");
    println!(
        "\nforced-RS tiny budget: target 0.005 -> {} at overhead {:.4} ({})",
        sel.config,
        sel.overhead,
        if sel.over_budget { "over budget, warning issued" } else { "in budget" }
    );
    for note in sel.notes {
        println!("  warning: {note}");
    }
}
