//! Record the `ecc_throughput` baseline into `BENCH_ecc.json`.
//!
//! Measures encode (`encode_into`), clean in-place decode
//! (`decode_in_place`), and decode with correctable corruption for every
//! built-in scheme across a thread sweep of {1, 2, max}
//! (`available_parallelism`, recorded as `max_threads`; duplicate points
//! are collapsed), then prints a JSON document (hand-rolled — the repo
//! takes no serde dependency). Each row carries `effective_workers` (the
//! worker count after the bytes-per-thread floor of DESIGN.md §13 — a
//! probe below the floor runs sequentially even when the codec owns a
//! pool) and `scaling_efficiency` (encode MiB/s at `threads` divided by
//! `threads` × the scheme's 1-thread MiB/s; 1.0 is perfect scaling).
//!
//! A `"schedule"` section reports the compiled XOR-schedule statistics for
//! the Reed-Solomon probe configuration plus the backend the dispatcher
//! resolves on this machine — measured directly off the schedule cache,
//! not through the optional telemetry feature.
//!
//! A `"range"` section times random access over a v2 sharded container:
//! `decode_range` of one shard-sized slice against a full decode of the
//! same container, through a cold reader each rep so the shard cache never
//! hides decode work. `range_speedup` (full / range) is the partial-read
//! win `scripts/bench_ecc.sh` regression-gates.
//!
//! Single-thread rows also carry a per-stage breakdown of the encode path
//! (`stage_copy_s` for the data memcpy, `stage_parity_s` for the per-chunk
//! parity kernels); the stages are measured directly — not through the
//! telemetry feature — so the numbers are valid in the default build, and
//! their sum is expected to land within 5% of `encode_s`. Redirect to the
//! repo root to refresh the committed baseline:
//!
//! ```text
//! cargo run -p arc-bench --release --bin ecc_baseline > BENCH_ecc.json
//! ```

use std::time::Instant;

use arc_bench::{inject_correctable, scaling_schemes};
use arc_ecc::{EccScheme, ParallelCodec};

const PROBE_BYTES: usize = 4 << 20;
const RS_PROBE_BYTES: usize = 1 << 20;
const REPS: usize = 5;
/// Round-robin reps for the encode-stage breakdown (total, copy, parity
/// measured in turn so noise hits all three alike; min of each).
const STAGE_REPS: usize = 15;
/// Correctable soft errors injected for the corrupt-decode column.
const INJECT_ERRORS: usize = 500;

fn probe(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 29) as u8).collect()
}

/// Wall time of one call to `f`, in seconds.
fn one_sec(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Best-of-`REPS` wall time for `f`, in seconds.
fn best_secs(mut f: impl FnMut()) -> f64 {
    f(); // warm up
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Decode throughput against a pre-corrupted template, refreshing the
/// working buffer from the template each rep and subtracting the measured
/// memcpy cost so the column isolates verify-and-correct work.
fn corrupt_decode_secs(codec: &ParallelCodec, template: &[u8], data_len: usize) -> f64 {
    let mut work = template.to_vec();
    let copy = best_secs(|| work.copy_from_slice(template));
    let total = best_secs(|| {
        work.copy_from_slice(template);
        codec.decode_in_place(&mut work, data_len).expect("correctable decode");
    });
    (total - copy).max(f64::MIN_POSITIVE)
}

/// Time the range-read path: best-of-reps `decode_range` of one
/// shard-sized slice vs a full `arc_engine_decode`, both over the same v2
/// container. Returns `(full_s, range_s)`.
fn range_probe(data: &[u8], shard_size: usize) -> (f64, f64) {
    let config = arc_ecc::EccConfig::secded(true);
    let encoded =
        arc_core::arc_engine_encode_sharded(data, config, 1, shard_size).expect("v2 encode");
    // Slice in the middle, aligned to nothing in particular.
    let offset = data.len() / 2 + 37;
    let len = shard_size / 2;
    let full = best_secs(|| {
        arc_core::arc_engine_decode(&encoded, 1).expect("full decode");
    });
    let range = best_secs(|| {
        // Cold reader, zero cache: every rep pays real per-shard decode.
        let mut reader = arc_core::ArcReader::with_cache_capacity(&encoded, 1, 0).expect("reader");
        reader.decode_range(offset, len).expect("range decode");
    });
    (full, range)
}

fn main() {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut thread_points = vec![1, 2, max_threads];
    thread_points.sort_unstable();
    thread_points.dedup();

    let mut entries = Vec::new();
    for (name, config) in scaling_schemes() {
        let len = if name == "Reed-Solomon" { RS_PROBE_BYTES } else { PROBE_BYTES };
        let data = probe(len);
        let corrects = config.capability().corrects_sparse;
        // 1-thread encode MiB/s, the denominator for `scaling_efficiency`
        // (thread_points always starts at 1).
        let mut base_mbps: Option<f64> = None;
        for &threads in &thread_points {
            let codec = ParallelCodec::new(config, threads).expect("codec");
            let mut out = vec![0u8; codec.encoded_len(data.len())];
            // Per-stage breakdown of the sequential encode path: the data
            // memcpy and the per-chunk parity loop are timed separately,
            // mirroring exactly what the 1-thread `encode_into` does, so
            // the two stages should sum to ~`encode_s` (warn beyond 5%).
            // Total and stages are measured round-robin in the same loop so
            // transient system noise lands on all three alike.
            let (enc, stages) = if threads == 1 {
                // Same buffer layout as the sequential `encode_into`: one
                // container split into a data region and a parity region,
                // so each stage touches exactly the memory the real path
                // does. `black_box` keeps the memcpy from being elided.
                let mut container = vec![0u8; codec.encoded_len(data.len())];
                let (data_out, parity_out) = container.split_at_mut(data.len());
                codec.encode_into(&data, &mut out); // warm up
                let (mut enc, mut copy, mut par) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
                for _ in 0..STAGE_REPS {
                    enc = enc.min(one_sec(|| codec.encode_into(&data, &mut out)));
                    copy = copy.min(one_sec(|| {
                        data_out.copy_from_slice(&data);
                        std::hint::black_box(&mut *data_out);
                    }));
                    par = par.min(one_sec(|| {
                        let mut rest = &mut *parity_out;
                        for chunk in data.chunks(codec.chunk_size()) {
                            let (p, r) = rest.split_at_mut(config.parity_len(chunk.len()));
                            config.encode_parity_into(chunk, p);
                            rest = r;
                        }
                        std::hint::black_box(&mut *parity_out);
                    }));
                }
                if ((copy + par) - enc).abs() > 0.05 * enc {
                    eprintln!(
                        "warning: {name} stage sum {:.3e}s deviates >5% from \
                         encode {enc:.3e}s",
                        copy + par
                    );
                }
                (enc, Some((copy, par)))
            } else {
                (best_secs(|| codec.encode_into(&data, &mut out)), None)
            };
            let mut encoded = codec.encode(&data);
            let dec = best_secs(|| {
                codec.decode_in_place(&mut encoded, data.len()).expect("clean decode");
            });
            // Corrupt-decode column: parity-only schemes detect but cannot
            // correct, so the column is null for them.
            let corrupt = corrects.then(|| {
                let mut template = codec.encode(&data);
                inject_correctable(
                    &mut template,
                    &config,
                    codec.chunk_size(),
                    data.len(),
                    INJECT_ERRORS,
                    7,
                );
                corrupt_decode_secs(&codec, &template, data.len())
            });
            let mbps = |secs: f64| len as f64 / secs / (1 << 20) as f64;
            let corrupt_field = match corrupt {
                Some(secs) => format!("{:.1}", mbps(secs)),
                None => "null".to_string(),
            };
            let (copy_field, parity_field) = match stages {
                Some((c, p)) => (format!("{c:.6e}"), format!("{p:.6e}")),
                None => ("null".to_string(), "null".to_string()),
            };
            let enc_mbps = mbps(enc);
            if threads == 1 {
                base_mbps = Some(enc_mbps);
            }
            let efficiency = match base_mbps {
                Some(base) if base > 0.0 => {
                    format!("{:.2}", enc_mbps / (threads as f64 * base))
                }
                _ => "null".to_string(),
            };
            entries.push(format!(
                concat!(
                    "    {{\"scheme\": \"{}\", \"threads\": {}, \"effective_workers\": {}, ",
                    "\"bytes\": {}, ",
                    "\"encode_mib_s\": {:.1}, \"decode_clean_mib_s\": {:.1}, ",
                    "\"decode_corrupt_mib_s\": {}, \"scaling_efficiency\": {}, ",
                    "\"encode_s\": {:.6e}, ",
                    "\"stage_copy_s\": {}, \"stage_parity_s\": {}}}"
                ),
                name,
                threads,
                codec.effective_workers(len),
                len,
                enc_mbps,
                mbps(dec),
                corrupt_field,
                efficiency,
                enc,
                copy_field,
                parity_field
            ));
        }
    }

    let range_data = probe(PROBE_BYTES);
    let shard_size = PROBE_BYTES / 16;
    let (full_s, range_s) = range_probe(&range_data, shard_size);

    // Compiled XOR-schedule statistics for the RS probe configuration
    // (DESIGN.md §13), read off the schedule cache directly so the numbers
    // are valid without the telemetry feature.
    let schedule_field = scaling_schemes()
        .into_iter()
        .find_map(|(_, config)| match config {
            arc_ecc::EccConfig::Rs(rs) => Some(rs),
            _ => None,
        })
        .map(|rs| {
            let s = rs.schedule_stats();
            let backend = match arc_ecc::rs::resolved_rs_backend() {
                arc_ecc::rs::RsBackend::Scheduled => "scheduled",
                _ => "table",
            };
            format!(
                concat!(
                    "{{\"k\": {}, \"m\": {}, \"naive_xors\": {}, \"scheduled_xors\": {}, ",
                    "\"cse_saved\": {}, \"temps\": {}, \"resolved_backend\": \"{}\"}}"
                ),
                rs.k, rs.m, s.naive_xors, s.scheduled_xors, s.cse_saved, s.temps, backend
            )
        })
        .unwrap_or_else(|| "null".to_string());

    println!("{{");
    println!("  \"bench\": \"ecc_throughput\",");
    println!("  \"unit\": \"MiB/s\",");
    println!("  \"reps\": {REPS},");
    println!("  \"max_threads\": {max_threads},");
    // Core count of the recording machine: scripts/bench_ecc.sh refuses to
    // compare scaling points recorded on different hardware.
    println!("  \"recorded_cores\": {max_threads},");
    println!("  \"inject_errors\": {INJECT_ERRORS},");
    println!("  \"schedule\": {schedule_field},");
    println!(
        concat!(
            "  \"range\": {{\"bytes\": {}, \"shard_size\": {}, \"slice_len\": {}, ",
            "\"full_decode_s\": {:.6e}, \"range_decode_s\": {:.6e}, ",
            "\"range_speedup\": {:.2}}},"
        ),
        PROBE_BYTES,
        shard_size,
        shard_size / 2,
        full_s,
        range_s,
        full_s / range_s
    );
    println!("  \"results\": [");
    println!("{}", entries.join(",\n"));
    println!("  ]");
    println!("}}");
}
