//! Record the `ecc_throughput` baseline into `BENCH_ecc.json`.
//!
//! Measures encode (`encode_into`), clean in-place decode
//! (`decode_in_place`), and decode with correctable corruption for every
//! built-in scheme at 1 thread and all available threads
//! (`available_parallelism`, recorded as `max_threads`; the two coincide on
//! a single-core machine), then prints a JSON document (hand-rolled — the
//! repo takes no serde dependency).
//!
//! Single-thread rows also carry a per-stage breakdown of the encode path
//! (`stage_copy_s` for the data memcpy, `stage_parity_s` for the per-chunk
//! parity kernels); the stages are measured directly — not through the
//! telemetry feature — so the numbers are valid in the default build, and
//! their sum is expected to land within 5% of `encode_s`. Redirect to the
//! repo root to refresh the committed baseline:
//!
//! ```text
//! cargo run -p arc-bench --release --bin ecc_baseline > BENCH_ecc.json
//! ```

use std::time::Instant;

use arc_bench::{inject_correctable, scaling_schemes};
use arc_ecc::{EccScheme, ParallelCodec};

const PROBE_BYTES: usize = 4 << 20;
const RS_PROBE_BYTES: usize = 1 << 20;
const REPS: usize = 5;
/// Round-robin reps for the encode-stage breakdown (total, copy, parity
/// measured in turn so noise hits all three alike; min of each).
const STAGE_REPS: usize = 15;
/// Correctable soft errors injected for the corrupt-decode column.
const INJECT_ERRORS: usize = 500;

fn probe(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 29) as u8).collect()
}

/// Wall time of one call to `f`, in seconds.
fn one_sec(f: impl FnOnce()) -> f64 {
    let t = Instant::now();
    f();
    t.elapsed().as_secs_f64()
}

/// Best-of-`REPS` wall time for `f`, in seconds.
fn best_secs(mut f: impl FnMut()) -> f64 {
    f(); // warm up
    (0..REPS)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .fold(f64::INFINITY, f64::min)
}

/// Decode throughput against a pre-corrupted template, refreshing the
/// working buffer from the template each rep and subtracting the measured
/// memcpy cost so the column isolates verify-and-correct work.
fn corrupt_decode_secs(codec: &ParallelCodec, template: &[u8], data_len: usize) -> f64 {
    let mut work = template.to_vec();
    let copy = best_secs(|| work.copy_from_slice(template));
    let total = best_secs(|| {
        work.copy_from_slice(template);
        codec.decode_in_place(&mut work, data_len).expect("correctable decode");
    });
    (total - copy).max(f64::MIN_POSITIVE)
}

fn main() {
    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let thread_points = if max_threads > 1 { vec![1, max_threads] } else { vec![1] };

    let mut entries = Vec::new();
    for (name, config) in scaling_schemes() {
        let len = if name == "Reed-Solomon" { RS_PROBE_BYTES } else { PROBE_BYTES };
        let data = probe(len);
        let corrects = config.capability().corrects_sparse;
        for &threads in &thread_points {
            let codec = ParallelCodec::new(config, threads).expect("codec");
            let mut out = vec![0u8; codec.encoded_len(data.len())];
            // Per-stage breakdown of the sequential encode path: the data
            // memcpy and the per-chunk parity loop are timed separately,
            // mirroring exactly what the 1-thread `encode_into` does, so
            // the two stages should sum to ~`encode_s` (warn beyond 5%).
            // Total and stages are measured round-robin in the same loop so
            // transient system noise lands on all three alike.
            let (enc, stages) = if threads == 1 {
                // Same buffer layout as the sequential `encode_into`: one
                // container split into a data region and a parity region,
                // so each stage touches exactly the memory the real path
                // does. `black_box` keeps the memcpy from being elided.
                let mut container = vec![0u8; codec.encoded_len(data.len())];
                let (data_out, parity_out) = container.split_at_mut(data.len());
                codec.encode_into(&data, &mut out); // warm up
                let (mut enc, mut copy, mut par) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
                for _ in 0..STAGE_REPS {
                    enc = enc.min(one_sec(|| codec.encode_into(&data, &mut out)));
                    copy = copy.min(one_sec(|| {
                        data_out.copy_from_slice(&data);
                        std::hint::black_box(&mut *data_out);
                    }));
                    par = par.min(one_sec(|| {
                        let mut rest = &mut *parity_out;
                        for chunk in data.chunks(codec.chunk_size()) {
                            let (p, r) = rest.split_at_mut(config.parity_len(chunk.len()));
                            config.encode_parity_into(chunk, p);
                            rest = r;
                        }
                        std::hint::black_box(&mut *parity_out);
                    }));
                }
                if ((copy + par) - enc).abs() > 0.05 * enc {
                    eprintln!(
                        "warning: {name} stage sum {:.3e}s deviates >5% from \
                         encode {enc:.3e}s",
                        copy + par
                    );
                }
                (enc, Some((copy, par)))
            } else {
                (best_secs(|| codec.encode_into(&data, &mut out)), None)
            };
            let mut encoded = codec.encode(&data);
            let dec = best_secs(|| {
                codec.decode_in_place(&mut encoded, data.len()).expect("clean decode");
            });
            // Corrupt-decode column: parity-only schemes detect but cannot
            // correct, so the column is null for them.
            let corrupt = corrects.then(|| {
                let mut template = codec.encode(&data);
                inject_correctable(
                    &mut template,
                    &config,
                    codec.chunk_size(),
                    data.len(),
                    INJECT_ERRORS,
                    7,
                );
                corrupt_decode_secs(&codec, &template, data.len())
            });
            let mbps = |secs: f64| len as f64 / secs / (1 << 20) as f64;
            let corrupt_field = match corrupt {
                Some(secs) => format!("{:.1}", mbps(secs)),
                None => "null".to_string(),
            };
            let (copy_field, parity_field) = match stages {
                Some((c, p)) => (format!("{c:.6e}"), format!("{p:.6e}")),
                None => ("null".to_string(), "null".to_string()),
            };
            entries.push(format!(
                concat!(
                    "    {{\"scheme\": \"{}\", \"threads\": {}, \"bytes\": {}, ",
                    "\"encode_mib_s\": {:.1}, \"decode_clean_mib_s\": {:.1}, ",
                    "\"decode_corrupt_mib_s\": {}, \"encode_s\": {:.6e}, ",
                    "\"stage_copy_s\": {}, \"stage_parity_s\": {}}}"
                ),
                name,
                threads,
                len,
                mbps(enc),
                mbps(dec),
                corrupt_field,
                enc,
                copy_field,
                parity_field
            ));
        }
    }

    println!("{{");
    println!("  \"bench\": \"ecc_throughput\",");
    println!("  \"unit\": \"MiB/s\",");
    println!("  \"reps\": {REPS},");
    println!("  \"max_threads\": {max_threads},");
    println!("  \"inject_errors\": {INJECT_ERRORS},");
    println!("  \"results\": [");
    println!("{}", entries.join(",\n"));
    println!("  ]");
    println!("}}");
}
