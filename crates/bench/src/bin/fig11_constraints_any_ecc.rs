//! Figure 11: ARC constraint satisfaction with a free choice of ECC
//! (`ARC_ANY_ECC`) — target vs observed storage overhead, and target vs
//! achieved throughput.
//!
//! Paper findings: a 0.2 memory constraint yields a Reed-Solomon
//! configuration at 19.5% observed overhead; 0.9 yields 88.5%; throughput
//! targets are met from just above (0.5 MB/s → RS on 15 threads at 0.51
//! MB/s; 300 MB/s → SEC-DED on 34 threads at 302.4 MB/s).

use arc_bench::{dataset_at, fmt, print_table, RunScale};
use arc_core::{
    ArcContext, ArcOptions, EncodeRequest, MemoryConstraint, ResiliencyConstraint,
    ThroughputConstraint, TrainingOptions,
};
use arc_datasets::SdrDataset;

fn main() {
    let scale = RunScale::from_env();
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    // The constraint study protects SZ-ABS-compressed CESM (§6.2). The
    // paper's ε = 0.1 leaves a stream too small for overhead measurements
    // to be meaningful at reduced dataset scales (the container's fixed
    // costs dominate tiny payloads), so a tighter bound keeps the payload
    // in the MB range the study assumes.
    let comp = arc_pressio::CompressorSpec::SzAbs(1e-4).build();
    let payload = comp
        .compress(&arc_pressio::Dataset { data: &field.data, dims: &field.dims })
        .expect("compress CESM");
    println!(
        "payload: CESM via SZ-ABS(1e-4): {:.2} MB compressed from {:.2} MB",
        payload.len() as f64 / 1e6,
        field.byte_len() as f64 / 1e6
    );
    let cache = std::env::temp_dir().join("arc-bench-fig11");
    let ctx = ArcContext::init(ArcOptions {
        cache_path: Some(cache.join("training.tsv")),
        training: TrainingOptions {
            sample_bytes: scale.trials(128 << 10, 2 << 20, 8 << 20),
            rs_sample_bytes: scale.trials(64 << 10, 512 << 10, 2 << 20),
            ..Default::default()
        },
        ..Default::default()
    })
    .expect("arc_init");

    // (a) memory-constraint sweep.
    let mut rows = Vec::new();
    for target in [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let req = EncodeRequest {
            memory: MemoryConstraint::Fraction(target),
            throughput: ThroughputConstraint::Any,
            resiliency: ResiliencyConstraint::Any,
        };
        let (encoded, sel) = ctx.encode(&payload, &req).expect("arc_encode");
        let observed = (encoded.len() as f64 - payload.len() as f64) / payload.len() as f64;
        rows.push(vec![
            fmt(target),
            sel.config.to_string(),
            fmt(sel.overhead),
            fmt(observed),
            if sel.over_budget { "OVER".into() } else { "ok".into() },
        ]);
    }
    print_table(
        "Fig 11a: memory constraint (ANY_ECC) — target vs observed overhead",
        &["target", "chosen config", "config overhead", "observed overhead", "budget"],
        &rows,
    );

    // (b) throughput-constraint sweep, verified by a timed encode.
    let mut rows = Vec::new();
    for target in [0.5, 2.0, 10.0, 50.0, 100.0, 200.0, 300.0, 400.0, 500.0] {
        let req = EncodeRequest {
            memory: MemoryConstraint::Any,
            throughput: ThroughputConstraint::MbPerS(target),
            resiliency: ResiliencyConstraint::Any,
        };
        match ctx.select(&req) {
            Ok(sel) => {
                let t0 = std::time::Instant::now();
                let _ = ctx.encode_with(&payload, sel.config, sel.threads).expect("encode");
                let achieved = payload.len() as f64 / 1e6 / t0.elapsed().as_secs_f64();
                rows.push(vec![
                    fmt(target),
                    sel.config.to_string(),
                    sel.threads.to_string(),
                    fmt(sel.predicted_encode_mb_s),
                    fmt(achieved),
                    if sel.under_throughput { "UNDER".into() } else { "ok".into() },
                ]);
            }
            Err(e) => rows.push(vec![
                fmt(target),
                format!("error: {e}"),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print_table(
        "Fig 11b: throughput constraint (ANY_ECC) — target vs achieved MB/s",
        &["target MB/s", "chosen config", "threads", "predicted", "achieved", "floor"],
        &rows,
    );
    println!(
        "\nshape checks vs the paper: observed overhead hugs the target from below\n\
         (RS fills the budget); low throughput targets select strong/slow codes on\n\
         few threads, high targets shift to SEC-DED/Hamming/parity with more threads."
    );
    ctx.close().expect("arc_close");
}
