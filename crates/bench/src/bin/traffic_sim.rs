//! `traffic_sim` — multi-client traffic harness over the streaming
//! service layer (DESIGN.md §14).
//!
//! Three phases, all with a fixed seed so the workload is reproducible:
//!
//! 1. **Streaming acceptance** — encodes a ≥256 MiB input (default; see
//!    `--mib`) through [`StreamEncoder`] into a discarding sink and
//!    compares against the one-shot `arc_engine_encode_sharded` wall
//!    time at the same thread count. A process-global counting allocator
//!    (peak *live* bytes, not cumulative) proves the streaming path's
//!    footprint stays below 25% of the input — the O(ring × shard)
//!    contract — while throughput stays within 10% of one-shot
//!    (`MIN_STREAM_RATIO`, default 0.9).
//! 2. **Closed-loop traffic** — two client threads issue a seeded
//!    60/25/15 mix of shard-cache tile reads ([`ArcReader`]), streaming
//!    writes, and batch encodes back-to-back, recording per-op latency
//!    through the `arc-telemetry` facade.
//! 3. **Open-loop traffic** — the same mix issued on a fixed arrival
//!    schedule at half the closed-loop rate; latency is measured from
//!    the *scheduled* arrival, so queueing delay counts.
//!
//! p50/p99 latencies come from `HistogramSnapshot::percentile_estimate`
//! over the facade's log₂ buckets, which is why the bin requires the
//! `telemetry` feature (it exits early otherwise). Output is a JSON
//! document in the `BENCH_ecc.json` house style; `--smoke` shrinks every
//! phase for CI and keeps the sanity assertions. Record the committed
//! baseline with:
//!
//! ```text
//! cargo run -p arc-bench --release --features telemetry --bin traffic_sim \
//!     > BENCH_traffic.json
//! ```

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};
use std::time::{Duration, Instant};

use arc_core::{
    arc_engine_encode_sharded, encode_batch, ArcError, ArcReader, StreamEncoder, StreamOptions,
    StreamSink,
};
use arc_ecc::{EccConfig, ParallelCodec};
use arc_telemetry::Snapshot;

// ---------------------------------------------------------------------------
// Peak-live counting allocator (the RSS proxy for the 25% gate)
// ---------------------------------------------------------------------------

static LIVE: AtomicIsize = AtomicIsize::new(0);
static PEAK: AtomicIsize = AtomicIsize::new(0);

struct PeakAlloc;

fn on_alloc(size: usize) {
    let live = LIVE.fetch_add(size as isize, Ordering::SeqCst) + size as isize;
    PEAK.fetch_max(live, Ordering::SeqCst);
}

fn on_dealloc(size: usize) {
    LIVE.fetch_sub(size as isize, Ordering::SeqCst);
}

// SAFETY: a pure forwarding allocator — every method delegates to `System`
// with unchanged arguments, so `System`'s allocation guarantees carry over;
// the side counters are atomics with no effect on the returned memory.
unsafe impl GlobalAlloc for PeakAlloc {
    // SAFETY: contract inherited from `GlobalAlloc::alloc`; discharged below
    // by forwarding to `System`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::alloc_zeroed`; discharged
    // below by forwarding to `System`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        // SAFETY: same layout the caller passed, under the same contract.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::dealloc`; discharged
    // below by forwarding to `System`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        // SAFETY: `ptr` was produced by `System` in `alloc`/`alloc_zeroed`/
        // `realloc` above with this same layout.
        unsafe { System.dealloc(ptr, layout) }
    }

    // SAFETY: contract inherited from `GlobalAlloc::realloc`; discharged
    // below by forwarding to `System`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_dealloc(layout.size());
        on_alloc(new_size);
        // SAFETY: `ptr`/`layout` come from a prior `System` allocation and
        // `new_size` is forwarded unchanged.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: PeakAlloc = PeakAlloc;

/// Run `f` and return its result plus the peak heap growth (bytes above
/// the live level at entry) observed anywhere in the process while it ran.
fn peak_during<R>(f: impl FnOnce() -> R) -> (R, usize) {
    let live0 = LIVE.load(Ordering::SeqCst);
    PEAK.store(live0, Ordering::SeqCst);
    let r = f();
    let peak = PEAK.load(Ordering::SeqCst) - live0;
    (r, peak.max(0) as usize)
}

// ---------------------------------------------------------------------------
// Workload plumbing
// ---------------------------------------------------------------------------

const SEED: u64 = 0x7AFF_1C5E_D00D_F00Du64;

/// xorshift64 — deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn fill(len: usize) -> Vec<u8> {
    let mut v = vec![0u8; len];
    let mut x = 0x243F_6A88_85A3_08D3u64;
    for chunk in v.chunks_exact_mut(8) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        chunk.copy_from_slice(&x.to_le_bytes());
    }
    v
}

/// Byte sink that discards payload bytes (models a socket or file): the
/// measured footprint is the encoder's own buffering.
#[derive(Default)]
struct Discard {
    high_water: usize,
}

impl StreamSink for Discard {
    fn write_at(&mut self, offset: usize, bytes: &[u8]) -> Result<(), ArcError> {
        self.high_water = self.high_water.max(offset + bytes.len());
        Ok(())
    }
}

const CLASSES: [&str; 3] = ["tile_read", "stream_write", "batch_encode"];

fn hist_name(open: bool, class: usize) -> &'static str {
    match (open, class) {
        (false, 0) => "traffic.closed.tile_read.ns",
        (false, 1) => "traffic.closed.stream_write.ns",
        (false, _) => "traffic.closed.batch_encode.ns",
        (true, 0) => "traffic.open.tile_read.ns",
        (true, 1) => "traffic.open.stream_write.ns",
        (true, _) => "traffic.open.batch_encode.ns",
    }
}

fn bytes_name(open: bool, class: usize) -> &'static str {
    match (open, class) {
        (false, 0) => "traffic.closed.tile_read.bytes",
        (false, 1) => "traffic.closed.stream_write.bytes",
        (false, _) => "traffic.closed.batch_encode.bytes",
        (true, 0) => "traffic.open.tile_read.bytes",
        (true, 1) => "traffic.open.stream_write.bytes",
        (true, _) => "traffic.open.batch_encode.bytes",
    }
}

/// 60% tile reads, 25% streaming writes, 15% batch encodes.
fn pick_class(rng: &mut Rng) -> usize {
    match rng.below(100) {
        0..=59 => 0,
        60..=84 => 1,
        _ => 2,
    }
}

/// Shared, read-only traffic fixture: one sharded container for reads
/// plus a scratch pool the write classes slice payloads from.
struct Workload {
    container: Vec<u8>,
    data_len: usize,
    tile: usize,
    scratch: Vec<u8>,
    write_min: usize,
    write_max: usize,
    write_shard: usize,
    batch_reqs: usize,
    batch_min: usize,
    batch_max: usize,
    config: EccConfig,
}

/// Run one request of `class`; returns the bytes it processed.
fn run_op(class: usize, rng: &mut Rng, w: &Workload, reader: &mut ArcReader) -> usize {
    match class {
        0 => {
            let off = rng.below(w.data_len.saturating_sub(w.tile).max(1) as u64) as usize;
            let len = w.tile.min(w.data_len - off);
            let (bytes, _report) = reader.decode_range(off, len).expect("tile read");
            bytes.len()
        }
        1 => {
            let len = w.write_min + rng.below((w.write_max - w.write_min) as u64) as usize;
            let start = rng.below((w.scratch.len() - len) as u64) as usize;
            let payload = &w.scratch[start..start + len];
            let opts =
                StreamOptions { threads: 1, shard_size: w.write_shard, ..StreamOptions::default() };
            let mut enc = StreamEncoder::new(Vec::new(), w.config, opts).expect("stream encoder");
            for piece in payload.chunks(32 << 10) {
                enc.push(piece).expect("stream push");
            }
            let (sink, _stats) = enc.finish().expect("stream finish");
            sink.len()
        }
        _ => {
            let mut lens = Vec::with_capacity(w.batch_reqs);
            for _ in 0..w.batch_reqs {
                let len = w.batch_min + rng.below((w.batch_max - w.batch_min) as u64) as usize;
                let start = rng.below((w.scratch.len() - len) as u64) as usize;
                lens.push((start, len));
            }
            let reqs: Vec<&[u8]> = lens.iter().map(|&(s, l)| &w.scratch[s..s + l]).collect();
            let encoded = encode_batch(&reqs, w.config, 1).expect("batch encode");
            encoded.iter().map(|e| e.len()).sum()
        }
    }
}

/// Closed loop: each client issues requests back-to-back. Returns
/// (wall seconds, total ops).
fn closed_loop(w: &Workload, clients: usize, ops_per_client: usize) -> (f64, usize) {
    let t = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            s.spawn(move || {
                let mut rng = Rng::new(SEED ^ (0x9E37_79B9 * (c as u64 + 1)));
                let mut reader = ArcReader::open(&w.container, 1).expect("reader");
                for _ in 0..ops_per_client {
                    let class = pick_class(&mut rng);
                    let t0 = Instant::now();
                    let bytes = run_op(class, &mut rng, w, &mut reader);
                    arc_telemetry::histogram_record(
                        hist_name(false, class),
                        t0.elapsed().as_nanos() as u64,
                    );
                    arc_telemetry::counter_add(bytes_name(false, class), bytes as u64);
                }
            });
        }
    });
    (t.elapsed().as_secs_f64(), clients * ops_per_client)
}

/// Open loop: requests issued on a fixed schedule of `rate_ops_s`;
/// latency is completion minus *scheduled* arrival (queueing included).
/// Returns (wall seconds, ops).
fn open_loop(w: &Workload, ops: usize, rate_ops_s: f64) -> (f64, usize) {
    let mut rng = Rng::new(SEED ^ 0x0505_0505);
    let mut reader = ArcReader::open(&w.container, 1).expect("reader");
    let start = Instant::now();
    for i in 0..ops {
        let due = Duration::from_secs_f64(i as f64 / rate_ops_s);
        let elapsed = start.elapsed();
        if elapsed < due {
            std::thread::sleep(due - elapsed);
        }
        let class = pick_class(&mut rng);
        let bytes = run_op(class, &mut rng, w, &mut reader);
        let latency = start.elapsed().saturating_sub(due);
        arc_telemetry::histogram_record(hist_name(true, class), (latency.as_nanos() as u64).max(1));
        arc_telemetry::counter_add(bytes_name(true, class), bytes as u64);
    }
    (start.elapsed().as_secs_f64(), ops)
}

struct ClassReport {
    name: &'static str,
    count: u64,
    p50_us: f64,
    p99_us: f64,
    mib_s: f64,
}

fn class_reports(snap: &Snapshot, open: bool, wall_s: f64) -> Vec<ClassReport> {
    (0..CLASSES.len())
        .map(|class| {
            let (count, p50, p99) = snap
                .histograms
                .iter()
                .find(|h| h.name == hist_name(open, class))
                .map(|h| (h.count, h.percentile_estimate(0.50), h.percentile_estimate(0.99)))
                .unwrap_or((0, 0, 0));
            let bytes = snap.counter(bytes_name(open, class));
            ClassReport {
                name: CLASSES[class],
                count,
                p50_us: p50 as f64 / 1e3,
                p99_us: p99 as f64 / 1e3,
                mib_s: bytes as f64 / wall_s.max(1e-9) / (1 << 20) as f64,
            }
        })
        .collect()
}

fn classes_json(reports: &[ClassReport]) -> String {
    let rows: Vec<String> = reports
        .iter()
        .map(|r| {
            format!(
                concat!(
                    "      {{\"class\": \"{}\", \"count\": {}, \"p50_us\": {:.1}, ",
                    "\"p99_us\": {:.1}, \"mib_s\": {:.1}}}"
                ),
                r.name, r.count, r.p50_us, r.p99_us, r.mib_s
            )
        })
        .collect();
    rows.join(",\n")
}

fn fail(msg: &str) -> ! {
    eprintln!("traffic_sim: FAIL: {msg}");
    std::process::exit(1);
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn main() {
    if !arc_telemetry::enabled() {
        eprintln!(
            "traffic_sim: the latency histograms are recorded through the \
             arc-telemetry facade, which is a no-op in the default build; rerun with\n  \
             cargo run -p arc-bench --release --features telemetry --bin traffic_sim"
        );
        std::process::exit(2);
    }

    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mib_override = args
        .iter()
        .position(|a| a == "--mib")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok());
    if let Some(bad) = args.iter().find(|a| a.starts_with("--") && *a != "--smoke" && *a != "--mib")
    {
        fail(&format!("unknown argument {bad} (expected --smoke and/or --mib <N>)"));
    }

    let max_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    // ---- Phase 1: streaming acceptance -------------------------------
    let stream_mib = mib_override.unwrap_or(if smoke { 64 } else { 256 });
    let input_len = stream_mib << 20;
    let shard_size = 4 << 20;
    let ring = 4;
    // Smoke pins threads=1 (inline path) so the CI footprint is flat; the
    // recorded run uses every core, matching the one-shot side.
    let threads = if smoke { 1 } else { max_threads };
    let config = EccConfig::secded(true);
    let effective_workers =
        ParallelCodec::new(config, threads).expect("codec").effective_workers(input_len);
    let reps = 2;

    eprintln!("traffic_sim: streaming phase ({stream_mib} MiB, threads={threads})");
    let data = fill(input_len);
    let warm = (4 << 20).min(input_len);
    drop(arc_engine_encode_sharded(&data[..warm], config, threads, shard_size));

    let mut oneshot_s = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        let container =
            arc_engine_encode_sharded(&data, config, threads, shard_size).expect("one-shot");
        oneshot_s = oneshot_s.min(t.elapsed().as_secs_f64());
        std::hint::black_box(&container);
    }

    let opts = StreamOptions { threads, shard_size, ring, ..StreamOptions::default() };
    {
        // Warm the streaming path (thread spawn, lazy tables) off the clock.
        let mut enc = StreamEncoder::new(Discard::default(), config, opts).expect("encoder");
        enc.push(&data[..warm]).expect("push");
        let _ = enc.finish().expect("finish");
    }
    let mut stream_s = f64::INFINITY;
    let mut peak_bytes = 0usize;
    let mut container_len = 0usize;
    let mut backpressure_waits = 0u64;
    for _ in 0..reps {
        let (result, peak) = peak_during(|| {
            let t = Instant::now();
            let mut enc = StreamEncoder::new(Discard::default(), config, opts).expect("encoder");
            for piece in data.chunks(8 << 20) {
                enc.push(piece).expect("push");
            }
            let (sink, stats) = enc.finish().expect("finish");
            (t.elapsed().as_secs_f64(), sink, stats)
        });
        let (secs, sink, stats) = result;
        if sink.high_water != stats.container_len {
            fail("streaming sink was not fully written");
        }
        stream_s = stream_s.min(secs);
        peak_bytes = peak_bytes.max(peak);
        container_len = stats.container_len;
        backpressure_waits = stats.backpressure_waits;
    }
    drop(data);

    let mib = |secs: f64| input_len as f64 / secs / (1 << 20) as f64;
    let oneshot_mib_s = mib(oneshot_s);
    let stream_mib_s = mib(stream_s);
    let ratio = stream_mib_s / oneshot_mib_s;
    let peak_frac = peak_bytes as f64 / input_len as f64;

    if !smoke && mib_override.is_none() && input_len < 256 << 20 {
        fail("recorded runs must stream at least 256 MiB");
    }
    if peak_frac >= env_f64("MAX_PEAK_FRAC", 0.25) {
        fail(&format!(
            "streaming peak allocation {peak_bytes} bytes is {:.1}% of the \
             {input_len}-byte input (gate: <25%)",
            peak_frac * 100.0
        ));
    }
    let min_ratio = env_f64("MIN_STREAM_RATIO", if smoke { 0.5 } else { 0.9 });
    if ratio < min_ratio {
        fail(&format!(
            "streaming encode {stream_mib_s:.1} MiB/s is {:.0}% of one-shot \
             {oneshot_mib_s:.1} MiB/s (gate: >={:.0}%)",
            ratio * 100.0,
            min_ratio * 100.0
        ));
    }

    // ---- Phase 2/3: traffic ------------------------------------------
    let w = if smoke {
        Workload {
            container: Vec::new(),
            data_len: 4 << 20,
            tile: 64 << 10,
            scratch: fill(1 << 20),
            write_min: 32 << 10,
            write_max: 128 << 10,
            write_shard: 64 << 10,
            batch_reqs: 4,
            batch_min: 2 << 10,
            batch_max: 8 << 10,
            config,
        }
    } else {
        Workload {
            container: Vec::new(),
            data_len: 32 << 20,
            tile: 256 << 10,
            scratch: fill(2 << 20),
            write_min: 128 << 10,
            write_max: 512 << 10,
            write_shard: 128 << 10,
            batch_reqs: 8,
            batch_min: 4 << 10,
            batch_max: 32 << 10,
            config,
        }
    };
    let read_shard = if smoke { 256 << 10 } else { 1 << 20 };
    let w = Workload {
        container: arc_engine_encode_sharded(&fill(w.data_len), config, 1, read_shard)
            .expect("traffic container"),
        ..w
    };

    let clients = 2;
    let ops_per_client = if smoke { 40 } else { 150 };
    eprintln!("traffic_sim: closed loop ({clients} clients x {ops_per_client} ops)");
    arc_telemetry::reset();
    let (closed_wall, closed_ops) = closed_loop(&w, clients, ops_per_client);

    let rate_ops_s = (closed_ops as f64 / closed_wall * 0.5).clamp(10.0, 5000.0);
    let open_ops = if smoke { 30 } else { 100 };
    eprintln!("traffic_sim: open loop ({open_ops} ops at {rate_ops_s:.0} ops/s)");
    let (open_wall, open_ops) = open_loop(&w, open_ops, rate_ops_s);

    let snap = arc_telemetry::snapshot();
    let closed = class_reports(&snap, false, closed_wall);
    let open = class_reports(&snap, true, open_wall);
    for (loop_name, reports) in [("closed", &closed), ("open", &open)] {
        for r in reports.iter() {
            if r.count == 0 {
                fail(&format!("{loop_name} loop issued no {} ops", r.name));
            }
            if r.p50_us <= 0.0 || r.p99_us < r.p50_us {
                fail(&format!(
                    "{loop_name} {} latencies are not sane (p50={:.1}us p99={:.1}us)",
                    r.name, r.p50_us, r.p99_us
                ));
            }
        }
    }

    // ---- Report -------------------------------------------------------
    println!("{{");
    println!("  \"bench\": \"traffic_sim\",");
    println!("  \"mode\": \"{}\",", if smoke { "smoke" } else { "full" });
    println!("  \"seed\": {SEED},");
    println!("  \"max_threads\": {max_threads},");
    // Core count of the recording machine: scripts/bench_traffic.sh refuses
    // to compare throughput recorded on different hardware.
    println!("  \"recorded_cores\": {max_threads},");
    println!(
        concat!(
            "  \"streaming\": {{\"input_bytes\": {}, \"shard_size\": {}, \"ring\": {}, ",
            "\"threads\": {}, \"effective_workers\": {}, \"container_len\": {}, ",
            "\"oneshot_mib_s\": {:.1}, \"stream_mib_s\": {:.1}, ",
            "\"stream_vs_oneshot\": {:.3}, \"peak_bytes\": {}, \"peak_frac\": {:.4}, ",
            "\"backpressure_waits\": {}}},"
        ),
        input_len,
        shard_size,
        ring,
        threads,
        effective_workers,
        container_len,
        oneshot_mib_s,
        stream_mib_s,
        ratio,
        peak_bytes,
        peak_frac,
        backpressure_waits
    );
    println!(
        concat!(
            "  \"closed_loop\": {{\"clients\": {}, \"ops\": {}, \"wall_s\": {:.3}, ",
            "\"ops_s\": {:.1}, \"classes\": [\n{}\n  ]}},"
        ),
        clients,
        closed_ops,
        closed_wall,
        closed_ops as f64 / closed_wall,
        classes_json(&closed)
    );
    println!(
        concat!(
            "  \"open_loop\": {{\"target_ops_s\": {:.1}, \"ops\": {}, \"wall_s\": {:.3}, ",
            "\"achieved_ops_s\": {:.1}, \"classes\": [\n{}\n  ]}}"
        ),
        rate_ops_s,
        open_ops,
        open_wall,
        open_ops as f64 / open_wall,
        classes_json(&open)
    );
    println!("}}");
}
