//! # arc-bench — evaluation harness
//!
//! One binary per table and figure of the paper's evaluation (see
//! DESIGN.md §4 for the index), plus Criterion benches. This library holds
//! the shared plumbing: run-scale flags, table printing, dataset
//! preparation, and scheme-aware *correctable* error injection for the
//! Fig 10 study.

#![warn(missing_docs)]

use arc_datasets::{Field, SdrDataset};
use arc_ecc::{EccConfig, EccMethod};
use arc_pressio::{Compressor, CompressorSpec, Dataset};

/// How big a run to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunScale {
    /// Seconds-scale smoke run (`--quick`).
    Quick,
    /// Default: minutes-scale, laptop-friendly.
    Standard,
    /// Paper-scale dimensions where feasible (`--full`).
    Full,
}

impl RunScale {
    /// Parse from process arguments (`--quick` / `--full`) or the
    /// `ARC_BENCH_SCALE` environment variable (`quick|standard|full`).
    pub fn from_env() -> RunScale {
        let args: Vec<String> = std::env::args().collect();
        if args.iter().any(|a| a == "--quick") {
            return RunScale::Quick;
        }
        if args.iter().any(|a| a == "--full") {
            return RunScale::Full;
        }
        match std::env::var("ARC_BENCH_SCALE").as_deref() {
            Ok("quick") => RunScale::Quick,
            Ok("full") => RunScale::Full,
            _ => RunScale::Standard,
        }
    }

    /// Scale a trial count.
    pub fn trials(&self, quick: usize, standard: usize, full: usize) -> usize {
        match self {
            RunScale::Quick => quick,
            RunScale::Standard => standard,
            RunScale::Full => full,
        }
    }

    /// Dataset dims for a given dataset at this scale.
    pub fn dims(&self, ds: SdrDataset) -> Vec<usize> {
        match self {
            RunScale::Quick => ds.test_dims(),
            RunScale::Standard => match ds {
                SdrDataset::CesmCldlow => vec![450, 900],
                SdrDataset::IsabelPressure => vec![25, 125, 125],
                SdrDataset::NyxTemperature => vec![96, 96, 96],
            },
            RunScale::Full => ds.paper_dims(),
        }
    }
}

/// Generate a dataset at the run scale with the default harness seed.
pub fn dataset_at(scale: RunScale, ds: SdrDataset) -> Field {
    ds.generate(&scale.dims(ds), 0x5EED)
}

/// The five compressor configurations of the fault study (§4.1.1): ε = 0.1
/// for SZ-ABS, SZ-PWREL and ZFP-ACC, PSNR 90 for SZ-PSNR, rate 8 for
/// ZFP-Rate.
pub fn paper_modes() -> Vec<CompressorSpec> {
    vec![
        CompressorSpec::SzAbs(0.1),
        CompressorSpec::SzPwRel(0.1),
        CompressorSpec::SzPsnr(90.0),
        CompressorSpec::ZfpAcc(0.1),
        CompressorSpec::ZfpRate(8.0),
    ]
}

/// Compress a field under a spec, returning the (compressor, stream) pair.
///
/// Errors carry the spec and field names so binaries can simply `expect`
/// the result with context intact.
pub fn compress_field(
    spec: CompressorSpec,
    field: &Field,
) -> Result<(Box<dyn Compressor>, Vec<u8>), String> {
    let comp = spec.build();
    let stream = comp
        .compress(&Dataset { data: &field.data, dims: &field.dims })
        .map_err(|e| format!("{} failed on {}: {e}", spec.name(), field.name))?;
    Ok((comp, stream))
}

/// Render an aligned text table to stdout.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Format a float compactly for tables.
pub fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return format!("{v}");
    }
    let a = v.abs();
    if a == 0.0 {
        "0".into()
    } else if !(1e-3..1e6).contains(&a) {
        format!("{v:.3e}")
    } else if a >= 100.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

/// The four ECC configurations the scalability figures run (Figures 8–10):
/// parity per 8 bytes, Hamming(71,64), SEC-DED(72,64), RS(223,32).
pub fn scaling_schemes() -> Vec<(&'static str, EccConfig)> {
    // The fallible constructors only reject out-of-range parameters; these
    // values are in range, so the `if let` arms always push. The unit test
    // below pins the length at four in case the constructors ever tighten.
    let mut schemes = Vec::with_capacity(4);
    if let Ok(parity) = EccConfig::parity(8) {
        schemes.push(("Parity", parity));
    }
    schemes.push(("Hamming", EccConfig::hamming(true)));
    schemes.push(("SEC-DED", EccConfig::secded(true)));
    if let Ok(rs) = EccConfig::rs(223, 32) {
        schemes.push(("Reed-Solomon", rs));
    }
    schemes
}

/// Inject `count` soft errors into an **encoded** buffer such that the
/// scheme is guaranteed to be able to correct all of them (the Fig 10
/// methodology: "randomly inject the soft errors into the encoded data but
/// also ensure the soft errors are correctable").
///
/// * Hamming / SEC-DED: at most one flipped bit per codeword — flips land
///   in distinct 8-byte blocks of the data region.
/// * Reed-Solomon: flips confined to at most `m/2` devices per chunk (the
///   CRC-erasure decoder tolerates `m`, so this leaves slack).
///
/// Returns the number of flips actually injected (capped by capacity).
pub fn inject_correctable(
    encoded: &mut [u8],
    config: &EccConfig,
    chunk_size: usize,
    data_len: usize,
    count: usize,
    seed: u64,
) -> usize {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut rng = StdRng::seed_from_u64(seed);
    match config {
        EccConfig::Hamming(_) | EccConfig::SecDed(_) => {
            // Distinct 8-byte blocks within the data region.
            let blocks = data_len / 8;
            let n = count.min(blocks);
            let mut chosen = std::collections::HashSet::with_capacity(n * 2);
            while chosen.len() < n {
                chosen.insert(rng.random_range(0..blocks as u64));
            }
            for &b in &chosen {
                let bit = b * 64 + rng.random_range(0..64u64);
                encoded[(bit / 8) as usize] ^= 1 << (bit % 8);
            }
            n
        }
        EccConfig::Rs(rs) => {
            // Spread across chunks; within a chunk damage ≤ m/2 devices.
            let chunks = data_len.div_ceil(chunk_size).max(1);
            let per_chunk_devices = (rs.m / 2).max(1);
            let mut injected = 0usize;
            'outer: for c in 0..chunks {
                let chunk_start = c * chunk_size;
                let chunk_len = chunk_size.min(data_len - chunk_start);
                let device = rs.device_size(chunk_len);
                for d in 0..per_chunk_devices {
                    if injected >= count {
                        break 'outer;
                    }
                    // Pick a device index deterministically spread out.
                    let dev = (d * rs.k / per_chunk_devices) % rs.k;
                    let dev_start = chunk_start + dev * device;
                    let dev_len =
                        device.min(chunk_start + chunk_len).saturating_sub(dev_start).min(device);
                    if dev_len == 0 || dev_start >= data_len {
                        continue;
                    }
                    // Many flips inside one device still cost one erasure.
                    let flips = ((count - injected) / (chunks * per_chunk_devices)).max(1);
                    for _ in 0..flips.min(dev_len * 8) {
                        if injected >= count {
                            break;
                        }
                        let bit =
                            (dev_start as u64) * 8 + rng.random_range(0..(dev_len as u64) * 8);
                        encoded[(bit / 8) as usize] ^= 1 << (bit % 8);
                        injected += 1;
                    }
                }
            }
            injected
        }
        EccConfig::Parity(_) => 0, // detection-only: nothing is correctable
    }
}

/// Convenience: does this config belong to `method`?
pub fn is_method(config: &EccConfig, method: EccMethod) -> bool {
    config.method() == method
}

/// Probe bytes reused by throughput binaries (CESM-sized by default).
pub fn ecc_probe_bytes(scale: RunScale) -> Vec<u8> {
    let field = dataset_at(scale, SdrDataset::CesmCldlow);
    field.data.iter().flat_map(|x| x.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arc_ecc::{EccScheme, ParallelCodec};

    #[test]
    fn scale_trials_pick_by_variant() {
        assert_eq!(RunScale::Quick.trials(1, 2, 3), 1);
        assert_eq!(RunScale::Standard.trials(1, 2, 3), 2);
        assert_eq!(RunScale::Full.trials(1, 2, 3), 3);
    }

    #[test]
    fn paper_modes_are_the_five() {
        let names: Vec<_> = paper_modes().iter().map(|m| m.family()).collect();
        assert_eq!(names, vec!["SZ-ABS", "SZ-PWREL", "SZ-PSNR", "ZFP-ACC", "ZFP-Rate"]);
    }

    #[test]
    fn correctable_injection_is_actually_correctable() {
        let data: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
        let chunk = 64 * 1024;
        for (name, config) in scaling_schemes() {
            if matches!(config, EccConfig::Parity(_)) {
                continue;
            }
            let codec = ParallelCodec::with_chunk_size(config, 2, chunk).unwrap();
            let mut enc = codec.encode(&data);
            let injected = inject_correctable(&mut enc, &config, chunk, data.len(), 500, 7);
            assert!(injected > 0, "{name}");
            let (out, report) = codec
                .decode(&enc, data.len())
                .unwrap_or_else(|e| panic!("{name}: injected errors uncorrectable: {e}"));
            assert_eq!(out, data, "{name}");
            assert!(!report.is_clean(), "{name} should have repaired something");
        }
    }

    #[test]
    fn table_printer_and_fmt() {
        print_table(
            "demo",
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1_234_567.0), "1.235e6");
        assert_eq!(fmt(f64::INFINITY), "inf");
    }

    #[test]
    fn scaling_schemes_are_the_four_paper_methods() {
        let schemes = scaling_schemes();
        assert_eq!(schemes.len(), 4);
        for (_, c) in &schemes {
            assert!(c.storage_overhead() > 0.0 && c.storage_overhead() < 1.0);
        }
    }
}
