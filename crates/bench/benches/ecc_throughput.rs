//! Criterion benches behind Figures 8–10: encode / error-free decode /
//! decode-with-correctable-errors throughput per ECC method.
//!
//! All three benches drive the zero-copy pipeline directly: encode
//! scatter-writes into a reused container buffer (`encode_into`), and both
//! decode benches repair in place (`decode_in_place`) — clean decodes reuse
//! the buffer unchanged, while the error bench restores the corrupted image
//! from a pristine copy before every iteration (in-place repair would
//! otherwise leave later iterations nothing to fix).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arc_bench::{inject_correctable, scaling_schemes};
use arc_ecc::parallel::DEFAULT_CHUNK_SIZE;
use arc_ecc::{EccConfig, ParallelCodec};

const PROBE_BYTES: usize = 4 << 20;
const RS_PROBE_BYTES: usize = 1 << 20;

fn probe(len: usize) -> Vec<u8> {
    (0..len).map(|i| ((i as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 29) as u8).collect()
}

fn thread_points() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    if max > 1 {
        vec![1, max]
    } else {
        vec![1]
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_encode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, config) in scaling_schemes() {
        let len = if name == "Reed-Solomon" { RS_PROBE_BYTES } else { PROBE_BYTES };
        let data = probe(len);
        group.throughput(Throughput::Bytes(len as u64));
        for threads in thread_points() {
            let codec = ParallelCodec::new(config, threads).expect("codec");
            let mut out = vec![0u8; codec.encoded_len(data.len())];
            group.bench_with_input(
                BenchmarkId::new(name, format!("{threads}t")),
                &codec,
                |b, codec| b.iter(|| codec.encode_into(&data, &mut out)),
            );
        }
    }
    group.finish();
}

fn bench_decode_clean(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_decode");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, config) in scaling_schemes() {
        let len = if name == "Reed-Solomon" { RS_PROBE_BYTES } else { PROBE_BYTES };
        let data = probe(len);
        group.throughput(Throughput::Bytes(len as u64));
        for threads in thread_points() {
            let codec = ParallelCodec::new(config, threads).expect("codec");
            let mut encoded = codec.encode(&data);
            group.bench_with_input(
                BenchmarkId::new(name, format!("{threads}t")),
                &codec,
                |b, codec| {
                    b.iter(|| {
                        codec.decode_in_place(&mut encoded, data.len()).expect("clean decode")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_decode_with_errors(c: &mut Criterion) {
    let mut group = c.benchmark_group("ecc_decode_errors");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    let threads = thread_points().pop().unwrap_or(1);
    for (name, config) in scaling_schemes() {
        if matches!(config, EccConfig::Parity(_)) {
            continue; // cannot correct
        }
        let len = if name == "Reed-Solomon" { RS_PROBE_BYTES } else { PROBE_BYTES };
        let data = probe(len);
        group.throughput(Throughput::Bytes(len as u64));
        for errors in [1usize, 1000] {
            let codec = ParallelCodec::new(config, threads).expect("codec");
            let mut corrupted = codec.encode(&data);
            let injected = inject_correctable(
                &mut corrupted,
                &config,
                DEFAULT_CHUNK_SIZE,
                data.len(),
                errors,
                42,
            );
            assert!(injected > 0);
            let mut scratch = vec![0u8; corrupted.len()];
            group.bench_with_input(
                BenchmarkId::new(name, format!("{errors}err")),
                &codec,
                |b, codec| {
                    b.iter(|| {
                        scratch.copy_from_slice(&corrupted);
                        codec.decode_in_place(&mut scratch, data.len()).expect("repairable decode")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode_clean, bench_decode_with_errors);
criterion_main!(benches);
