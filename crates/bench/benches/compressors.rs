//! Criterion benches for the compressor substrates: SZ-like and ZFP-like
//! compress/decompress on the CESM stand-in, plus the lossless pipelines.
//! (Context for §6.1's comparison: SZ/ZFP run below ~200 MB/s, which ARC's
//! ECC throughput comfortably exceeds.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arc_datasets::SdrDataset;
use arc_pressio::{CompressorSpec, Dataset};

fn bench_lossy(c: &mut Criterion) {
    let field = SdrDataset::CesmCldlow.generate(&[180, 360], 7);
    let ds = Dataset { data: &field.data, dims: &field.dims };
    let bytes = field.byte_len() as u64;
    let specs = [
        CompressorSpec::SzAbs(1e-3),
        CompressorSpec::SzPwRel(1e-2),
        CompressorSpec::SzPsnr(90.0),
        CompressorSpec::ZfpAcc(1e-3),
        CompressorSpec::ZfpRate(8.0),
    ];
    let mut group = c.benchmark_group("compress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(bytes));
    for spec in specs {
        let comp = spec.build();
        group.bench_with_input(BenchmarkId::from_parameter(spec.name()), &comp, |b, comp| {
            b.iter(|| comp.compress(&ds).expect("compress"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(bytes));
    for spec in specs {
        let comp = spec.build();
        let packed = comp.compress(&ds).expect("compress");
        group.bench_with_input(BenchmarkId::from_parameter(spec.name()), &comp, |b, comp| {
            b.iter(|| comp.decompress(&packed).expect("decompress"))
        });
    }
    group.finish();
}

fn bench_lossless(c: &mut Criterion) {
    let field = SdrDataset::CesmCldlow.generate(&[180, 360], 7);
    let raw: Vec<u8> = field.data.iter().flat_map(|x| x.to_le_bytes()).collect();
    let mut group = c.benchmark_group("lossless");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(raw.len() as u64));
    group.bench_function("deflate_like_compress", |b| {
        b.iter(|| arc_lossless::deflate::compress(&raw))
    });
    group.bench_function("zstd_like_compress", |b| {
        b.iter(|| arc_lossless::zstd_like::compress(&raw))
    });
    let packed = arc_lossless::zstd_like::compress(&raw);
    group.bench_function("zstd_like_decompress", |b| {
        b.iter(|| arc_lossless::zstd_like::decompress(&packed).expect("decompress"))
    });
    group.finish();
}

criterion_group!(benches, bench_lossy, bench_lossless);
criterion_main!(benches);
