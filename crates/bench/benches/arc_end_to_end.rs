//! Criterion bench: the whole ARC pipeline — compress a field with the
//! SZ-like codec, protect it through `arc_encode`, then `arc_decode` and
//! decompress. Also ablations called out in DESIGN.md §5: block width
//! (8 vs 64 bits) for Hamming/SEC-DED, and container-header protection
//! on/off (measured as raw codec vs full container).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use arc_core::{
    arc_engine_decode, arc_engine_encode, ArcContext, ArcOptions, EncodeRequest, TrainingOptions,
};
use arc_datasets::SdrDataset;
use arc_ecc::{EccConfig, ParallelCodec};
use arc_pressio::{CompressorSpec, Dataset};

fn payload() -> Vec<u8> {
    let field = SdrDataset::CesmCldlow.generate(&[180, 360], 3);
    let comp = CompressorSpec::SzAbs(1e-3).build();
    comp.compress(&Dataset { data: &field.data, dims: &field.dims }).expect("compress")
}

fn bench_arc_pipeline(c: &mut Criterion) {
    let data = payload();
    let ctx = ArcContext::init(ArcOptions {
        max_threads: 2,
        cache_path: None,
        training: TrainingOptions {
            sample_bytes: 64 << 10,
            rs_sample_bytes: 32 << 10,
            space: vec![EccConfig::secded(true), EccConfig::rs(223, 32).unwrap()],
        },
        ..Default::default()
    })
    .expect("arc_init");
    let mut group = c.benchmark_group("arc_end_to_end");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(data.len() as u64));
    group.bench_function("encode_default_request", |b| {
        b.iter(|| ctx.encode(&data, &EncodeRequest::default()).expect("encode"))
    });
    let (encoded, _) = ctx.encode(&data, &EncodeRequest::default()).expect("encode");
    group.bench_function("decode_clean", |b| b.iter(|| ctx.decode(&encoded).expect("decode")));
    group.finish();
}

fn bench_block_width_ablation(c: &mut Criterion) {
    let data = payload();
    let mut group = c.benchmark_group("ablation_block_width");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(data.len() as u64));
    for (label, config) in [
        ("hamming_w8", EccConfig::hamming(false)),
        ("hamming_w64", EccConfig::hamming(true)),
        ("secded_w8", EccConfig::secded(false)),
        ("secded_w64", EccConfig::secded(true)),
    ] {
        let codec = ParallelCodec::new(config, 2).expect("codec");
        group.bench_with_input(BenchmarkId::from_parameter(label), &codec, |b, codec| {
            b.iter(|| codec.encode(&data))
        });
    }
    group.finish();
}

fn bench_container_overhead_ablation(c: &mut Criterion) {
    let data = payload();
    let config = EccConfig::secded(true);
    let mut group = c.benchmark_group("ablation_container");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.throughput(Throughput::Bytes(data.len() as u64));
    // Raw codec: ECC only, no self-describing protected header.
    let codec = ParallelCodec::new(config, 2).expect("codec");
    group.bench_function("raw_codec_roundtrip", |b| {
        b.iter(|| {
            let enc = codec.encode(&data);
            codec.decode(&enc, data.len()).expect("decode")
        })
    });
    // Full container: triplicated length + RS-protected header ×2.
    group.bench_function("container_roundtrip", |b| {
        b.iter(|| {
            let enc = arc_engine_encode(&data, config, 2).expect("encode");
            arc_engine_decode(&enc, 2).expect("decode")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_arc_pipeline,
    bench_block_width_ablation,
    bench_container_overhead_ablation
);
criterion_main!(benches);
