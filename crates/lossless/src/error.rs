//! Error type for the lossless substrate.

use std::fmt;

/// Decode-side failures. Corrupted compressed data must surface as one of
//  these (mapping to the fault study's *Compressor Exception* class), never
/// as silent UB.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LosslessError {
    /// The stream ended before the declared content did.
    Truncated(String),
    /// The stream is structurally invalid (bad magic, impossible field,
    /// out-of-range back-reference, invalid Huffman table, …).
    Malformed(String),
    /// Decoding would exceed the caller's output budget (an inflated length
    /// field demanding more memory than the caller is willing to allocate).
    WorkBudgetExceeded {
        /// Output bytes the stream claims to need.
        demanded: u64,
        /// Output bytes the caller allowed.
        budget: u64,
    },
}

impl LosslessError {
    /// Construct a [`LosslessError::Truncated`].
    pub fn truncated(detail: impl Into<String>) -> Self {
        LosslessError::Truncated(detail.into())
    }

    /// Construct a [`LosslessError::Malformed`].
    pub fn malformed(detail: impl Into<String>) -> Self {
        LosslessError::Malformed(detail.into())
    }
}

impl fmt::Display for LosslessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LosslessError::Truncated(d) => write!(f, "truncated stream: {d}"),
            LosslessError::Malformed(d) => write!(f, "malformed stream: {d}"),
            LosslessError::WorkBudgetExceeded { demanded, budget } => {
                write!(f, "decode demands {demanded} output bytes, budget is {budget}")
            }
        }
    }
}

impl std::error::Error for LosslessError {}
