//! Canonical Huffman coding over arbitrary `u32` alphabets.
//!
//! SZ entropy-codes its quantization bins with a Huffman tree whose alphabet
//! can run to tens of thousands of symbols (§4.4 discusses how this final
//! encoding stage shapes error propagation); the deflate-like and zstd-like
//! pipelines reuse the same coder for literals and match tokens. Canonical
//! codes let the table be serialized as code *lengths* only.

use crate::bitio::{read_varint, write_varint, BitReader, BitWriter};
use crate::error::LosslessError;

/// Maximum admissible code length. Code lengths beyond this indicate either
/// a pathological distribution or stream corruption.
pub const MAX_CODE_LEN: u32 = 48;

/// A canonical Huffman code: one length per symbol (0 = unused symbol).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HuffmanCode {
    /// Code length per symbol index; `lengths.len()` is the alphabet size.
    lengths: Vec<u8>,
    /// Canonical codewords per symbol (valid where length > 0).
    codes: Vec<u64>,
}

impl HuffmanCode {
    /// Build an optimal prefix code from symbol frequencies.
    ///
    /// Symbols with zero frequency get no code. If only one distinct symbol
    /// occurs it receives a 1-bit code so the stream stays decodable.
    pub fn from_frequencies(freqs: &[u64]) -> Result<HuffmanCode, LosslessError> {
        let n = freqs.len();
        let mut lengths = vec![0u8; n];
        let used: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
        match used.len() {
            0 => return HuffmanCode::from_lengths(lengths),
            1 => {
                lengths[used[0]] = 1;
                return HuffmanCode::from_lengths(lengths);
            }
            _ => {}
        }
        // Heap-merge Huffman tree; nodes: (weight, tiebreak, id).
        #[derive(PartialEq, Eq)]
        struct Node {
            weight: u64,
            order: usize,
            id: usize,
        }
        impl Ord for Node {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse for min-heap; tiebreak on creation order for
                // determinism and balanced depth.
                other.weight.cmp(&self.weight).then(other.order.cmp(&self.order))
            }
        }
        impl PartialOrd for Node {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        let mut heap = std::collections::BinaryHeap::with_capacity(used.len());
        // parent[id] for tree nodes; leaves are ids 0..used.len().
        let mut parent: Vec<usize> = vec![usize::MAX; used.len()];
        for (order, &sym) in used.iter().enumerate() {
            heap.push(Node { weight: freqs[sym], order, id: order });
        }
        let mut next_order = used.len();
        while heap.len() > 1 {
            let (Some(a), Some(b)) = (heap.pop(), heap.pop()) else { break };
            let id = parent.len();
            parent.push(usize::MAX);
            parent[a.id] = id;
            parent[b.id] = id;
            heap.push(Node { weight: a.weight.saturating_add(b.weight), order: next_order, id });
            next_order += 1;
        }
        let Some(root_node) = heap.pop() else {
            return Err(LosslessError::malformed("huffman merge heap drained"));
        };
        let root = root_node.id;
        for (leaf, &sym) in used.iter().enumerate() {
            let mut depth = 0u32;
            let mut node = leaf;
            while node != root {
                node = parent[node];
                depth += 1;
            }
            if depth > MAX_CODE_LEN {
                return Err(LosslessError::malformed("huffman code length overflow"));
            }
            lengths[sym] = depth as u8;
        }
        HuffmanCode::from_lengths(lengths)
    }

    /// Build the canonical code from per-symbol lengths, validating the
    /// Kraft equality (a corrupted table must be rejected, not trusted).
    ///
    /// Over-subscribed tables (Kraft sum above 1) would assign duplicate
    /// codewords; under-subscribed tables (sum below 1) leave codewords that
    /// decode to nothing, so a flipped table byte could send the decoder into
    /// the "invalid codeword" dead zone with data the encoder never wrote.
    /// Both are rejected. The only admissible incomplete code is the
    /// degenerate single-symbol table (one symbol, length 1), which the
    /// encoder emits for constant streams.
    pub fn from_lengths(lengths: Vec<u8>) -> Result<HuffmanCode, LosslessError> {
        let max_len = lengths.iter().copied().max().unwrap_or(0) as u32;
        if max_len > MAX_CODE_LEN {
            return Err(LosslessError::malformed("huffman length exceeds maximum"));
        }
        // Kraft sum in units of 2^-max_len.
        if max_len > 0 {
            let mut kraft: u128 = 0;
            let mut coded = 0usize;
            for &l in &lengths {
                if l > 0 {
                    kraft += 1u128 << (max_len - l as u32);
                    coded += 1;
                }
            }
            if kraft > (1u128 << max_len) {
                return Err(LosslessError::malformed("huffman lengths violate Kraft inequality"));
            }
            let single_symbol = coded == 1 && max_len == 1;
            if kraft < (1u128 << max_len) && !single_symbol {
                return Err(LosslessError::malformed("huffman lengths are under-subscribed"));
            }
        }
        // Canonical assignment: sort by (length, symbol).
        let mut order: Vec<usize> = (0..lengths.len()).filter(|&i| lengths[i] > 0).collect();
        order.sort_by_key(|&i| (lengths[i], i));
        let mut codes = vec![0u64; lengths.len()];
        let mut code = 0u64;
        let mut prev_len = 0u32;
        for &sym in &order {
            let l = lengths[sym] as u32;
            code <<= l - prev_len;
            codes[sym] = code;
            code += 1;
            prev_len = l;
        }
        Ok(HuffmanCode { lengths, codes })
    }

    /// Build a Kraft-complete balanced code over the symbols with nonzero
    /// frequency, ignoring the frequency magnitudes.
    ///
    /// For `n` coded symbols and `L = ceil(log2 n)`, the first `2^L - n`
    /// symbols get length `L-1` and the rest length `L`, which sums Kraft to
    /// exactly one. Used as the fallback when the optimal tree of
    /// [`HuffmanCode::from_frequencies`] would exceed [`MAX_CODE_LEN`]
    /// (requires Fibonacci-scale skew, ~2^48 total count) so encoders never
    /// have to fail.
    pub fn balanced(freqs: &[u64]) -> Result<HuffmanCode, LosslessError> {
        let mut lengths = vec![0u8; freqs.len()];
        let used: Vec<usize> = (0..freqs.len()).filter(|&i| freqs[i] > 0).collect();
        match used.len() {
            0 => {}
            1 => lengths[used[0]] = 1,
            n => {
                let l = usize::BITS - (n - 1).leading_zeros();
                let short = (1usize << l) - n;
                for (i, &sym) in used.iter().enumerate() {
                    lengths[sym] = if i < short { (l - 1) as u8 } else { l as u8 };
                }
            }
        }
        HuffmanCode::from_lengths(lengths)
    }

    /// Optimal code when its depth fits [`MAX_CODE_LEN`], otherwise the
    /// [`HuffmanCode::balanced`] complete code. Total for every admissible
    /// alphabet (≤ 2^24 symbols), so encode paths need no error branch.
    pub fn code_for_frequencies(freqs: &[u64]) -> HuffmanCode {
        HuffmanCode::from_frequencies(freqs)
            .or_else(|_| HuffmanCode::balanced(freqs))
            .unwrap_or_else(|_| HuffmanCode { lengths: Vec::new(), codes: Vec::new() })
    }

    /// Alphabet size (including unused symbols).
    pub fn alphabet_size(&self) -> usize {
        self.lengths.len()
    }

    /// Code length of `symbol` (0 = unused).
    pub fn length_of(&self, symbol: u32) -> u8 {
        self.lengths.get(symbol as usize).copied().unwrap_or(0)
    }

    /// Write `symbol`'s codeword to `out`.
    ///
    /// # Panics
    /// Panics (debug) if the symbol has no code; encoding a symbol that was
    /// absent from the frequency table is a programming error.
    #[inline]
    pub fn encode_symbol(&self, symbol: u32, out: &mut BitWriter) {
        let l = self.lengths[symbol as usize];
        debug_assert!(l > 0, "symbol {symbol} has no code");
        out.write_bits(self.codes[symbol as usize], l as u32);
    }

    /// Serialize the table (alphabet size + sparse nonzero lengths).
    pub fn serialize(&self, out: &mut Vec<u8>) {
        write_varint(out, self.lengths.len() as u64);
        let nonzero: Vec<usize> =
            (0..self.lengths.len()).filter(|&i| self.lengths[i] > 0).collect();
        write_varint(out, nonzero.len() as u64);
        let mut prev = 0u64;
        for &i in &nonzero {
            write_varint(out, i as u64 - prev);
            out.push(self.lengths[i]);
            prev = i as u64;
        }
    }

    /// Parse a table serialized by [`HuffmanCode::serialize`].
    pub fn deserialize(bytes: &[u8], pos: &mut usize) -> Result<HuffmanCode, LosslessError> {
        let alphabet = read_varint(bytes, pos)?;
        if alphabet > 1 << 24 {
            return Err(LosslessError::malformed("huffman alphabet implausibly large"));
        }
        let count = read_varint(bytes, pos)?;
        if count > alphabet {
            return Err(LosslessError::malformed("more coded symbols than alphabet"));
        }
        // arc-lint: bounded(alphabet <= 1 << 24 checked above)
        let mut lengths = vec![0u8; alphabet as usize];
        let mut sym = 0u64;
        for i in 0..count {
            let delta = read_varint(bytes, pos)?;
            sym = if i == 0 {
                delta
            } else {
                sym.checked_add(delta)
                    .ok_or_else(|| LosslessError::malformed("symbol index overflow"))?
            };
            if sym >= alphabet {
                return Err(LosslessError::malformed("symbol index out of alphabet"));
            }
            let l = *bytes.get(*pos).ok_or_else(|| LosslessError::truncated("huffman table"))?;
            *pos += 1;
            if l == 0 {
                return Err(LosslessError::malformed("zero length in nonzero table"));
            }
            lengths[sym as usize] = l;
        }
        HuffmanCode::from_lengths(lengths)
    }

    /// Build a decoder for this code.
    pub fn decoder(&self) -> HuffmanDecoder {
        let max_len = self.lengths.iter().copied().max().unwrap_or(0) as u32;
        // first_code[l], first_index[l]: canonical decoding tables.
        // arc-lint: bounded(max_len <= MAX_CODE_LEN enforced by from_lengths)
        let mut count = vec![0u64; (max_len + 1) as usize];
        for &l in &self.lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        let mut symbols_by_len: Vec<u32> =
            (0..self.lengths.len() as u32).filter(|&s| self.lengths[s as usize] > 0).collect();
        symbols_by_len.sort_by_key(|&s| (self.lengths[s as usize], s));
        // arc-lint: bounded(max_len <= MAX_CODE_LEN enforced by from_lengths)
        let mut first_code = vec![0u64; (max_len + 2) as usize];
        // arc-lint: bounded(max_len <= MAX_CODE_LEN enforced by from_lengths)
        let mut first_index = vec![0u64; (max_len + 2) as usize];
        let mut code = 0u64;
        let mut index = 0u64;
        for l in 1..=max_len {
            first_code[l as usize] = code;
            first_index[l as usize] = index;
            code = (code + count[l as usize]) << 1;
            index += count[l as usize];
        }
        HuffmanDecoder { max_len, count, first_code, first_index, symbols_by_len }
    }
}

/// Canonical Huffman decoder (per-length first-code tables).
#[derive(Debug, Clone)]
pub struct HuffmanDecoder {
    max_len: u32,
    count: Vec<u64>,
    first_code: Vec<u64>,
    first_index: Vec<u64>,
    symbols_by_len: Vec<u32>,
}

impl HuffmanDecoder {
    /// Decode one symbol from the reader.
    pub fn decode_symbol(&self, r: &mut BitReader<'_>) -> Result<u32, LosslessError> {
        if self.max_len == 0 {
            return Err(LosslessError::malformed("decode from empty huffman code"));
        }
        let mut code = 0u64;
        for l in 1..=self.max_len {
            code = (code << 1) | r.read_bit()? as u64;
            let c = self.count[l as usize];
            if c > 0 && code < self.first_code[l as usize] + c {
                let offset = code - self.first_code[l as usize];
                let idx = self.first_index[l as usize] + offset;
                return Ok(self.symbols_by_len[idx as usize]);
            }
        }
        Err(LosslessError::malformed("invalid huffman codeword"))
    }
}

/// Encode a symbol slice as `serialized table ‖ varint count ‖ bitstream`.
pub fn huffman_encode_block(symbols: &[u32], alphabet: usize) -> Result<Vec<u8>, LosslessError> {
    let mut freqs = vec![0u64; alphabet];
    for &s in symbols {
        *freqs
            .get_mut(s as usize)
            .ok_or_else(|| LosslessError::malformed("symbol outside alphabet"))? += 1;
    }
    let code = HuffmanCode::code_for_frequencies(&freqs);
    let mut out = Vec::new();
    code.serialize(&mut out);
    write_varint(&mut out, symbols.len() as u64);
    let mut bits = BitWriter::new();
    for &s in symbols {
        code.encode_symbol(s, &mut bits);
    }
    let payload = bits.into_bytes();
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Decode a block produced by [`huffman_encode_block`], advancing `pos`.
pub fn huffman_decode_block(bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, LosslessError> {
    let code = HuffmanCode::deserialize(bytes, pos)?;
    let n = read_varint(bytes, pos)? as usize;
    if n > 1 << 31 {
        return Err(LosslessError::malformed("implausible symbol count"));
    }
    let payload_len = read_varint(bytes, pos)? as usize;
    let end = pos
        .checked_add(payload_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| LosslessError::truncated("huffman payload"))?;
    let payload = &bytes[*pos..end];
    *pos = end;
    let decoder = code.decoder();
    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        out.push(decoder.decode_symbol(&mut r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(symbols: &[u32], alphabet: usize) {
        let enc = huffman_encode_block(symbols, alphabet).unwrap();
        let mut pos = 0;
        let dec = huffman_decode_block(&enc, &mut pos).unwrap();
        assert_eq!(dec, symbols);
        assert_eq!(pos, enc.len());
    }

    #[test]
    fn skewed_distribution_round_trip() {
        let mut syms = Vec::new();
        for i in 0..2000u32 {
            syms.push(if i % 10 == 0 { i % 50 } else { 7 });
        }
        round_trip(&syms, 64);
    }

    #[test]
    fn single_symbol_stream() {
        round_trip(&[5u32; 100], 16);
    }

    #[test]
    fn empty_stream() {
        round_trip(&[], 16);
    }

    #[test]
    fn uniform_large_alphabet() {
        let syms: Vec<u32> = (0..5000).map(|i| (i * 37) % 1024).collect();
        round_trip(&syms, 1024);
    }

    #[test]
    fn skewed_code_is_shorter_than_uniform() {
        let skewed: Vec<u32> =
            (0..4096).map(|i| if i % 100 == 0 { (i / 100) % 256 } else { 0 }).collect();
        let uniform: Vec<u32> = (0..4096u32).map(|i| i % 256).collect();
        let a = huffman_encode_block(&skewed, 256).unwrap();
        let b = huffman_encode_block(&uniform, 256).unwrap();
        assert!(a.len() < b.len(), "{} vs {}", a.len(), b.len());
    }

    #[test]
    fn optimality_against_entropy_bound() {
        // Coded size must be within one bit per symbol of the entropy bound.
        let mut syms = Vec::new();
        for (s, n) in [(0u32, 500usize), (1, 250), (2, 125), (3, 125)] {
            syms.extend(std::iter::repeat_n(s, n));
        }
        let mut freqs = vec![0u64; 4];
        for &s in &syms {
            freqs[s as usize] += 1;
        }
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        let total_bits: u64 = syms.iter().map(|&s| code.length_of(s) as u64).sum();
        let n = syms.len() as f64;
        let entropy: f64 = freqs
            .iter()
            .filter(|&&f| f > 0)
            .map(|&f| {
                let p = f as f64 / n;
                -p * p.log2()
            })
            .sum();
        assert!(total_bits as f64 <= n * (entropy + 1.0));
        // This particular distribution is dyadic: exactly optimal.
        assert_eq!(total_bits as f64, n * entropy);
    }

    #[test]
    fn rejects_symbol_outside_alphabet() {
        assert!(huffman_encode_block(&[10], 5).is_err());
    }

    #[test]
    fn deserialize_rejects_corrupt_tables() {
        let enc = huffman_encode_block(&[1u32, 2, 3, 1, 2, 1], 8).unwrap();
        // Flip every byte in the table region and require a decode failure
        // or a wrong-but-delivered result; never a panic.
        for i in 0..enc.len().min(8) {
            let mut bad = enc.clone();
            bad[i] ^= 0xFF;
            let mut pos = 0;
            let _ = huffman_decode_block(&bad, &mut pos);
        }
    }

    #[test]
    fn kraft_violation_rejected() {
        // Three symbols of length 1 violates Kraft.
        assert!(HuffmanCode::from_lengths(vec![1, 1, 1]).is_err());
        assert!(HuffmanCode::from_lengths(vec![1, 2, 2]).is_ok());
    }

    #[test]
    fn under_subscribed_table_rejected() {
        // A lone length-2 symbol leaves three of four codewords undefined: a
        // corrupted table, not a legal canonical code.
        assert!(HuffmanCode::from_lengths(vec![2, 0, 0]).is_err());
        // Two length-2 symbols cover only half the code space.
        assert!(HuffmanCode::from_lengths(vec![2, 2, 0]).is_err());
        // The degenerate single-symbol code (length 1) stays legal: the
        // encoder emits it for constant streams.
        assert!(HuffmanCode::from_lengths(vec![0, 1, 0]).is_ok());
        // Empty table is legal (empty stream).
        assert!(HuffmanCode::from_lengths(vec![0, 0, 0]).is_ok());
    }

    #[test]
    fn crafted_bad_table_rejected_at_deserialize() {
        // Serialize a valid code, then shrink one stored length so the table
        // arrives under-subscribed; deserialize must reject it.
        let code = HuffmanCode::from_lengths(vec![1, 2, 2]).unwrap();
        let mut bytes = Vec::new();
        code.serialize(&mut bytes);
        // Layout: alphabet, count, then (delta, len) pairs; the first length
        // byte sits at offset 3. Dropping 1→2 leaves 2,2,2: under-subscribed.
        assert_eq!(bytes[3], 1);
        bytes[3] = 2;
        let mut pos = 0;
        assert!(HuffmanCode::deserialize(&bytes, &mut pos).is_err());
    }

    #[test]
    fn balanced_code_is_complete_and_decodable() {
        let freqs: Vec<u64> = (0..37).map(|i| u64::from(i % 5 != 0)).collect();
        let code = HuffmanCode::balanced(&freqs).unwrap();
        let mut bits = BitWriter::new();
        let syms: Vec<u32> = (0..37).filter(|i| i % 5 != 0).collect();
        for &s in &syms {
            code.encode_symbol(s, &mut bits);
        }
        let bytes = bits.into_bytes();
        let dec = code.decoder();
        let mut r = BitReader::new(&bytes);
        for &s in &syms {
            assert_eq!(dec.decode_symbol(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn truncated_payload_errors() {
        let enc = huffman_encode_block(&(0..100u32).map(|i| i % 7).collect::<Vec<_>>(), 8).unwrap();
        let mut pos = 0;
        assert!(huffman_decode_block(&enc[..enc.len() - 3], &mut pos).is_err());
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let freqs: Vec<u64> = (1..=40).map(|i| i * i).collect();
        let code = HuffmanCode::from_frequencies(&freqs).unwrap();
        for a in 0..40u32 {
            for b in 0..40u32 {
                if a == b {
                    continue;
                }
                let (la, lb) = (code.length_of(a) as u32, code.length_of(b) as u32);
                if la == 0 || lb == 0 || la > lb {
                    continue;
                }
                let ca = code.codes[a as usize];
                let cb = code.codes[b as usize];
                assert_ne!(ca, cb >> (lb - la), "code {a} is a prefix of {b}");
            }
        }
    }

    #[test]
    fn two_symbol_alphabet_uses_one_bit() {
        let code = HuffmanCode::from_frequencies(&[10, 90]).unwrap();
        assert_eq!(code.length_of(0), 1);
        assert_eq!(code.length_of(1), 1);
    }
}
