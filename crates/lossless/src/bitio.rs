//! Bit-granular stream I/O for entropy coders.
//!
//! Compression streams (Huffman codes, ZFP bit planes) need MSB-first,
//! variable-width reads and writes. The writer accumulates into a byte
//! vector; the reader tracks an explicit bit cursor and returns structured
//! errors on exhaustion — a corrupted length field must surface as a decode
//! error (the paper's *Compressor Exception* outcome), never as UB.

use crate::error::LosslessError;

/// MSB-first bit writer.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    bytes: Vec<u8>,
    /// Bits used in the final byte (0..8); 0 means byte-aligned.
    partial: u32,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append the low `n` bits of `value`, most-significant bit first.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn write_bits(&mut self, value: u64, n: u32) {
        assert!(n <= 64, "write_bits supports at most 64 bits");
        for i in (0..n).rev() {
            let bit = (value >> i) & 1;
            if self.partial == 0 {
                self.bytes.push(0);
            }
            if let Some(last) = self.bytes.last_mut() {
                *last |= (bit as u8) << (7 - self.partial);
            }
            self.partial = (self.partial + 1) % 8;
        }
    }

    /// Append a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.write_bits(bit as u64, 1);
    }

    /// Pad to a byte boundary with zero bits.
    pub fn align_byte(&mut self) {
        self.partial = 0;
    }

    /// Total bits written.
    pub fn bit_len(&self) -> u64 {
        let full = self.bytes.len() as u64 * 8;
        if self.partial == 0 {
            full
        } else {
            full - (8 - self.partial as u64)
        }
    }

    /// Finish, returning the backing bytes (final byte zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }
}

/// MSB-first bit reader over a byte slice.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: u64,
}

impl<'a> BitReader<'a> {
    /// Wrap a slice; reading starts at bit 0 of byte 0.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader { bytes, pos: 0 }
    }

    /// Bits remaining.
    pub fn remaining(&self) -> u64 {
        self.bytes.len() as u64 * 8 - self.pos
    }

    /// Current cursor position in bits.
    pub fn bit_pos(&self) -> u64 {
        self.pos
    }

    /// Read one bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool, LosslessError> {
        if self.pos >= self.bytes.len() as u64 * 8 {
            return Err(LosslessError::truncated("bit stream exhausted"));
        }
        let byte = self.bytes[(self.pos / 8) as usize];
        let bit = (byte >> (7 - (self.pos % 8))) & 1 == 1;
        self.pos += 1;
        Ok(bit)
    }

    /// Read `n` bits MSB-first into the low bits of the result.
    ///
    /// # Panics
    /// Panics if `n > 64`.
    pub fn read_bits(&mut self, n: u32) -> Result<u64, LosslessError> {
        assert!(n <= 64);
        if self.remaining() < n as u64 {
            return Err(LosslessError::truncated("bit stream exhausted"));
        }
        let mut v = 0u64;
        for _ in 0..n {
            let byte = self.bytes[(self.pos / 8) as usize];
            let bit = (byte >> (7 - (self.pos % 8))) & 1;
            v = (v << 1) | bit as u64;
            self.pos += 1;
        }
        Ok(v)
    }

    /// Skip to the next byte boundary.
    pub fn align_byte(&mut self) {
        self.pos = self.pos.div_ceil(8) * 8;
    }
}

/// LEB128-style unsigned varint encoding, used by stream headers.
pub fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            break;
        }
        out.push(byte | 0x80);
    }
}

/// Decode a varint, advancing `pos`. Fails on truncation or overlong values.
pub fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u64, LosslessError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *bytes.get(*pos).ok_or_else(|| LosslessError::truncated("varint truncated"))?;
        *pos += 1;
        if shift >= 64 {
            return Err(LosslessError::malformed("varint too long"));
        }
        if shift == 63 && (b & 0x7E) != 0 {
            return Err(LosslessError::malformed("varint overflows u64"));
        }
        v |= ((b & 0x7F) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// ZigZag mapping of signed to unsigned integers for varint coding.
#[inline]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_round_trip() {
        let mut w = BitWriter::new();
        let fields: &[(u64, u32)] = &[(0b1, 1), (0b0, 1), (0xDEADBEEF, 32), (0x3FF, 10), (0, 7)];
        for &(v, n) in fields {
            w.write_bits(v, n);
        }
        let total: u32 = fields.iter().map(|f| f.1).sum();
        assert_eq!(w.bit_len(), total as u64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in fields {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }

    #[test]
    fn msb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1010_0000]);
    }

    #[test]
    fn align_byte_pads_with_zeros() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        w.align_byte();
        w.write_bits(0xFF, 8);
        let bytes = w.into_bytes();
        assert_eq!(bytes, vec![0b1100_0000, 0xFF]);
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        r.align_byte();
        assert_eq!(r.read_bits(8).unwrap(), 0xFF);
    }

    #[test]
    fn reader_errors_on_exhaustion() {
        let bytes = [0xAB];
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bits(8).is_ok());
        assert!(r.read_bit().is_err());
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn varint_round_trip() {
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn varint_rejects_truncation_and_overflow() {
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x80], &mut pos).is_err());
        let overlong = [0xFF; 11];
        let mut pos = 0;
        assert!(read_varint(&overlong, &mut pos).is_err());
    }

    #[test]
    fn zigzag_round_trip() {
        for v in [-5i64, -1, 0, 1, 5, i64::MAX, i64::MIN, 123456789, -987654321] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }
}
