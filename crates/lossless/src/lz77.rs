//! LZ77 match finding with hash chains.
//!
//! Both the deflate-like and zstd-like pipelines factor repeated byte ranges
//! through this tokenizer. It mirrors zlib's design: a rolling 4-byte hash
//! indexes chain heads, chains are walked up to a configurable depth, and
//! greedy matching with a one-step lazy evaluation picks the final tokens.

use crate::error::LosslessError;

/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 4;
/// Maximum match length a token can carry.
pub const MAX_MATCH: usize = 258;
/// Sliding window (maximum back-reference distance).
pub const WINDOW: usize = 1 << 16;

/// One LZ77 token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A single literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes behind.
    Match {
        /// Copy length, `MIN_MATCH..=MAX_MATCH`.
        len: u32,
        /// Distance back into already-produced output, `1..=WINDOW`.
        dist: u32,
    },
}

/// Tokenizer tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct Lz77Config {
    /// Maximum hash-chain links walked per position (compression effort).
    pub max_chain: usize,
    /// Stop searching early once a match at least this long is found.
    pub good_enough: usize,
}

impl Default for Lz77Config {
    fn default() -> Self {
        Lz77Config { max_chain: 64, good_enough: 96 }
    }
}

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    (v.wrapping_mul(2654435761) >> 17) as usize & (HASH_SIZE - 1)
}

const HASH_SIZE: usize = 1 << 15;

/// Greedily tokenize `data` into literals and matches.
pub fn tokenize(data: &[u8], cfg: &Lz77Config) -> Vec<Token> {
    let n = data.len();
    let mut tokens = Vec::with_capacity(n / 4 + 16);
    if n < MIN_MATCH + 1 {
        tokens.extend(data.iter().map(|&b| Token::Literal(b)));
        return tokens;
    }
    let mut head = vec![usize::MAX; HASH_SIZE];
    let mut prev = vec![usize::MAX; n];
    let find = |head: &[usize], prev: &[usize], i: usize| -> Option<(usize, usize)> {
        let max_len = (n - i).min(MAX_MATCH);
        if max_len < MIN_MATCH {
            return None;
        }
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut cand = head[hash4(data, i)];
        let mut chain = cfg.max_chain;
        while cand != usize::MAX && chain > 0 {
            if i - cand > WINDOW {
                break;
            }
            // Quick reject on the byte past the current best.
            if best_dist == 0 || data[cand + best_len] == data[i + best_len] {
                let mut l = 0usize;
                while l < max_len && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = i - cand;
                    if l >= cfg.good_enough || l == max_len {
                        break;
                    }
                }
            }
            cand = prev[cand];
            chain -= 1;
        }
        (best_dist > 0).then_some((best_len, best_dist))
    };
    let mut i = 0usize;
    let insert = |head: &mut [usize], prev: &mut [usize], i: usize| {
        if i + MIN_MATCH <= n {
            let h = hash4(data, i);
            prev[i] = head[h];
            head[h] = i;
        }
    };
    while i < n {
        let m = find(&head, &prev, i);
        match m {
            Some((len, dist)) => {
                // Lazy evaluation: prefer a longer match starting one byte on.
                insert(&mut head, &mut prev, i);
                let take = i + 1 >= n
                    || !matches!(find(&head, &prev, i + 1), Some((len2, _)) if len2 > len + 1);
                if take {
                    tokens.push(Token::Match { len: len as u32, dist: dist as u32 });
                    for j in i + 1..i + len {
                        insert(&mut head, &mut prev, j);
                    }
                    i += len;
                } else {
                    tokens.push(Token::Literal(data[i]));
                    i += 1;
                }
            }
            None => {
                insert(&mut head, &mut prev, i);
                tokens.push(Token::Literal(data[i]));
                i += 1;
            }
        }
    }
    tokens
}

/// Rebuild bytes from tokens. Validates every back-reference; corrupted
/// distances surface as [`LosslessError::Malformed`].
pub fn reconstruct(tokens: &[Token]) -> Result<Vec<u8>, LosslessError> {
    let mut out = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(LosslessError::malformed(format!(
                        "back-reference distance {dist} at output length {}",
                        out.len()
                    )));
                }
                if len > MAX_MATCH {
                    return Err(LosslessError::malformed("match length out of range"));
                }
                let start = out.len() - dist;
                // Overlapping copies are legal (RLE idiom): copy byte-wise.
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<Token> {
        let tokens = tokenize(data, &Lz77Config::default());
        assert_eq!(reconstruct(&tokens).unwrap(), data);
        tokens
    }

    #[test]
    fn empty_and_tiny_inputs() {
        round_trip(b"");
        round_trip(b"a");
        round_trip(b"abc");
        round_trip(b"abcd");
    }

    #[test]
    fn repeated_text_compresses_to_matches() {
        let data = b"the quick brown fox jumps over the lazy dog. the quick brown fox!".to_vec();
        let tokens = round_trip(&data);
        assert!(
            tokens.iter().any(|t| matches!(t, Token::Match { .. })),
            "expected at least one match"
        );
    }

    #[test]
    fn rle_overlapping_match() {
        let data = vec![7u8; 1000];
        let tokens = round_trip(&data);
        // A long run should collapse to a handful of tokens.
        assert!(tokens.len() < 20, "{} tokens", tokens.len());
    }

    #[test]
    fn incompressible_data_is_all_literals() {
        // Pseudo-random bytes with no 4-byte repeats.
        let data: Vec<u8> =
            (0..2000u64).map(|i| ((i.wrapping_mul(0x9E3779B97F4A7C15)) >> 56) as u8).collect();
        let tokens = tokenize(&data, &Lz77Config::default());
        assert_eq!(reconstruct(&tokens).unwrap(), data);
    }

    #[test]
    fn long_periodic_input() {
        let data: Vec<u8> = (0..100_000).map(|i| ((i % 97) as u8).wrapping_mul(3)).collect();
        let tokens = round_trip(&data);
        let matches = tokens.iter().filter(|t| matches!(t, Token::Match { .. })).count();
        assert!(matches > 100);
    }

    #[test]
    fn match_lengths_respect_bounds() {
        let data = vec![0xAAu8; 10_000];
        for t in tokenize(&data, &Lz77Config::default()) {
            if let Token::Match { len, dist } = t {
                assert!((MIN_MATCH..=MAX_MATCH).contains(&(len as usize)));
                assert!((1..=WINDOW).contains(&(dist as usize)));
            }
        }
    }

    #[test]
    fn reconstruct_rejects_bad_distance() {
        let tokens = [Token::Literal(1), Token::Match { len: 4, dist: 5 }];
        assert!(reconstruct(&tokens).is_err());
        let tokens = [Token::Match { len: 4, dist: 1 }];
        assert!(reconstruct(&tokens).is_err());
    }

    #[test]
    fn reconstruct_rejects_oversized_length() {
        let tokens = [Token::Literal(1), Token::Match { len: 9999, dist: 1 }];
        assert!(reconstruct(&tokens).is_err());
    }

    #[test]
    fn shallow_chain_still_correct() {
        let cfg = Lz77Config { max_chain: 1, good_enough: 8 };
        let data: Vec<u8> = (0..50_000).map(|i| ((i / 3) % 251) as u8).collect();
        let tokens = tokenize(&data, &cfg);
        assert_eq!(reconstruct(&tokens).unwrap(), data);
    }
}
