//! # arc-lossless — lossless compression substrate
//!
//! From-scratch lossless building blocks standing in for the GZip and ZStd
//! dependencies of the paper's stack (§2.1, §4.4): bit-granular stream I/O,
//! canonical Huffman coding, LZ77 match finding, and two complete pipelines —
//! a DEFLATE-like ("GZip-like") interleaved format and a ZStd-like sectioned
//! format that serves as SZ's final compression stage.
//!
//! ```
//! let data = b"HPC floating-point data ".repeat(64);
//! let packed = arc_lossless::zstd_like::compress(&data);
//! assert!(packed.len() < data.len());
//! assert_eq!(arc_lossless::zstd_like::decompress(&packed).unwrap(), data);
//! ```

#![warn(missing_docs)]

pub mod bitio;
pub mod deflate;
pub mod error;
pub mod huffman;
pub mod lz77;
pub mod zstd_like;

pub use error::LosslessError;
