//! A ZStd-style pipeline: LZ77 with sectioned literal / sequence streams.
//!
//! SZ's final lossless pass is ZStd (§4.4: "ZStd starts with a dictionary
//! matching stage … before performing finite-state entropy encoding and
//! Huffman encoding"). This module reproduces that *structure*: literals are
//! gathered into one entropy-coded section and match commands into another,
//! so a bit flip near the stream head disturbs the tables every later symbol
//! depends on — the exact mechanism behind the paper's finding that early
//! bits corrupt the most elements (Fig 4).
//!
//! Frame layout:
//! `magic "AZST" ‖ varint orig_len ‖ literals (huffman block) ‖
//!  varint n_sequences ‖ sequence block (huffman-coded command stream)`
//!
//! Each sequence is `(literal_run, match_len, match_dist)`; the command
//! stream huffman-codes bucketized values with raw extra bits, sharing the
//! bucket tables with the deflate-like pipeline's philosophy.

use crate::bitio::{read_varint, write_varint, BitReader, BitWriter};
use crate::error::LosslessError;
use crate::huffman::{huffman_decode_block, huffman_encode_block, HuffmanCode};
use crate::lz77::{tokenize, Lz77Config, Token, MAX_MATCH, WINDOW};

const MAGIC: &[u8; 4] = b"AZST";

/// A parsed LZ sequence: run of literals, then one match (the final
/// sequence's match may be absent, encoded as `match_len == 0`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Sequence {
    lit_run: u32,
    match_len: u32,
    match_dist: u32,
}

/// Bucket a value into (log2 bucket, extra bits payload, extra bit count).
#[inline]
fn log_bucket(v: u32) -> (u32, u32, u32) {
    debug_assert!(v > 0);
    let bucket = 31 - v.leading_zeros();
    let extra = v - (1 << bucket);
    (bucket, extra, bucket)
}

#[inline]
fn unlog_bucket(bucket: u32, extra: u32) -> Result<u32, LosslessError> {
    if bucket >= 31 {
        return Err(LosslessError::malformed("log bucket out of range"));
    }
    if bucket > 0 && extra >= (1 << bucket) {
        return Err(LosslessError::malformed("log-bucket extra bits out of range"));
    }
    Ok((1 << bucket) + extra)
}

/// Compress `data` with the zstd-like pipeline.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, &Lz77Config::default())
}

/// Compress with explicit LZ77 tuning.
pub fn compress_with(data: &[u8], cfg: &Lz77Config) -> Vec<u8> {
    let tokens = tokenize(data, cfg);
    // Split tokens into a literal byte stream plus sequences.
    let mut literals = Vec::new();
    let mut sequences = Vec::new();
    let mut run = 0u32;
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                literals.push(b as u32);
                run += 1;
            }
            Token::Match { len, dist } => {
                sequences.push(Sequence { lit_run: run, match_len: len, match_dist: dist });
                run = 0;
            }
        }
    }
    if run > 0 {
        sequences.push(Sequence { lit_run: run, match_len: 0, match_dist: 0 });
    }
    // Command alphabet: 32 lit-run buckets ‖ 32 len buckets ‖ 32 dist buckets.
    let mut freq = vec![0u64; 96];
    let mut plan: Vec<(u32, u32, u32)> = Vec::new(); // (symbol, extra, extra_bits)
    for s in &sequences {
        let (b, x, nb) = log_bucket(s.lit_run + 1); // +1 so zero runs encode
        plan.push((b, x, nb));
        let (b2, x2, nb2) = log_bucket(s.match_len + 1);
        plan.push((32 + b2, x2, nb2));
        let (b3, x3, nb3) = log_bucket(s.match_dist + 1);
        plan.push((64 + b3, x3, nb3));
    }
    for &(sym, _, _) in &plan {
        freq[sym as usize] += 1;
    }
    let code = HuffmanCode::code_for_frequencies(&freq);
    let mut bits = BitWriter::new();
    for &(sym, extra, nb) in &plan {
        code.encode_symbol(sym, &mut bits);
        bits.write_bits(extra as u64, nb);
    }
    let seq_payload = bits.into_bytes();

    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, data.len() as u64);
    // Literals are bytes (< 256), so the alphabet check cannot fire; an
    // empty block decodes as zero literals, which the decoder zero-pads.
    let lit_block = huffman_encode_block(&literals, 256).unwrap_or_default();
    write_varint(&mut out, lit_block.len() as u64);
    out.extend_from_slice(&lit_block);
    write_varint(&mut out, sequences.len() as u64);
    code.serialize(&mut out);
    write_varint(&mut out, seq_payload.len() as u64);
    out.extend_from_slice(&seq_payload);
    out
}

/// Default decode output budget: a corrupted length field may not demand
/// more than this many bytes (callers with tighter limits use
/// [`decompress_with_limit`]).
pub const DEFAULT_MAX_OUTPUT: u64 = 1 << 31;

/// Decompress a frame produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, LosslessError> {
    decompress_with_limit(bytes, DEFAULT_MAX_OUTPUT)
}

/// Decompress with an explicit output-byte budget: a declared length above
/// `max_output` is rejected as [`LosslessError::WorkBudgetExceeded`] before
/// the output vector (which is resized to the declared length) is touched.
pub fn decompress_with_limit(bytes: &[u8], max_output: u64) -> Result<Vec<u8>, LosslessError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(LosslessError::malformed("bad zstd-like magic"));
    }
    let mut pos = 4usize;
    let declared = read_varint(bytes, &mut pos)?;
    if declared > max_output.min(1 << 31) {
        return Err(LosslessError::WorkBudgetExceeded {
            demanded: declared,
            budget: max_output.min(1 << 31),
        });
    }
    let orig_len = declared as usize;
    let lit_len = read_varint(bytes, &mut pos)? as usize;
    let lit_end = pos
        .checked_add(lit_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| LosslessError::truncated("literal section"))?;
    let mut lit_pos = pos;
    let literals = huffman_decode_block(bytes, &mut lit_pos)?;
    if lit_pos > lit_end {
        return Err(LosslessError::malformed("literal section overruns its length"));
    }
    pos = lit_end;
    let n_seq = read_varint(bytes, &mut pos)? as usize;
    if n_seq > orig_len + 1 {
        return Err(LosslessError::malformed("implausible sequence count"));
    }
    let code = HuffmanCode::deserialize(bytes, &mut pos)?;
    if code.alphabet_size() != 96 {
        return Err(LosslessError::malformed("unexpected command alphabet"));
    }
    let seq_len = read_varint(bytes, &mut pos)? as usize;
    let seq_end = pos
        .checked_add(seq_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| LosslessError::truncated("sequence section"))?;
    let decoder = code.decoder();
    let mut r = BitReader::new(&bytes[pos..seq_end]);
    // Permissive value reader: like real ZStd (whose interleaved FSE
    // streams happily decode corrupted bits into *some* value), a flipped
    // bit yields a wrong value, not an exception. Class mismatches are
    // reinterpreted within the expected class; an exhausted bitstream
    // yields zeros. This is what lets most of the paper's fault-injection
    // trials "Complete" with silent corruption (§4.2).
    let read_value = |r: &mut BitReader<'_>| -> u32 {
        let Ok(sym) = decoder.decode_symbol(r) else { return 0 };
        let bucket = sym % 32;
        let extra = r.read_bits(bucket.min(31)).unwrap_or(0) as u32;
        unlog_bucket(bucket, extra).map(|v| v - 1).unwrap_or(0)
    };
    let mut out = Vec::with_capacity(orig_len.min(1 << 26));
    let mut lit_cursor = 0usize;
    for _ in 0..n_seq {
        let lit_run = read_value(&mut r) as usize;
        let match_len = read_value(&mut r) as usize;
        let match_dist = read_value(&mut r) as usize;
        // Clamp the literal run to what remains; missing literals are zero.
        let available = literals.len().saturating_sub(lit_cursor);
        let take = lit_run.min(available).min(orig_len.saturating_sub(out.len()));
        out.extend(literals[lit_cursor..lit_cursor + take].iter().map(|&v| v as u8));
        lit_cursor += take;
        if take < lit_run {
            let pad = (lit_run - take).min(orig_len.saturating_sub(out.len()));
            out.extend(std::iter::repeat_n(0u8, pad));
        }
        if match_len > 0 && !out.is_empty() {
            let match_len = match_len.clamp(1, MAX_MATCH);
            let match_dist = match_dist.clamp(1, out.len().min(WINDOW));
            let start = out.len() - match_dist;
            for j in 0..match_len {
                if out.len() >= orig_len {
                    break;
                }
                let b = out[start + j];
                out.push(b);
            }
        }
        if out.len() >= orig_len {
            break;
        }
        // A corrupted sequence count can claim up to `orig_len + 1` entries;
        // once both the command bitstream and the literal pool are dry every
        // further iteration is a no-op, so stop instead of spinning through
        // up to 2^31 dead sequences (the fault study's *Timeout* class).
        if r.remaining() == 0 && lit_cursor >= literals.len() {
            break;
        }
    }
    // Real ZStd has no end-of-frame content check unless the optional
    // checksum is enabled; pad or truncate to the declared length.
    // arc-lint: bounded(orig_len <= max_output checked at entry)
    out.resize(orig_len, 0);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data, "len {}", data.len());
        c
    }

    #[test]
    fn log_bucket_round_trip() {
        for v in 1..=70_000u32 {
            let (b, x, _) = log_bucket(v);
            assert_eq!(unlog_bucket(b, x).unwrap(), v);
        }
    }

    #[test]
    fn empty_and_small() {
        round_trip(b"");
        round_trip(b"z");
        round_trip(b"zzzz");
        round_trip(b"abcdefg");
    }

    #[test]
    fn repetitive_input_compresses_well() {
        let data = b"error correcting codes protect lossy compressed data. ".repeat(200);
        let c = round_trip(&data);
        assert!(c.len() < data.len() / 5, "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn trailing_literals_after_last_match() {
        let mut data = b"abcdabcdabcdabcd".to_vec();
        data.extend_from_slice(b"XYZ!"); // unique tail, forced literal run
        round_trip(&data);
    }

    #[test]
    fn random_bytes_round_trip() {
        let data: Vec<u8> =
            (0..9000u64).map(|i| (i.wrapping_mul(0xD1B54A32D192ED03) >> 40) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn large_structured_input() {
        let data: Vec<u8> =
            (0..200_000).map(|i| (((i / 17) % 251) as u8) ^ (i % 3) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn corruption_never_panics() {
        let data = b"soft errors have become increasingly commonplace ".repeat(40);
        let c = compress(&data);
        for i in (0..c.len()).step_by(2) {
            let mut bad = c.clone();
            bad[i] ^= 0x10;
            let _ = decompress(&bad); // Err or wrong output, never a panic
        }
    }

    #[test]
    fn truncation_fails() {
        let c = compress(&b"12345678".repeat(100));
        for cut in [4usize, 10, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err());
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut c = compress(b"whatever data");
        c[1] = b'X';
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn zstd_like_beats_deflate_like_on_long_repeats() {
        // Not a strong claim in general; on highly repetitive data the
        // sectioned layout should at least stay competitive.
        let data = vec![42u8; 500_000];
        let z = compress(&data);
        let d = crate::deflate::compress(&data);
        assert!(z.len() < data.len() / 100);
        assert!(d.len() < data.len() / 100);
    }
}
