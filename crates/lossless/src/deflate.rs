//! A DEFLATE-style pipeline: LZ77 + interleaved canonical Huffman streams.
//!
//! This is the repository's "GZip-like" lossless compressor (§2.1 cites GZip
//! as the canonical lossless baseline). The format follows DEFLATE's shape —
//! one literal/length alphabet with extra bits, one distance alphabet with
//! extra bits, tokens interleaved in a single bitstream — without being
//! byte-compatible with RFC 1951.
//!
//! Frame layout:
//! `magic "ADFL" ‖ varint orig_len ‖ litlen table ‖ dist table ‖
//!  varint bitstream_len ‖ bitstream`

use crate::bitio::{read_varint, write_varint, BitReader, BitWriter};
use crate::error::LosslessError;
use crate::huffman::HuffmanCode;
use crate::lz77::{reconstruct, tokenize, Lz77Config, Token, MAX_MATCH, MIN_MATCH};

const MAGIC: &[u8; 4] = b"ADFL";

/// End-of-block symbol in the literal/length alphabet.
const SYM_EOB: u32 = 256;
/// First length-bucket symbol.
const SYM_LEN_BASE: u32 = 257;

/// Length buckets: (base, extra bits), covering `MIN_MATCH..=MAX_MATCH`.
const LEN_BUCKETS: [(u32, u32); 26] = [
    (4, 0),
    (5, 0),
    (6, 0),
    (7, 0),
    (8, 0),
    (9, 0),
    (10, 0),
    (11, 1),
    (13, 1),
    (15, 1),
    (17, 1),
    (19, 2),
    (23, 2),
    (27, 2),
    (31, 2),
    (35, 3),
    (43, 3),
    (51, 3),
    (59, 3),
    (67, 4),
    (83, 4),
    (99, 4),
    (115, 4),
    (131, 5),
    (163, 5),
    (195, 6),
];

/// Distance buckets: (base, extra bits), covering `1..=65536`.
const DIST_BUCKETS: [(u32, u32); 32] = [
    (1, 0),
    (2, 0),
    (3, 0),
    (4, 0),
    (5, 1),
    (7, 1),
    (9, 2),
    (13, 2),
    (17, 3),
    (25, 3),
    (33, 4),
    (49, 4),
    (65, 5),
    (97, 5),
    (129, 6),
    (193, 6),
    (257, 7),
    (385, 7),
    (513, 8),
    (769, 8),
    (1025, 9),
    (1537, 9),
    (2049, 10),
    (3073, 10),
    (4097, 11),
    (6145, 11),
    (8193, 12),
    (12289, 12),
    (16385, 13),
    (24577, 13),
    (32769, 14),
    (49153, 14),
];

const LITLEN_ALPHABET: usize = SYM_LEN_BASE as usize + LEN_BUCKETS.len();
const DIST_ALPHABET: usize = DIST_BUCKETS.len();

/// Find the bucket for `v`: returns (index, extra-bit payload).
fn bucketize(v: u32, buckets: &[(u32, u32)]) -> (u32, u32) {
    debug_assert!(v >= buckets[0].0);
    let idx = match buckets.binary_search_by_key(&v, |b| b.0) {
        Ok(i) => i,
        Err(i) => i - 1,
    };
    (idx as u32, v - buckets[idx].0)
}

/// Inverse of [`bucketize`]: base value plus extra bits.
fn unbucketize(idx: u32, extra: u32, buckets: &[(u32, u32)]) -> Result<u32, LosslessError> {
    let (base, bits) = *buckets
        .get(idx as usize)
        .ok_or_else(|| LosslessError::malformed("bucket index out of range"))?;
    if bits < 32 && extra >= (1 << bits) {
        return Err(LosslessError::malformed("extra bits out of range"));
    }
    Ok(base + extra)
}

/// Compress `data` with the DEFLATE-like pipeline.
pub fn compress(data: &[u8]) -> Vec<u8> {
    compress_with(data, &Lz77Config::default())
}

/// Compress with explicit LZ77 tuning.
pub fn compress_with(data: &[u8], cfg: &Lz77Config) -> Vec<u8> {
    let tokens = tokenize(data, cfg);
    // Frequency pass.
    let mut lit_freq = vec![0u64; LITLEN_ALPHABET];
    let mut dist_freq = vec![0u64; DIST_ALPHABET];
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_freq[b as usize] += 1,
            Token::Match { len, dist } => {
                let (li, _) = bucketize(len, &LEN_BUCKETS);
                lit_freq[(SYM_LEN_BASE + li) as usize] += 1;
                let (di, _) = bucketize(dist, &DIST_BUCKETS);
                dist_freq[di as usize] += 1;
            }
        }
    }
    lit_freq[SYM_EOB as usize] += 1;
    let lit_code = HuffmanCode::code_for_frequencies(&lit_freq);
    let dist_code = HuffmanCode::code_for_frequencies(&dist_freq);
    // Emission pass.
    let mut bits = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => lit_code.encode_symbol(b as u32, &mut bits),
            Token::Match { len, dist } => {
                let (li, lx) = bucketize(len, &LEN_BUCKETS);
                lit_code.encode_symbol(SYM_LEN_BASE + li, &mut bits);
                bits.write_bits(lx as u64, LEN_BUCKETS[li as usize].1);
                let (di, dx) = bucketize(dist, &DIST_BUCKETS);
                dist_code.encode_symbol(di, &mut bits);
                bits.write_bits(dx as u64, DIST_BUCKETS[di as usize].1);
            }
        }
    }
    lit_code.encode_symbol(SYM_EOB, &mut bits);
    let payload = bits.into_bytes();
    let mut out = Vec::with_capacity(payload.len() + 64);
    out.extend_from_slice(MAGIC);
    write_varint(&mut out, data.len() as u64);
    lit_code.serialize(&mut out);
    dist_code.serialize(&mut out);
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    out
}

/// Default decode output budget: a corrupted length field may not demand
/// more than this many bytes (callers with tighter limits use
/// [`decompress_with_limit`]).
pub const DEFAULT_MAX_OUTPUT: u64 = 1 << 31;

/// Decompress a frame produced by [`compress`].
pub fn decompress(bytes: &[u8]) -> Result<Vec<u8>, LosslessError> {
    decompress_with_limit(bytes, DEFAULT_MAX_OUTPUT)
}

/// Decompress with an explicit output-byte budget: a declared length above
/// `max_output` is rejected as [`LosslessError::WorkBudgetExceeded`] before
/// any proportional allocation happens.
pub fn decompress_with_limit(bytes: &[u8], max_output: u64) -> Result<Vec<u8>, LosslessError> {
    if bytes.len() < 4 || &bytes[..4] != MAGIC {
        return Err(LosslessError::malformed("bad deflate-like magic"));
    }
    let mut pos = 4usize;
    let declared = read_varint(bytes, &mut pos)?;
    if declared > max_output {
        return Err(LosslessError::WorkBudgetExceeded { demanded: declared, budget: max_output });
    }
    let orig_len = declared as usize;
    let lit_code = HuffmanCode::deserialize(bytes, &mut pos)?;
    let dist_code = HuffmanCode::deserialize(bytes, &mut pos)?;
    if lit_code.alphabet_size() != LITLEN_ALPHABET || dist_code.alphabet_size() != DIST_ALPHABET {
        return Err(LosslessError::malformed("unexpected alphabet sizes"));
    }
    let payload_len = read_varint(bytes, &mut pos)? as usize;
    let end = pos
        .checked_add(payload_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| LosslessError::truncated("deflate payload"))?;
    let mut r = BitReader::new(&bytes[pos..end]);
    let lit_dec = lit_code.decoder();
    let dist_dec = dist_code.decoder();
    let mut tokens = Vec::new();
    let mut produced = 0usize;
    loop {
        let sym = lit_dec.decode_symbol(&mut r)?;
        if sym == SYM_EOB {
            break;
        }
        if sym < 256 {
            tokens.push(Token::Literal(sym as u8));
            produced += 1;
        } else {
            let li = sym - SYM_LEN_BASE;
            let lbits = LEN_BUCKETS
                .get(li as usize)
                .ok_or_else(|| LosslessError::malformed("length symbol out of range"))?
                .1;
            let lx = r.read_bits(lbits)? as u32;
            let len = unbucketize(li, lx, &LEN_BUCKETS)?;
            if (len as usize) < MIN_MATCH || (len as usize) > MAX_MATCH {
                return Err(LosslessError::malformed("decoded length out of range"));
            }
            let di = dist_dec.decode_symbol(&mut r)?;
            let dbits = DIST_BUCKETS[di as usize].1;
            let dx = r.read_bits(dbits)? as u32;
            let dist = unbucketize(di, dx, &DIST_BUCKETS)?;
            tokens.push(Token::Match { len, dist });
            produced += len as usize;
        }
        if produced > orig_len.saturating_add(MAX_MATCH) {
            return Err(LosslessError::malformed("stream produces more than declared length"));
        }
    }
    let out = reconstruct(&tokens)?;
    if out.len() != orig_len {
        return Err(LosslessError::malformed(format!(
            "decoded {} bytes, header declared {orig_len}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(data: &[u8]) -> Vec<u8> {
        let c = compress(data);
        assert_eq!(decompress(&c).unwrap(), data);
        c
    }

    #[test]
    fn buckets_cover_full_ranges() {
        for v in MIN_MATCH as u32..=MAX_MATCH as u32 {
            let (i, x) = bucketize(v, &LEN_BUCKETS);
            assert_eq!(unbucketize(i, x, &LEN_BUCKETS).unwrap(), v);
            assert!(x < (1 << LEN_BUCKETS[i as usize].1).max(1));
        }
        for v in [1u32, 2, 100, 1000, 65535, 65536] {
            let (i, x) = bucketize(v, &DIST_BUCKETS);
            assert_eq!(unbucketize(i, x, &DIST_BUCKETS).unwrap(), v);
        }
    }

    #[test]
    fn empty_input() {
        round_trip(b"");
    }

    #[test]
    fn text_round_trip_and_compression() {
        let data = "lossy compression reduces data size considerably. ".repeat(100).into_bytes();
        let c = round_trip(&data);
        assert!(c.len() < data.len() / 4, "{} vs {}", c.len(), data.len());
    }

    #[test]
    fn binary_patterns() {
        let mut data = Vec::new();
        for i in 0..10_000u32 {
            data.extend_from_slice(&(i % 300).to_le_bytes());
        }
        round_trip(&data);
    }

    #[test]
    fn incompressible_random_round_trips() {
        let data: Vec<u8> =
            (0..5000u64).map(|i| (i.wrapping_mul(0x9E3779B97F4A7C15) >> 33) as u8).collect();
        round_trip(&data);
    }

    #[test]
    fn rejects_wrong_magic() {
        let mut c = compress(b"hello world hello world");
        c[0] ^= 0xFF;
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn truncated_stream_fails_cleanly() {
        let c = compress(&b"abcdefgh".repeat(50));
        for cut in [5usize, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn corrupted_bytes_never_panic() {
        let data = b"the quick brown fox jumps over the lazy dog ".repeat(30);
        let c = compress(&data);
        for i in (0..c.len()).step_by(3) {
            let mut bad = c.clone();
            bad[i] ^= 1 << (i % 8);
            // Either error or wrong bytes — both acceptable, panics are not.
            let _ = decompress(&bad);
        }
    }

    #[test]
    fn declared_length_mismatch_detected() {
        let data = b"mismatch test data mismatch test data".to_vec();
        let mut c = compress(&data);
        // Patch the varint length field (byte 4, values < 128 occupy 1 byte).
        assert!(c[4] as usize == data.len());
        c[4] = c[4].wrapping_add(1);
        assert!(decompress(&c).is_err());
    }

    #[test]
    fn single_byte_and_runs() {
        round_trip(b"x");
        round_trip(&vec![0u8; 100_000]);
        round_trip(&[0xFFu8; 3]);
    }
}
