//! Property-based tests for the lossless substrate: every pipeline must
//! round-trip arbitrary bytes, and decoders must never panic on corrupt
//! input.

use proptest::prelude::*;

use arc_lossless::bitio::{read_varint, unzigzag, write_varint, zigzag, BitReader, BitWriter};
use arc_lossless::huffman::{huffman_decode_block, huffman_encode_block};
use arc_lossless::lz77::{reconstruct, tokenize, Lz77Config};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn varint_round_trip(values in proptest::collection::vec(any::<u64>(), 0..64)) {
        let mut buf = Vec::new();
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut pos = 0;
        for &v in &values {
            prop_assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
        }
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn zigzag_round_trip(v: i64) {
        prop_assert_eq!(unzigzag(zigzag(v)), v);
    }

    #[test]
    fn bitio_round_trip(fields in proptest::collection::vec((any::<u64>(), 1u32..=64), 0..64)) {
        let mut w = BitWriter::new();
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &fields {
            let mask = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
            prop_assert_eq!(r.read_bits(n).unwrap(), v & mask);
        }
    }

    #[test]
    fn huffman_block_round_trip(
        symbols in proptest::collection::vec(0u32..500, 0..2000),
    ) {
        let enc = huffman_encode_block(&symbols, 500).unwrap();
        let mut pos = 0;
        let dec = huffman_decode_block(&enc, &mut pos).unwrap();
        prop_assert_eq!(dec, symbols);
    }

    #[test]
    fn lz77_round_trip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let tokens = tokenize(&data, &Lz77Config::default());
        prop_assert_eq!(reconstruct(&tokens).unwrap(), data);
    }

    #[test]
    fn deflate_round_trip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = arc_lossless::deflate::compress(&data);
        prop_assert_eq!(arc_lossless::deflate::decompress(&c).unwrap(), data);
    }

    #[test]
    fn zstd_like_round_trip(data in proptest::collection::vec(any::<u8>(), 0..8192)) {
        let c = arc_lossless::zstd_like::compress(&data);
        prop_assert_eq!(arc_lossless::zstd_like::decompress(&c).unwrap(), data);
    }

    #[test]
    fn decoders_never_panic_on_corruption(
        data in proptest::collection::vec(any::<u8>(), 32..2048),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), any::<u8>()), 1..8),
    ) {
        type Codec = (fn(&[u8]) -> Vec<u8>, fn(&[u8]) -> Result<Vec<u8>, arc_lossless::LosslessError>);
        let codecs: [Codec; 2] = [
            (arc_lossless::deflate::compress, arc_lossless::deflate::decompress),
            (arc_lossless::zstd_like::compress, arc_lossless::zstd_like::decompress),
        ];
        for (compress, decompress) in codecs {
            let mut c = compress(&data);
            for (idx, xor) in &flips {
                let p = idx.index(c.len());
                c[p] ^= xor;
            }
            // Err or wrong output are both fine; a panic would fail the test.
            let _ = decompress(&c);
        }
    }

    #[test]
    fn decoders_never_panic_on_random_garbage(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = arc_lossless::deflate::decompress(&noise);
        let _ = arc_lossless::zstd_like::decompress(&noise);
        let mut pos = 0;
        let _ = huffman_decode_block(&noise, &mut pos);
    }

    #[test]
    fn compression_is_deterministic(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        prop_assert_eq!(
            arc_lossless::zstd_like::compress(&data),
            arc_lossless::zstd_like::compress(&data)
        );
    }
}
