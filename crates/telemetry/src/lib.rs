//! # arc-telemetry — zero-dependency instrumentation facade
//!
//! Stage-level visibility for the ARC pipeline (ROADMAP: "fast as the
//! hardware allows" needs to know *where* time goes, not just whole
//! encode/decode walls). The facade offers four primitives behind one
//! global registry:
//!
//! * **Spans** — RAII wall-clock timers aggregated per hierarchical
//!   dotted path (`span("ecc.encode")` nested inside `span("core")`
//!   records under `core.ecc.encode`; a fresh thread starts a fresh
//!   path, so worker-side spans use absolute names).
//! * **Counters** — monotonic `u64` sums (`counter_add`).
//! * **Histograms** — log₂-bucketed value distributions
//!   (`histogram_record`).
//! * **Events** — counted, last-value-retained structured strings whose
//!   formatting closure only runs when the feature is on (`event`).
//!
//! Two auxiliary types keep hot loops cheap: [`Stopwatch`] (manual
//! start/elapsed) and [`StageAccumulator`] (local count+ns accumulation,
//! flushed to the registry once on drop — used by the per-block ZFP
//! pipeline so the registry is touched once per *call*, not per block).
//!
//! ## Zero cost when off
//!
//! Everything is compiled twice: a live implementation under
//! `#[cfg(feature = "telemetry")]` and a no-op twin otherwise. The no-op
//! twin has the same signatures but empty `#[inline(always)]` bodies and
//! zero-sized guard types, so call sites carry **no** `cfg()` guards and
//! the optimizer erases the instrumentation entirely — there is no
//! registry, no atomics, no `Instant::now()` in the off build
//! (`scripts/bench_ecc.sh` enforces the resulting <2% envelope against
//! the committed baseline).
//!
//! ## Reading the data
//!
//! [`snapshot()`] returns an owned, sorted [`Snapshot`] that renders to
//! Prometheus text exposition ([`Snapshot::to_prometheus_text`]) or JSON
//! ([`Snapshot::to_json`]); `arc --metrics[=path]` in `arc-cli` wires
//! this to stdout or a file. [`reset()`] clears the registry (tests).

#![warn(missing_docs)]

// ---------------------------------------------------------------------------
// Snapshot model + exporters (shared by the live and no-op builds)
// ---------------------------------------------------------------------------

/// Aggregated totals for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Full dotted path (`"ecc.encode.chunk"`).
    pub path: String,
    /// Number of completed span guards.
    pub count: u64,
    /// Total wall-clock nanoseconds across all completions.
    pub total_ns: u64,
}

/// Value of one monotonic counter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Accumulated value.
    pub value: u64,
}

/// One log₂ histogram: bucket `i` holds values `v` with
/// `floor(log2(v)) + 1 == i` (bucket 0 holds zeros), so the exported
/// upper bound of bucket `i` is `2^i - 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values (saturating).
    pub sum: u64,
    /// `(inclusive upper bound, count)` for each non-empty bucket,
    /// ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramSnapshot {
    /// Estimate the `q`-quantile (`0.0 ..= 1.0`) of the recorded values
    /// by linear interpolation inside the log₂ bucket containing the
    /// target rank. The estimate is coarse by construction — buckets
    /// double — but it is monotone in `q` and always lies within the
    /// true bucket's `[2^(i-1), 2^i - 1]` range. Returns 0 when the
    /// histogram is empty.
    pub fn percentile_estimate(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for &(le, n) in &self.buckets {
            let below = cumulative;
            cumulative += n;
            if cumulative >= rank {
                // Bucket i spans [2^(i-1), 2^i - 1]; from le = 2^i - 1 the
                // lower bound is le/2 + 1 (bucket 0 holds only zeros).
                let lo = if le == 0 { 0 } else { le / 2 + 1 };
                let frac = (rank - below) as f64 / n as f64;
                return lo + ((le - lo) as f64 * frac) as u64;
            }
        }
        self.buckets.last().map_or(0, |&(le, _)| le)
    }
}

/// One named event stream: how many times it fired and the most recent
/// rendered detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventSnapshot {
    /// Event name.
    pub name: String,
    /// Number of occurrences.
    pub count: u64,
    /// Detail string of the most recent occurrence.
    pub last: String,
}

/// An owned, deterministic (name-sorted) copy of the registry contents.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// All span aggregates.
    pub spans: Vec<SpanSnapshot>,
    /// All counters.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms.
    pub histograms: Vec<HistogramSnapshot>,
    /// All events.
    pub events: Vec<EventSnapshot>,
}

impl Snapshot {
    /// True when nothing has been recorded (or the feature is off).
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.histograms.is_empty()
            && self.events.is_empty()
    }

    /// Look up a span aggregate by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanSnapshot> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// Look up a counter value by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|c| c.name == name).map_or(0, |c| c.value)
    }

    /// Render as Prometheus text exposition format (metric families
    /// `arc_span_seconds_total`, `arc_span_calls_total`,
    /// `arc_counter_total`, `arc_histogram`, `arc_event_total`).
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("# TYPE arc_span_seconds_total counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "arc_span_seconds_total{{span=\"{}\"}} {:.9}",
                    prom_escape(&s.path),
                    s.total_ns as f64 / 1e9
                );
            }
            out.push_str("# TYPE arc_span_calls_total counter\n");
            for s in &self.spans {
                let _ = writeln!(
                    out,
                    "arc_span_calls_total{{span=\"{}\"}} {}",
                    prom_escape(&s.path),
                    s.count
                );
            }
        }
        if !self.counters.is_empty() {
            out.push_str("# TYPE arc_counter_total counter\n");
            for c in &self.counters {
                let _ = writeln!(
                    out,
                    "arc_counter_total{{name=\"{}\"}} {}",
                    prom_escape(&c.name),
                    c.value
                );
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("# TYPE arc_histogram histogram\n");
            for h in &self.histograms {
                let name = prom_escape(&h.name);
                let mut cumulative = 0u64;
                for &(le, n) in &h.buckets {
                    cumulative += n;
                    let _ = writeln!(
                        out,
                        "arc_histogram_bucket{{name=\"{name}\",le=\"{le}\"}} {cumulative}"
                    );
                }
                let _ = writeln!(
                    out,
                    "arc_histogram_bucket{{name=\"{name}\",le=\"+Inf\"}} {}",
                    h.count
                );
                let _ = writeln!(out, "arc_histogram_sum{{name=\"{name}\"}} {}", h.sum);
                let _ = writeln!(out, "arc_histogram_count{{name=\"{name}\"}} {}", h.count);
            }
        }
        if !self.events.is_empty() {
            out.push_str("# TYPE arc_event_total counter\n");
            for e in &self.events {
                let _ = writeln!(
                    out,
                    "arc_event_total{{name=\"{}\"}} {}",
                    prom_escape(&e.name),
                    e.count
                );
            }
        }
        out
    }

    /// Render as a JSON document (hand-rolled — the repo takes no serde
    /// dependency).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"path\": \"{}\", \"count\": {}, \"total_ns\": {}}}",
                if i == 0 { "" } else { "," },
                json_escape(&s.path),
                s.count,
                s.total_ns
            );
        }
        if !self.spans.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\": \"{}\", \"value\": {}}}",
                if i == 0 { "" } else { "," },
                json_escape(&c.name),
                c.value
            );
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"buckets\": [",
                if i == 0 { "" } else { "," },
                json_escape(&h.name),
                h.count,
                h.sum
            );
            for (j, &(le, n)) in h.buckets.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"le\": {le}, \"count\": {n}}}",
                    if j == 0 { "" } else { ", " }
                );
            }
            out.push_str("]}");
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"events\": [");
        for (i, e) in self.events.iter().enumerate() {
            let _ = write!(
                out,
                "{}\n    {{\"name\": \"{}\", \"count\": {}, \"last\": \"{}\"}}",
                if i == 0 { "" } else { "," },
                json_escape(&e.name),
                e.count,
                json_escape(&e.last)
            );
        }
        if !self.events.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

fn prom_escape(s: &str) -> String {
    // Label values escape backslash, double quote, and newline.
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Live implementation
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
mod imp {
    use std::cell::RefCell;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex, OnceLock, RwLock};
    use std::time::Instant;

    use super::{CounterSnapshot, EventSnapshot, HistogramSnapshot, Snapshot, SpanSnapshot};

    #[derive(Default)]
    struct SpanStat {
        count: AtomicU64,
        total_ns: AtomicU64,
    }

    struct HistStat {
        count: AtomicU64,
        sum: AtomicU64,
        // Bucket i: values v with floor(log2(v)) + 1 == i; bucket 0: v == 0.
        buckets: [AtomicU64; 65],
    }

    impl Default for HistStat {
        fn default() -> Self {
            Self {
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            }
        }
    }

    #[derive(Default)]
    struct EventStat {
        count: AtomicU64,
        last: Mutex<String>,
    }

    /// The single process-wide registry. Maps are name→Arc so the hot
    /// path holds the `RwLock` read guard only for the lookup, then
    /// updates lock-free atomics.
    #[derive(Default)]
    struct Registry {
        spans: RwLock<HashMap<String, Arc<SpanStat>>>,
        counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
        histograms: RwLock<HashMap<String, Arc<HistStat>>>,
        events: RwLock<HashMap<String, Arc<EventStat>>>,
    }

    fn registry() -> &'static Registry {
        static REGISTRY: OnceLock<Registry> = OnceLock::new();
        REGISTRY.get_or_init(Registry::default)
    }

    /// Fetch-or-insert an entry in one of the registry maps.
    fn stat_for<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
        if let Some(s) = map.read().unwrap_or_else(std::sync::PoisonError::into_inner).get(name) {
            return Arc::clone(s);
        }
        let mut w = map.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    thread_local! {
        /// The current dotted span path on this thread. Fresh threads
        /// start empty, so spans opened on pool workers record under
        /// their own (absolute) names.
        static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
    }

    /// Whether the `telemetry` feature is compiled in.
    #[inline]
    pub fn enabled() -> bool {
        true
    }

    /// RAII guard returned by [`span`]; records elapsed wall time under
    /// the hierarchical path on drop.
    pub struct SpanGuard {
        truncate_to: usize,
        start: Instant,
    }

    /// Open a timed span. The name is appended to the thread's current
    /// dotted path; the segment (and its time) is recorded when the
    /// returned guard drops.
    #[inline]
    pub fn span(name: &'static str) -> SpanGuard {
        let truncate_to = SPAN_PATH.with(|p| {
            let mut p = p.borrow_mut();
            let at = p.len();
            if !p.is_empty() {
                p.push('.');
            }
            p.push_str(name);
            at
        });
        SpanGuard { truncate_to, start: Instant::now() }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let ns = self.start.elapsed().as_nanos() as u64;
            SPAN_PATH.with(|p| {
                let mut p = p.borrow_mut();
                record_span(&p, 1, ns);
                p.truncate(self.truncate_to);
            });
        }
    }

    fn record_span(path: &str, count: u64, ns: u64) {
        let stat = stat_for(&registry().spans, path);
        // relaxed: independent monotonic counters; nothing synchronizes on them.
        stat.count.fetch_add(count, Ordering::Relaxed);
        stat.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Add `delta` to the named monotonic counter.
    #[inline]
    pub fn counter_add(name: &'static str, delta: u64) {
        let stat = stat_for(&registry().counters, name);
        // relaxed: monotonic counter; readers tolerate any interleaving.
        stat.fetch_add(delta, Ordering::Relaxed);
    }

    /// Record one value into the named log₂ histogram.
    #[inline]
    pub fn histogram_record(name: &'static str, value: u64) {
        let stat = stat_for(&registry().histograms, name);
        // relaxed: count/sum/bucket cells are independent; a snapshot racing
        // this update may be off by one entry, which reporting tolerates.
        stat.count.fetch_add(1, Ordering::Relaxed);
        stat.sum.fetch_add(value, Ordering::Relaxed);
        let bucket = if value == 0 { 0 } else { 64 - value.leading_zeros() as usize };
        // relaxed: same single-cell increment as count/sum above.
        stat.buckets[bucket].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a structured event. `detail` only runs when telemetry is
    /// compiled in, so formatting costs nothing in the off build.
    #[inline]
    pub fn event<F: FnOnce() -> String>(name: &'static str, detail: F) {
        let stat = stat_for(&registry().events, name);
        // relaxed: the count is advisory; `last` is guarded by its own mutex.
        stat.count.fetch_add(1, Ordering::Relaxed);
        *stat.last.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = detail();
    }

    /// Manual wall-clock timer for sites where an RAII guard is awkward
    /// (multiple exits, `?` inside the timed region).
    pub struct Stopwatch(Instant);

    impl Stopwatch {
        /// Start timing.
        #[inline]
        pub fn start() -> Self {
            Stopwatch(Instant::now())
        }

        /// Nanoseconds since [`Stopwatch::start`].
        #[inline]
        pub fn elapsed_ns(&self) -> u64 {
            self.0.elapsed().as_nanos() as u64
        }
    }

    /// Local span accumulator for per-item hot loops: `add_ns`/`time`
    /// touch only plain fields; the registry sees one update when the
    /// accumulator drops. Records under the absolute `path`, ignoring
    /// the thread's span stack (accumulators typically outlive many
    /// nested iterations).
    pub struct StageAccumulator {
        path: &'static str,
        count: u64,
        total_ns: u64,
    }

    impl StageAccumulator {
        /// New empty accumulator for `path`.
        #[inline]
        pub fn new(path: &'static str) -> Self {
            StageAccumulator { path, count: 0, total_ns: 0 }
        }

        /// Fold in one timed occurrence of `ns` nanoseconds.
        #[inline]
        pub fn add_ns(&mut self, ns: u64) {
            self.count += 1;
            self.total_ns += ns;
        }

        /// Time the closure and fold the elapsed wall time in.
        #[inline]
        pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
            let t = Instant::now();
            let r = f();
            self.add_ns(t.elapsed().as_nanos() as u64);
            r
        }
    }

    impl Drop for StageAccumulator {
        fn drop(&mut self) {
            if self.count > 0 {
                record_span(self.path, self.count, self.total_ns);
            }
        }
    }

    /// Copy the registry out into a name-sorted [`Snapshot`].
    pub fn snapshot() -> Snapshot {
        let reg = registry();
        let mut spans: Vec<SpanSnapshot> = reg
            .spans
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(path, s)| SpanSnapshot {
                path: path.clone(),
                // relaxed: snapshots race live writers by design; per-cell
                // atomicity is all the report needs.
                count: s.count.load(Ordering::Relaxed),
                total_ns: s.total_ns.load(Ordering::Relaxed),
            })
            .collect();
        spans.sort_by(|a, b| a.path.cmp(&b.path));
        let mut counters: Vec<CounterSnapshot> = reg
            .counters
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, v)| CounterSnapshot {
                name: name.clone(),
                // relaxed: snapshot read of an advisory counter.
                value: v.load(Ordering::Relaxed),
            })
            .collect();
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        let mut histograms: Vec<HistogramSnapshot> = reg
            .histograms
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, h)| {
                let buckets = h
                    .buckets
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| {
                        // relaxed: snapshot read of an advisory bucket count.
                        let n = b.load(Ordering::Relaxed);
                        (n > 0).then(|| {
                            let le = if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                            (le, n)
                        })
                    })
                    .collect();
                HistogramSnapshot {
                    name: name.clone(),
                    // relaxed: snapshot reads race live writers by design.
                    count: h.count.load(Ordering::Relaxed),
                    sum: h.sum.load(Ordering::Relaxed),
                    buckets,
                }
            })
            .collect();
        histograms.sort_by(|a, b| a.name.cmp(&b.name));
        let mut events: Vec<EventSnapshot> = reg
            .events
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(|(name, e)| EventSnapshot {
                name: name.clone(),
                // relaxed: snapshot read of an advisory event count.
                count: e.count.load(Ordering::Relaxed),
                last: e.last.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone(),
            })
            .collect();
        events.sort_by(|a, b| a.name.cmp(&b.name));
        Snapshot { spans, counters, histograms, events }
    }

    /// Clear every registered span, counter, histogram, and event.
    pub fn reset() {
        let reg = registry();
        reg.spans.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        reg.counters.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        reg.histograms.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
        reg.events.write().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }
}

// ---------------------------------------------------------------------------
// No-op twin (feature off): identical signatures, empty bodies, ZST guards
// ---------------------------------------------------------------------------

#[cfg(not(feature = "telemetry"))]
mod imp {
    use super::Snapshot;

    /// Whether the `telemetry` feature is compiled in.
    #[inline(always)]
    pub fn enabled() -> bool {
        false
    }

    /// Zero-sized stand-in for the live span guard.
    #[must_use]
    pub struct SpanGuard;

    /// No-op: returns a zero-sized guard.
    #[inline(always)]
    pub fn span(_name: &'static str) -> SpanGuard {
        SpanGuard
    }

    /// No-op.
    #[inline(always)]
    pub fn counter_add(_name: &'static str, _delta: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn histogram_record(_name: &'static str, _value: u64) {}

    /// No-op: `detail` is never invoked.
    #[inline(always)]
    pub fn event<F: FnOnce() -> String>(_name: &'static str, _detail: F) {}

    /// Zero-sized stand-in for the live stopwatch.
    pub struct Stopwatch;

    impl Stopwatch {
        /// No-op.
        #[inline(always)]
        pub fn start() -> Self {
            Stopwatch
        }

        /// Always 0.
        #[inline(always)]
        pub fn elapsed_ns(&self) -> u64 {
            0
        }
    }

    /// Zero-sized stand-in for the live stage accumulator.
    pub struct StageAccumulator;

    impl StageAccumulator {
        /// No-op.
        #[inline(always)]
        pub fn new(_path: &'static str) -> Self {
            StageAccumulator
        }

        /// No-op.
        #[inline(always)]
        pub fn add_ns(&mut self, _ns: u64) {}

        /// Runs the closure untimed.
        #[inline(always)]
        pub fn time<R>(&mut self, f: impl FnOnce() -> R) -> R {
            f()
        }
    }

    /// Always empty.
    #[inline(always)]
    pub fn snapshot() -> Snapshot {
        Snapshot::default()
    }

    /// No-op.
    #[inline(always)]
    pub fn reset() {}
}

pub use imp::{
    counter_add, enabled, event, histogram_record, reset, snapshot, span, SpanGuard,
    StageAccumulator, Stopwatch,
};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(feature = "telemetry")]
    mod live {
        use super::super::*;

        /// The registry is global, so every assertion lives in this one
        /// test fn; `cargo test` may run other *binaries* concurrently
        /// but never other fns in this module.
        #[test]
        fn facade_end_to_end() {
            reset();

            // Spans: nesting builds dotted paths; siblings aggregate.
            {
                let _a = span("outer");
                {
                    let _b = span("inner");
                }
                {
                    let _b = span("inner");
                }
            }
            {
                let _a = span("outer");
            }
            let snap = snapshot();
            assert_eq!(snap.span("outer").unwrap().count, 2);
            assert_eq!(snap.span("outer.inner").unwrap().count, 2);
            assert!(
                snap.span("outer").unwrap().total_ns >= snap.span("outer.inner").unwrap().total_ns
            );
            assert!(snap.span("inner").is_none());

            // Counters: exact sums across threads.
            let threads: Vec<_> = (0..8)
                .map(|_| {
                    std::thread::spawn(|| {
                        for _ in 0..1000 {
                            counter_add("t.count", 3);
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().unwrap();
            }
            assert_eq!(snapshot().counter("t.count"), 8 * 1000 * 3);

            // Histogram: log2 buckets with exact count/sum.
            for v in [0u64, 1, 2, 3, 4, 1000] {
                histogram_record("t.hist", v);
            }
            let snap = snapshot();
            let h = snap.histograms.iter().find(|h| h.name == "t.hist").unwrap();
            assert_eq!(h.count, 6);
            assert_eq!(h.sum, 1010);
            // 0 → le 0; 1 → le 1; 2,3 → le 3; 4 → le 7; 1000 → le 1023.
            assert_eq!(h.buckets, vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1)]);

            // Events: count + last detail; closure runs.
            event("t.event", || "first".to_string());
            event("t.event", || format!("n={}", 2));
            let snap = snapshot();
            let e = snap.events.iter().find(|e| e.name == "t.event").unwrap();
            assert_eq!((e.count, e.last.as_str()), (2, "n=2"));

            // Stage accumulator: one registry entry, N local adds.
            {
                let mut acc = StageAccumulator::new("t.stage");
                for _ in 0..5 {
                    acc.time(|| std::hint::black_box(2 + 2));
                }
                acc.add_ns(7);
            }
            let snap = snapshot();
            let s = snap.span("t.stage").unwrap();
            assert_eq!(s.count, 6);
            assert!(s.total_ns >= 7);

            // Stopwatch advances.
            let sw = Stopwatch::start();
            std::hint::black_box(vec![0u8; 4096]);
            let _ = sw.elapsed_ns();

            // Exporters mention everything and stay parseable-ish.
            let prom = snap.to_prometheus_text();
            assert!(prom.contains("arc_span_seconds_total{span=\"outer.inner\"}"));
            assert!(prom.contains("arc_counter_total{name=\"t.count\"} 24000"));
            assert!(prom.contains("arc_histogram_bucket{name=\"t.hist\",le=\"+Inf\"} 6"));
            assert!(prom.contains("arc_event_total{name=\"t.event\"} 2"));
            let json = snap.to_json();
            assert!(json.contains("\"path\": \"outer.inner\""));
            assert!(json.contains("\"value\": 24000"));
            assert!(json.contains("\"last\": \"n=2\""));

            // Reset empties the registry.
            reset();
            assert!(snapshot().is_empty());

            // Worker threads start fresh paths (absolute naming).
            {
                let _outer = span("main");
                std::thread::spawn(|| {
                    let _w = span("worker.item");
                })
                .join()
                .unwrap();
            }
            let snap = snapshot();
            assert!(snap.span("worker.item").is_some());
            assert!(snap.span("main.worker.item").is_none());
            reset();
        }
    }

    #[cfg(not(feature = "telemetry"))]
    mod off {
        use super::super::*;

        #[test]
        fn everything_is_inert() {
            assert!(!enabled());
            let _g = span("x");
            counter_add("c", 5);
            histogram_record("h", 9);
            event("e", || unreachable!("detail closure must not run when off"));
            let mut acc = StageAccumulator::new("s");
            assert_eq!(acc.time(|| 41 + 1), 42);
            acc.add_ns(5);
            let sw = Stopwatch::start();
            assert_eq!(sw.elapsed_ns(), 0);
            reset();
            let snap = snapshot();
            assert!(snap.is_empty());
            assert_eq!(snap.counter("c"), 0);
            // Exporters render valid empty documents.
            assert_eq!(snap.to_prometheus_text(), "");
            assert!(snap.to_json().contains("\"spans\": []"));
        }
    }

    #[test]
    fn percentile_estimates_are_monotone_and_bucket_bounded() {
        // 10 values in bucket le=1 (v=1), 80 in le=1023, 10 in le=4095.
        let h = HistogramSnapshot {
            name: "lat".into(),
            count: 100,
            sum: 0,
            buckets: vec![(1, 10), (1023, 80), (4095, 10)],
        };
        let p10 = h.percentile_estimate(0.10);
        let p50 = h.percentile_estimate(0.50);
        let p99 = h.percentile_estimate(0.99);
        assert_eq!(p10, 1, "rank 10 is the last value in the le=1 bucket");
        assert!((512..=1023).contains(&p50), "p50={p50} must land in the le=1023 bucket");
        assert!((2048..=4095).contains(&p99), "p99={p99} must land in the le=4095 bucket");
        assert!(p10 <= p50 && p50 <= p99);
        // Degenerate cases: empty histogram and out-of-range q.
        let empty = HistogramSnapshot { name: "e".into(), count: 0, sum: 0, buckets: vec![] };
        assert_eq!(empty.percentile_estimate(0.5), 0);
        assert_eq!(h.percentile_estimate(-1.0), 1);
        assert_eq!(h.percentile_estimate(2.0), h.percentile_estimate(1.0));
    }

    #[test]
    fn exporter_escaping() {
        let snap = Snapshot {
            spans: vec![SpanSnapshot { path: "a\"b\\c\nd".into(), count: 1, total_ns: 5 }],
            counters: vec![],
            histograms: vec![],
            events: vec![EventSnapshot {
                name: "e".into(),
                count: 1,
                last: "tab\there \"q\"".into(),
            }],
        };
        let prom = snap.to_prometheus_text();
        assert!(prom.contains("span=\"a\\\"b\\\\c\\nd\""));
        let json = snap.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
        assert!(json.contains("tab\\there \\\"q\\\""));
    }
}
