//! Error type for the ZFP-like codec.

use std::fmt;

/// Decompression and configuration failures. The fault harness maps
/// [`ZfpError::Malformed`]/[`ZfpError::Truncated`] to *Compressor Exception*
/// and [`ZfpError::WorkBudgetExceeded`] to *Timeout* (§4.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZfpError {
    /// Structurally invalid stream or configuration.
    Malformed(String),
    /// Stream ended before the declared content.
    Truncated(String),
    /// Decode would exceed the caller's work budget (Timeout analogue).
    WorkBudgetExceeded {
        /// Work units demanded by the (possibly corrupt) header.
        demanded: u64,
        /// Allowed budget.
        budget: u64,
    },
}

impl fmt::Display for ZfpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ZfpError::Malformed(d) => write!(f, "malformed ZFP stream: {d}"),
            ZfpError::Truncated(d) => write!(f, "truncated ZFP stream: {d}"),
            ZfpError::WorkBudgetExceeded { demanded, budget } => {
                write!(f, "ZFP decode work {demanded} exceeds budget {budget} (timeout)")
            }
        }
    }
}

impl std::error::Error for ZfpError {}
