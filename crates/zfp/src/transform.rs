//! ZFP's near-orthogonal integer lifting transform.
//!
//! Each 4-vector is decorrelated with the non-orthogonal transform from the
//! ZFP paper (Lindstrom 2014, §2.1.2 of the ARC paper):
//!
//! ```text
//!          ( 4  4  4  4) (x)
//! 1/16  ·  ( 5  1 −1 −5) (y)
//!          (−4  4  4 −4) (z)
//!          (−2  6 −6  2) (w)
//! ```
//!
//! implemented as integer lifting steps so the inverse reproduces inputs
//! exactly. Multi-dimensional blocks apply the 1-D transform along every
//! axis.

/// Number of samples per block edge.
pub const BLOCK_EDGE: usize = 4;

/// Forward lift of one 4-vector at stride `s`.
#[inline]
pub fn fwd_lift(p: &mut [i64], offset: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) =
        (p[offset], p[offset + s], p[offset + 2 * s], p[offset + 3 * s]);
    x += w;
    x >>= 1;
    w -= x;
    z += y;
    z >>= 1;
    y -= z;
    x += z;
    x >>= 1;
    z -= x;
    w += y;
    w >>= 1;
    y -= w;
    w += y >> 1;
    y -= w >> 1;
    p[offset] = x;
    p[offset + s] = y;
    p[offset + 2 * s] = z;
    p[offset + 3 * s] = w;
}

/// Inverse lift of one 4-vector at stride `s` (exact inverse of
/// [`fwd_lift`]).
#[inline]
pub fn inv_lift(p: &mut [i64], offset: usize, s: usize) {
    let (mut x, mut y, mut z, mut w) =
        (p[offset], p[offset + s], p[offset + 2 * s], p[offset + 3 * s]);
    y += w >> 1;
    w -= y >> 1;
    y += w;
    w <<= 1;
    w -= y;
    z += x;
    x <<= 1;
    x -= z;
    y += z;
    z <<= 1;
    z -= y;
    w += x;
    x <<= 1;
    x -= w;
    p[offset] = x;
    p[offset + s] = y;
    p[offset + 2 * s] = z;
    p[offset + 3 * s] = w;
}

/// Forward transform of a full block (4^d coefficients) in place.
pub fn fwd_transform(block: &mut [i64], d: usize) {
    match d {
        1 => fwd_lift(block, 0, 1),
        2 => {
            for row in 0..4 {
                fwd_lift(block, row * 4, 1);
            }
            for col in 0..4 {
                fwd_lift(block, col, 4);
            }
        }
        // Dimensionality is validated to 1..=3 upstream; the 3-D lifting is
        // the catch-all so an impossible value cannot panic mid-decode.
        _ => {
            if block.len() < 64 {
                return;
            }
            // Along fastest axis (x), then y, then z.
            for z in 0..4 {
                for y in 0..4 {
                    fwd_lift(block, z * 16 + y * 4, 1);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, z * 16 + x, 4);
                }
            }
            for y in 0..4 {
                for x in 0..4 {
                    fwd_lift(block, y * 4 + x, 16);
                }
            }
        }
    }
}

/// Inverse transform of a full block in place.
pub fn inv_transform(block: &mut [i64], d: usize) {
    match d {
        1 => inv_lift(block, 0, 1),
        2 => {
            for col in 0..4 {
                inv_lift(block, col, 4);
            }
            for row in 0..4 {
                inv_lift(block, row * 4, 1);
            }
        }
        // Dimensionality is validated to 1..=3 upstream; the 3-D lifting is
        // the catch-all so an impossible value cannot panic mid-decode.
        _ => {
            if block.len() < 64 {
                return;
            }
            for y in 0..4 {
                for x in 0..4 {
                    inv_lift(block, y * 4 + x, 16);
                }
            }
            for z in 0..4 {
                for x in 0..4 {
                    inv_lift(block, z * 16 + x, 4);
                }
            }
            for z in 0..4 {
                for y in 0..4 {
                    inv_lift(block, z * 16 + y * 4, 1);
                }
            }
        }
    }
}

/// Total-sequency coefficient ordering: low-frequency coefficients first
/// (sorted by the sum of per-axis indices, ties broken by linear index).
/// This is the order bit planes serialize coefficients in, so fixed-rate
/// truncation drops the highest frequencies first.
pub fn sequency_order(d: usize) -> Vec<usize> {
    let n = BLOCK_EDGE.pow(d as u32);
    let mut idx: Vec<usize> = (0..n).collect();
    let key = |i: usize| -> usize {
        match d {
            1 => i,
            2 => (i / 4) + (i % 4),
            _ => (i / 16) + ((i / 4) % 4) + (i % 4),
        }
    };
    idx.sort_by_key(|&i| (key(i), i));
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(i: usize, salt: u64) -> i64 {
        let h = (i as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15 ^ salt);
        ((h >> 24) as i64 & 0xFFFFF) - 0x80000
    }

    // Like real ZFP, the lifting pair is not bit-exact: each `>>1` discards
    // a low bit, so inv(fwd(v)) reconstructs within a few integer ULPs
    // (measured: ≤2 in 1-D, ≤8 in 2-D). The fixed-point scale of 2^38
    // renders this far below any practical error bound, and the accuracy
    // mode verifies the final tolerance per block regardless.
    const LIFT_SLACK: [i64; 4] = [0, 4, 16, 64];

    #[test]
    fn lift_round_trips_within_slack() {
        for salt in 0..200u64 {
            let mut v: Vec<i64> = (0..4).map(|i| pseudo(i, salt)).collect();
            let orig = v.clone();
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            for (a, b) in v.iter().zip(&orig) {
                assert!((a - b).abs() <= LIFT_SLACK[1], "salt {salt}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn lift_round_trips_at_extremes() {
        for vals in [
            [0i64, 0, 0, 0],
            [1 << 40, -(1 << 40), 1 << 40, -(1 << 40)],
            [i64::from(i32::MAX), i64::from(i32::MIN), 0, 1],
        ] {
            let mut v = vals.to_vec();
            fwd_lift(&mut v, 0, 1);
            inv_lift(&mut v, 0, 1);
            for (a, b) in v.iter().zip(&vals) {
                assert!((a - b).abs() <= LIFT_SLACK[1], "{a} vs {b}");
            }
        }
    }

    #[test]
    fn full_transform_round_trips_within_slack() {
        for (d, &slack) in LIFT_SLACK.iter().enumerate().skip(1) {
            let n = BLOCK_EDGE.pow(d as u32);
            for salt in 0..50u64 {
                let mut block: Vec<i64> = (0..n).map(|i| pseudo(i, salt * 7 + d as u64)).collect();
                let orig = block.clone();
                fwd_transform(&mut block, d);
                inv_transform(&mut block, d);
                for (a, b) in block.iter().zip(&orig) {
                    assert!((a - b).abs() <= slack, "d={d} salt={salt}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn transform_decorrelates_smooth_ramp() {
        // A linear ramp should concentrate energy in the low coefficients.
        let mut block: Vec<i64> = (0..16).map(|i| (i as i64) * 1000).collect();
        fwd_transform(&mut block, 2);
        let order = sequency_order(2);
        let head: i64 = order[..4].iter().map(|&i| block[i].abs()).sum();
        let tail: i64 = order[8..].iter().map(|&i| block[i].abs()).sum();
        assert!(head > 4 * tail.max(1), "head {head} tail {tail}");
    }

    #[test]
    fn transform_gain_is_bounded() {
        // Coefficient magnitudes may not grow more than ~2 bits per axis.
        for d in 1..=3usize {
            let n = BLOCK_EDGE.pow(d as u32);
            let bound = 1i64 << 40;
            for salt in 0..40u64 {
                let mut block: Vec<i64> = (0..n).map(|i| pseudo(i, salt) % bound).collect();
                fwd_transform(&mut block, d);
                for &c in &block {
                    assert!(c.abs() < bound << (2 * d + 1), "d={d} c={c}");
                }
            }
        }
    }

    #[test]
    fn sequency_order_is_permutation_starting_at_dc() {
        for d in 1..=3usize {
            let n = BLOCK_EDGE.pow(d as u32);
            let order = sequency_order(d);
            assert_eq!(order.len(), n);
            let mut seen = vec![false; n];
            for &i in &order {
                assert!(!seen[i]);
                seen[i] = true;
            }
            assert_eq!(order[0], 0, "DC coefficient first");
        }
    }
}
