//! Shard-boundary alignment for fixed-rate streams.
//!
//! ZFP-Rate gives every 4^d block exactly `floor(rate · 4^d)` bits, so the
//! bitstream is periodic: after `lcm(block_bits, 8) / 8` bytes the stream
//! is back on a simultaneous block *and* byte boundary. When a fixed-rate
//! stream is stored in a sharded ARC container (`encode_sharded`), picking
//! the shard size as a multiple of that period keeps shard boundaries on
//! block granularity — an uncorrectable shard then maps to a rectangle of
//! whole blocks instead of clipping a block in half, and a range read of a
//! block-aligned region touches no partial blocks in neighbouring shards.
//!
//! [`aligned_shard_size`] is the sizing hook;
//! [`recommended_shard_size`] applies it to a concrete stream (falling
//! back to the caller's target for accuracy-mode streams, whose blocks are
//! variable length and cannot be aligned).

use arc_lossless::bitio::read_varint;

use crate::{ZfpMode, MAGIC, VERSION};

/// Bits each 4^d block occupies in a fixed-rate stream, or `None` for an
/// invalid rate/dimensionality (mirrors [`ZfpMode::FixedRate`] validation).
pub fn rate_block_bits(rate: f64, d: usize) -> Option<u64> {
    if !(1..=3).contains(&d) || !rate.is_finite() || !(2.0..=48.0).contains(&rate) {
        return None;
    }
    let bl = 4u64.checked_pow(u32::try_from(d).ok()?)?;
    let bits = (rate * bl as f64).floor() as u64;
    (bits > 0).then_some(bits)
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        (a, b) = (b, a % b);
    }
    a
}

/// Smallest byte count spanning a whole number of fixed-rate blocks:
/// `lcm(block_bits, 8) / 8` bytes, holding `8 / gcd(block_bits, 8)` blocks.
pub fn block_byte_period(rate: f64, d: usize) -> Option<u64> {
    let bits = rate_block_bits(rate, d)?;
    Some(bits / gcd(bits, 8))
}

/// Largest block-aligned shard size not exceeding `target` (but never
/// below one period): `target` rounded down to a multiple of
/// [`block_byte_period`]. `None` for invalid rate/dimensionality.
pub fn aligned_shard_size(rate: f64, d: usize, target: usize) -> Option<usize> {
    let period = usize::try_from(block_byte_period(rate, d)?).ok()?;
    if target <= period {
        return Some(period);
    }
    Some(target - target % period)
}

/// Parsed framing of a compressed stream (header fields only — nothing of
/// the payload is decoded).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamInfo {
    /// Compression mode recorded in the header.
    pub mode: ZfpMode,
    /// Grid dimensions, slowest-varying first.
    pub dims: Vec<usize>,
    /// Byte offset where the block payload begins.
    pub payload_offset: usize,
    /// Declared payload length in bytes.
    pub payload_len: usize,
}

/// Parse a stream's header without decoding it. `None` when the bytes are
/// not a well-formed stream of a supported version.
pub fn stream_info(bytes: &[u8]) -> Option<StreamInfo> {
    if bytes.len() < 15 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
        return None;
    }
    let tag = bytes[5];
    let mut b = [0u8; 8];
    b.copy_from_slice(bytes.get(6..14)?);
    let mode = ZfpMode::from_tag(tag, f64::from_le_bytes(b)).ok()?;
    let mut pos = 14usize;
    let ndims = usize::from(*bytes.get(pos)?);
    pos += 1;
    if ndims == 0 || ndims > 3 {
        return None;
    }
    let mut dims = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let v = read_varint(bytes, &mut pos).ok()?;
        if v == 0 {
            return None;
        }
        dims.push(usize::try_from(v).ok()?);
    }
    let payload_len = usize::try_from(read_varint(bytes, &mut pos).ok()?).ok()?;
    if pos.checked_add(payload_len)? > bytes.len() {
        return None;
    }
    Some(StreamInfo { mode, dims, payload_offset: pos, payload_len })
}

/// Byte offset where a **fixed-rate** stream's block payload begins —
/// shard the slice from this offset to get exact block alignment. `None`
/// for accuracy-mode or malformed streams.
pub fn rate_payload_offset(bytes: &[u8]) -> Option<usize> {
    let info = stream_info(bytes)?;
    matches!(info.mode, ZfpMode::FixedRate(_)).then_some(info.payload_offset)
}

/// Shard size to use when wrapping `bytes` in a sharded ARC container,
/// aiming for `target` bytes per shard: block-aligned for fixed-rate
/// streams, `target` unchanged for anything else (accuracy-mode blocks are
/// variable length; alignment is meaningless).
pub fn recommended_shard_size(bytes: &[u8], target: usize) -> usize {
    let aligned = stream_info(bytes).and_then(|info| match info.mode {
        ZfpMode::FixedRate(rate) => aligned_shard_size(rate, info.dims.len(), target),
        ZfpMode::FixedAccuracy(_) => None,
    });
    aligned.unwrap_or(target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{compress, decompress, ZfpMode};

    fn field(dims: &[usize]) -> Vec<f32> {
        let n: usize = dims.iter().product();
        (0..n).map(|i| ((i as f32) * 0.013).sin() * 9.0).collect()
    }

    #[test]
    fn block_bits_and_period() {
        // rate 8, d=2: 128 bits/block → already byte-aligned, 16-byte period.
        assert_eq!(rate_block_bits(8.0, 2), Some(128));
        assert_eq!(block_byte_period(8.0, 2), Some(16));
        // rate 7.5, d=2: 120 bits → lcm(120, 8)/8 = 15 bytes (one block).
        assert_eq!(block_byte_period(7.5, 2), Some(15));
        // rate 2.25, d=1: 9 bits → 9-byte period (8 blocks).
        assert_eq!(rate_block_bits(2.25, 1), Some(9));
        assert_eq!(block_byte_period(2.25, 1), Some(9));
        // rate 16, d=3: 1024 bits → 128 bytes.
        assert_eq!(block_byte_period(16.0, 3), Some(128));
        // Invalid inputs.
        assert_eq!(rate_block_bits(8.0, 0), None);
        assert_eq!(rate_block_bits(8.0, 4), None);
        assert_eq!(rate_block_bits(0.5, 2), None);
        assert_eq!(rate_block_bits(f64::NAN, 2), None);
    }

    #[test]
    fn aligned_size_rounds_down_with_floor_of_one_period() {
        assert_eq!(aligned_shard_size(8.0, 2, 4 << 20), Some(4 << 20)); // already aligned
        assert_eq!(aligned_shard_size(7.5, 2, 100), Some(90)); // 15 · 6
        assert_eq!(aligned_shard_size(7.5, 2, 15), Some(15));
        assert_eq!(aligned_shard_size(7.5, 2, 3), Some(15)); // floor: one period
        assert_eq!(aligned_shard_size(8.0, 5, 100), None);
    }

    #[test]
    fn stream_info_matches_decompress() {
        let dims = [24usize, 36];
        let data = field(&dims);
        for mode in [ZfpMode::FixedRate(8.0), ZfpMode::FixedAccuracy(0.01)] {
            let c = compress(&data, &dims, mode).unwrap();
            let info = stream_info(&c).unwrap();
            assert_eq!(info.mode, mode);
            assert_eq!(info.dims, dims);
            assert_eq!(info.payload_offset + info.payload_len, c.len());
            assert_eq!(decompress(&c).unwrap().dims, dims);
        }
    }

    #[test]
    fn rate_payload_offset_is_rate_only() {
        let dims = [16usize, 16];
        let data = field(&dims);
        let rate = compress(&data, &dims, ZfpMode::FixedRate(4.0)).unwrap();
        let acc = compress(&data, &dims, ZfpMode::FixedAccuracy(0.1)).unwrap();
        let off = rate_payload_offset(&rate).unwrap();
        assert!(off > 14 && off < rate.len());
        assert_eq!(rate_payload_offset(&acc), None);
        assert_eq!(rate_payload_offset(b"not a stream"), None);
        assert_eq!(rate_payload_offset(&rate[..10]), None);
    }

    #[test]
    fn recommended_size_aligns_rate_streams_only() {
        let dims = [32usize, 32];
        let data = field(&dims);
        // 7.5 bits/value → 15-byte period; 1000 rounds down to 990.
        let rate = compress(&data, &dims, ZfpMode::FixedRate(7.5)).unwrap();
        assert_eq!(recommended_shard_size(&rate, 1000), 990);
        let acc = compress(&data, &dims, ZfpMode::FixedAccuracy(0.1)).unwrap();
        assert_eq!(recommended_shard_size(&acc, 1000), 1000);
        assert_eq!(recommended_shard_size(b"garbage", 1000), 1000);
    }

    #[test]
    fn aligned_shards_keep_blocks_whole() {
        // Every shard boundary within the payload lands on a block
        // boundary: boundary bytes are multiples of the period.
        let rate = 7.5;
        let d = 2;
        let bits = rate_block_bits(rate, d).unwrap();
        let shard = aligned_shard_size(rate, d, 1 << 10).unwrap();
        for k in 1..=8u64 {
            let boundary_bits = k * shard as u64 * 8;
            assert_eq!(boundary_bits % bits, 0, "shard boundary {k} splits a block");
        }
    }
}
