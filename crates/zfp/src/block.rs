//! Block decomposition: gathering 4^d blocks from a row-major grid and
//! scattering decoded blocks back.
//!
//! ZFP partitions the grid into 4×4(×4) blocks; boundary blocks are padded
//! by replicating the last in-range sample along each axis (the same policy
//! as the reference implementation), so every block is complete and blocks
//! remain mutually independent — the property that makes ZFP-Rate the most
//! error-resilient mode in the paper's study (§4.3).

use crate::transform::BLOCK_EDGE;

/// Shape of a 1–3 dimensional row-major grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Grid {
    /// Extents, slowest-varying first.
    pub dims: Vec<usize>,
}

impl Grid {
    /// Validate and construct.
    pub fn new(dims: &[usize]) -> Option<Grid> {
        if dims.is_empty() || dims.len() > 3 || dims.contains(&0) {
            return None;
        }
        Some(Grid { dims: dims.to_vec() })
    }

    /// Dimensionality.
    pub fn d(&self) -> usize {
        self.dims.len()
    }

    /// Total elements.
    pub fn len(&self) -> usize {
        self.dims.iter().product()
    }

    /// True when empty (impossible for validated grids).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Values per block (4^d).
    pub fn block_len(&self) -> usize {
        BLOCK_EDGE.pow(self.d() as u32)
    }

    /// Number of blocks along each axis.
    pub fn block_counts(&self) -> Vec<usize> {
        self.dims.iter().map(|&d| d.div_ceil(BLOCK_EDGE)).collect()
    }

    /// Total number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.block_counts().iter().product()
    }

    /// The block origin (per-axis start indices) of block `b`.
    fn block_origin(&self, b: usize) -> Vec<usize> {
        let counts = self.block_counts();
        let mut rem = b;
        let mut origin = vec![0usize; counts.len()];
        for ax in (0..counts.len()).rev() {
            origin[ax] = (rem % counts[ax]) * BLOCK_EDGE;
            rem /= counts[ax];
        }
        origin
    }

    /// Gather block `b` from `data` into `block` (length 4^d), replicating
    /// edge samples for out-of-range positions.
    pub fn gather(&self, data: &[f32], b: usize, block: &mut [f32]) {
        debug_assert_eq!(data.len(), self.len());
        debug_assert_eq!(block.len(), self.block_len());
        let origin = self.block_origin(b);
        let d = self.d();
        let clamp = |ax: usize, off: usize| -> usize { (origin[ax] + off).min(self.dims[ax] - 1) };
        match d {
            1 => {
                for i in 0..BLOCK_EDGE {
                    block[i] = data[clamp(0, i)];
                }
            }
            2 => {
                let cols = self.dims[1];
                for i in 0..BLOCK_EDGE {
                    let r = clamp(0, i);
                    for j in 0..BLOCK_EDGE {
                        block[i * 4 + j] = data[r * cols + clamp(1, j)];
                    }
                }
            }
            _ => {
                let (sj, si) = (self.dims[2], self.dims[1] * self.dims[2]);
                for i in 0..BLOCK_EDGE {
                    let z = clamp(0, i);
                    for j in 0..BLOCK_EDGE {
                        let y = clamp(1, j);
                        for k in 0..BLOCK_EDGE {
                            block[i * 16 + j * 4 + k] = data[z * si + y * sj + clamp(2, k)];
                        }
                    }
                }
            }
        }
    }

    /// Scatter decoded block `b` back into `data`, skipping padded samples.
    pub fn scatter(&self, data: &mut [f32], b: usize, block: &[f32]) {
        debug_assert_eq!(data.len(), self.len());
        let origin = self.block_origin(b);
        let d = self.d();
        match d {
            1 => {
                for (i, &v) in block.iter().enumerate().take(BLOCK_EDGE) {
                    let x = origin[0] + i;
                    if x < self.dims[0] {
                        data[x] = v;
                    }
                }
            }
            2 => {
                let cols = self.dims[1];
                for i in 0..BLOCK_EDGE {
                    let r = origin[0] + i;
                    if r >= self.dims[0] {
                        break;
                    }
                    for j in 0..BLOCK_EDGE {
                        let c = origin[1] + j;
                        if c < self.dims[1] {
                            data[r * cols + c] = block[i * 4 + j];
                        }
                    }
                }
            }
            _ => {
                let (sj, si) = (self.dims[2], self.dims[1] * self.dims[2]);
                for i in 0..BLOCK_EDGE {
                    let z = origin[0] + i;
                    if z >= self.dims[0] {
                        break;
                    }
                    for j in 0..BLOCK_EDGE {
                        let y = origin[1] + j;
                        if y >= self.dims[1] {
                            break;
                        }
                        for k in 0..BLOCK_EDGE {
                            let x = origin[2] + k;
                            if x < self.dims[2] {
                                data[z * si + y * sj + x] = block[i * 16 + j * 4 + k];
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_validation() {
        assert!(Grid::new(&[]).is_none());
        assert!(Grid::new(&[0, 4]).is_none());
        assert!(Grid::new(&[2, 2, 2, 2]).is_none());
        let g = Grid::new(&[5, 9]).unwrap();
        assert_eq!(g.block_counts(), vec![2, 3]);
        assert_eq!(g.num_blocks(), 6);
        assert_eq!(g.block_len(), 16);
    }

    #[test]
    fn gather_scatter_round_trip_exact_fit() {
        let g = Grid::new(&[8, 8]).unwrap();
        let data: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let mut out = vec![0.0f32; 64];
        let mut block = vec![0.0f32; 16];
        for b in 0..g.num_blocks() {
            g.gather(&data, b, &mut block);
            g.scatter(&mut out, b, &block);
        }
        assert_eq!(out, data);
    }

    #[test]
    fn gather_scatter_round_trip_ragged() {
        for dims in [vec![5usize], vec![5, 7], vec![3, 5, 6], vec![1, 1, 1], vec![4, 4, 5]] {
            let g = Grid::new(&dims).unwrap();
            let n = g.len();
            let data: Vec<f32> = (0..n).map(|i| (i as f32).sin()).collect();
            let mut out = vec![f32::NAN; n];
            let mut block = vec![0.0f32; g.block_len()];
            for b in 0..g.num_blocks() {
                g.gather(&data, b, &mut block);
                g.scatter(&mut out, b, &block);
            }
            assert_eq!(out, data, "dims {dims:?}");
        }
    }

    #[test]
    fn padding_replicates_edges() {
        let g = Grid::new(&[5]).unwrap(); // blocks: [0..4), [4..8) padded
        let data = [10.0f32, 20.0, 30.0, 40.0, 50.0];
        let mut block = vec![0.0f32; 4];
        g.gather(&data, 1, &mut block);
        assert_eq!(block, vec![50.0, 50.0, 50.0, 50.0]);
    }

    #[test]
    fn blocks_cover_disjoint_regions() {
        let g = Grid::new(&[4, 8]).unwrap();
        let data = vec![1.0f32; 32];
        let mut counts = vec![0u32; 32];
        let mut block = vec![0.0f32; 16];
        for b in 0..g.num_blocks() {
            g.gather(&data, b, &mut block);
            // Scatter a marker and count writes.
            let mut probe = vec![0.0f32; 32];
            g.scatter(&mut probe, b, &[1.0f32; 16]);
            for (i, &v) in probe.iter().enumerate() {
                if v == 1.0 {
                    counts[i] += 1;
                }
            }
        }
        assert!(counts.iter().all(|&c| c == 1), "{counts:?}");
    }
}
