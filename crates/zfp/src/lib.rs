//! # arc-zfp — ZFP-like transform-based lossy compressor
//!
//! A from-scratch reproduction of ZFP's published pipeline (Lindstrom 2014;
//! §2.1.2 of the ARC paper): the grid is cut into independent 4^d blocks,
//! each block is exponent-aligned to signed fixed point, decorrelated with
//! ZFP's near-orthogonal lifting transform, mapped to negabinary, and coded
//! one bit plane at a time with group testing.
//!
//! Two modes mirror the paper's study:
//!
//! * **Fixed accuracy** ([`ZfpMode::FixedAccuracy`], "ZFP-ACC") — bit planes
//!   are kept until the reconstruction error is within the tolerance; the
//!   encoder verifies each block and deepens coding as needed, so the bound
//!   is a hard guarantee. Blocks are variable length, making the stream
//!   serial (corruption can desynchronize later blocks — the behaviour
//!   behind ZFP-ACC's ~10% average error propagation in Fig 3c).
//! * **Fixed rate** ([`ZfpMode::FixedRate`], "ZFP-Rate") — every block gets
//!   exactly `rate · 4^d` bits, truncated mid-plane if necessary. Block `i`
//!   starts at bit `i · rate · 4^d`: random access, fully decoupled blocks,
//!   and the paper's most error-resilient mode (a flip stays inside one
//!   block, Fig 3d) — at the cost of an unbounded error and a fixed 32/rate
//!   compression ratio.

#![warn(missing_docs)]

pub mod block;
pub mod codec;
pub mod error;
pub mod shard;
pub mod transform;

pub use block::Grid;
pub use error::ZfpError;
pub use shard::{aligned_shard_size, recommended_shard_size, stream_info};

use arc_lossless::bitio::{read_varint, write_varint, BitReader, BitWriter};
use codec::{decode_planes, encode_planes, exponent_of, forward_block, inverse_block, K_TOP};

/// Stream magic.
pub const MAGIC: &[u8; 4] = b"AZFP";
/// Format version.
pub const VERSION: u8 = 1;

/// Compression mode.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ZfpMode {
    /// Bound the maximum absolute error ("ZFP-ACC" / accuracy mode).
    FixedAccuracy(f64),
    /// Spend exactly `rate` bits per value ("ZFP-Rate").
    FixedRate(f64),
}

impl ZfpMode {
    fn validate(&self) -> Result<(), ZfpError> {
        match *self {
            ZfpMode::FixedAccuracy(e) if e.is_finite() && e > 0.0 => Ok(()),
            ZfpMode::FixedRate(r) if r.is_finite() && (2.0..=48.0).contains(&r) => Ok(()),
            _ => Err(ZfpError::Malformed(format!("invalid mode {self:?}"))),
        }
    }

    fn tag(&self) -> u8 {
        match self {
            ZfpMode::FixedAccuracy(_) => 0,
            ZfpMode::FixedRate(_) => 1,
        }
    }

    fn param(&self) -> f64 {
        match *self {
            ZfpMode::FixedAccuracy(e) => e,
            ZfpMode::FixedRate(r) => r,
        }
    }

    fn from_tag(tag: u8, param: f64) -> Result<ZfpMode, ZfpError> {
        let m = match tag {
            0 => ZfpMode::FixedAccuracy(param),
            1 => ZfpMode::FixedRate(param),
            t => return Err(ZfpError::Malformed(format!("unknown mode tag {t}"))),
        };
        m.validate()?;
        Ok(m)
    }
}

/// Decode-side resource limits (Timeout guard, as in `arc-sz`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeLimits {
    /// Maximum output elements accepted.
    pub max_elements: u64,
}

impl Default for DecodeLimits {
    fn default() -> Self {
        DecodeLimits { max_elements: 1 << 31 }
    }
}

/// A decompressed dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct ZfpDecoded {
    /// Values in row-major order.
    pub data: Vec<f32>,
    /// Grid dimensions, slowest-varying first.
    pub dims: Vec<usize>,
}

/// Per-block flag values.
const FLAG_NORMAL: u64 = 0;
const FLAG_ZERO: u64 = 1;
const FLAG_LITERAL: u64 = 2;

const EMAX_BITS: u32 = 9;
const EMAX_BIAS: i32 = 256;
const KFIELD_BITS: u32 = 6;

/// Per-call stage accumulators for the block encode loop: local adds per
/// block, one registry flush per `compress` call (see `arc-telemetry`).
struct EncodeStages {
    transform: arc_telemetry::StageAccumulator,
    embed: arc_telemetry::StageAccumulator,
}

/// Per-call stage accumulators for the block decode loop.
struct DecodeStages {
    embed: arc_telemetry::StageAccumulator,
    transform: arc_telemetry::StageAccumulator,
}

/// Compress `data` (row-major, `dims` slowest-first) under `mode`.
pub fn compress(data: &[f32], dims: &[usize], mode: ZfpMode) -> Result<Vec<u8>, ZfpError> {
    let _span = arc_telemetry::span("zfp.compress");
    arc_telemetry::counter_add("zfp.compress.elements", data.len() as u64);
    mode.validate()?;
    let grid =
        Grid::new(dims).ok_or_else(|| ZfpError::Malformed(format!("invalid dims {dims:?}")))?;
    if grid.len() != data.len() {
        return Err(ZfpError::Malformed(format!(
            "dims {:?} describe {} elements but {} provided",
            dims,
            grid.len(),
            data.len()
        )));
    }
    let d = grid.d();
    let bl = grid.block_len();
    let rate_budget = match mode {
        ZfpMode::FixedRate(r) => {
            let budget = (r * bl as f64).floor() as u64;
            let header = 2 + EMAX_BITS as u64 + KFIELD_BITS as u64;
            if budget < header + 8 {
                return Err(ZfpError::Malformed(format!(
                    "rate {r} leaves no payload after the {header}-bit block header"
                )));
            }
            Some(budget)
        }
        ZfpMode::FixedAccuracy(_) => None,
    };

    let mut header = Vec::new();
    header.extend_from_slice(MAGIC);
    header.push(VERSION);
    header.push(mode.tag());
    header.extend_from_slice(&mode.param().to_le_bytes());
    header.push(d as u8);
    for &dim in dims {
        write_varint(&mut header, dim as u64);
    }

    let mut w = BitWriter::new();
    let mut blk = vec![0.0f32; bl];
    let mut decoded = vec![0.0f32; bl];
    let mut decompose = arc_telemetry::StageAccumulator::new("zfp.compress.decompose");
    let mut stages = EncodeStages {
        transform: arc_telemetry::StageAccumulator::new("zfp.compress.transform"),
        embed: arc_telemetry::StageAccumulator::new("zfp.compress.embed"),
    };
    arc_telemetry::counter_add("zfp.compress.blocks", grid.num_blocks() as u64);
    for b in 0..grid.num_blocks() {
        decompose.time(|| grid.gather(data, b, &mut blk));
        let start_bits = w.bit_len();
        encode_one_block(&blk, d, mode, rate_budget, &mut w, &mut decoded, &mut stages)?;
        if let Some(budget) = rate_budget {
            // Pad to the exact per-block budget (fixed rate ⇒ random access).
            let used = w.bit_len() - start_bits;
            debug_assert!(used <= budget, "block exceeded rate budget");
            let mut pad = budget - used;
            while pad > 0 {
                let chunk = pad.min(64) as u32;
                w.write_bits(0, chunk);
                pad -= chunk as u64;
            }
        }
    }
    let payload = w.into_bytes();
    let mut out = header;
    write_varint(&mut out, payload.len() as u64);
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Encode one padded block. For fixed accuracy the encoder deepens `kmin`
/// until the decoded block verifies against the tolerance, falling back to
/// a raw literal block when even full precision cannot satisfy it.
fn encode_one_block(
    blk: &[f32],
    d: usize,
    mode: ZfpMode,
    rate_budget: Option<u64>,
    w: &mut BitWriter,
    scratch: &mut [f32],
    stages: &mut EncodeStages,
) -> Result<(), ZfpError> {
    let bl = blk.len();
    let max_abs = blk.iter().fold(0.0f64, |m, &x| m.max((x as f64).abs()));
    if max_abs == 0.0 {
        w.write_bits(FLAG_ZERO, 2);
        if let Some(budget) = rate_budget {
            debug_assert!(budget >= 2);
        }
        return Ok(());
    }
    if !max_abs.is_finite() {
        // Blocks containing non-finite values are stored verbatim.
        w.write_bits(FLAG_LITERAL, 2);
        for &x in blk {
            w.write_bits(x.to_bits() as u64, 32);
        }
        return Ok(());
    }
    let emax = exponent_of(max_abs);
    let coeffs = stages.transform.time(|| forward_block(blk, emax, d));
    match mode {
        ZfpMode::FixedRate(_) => {
            let Some(budget) = rate_budget else {
                return Err(ZfpError::Malformed("rate budget absent in rate mode".into()));
            };
            let header = 2 + EMAX_BITS as u64 + KFIELD_BITS as u64;
            w.write_bits(FLAG_NORMAL, 2);
            w.write_bits((emax + EMAX_BIAS) as u64, EMAX_BITS);
            w.write_bits(coeffs.kmax as u64, KFIELD_BITS);
            // A rate low enough that the block header exhausts the budget
            // leaves zero plane bits; saturate rather than underflow.
            stages.embed.time(|| {
                encode_planes(&coeffs.nb, coeffs.kmax, 0, budget.saturating_sub(header), w)
            });
            Ok(())
        }
        ZfpMode::FixedAccuracy(tol) => {
            // The whole plane-depth search (trial encode + verify decode)
            // is the embed stage; multiple exits force a manual stopwatch.
            let sw = arc_telemetry::Stopwatch::start();
            // Initial guess: the plane whose weight (after transform-gain
            // amplification) drops below the tolerance.
            let scale_log = (codec::PRECISION - 2 - emax) as f64;
            let guess = (tol.log2() + scale_log).floor() as i64 - 2 * d as i64 - 1;
            let mut kmin = guess.clamp(0, coeffs.kmax as i64) as u32;
            loop {
                // Trial-decode and verify the bound.
                let mut trial = BitWriter::new();
                encode_planes(&coeffs.nb, coeffs.kmax, kmin, u64::MAX / 2, &mut trial);
                let bytes = trial.into_bytes();
                let mut nb = vec![0u64; bl];
                let mut r = BitReader::new(&bytes);
                decode_planes(&mut nb, coeffs.kmax, kmin, u64::MAX / 2, &mut r)?;
                inverse_block(&nb, emax, d, scratch);
                let ok = blk
                    .iter()
                    .zip(scratch.iter())
                    .all(|(a, b)| (*a as f64 - *b as f64).abs() <= tol);
                if ok {
                    w.write_bits(FLAG_NORMAL, 2);
                    w.write_bits((emax + EMAX_BIAS) as u64, EMAX_BITS);
                    w.write_bits(coeffs.kmax as u64, KFIELD_BITS);
                    w.write_bits(kmin as u64, KFIELD_BITS);
                    encode_planes(&coeffs.nb, coeffs.kmax, kmin, u64::MAX / 2, w);
                    stages.embed.add_ns(sw.elapsed_ns());
                    return Ok(());
                }
                if kmin == 0 {
                    // Fixed-point resolution itself violates the tolerance;
                    // store the block verbatim to keep the guarantee.
                    w.write_bits(FLAG_LITERAL, 2);
                    for &x in blk {
                        w.write_bits(x.to_bits() as u64, 32);
                    }
                    stages.embed.add_ns(sw.elapsed_ns());
                    return Ok(());
                }
                kmin = kmin.saturating_sub(2);
            }
        }
    }
}

/// Decompress with default limits.
pub fn decompress(bytes: &[u8]) -> Result<ZfpDecoded, ZfpError> {
    decompress_with_limits(bytes, &DecodeLimits::default())
}

/// Decompress with explicit limits.
pub fn decompress_with_limits(bytes: &[u8], limits: &DecodeLimits) -> Result<ZfpDecoded, ZfpError> {
    let _span = arc_telemetry::span("zfp.decompress");
    let need = |n: usize, pos: usize| -> Result<(), ZfpError> {
        if pos + n > bytes.len() {
            Err(ZfpError::Truncated("header".into()))
        } else {
            Ok(())
        }
    };
    need(6, 0)?;
    if &bytes[..4] != MAGIC {
        return Err(ZfpError::Malformed("bad ZFP magic".into()));
    }
    if bytes[4] != VERSION {
        return Err(ZfpError::Malformed(format!("unsupported version {}", bytes[4])));
    }
    let tag = bytes[5];
    let mut pos = 6usize;
    need(8, pos)?;
    let param = le_f64(bytes, pos);
    pos += 8;
    let mode = ZfpMode::from_tag(tag, param)?;
    need(1, pos)?;
    let ndims = bytes[pos] as usize;
    pos += 1;
    if ndims == 0 || ndims > 3 {
        return Err(ZfpError::Malformed(format!("unsupported dimensionality {ndims}")));
    }
    // arc-lint: bounded(ndims <= 3 checked above)
    let mut dims = Vec::with_capacity(ndims);
    let mut product: u64 = 1;
    for _ in 0..ndims {
        let v =
            read_varint(bytes, &mut pos).map_err(|e| ZfpError::Malformed(format!("dims: {e}")))?;
        if v == 0 {
            return Err(ZfpError::Malformed("zero-extent dimension".into()));
        }
        product = product
            .checked_mul(v)
            .ok_or_else(|| ZfpError::Malformed("dimension overflow".into()))?;
        dims.push(v as usize);
    }
    if product > limits.max_elements {
        return Err(ZfpError::WorkBudgetExceeded {
            demanded: product,
            budget: limits.max_elements,
        });
    }
    let payload_len = read_varint(bytes, &mut pos)
        .map_err(|e| ZfpError::Malformed(format!("payload length: {e}")))?
        as usize;
    let end = pos
        .checked_add(payload_len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| ZfpError::Truncated("payload".into()))?;
    let payload = &bytes[pos..end];

    let grid = Grid::new(&dims).ok_or_else(|| ZfpError::Malformed("invalid dims".into()))?;
    let d = grid.d();
    let bl = grid.block_len();
    let rate_budget = match mode {
        ZfpMode::FixedRate(r) => Some((r * bl as f64).floor() as u64),
        ZfpMode::FixedAccuracy(_) => None,
    };
    let mut r = BitReader::new(payload);
    let mut out = vec![0.0f32; grid.len()];
    // arc-lint: bounded(bl = block_len <= 64)
    let mut blk = vec![0.0f32; bl];
    let mut scatter = arc_telemetry::StageAccumulator::new("zfp.decompress.scatter");
    let mut stages = DecodeStages {
        embed: arc_telemetry::StageAccumulator::new("zfp.decompress.embed"),
        transform: arc_telemetry::StageAccumulator::new("zfp.decompress.transform"),
    };
    for b in 0..grid.num_blocks() {
        let start_bits = r.bit_pos();
        decode_one_block(&mut r, d, bl, mode, rate_budget, &mut blk, &mut stages)?;
        if let Some(budget) = rate_budget {
            // Jump to the next block boundary regardless of payload shape.
            let target = start_bits + budget;
            skip_to(&mut r, target)?;
        }
        scatter.time(|| grid.scatter(&mut out, b, &blk));
    }
    Ok(ZfpDecoded { data: out, dims })
}

fn skip_to(r: &mut BitReader<'_>, target: u64) -> Result<(), ZfpError> {
    while r.bit_pos() < target {
        let step = (target - r.bit_pos()).min(64).min(r.remaining()) as u32;
        if step == 0 || r.read_bits(step).is_err() {
            break; // exhausted: remaining blocks decode as zeros
        }
    }
    Ok(())
}

/// Clamped little-endian `f64` load: bytes past the end read as zero.
/// Callers bounds-check first (`need`), so the clamp is defense in depth.
fn le_f64(bytes: &[u8], pos: usize) -> f64 {
    let mut b = [0u8; 8];
    if let Some(src) = bytes.get(pos..pos + 8) {
        b.copy_from_slice(src);
    }
    f64::from_le_bytes(b)
}

fn decode_one_block(
    r: &mut BitReader<'_>,
    d: usize,
    bl: usize,
    mode: ZfpMode,
    rate_budget: Option<u64>,
    blk: &mut [f32],
    stages: &mut DecodeStages,
) -> Result<(), ZfpError> {
    // Field reads are permissive: like the real ZFP decoder, a corrupted or
    // exhausted stream produces garbage blocks rather than exceptions (the
    // §4.2 finding that 100% of ZFP fault-injection trials "Completed").
    // Out-of-range control fields are clamped, the reserved flag value is
    // treated as a zero block, and missing bits read as zeros.
    let flag = r.read_bits(2).unwrap_or(FLAG_ZERO);
    match flag {
        FLAG_LITERAL => {
            for x in blk.iter_mut() {
                let bits = r.read_bits(32).unwrap_or(0);
                *x = f32::from_bits(bits as u32);
            }
            Ok(())
        }
        FLAG_NORMAL => {
            let emax = r.read_bits(EMAX_BITS).unwrap_or(0) as i32 - EMAX_BIAS;
            let kmax = (r.read_bits(KFIELD_BITS).unwrap_or(0) as u32).min(K_TOP);
            // arc-lint: bounded(bl = block_len <= 64)
            let mut nb = vec![0u64; bl];
            let sw = arc_telemetry::Stopwatch::start();
            match mode {
                ZfpMode::FixedRate(_) => {
                    let header = 2 + EMAX_BITS as u64 + KFIELD_BITS as u64;
                    // A corrupted rate can imply a per-block budget smaller
                    // than the header it just read; saturate to zero plane
                    // bits instead of underflowing.
                    let budget = rate_budget.unwrap_or(0).saturating_sub(header);
                    decode_planes(&mut nb, kmax, 0, budget, r)?;
                }
                ZfpMode::FixedAccuracy(_) => {
                    let kmin = (r.read_bits(KFIELD_BITS).unwrap_or(0) as u32).min(kmax);
                    decode_planes(&mut nb, kmax, kmin, u64::MAX / 2, r)?;
                }
            }
            stages.embed.add_ns(sw.elapsed_ns());
            stages.transform.time(|| inverse_block(&nb, emax, d, blk));
            Ok(())
        }
        // FLAG_ZERO and the reserved value both clear the block.
        _ => {
            blk.fill(0.0);
            Ok(())
        }
    }
}

/// Compression ratio helper (32-bit floats against compressed bytes).
pub fn compression_ratio(original_elements: usize, compressed_len: usize) -> f64 {
    if compressed_len == 0 {
        return f64::INFINITY;
    }
    (original_elements * 4) as f64 / compressed_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth(dims: &[usize]) -> Vec<f32> {
        let n: usize = dims.iter().product();
        (0..n)
            .map(|i| {
                let x = i as f32;
                (x * 0.011).sin() * 20.0 + (x * 0.0007).cos() * 5.0
            })
            .collect()
    }

    fn max_err(a: &[f32], b: &[f32]) -> f64 {
        a.iter().zip(b).map(|(x, y)| (*x as f64 - *y as f64).abs()).fold(0.0, f64::max)
    }

    #[test]
    fn accuracy_mode_respects_tolerance() {
        for dims in [vec![300usize], vec![33, 45], vec![10, 12, 14]] {
            let data = smooth(&dims);
            for tol in [10.0, 0.1, 1e-3, 1e-6] {
                let c = compress(&data, &dims, ZfpMode::FixedAccuracy(tol)).unwrap();
                let d = decompress(&c).unwrap();
                assert_eq!(d.dims, dims);
                assert!(
                    max_err(&data, &d.data) <= tol,
                    "dims {dims:?} tol {tol}: err {}",
                    max_err(&data, &d.data)
                );
            }
        }
    }

    #[test]
    fn accuracy_mode_compresses_smooth_data() {
        let dims = [64usize, 64];
        let data = smooth(&dims);
        let c = compress(&data, &dims, ZfpMode::FixedAccuracy(0.1)).unwrap();
        let cr = compression_ratio(data.len(), c.len());
        assert!(cr > 3.0, "cr {cr}");
    }

    #[test]
    fn looser_tolerance_compresses_more() {
        let dims = [48usize, 48];
        let data = smooth(&dims);
        let tight = compress(&data, &dims, ZfpMode::FixedAccuracy(1e-6)).unwrap();
        let loose = compress(&data, &dims, ZfpMode::FixedAccuracy(1.0)).unwrap();
        assert!(loose.len() < tight.len());
    }

    #[test]
    fn rate_mode_hits_exact_ratio() {
        let dims = [64usize, 64, 64]; // divisible by 4 in every axis
        let data = smooth(&dims);
        for rate in [4.0, 8.0, 16.0] {
            let c = compress(&data, &dims, ZfpMode::FixedRate(rate)).unwrap();
            let payload_bits = (data.len() as f64) * rate;
            let total = payload_bits / 8.0 + 32.0; // header slack
            assert!((c.len() as f64) <= total + 8.0, "rate {rate}: {} vs {}", c.len(), total);
            let d = decompress(&c).unwrap();
            // Rate 16 on smooth data should be quite accurate.
            if rate >= 16.0 {
                assert!(max_err(&data, &d.data) < 0.1);
            }
        }
    }

    #[test]
    fn rate_mode_blocks_are_independent() {
        // Corrupting one block's bits must not affect any other block.
        let dims = [32usize, 32];
        let data = smooth(&dims);
        let rate = 8.0;
        let c = compress(&data, &dims, ZfpMode::FixedRate(rate)).unwrap();
        let base = decompress(&c).unwrap().data;
        // Header: magic(4) + version(1) + tag(1) + param(8) + ndims(1) +
        // two 1-byte dim varints, then the payload-length varint.
        let mut p = 4 + 1 + 1 + 8 + 1 + 2;
        let _ = arc_lossless::bitio::read_varint(&c, &mut p).unwrap();
        let payload_start = p;
        let block_bits = (rate * 16.0) as usize;
        // Flip a bit in the middle of block 5.
        let mut bad = c.clone();
        let bit = payload_start * 8 + 5 * block_bits + block_bits / 2;
        bad[bit / 8] ^= 1 << (7 - (bit % 8));
        let corrupted = decompress(&bad).unwrap().data;
        let mut blocks_changed = std::collections::HashSet::new();
        for (i, (a, b)) in base.iter().zip(&corrupted).enumerate() {
            if a != b {
                let (row, col) = (i / 32, i % 32);
                blocks_changed.insert((row / 4, col / 4));
            }
        }
        assert!(blocks_changed.len() <= 1, "changed blocks: {blocks_changed:?}");
    }

    #[test]
    fn constant_and_zero_fields() {
        let dims = [16usize, 16];
        let zeros = vec![0.0f32; 256];
        let c = compress(&zeros, &dims, ZfpMode::FixedAccuracy(1e-9)).unwrap();
        assert!(c.len() < 64, "all-zero field should be tiny: {}", c.len());
        assert_eq!(decompress(&c).unwrap().data, zeros);
        let consts = vec![3.25f32; 256];
        let c = compress(&consts, &dims, ZfpMode::FixedAccuracy(1e-6)).unwrap();
        let d = decompress(&c).unwrap();
        assert!(max_err(&consts, &d.data) <= 1e-6);
    }

    #[test]
    fn nonfinite_blocks_survive_via_literal_escape() {
        let mut data = smooth(&[8, 8]);
        data[10] = f32::NAN;
        data[40] = f32::INFINITY;
        let c = compress(&data, &[8, 8], ZfpMode::FixedAccuracy(0.01)).unwrap();
        let d = decompress(&c).unwrap();
        assert!(d.data[10].is_nan());
        assert_eq!(d.data[40], f32::INFINITY);
    }

    #[test]
    fn impossible_tolerance_falls_back_to_literal() {
        let data = smooth(&[8, 8]);
        let c = compress(&data, &[8, 8], ZfpMode::FixedAccuracy(1e-300)).unwrap();
        let d = decompress(&c).unwrap();
        assert_eq!(d.data, data, "literal escape must be exact");
    }

    #[test]
    fn ragged_grids_round_trip() {
        for dims in [vec![5usize], vec![7, 9], vec![5, 6, 7], vec![1, 1, 1]] {
            let data = smooth(&dims);
            let c = compress(&data, &dims, ZfpMode::FixedAccuracy(1e-3)).unwrap();
            let d = decompress(&c).unwrap();
            assert_eq!(d.dims, dims);
            assert!(max_err(&data, &d.data) <= 1e-3, "dims {dims:?}");
        }
    }

    #[test]
    fn mode_validation() {
        let data = vec![1.0f32; 16];
        assert!(compress(&data, &[4, 4], ZfpMode::FixedAccuracy(0.0)).is_err());
        assert!(compress(&data, &[4, 4], ZfpMode::FixedRate(0.5)).is_err());
        assert!(compress(&data, &[4, 4], ZfpMode::FixedRate(100.0)).is_err());
        assert!(compress(&data, &[4, 5], ZfpMode::FixedRate(8.0)).is_err());
    }

    #[test]
    fn corrupted_stream_never_panics() {
        let dims = [24usize, 24];
        let data = smooth(&dims);
        for mode in [ZfpMode::FixedAccuracy(0.05), ZfpMode::FixedRate(8.0)] {
            let c = compress(&data, &dims, mode).unwrap();
            for i in (0..c.len()).step_by(5) {
                let mut bad = c.clone();
                bad[i] ^= 1 << (i % 8);
                let _ = decompress_with_limits(&bad, &DecodeLimits { max_elements: 1 << 20 });
            }
        }
    }

    #[test]
    fn truncation_detected() {
        let data = smooth(&[16, 16]);
        let c = compress(&data, &[16, 16], ZfpMode::FixedRate(8.0)).unwrap();
        for cut in [0usize, 3, 10, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn decode_budget_triggers_timeout_class() {
        let data = smooth(&[32, 32]);
        let c = compress(&data, &[32, 32], ZfpMode::FixedAccuracy(0.01)).unwrap();
        match decompress_with_limits(&c, &DecodeLimits { max_elements: 10 }) {
            Err(ZfpError::WorkBudgetExceeded { demanded: 1024, budget: 10 }) => {}
            other => panic!("expected timeout class, got {other:?}"),
        }
    }

    #[test]
    fn psnr_improves_with_rate() {
        let dims = [64usize, 64];
        let data = smooth(&dims);
        let mut last_err = f64::INFINITY;
        for rate in [4.0, 8.0, 16.0, 32.0] {
            let c = compress(&data, &dims, ZfpMode::FixedRate(rate)).unwrap();
            let d = decompress(&c).unwrap();
            let err = max_err(&data, &d.data);
            assert!(err <= last_err * 1.5, "rate {rate}: err {err} vs prev {last_err}");
            last_err = err;
        }
        assert!(last_err < 1e-3, "32 bits/value should be near-exact: {last_err}");
    }
}
