//! Per-block coding: fixed-point conversion, negabinary mapping, and
//! embedded bit-plane coding with group testing.
//!
//! This follows ZFP's published coding chain (§2.1.2 of the ARC paper):
//! block floats are aligned to a common exponent and converted to signed
//! fixed point, decorrelated by the lifting transform, mapped to negabinary
//! so magnitude ordering survives bit truncation, and emitted one bit plane
//! at a time. Within a plane, already-active coefficients are coded
//! verbatim and the inactive suffix is unary run-length coded ("group
//! testing"), so smooth blocks whose high-frequency coefficients are tiny
//! cost a handful of bits per plane instead of 4^d.

use arc_lossless::bitio::{BitReader, BitWriter};

use crate::error::ZfpError;
use crate::transform::{fwd_transform, inv_transform, sequency_order};

/// Fixed-point precision in bits: block values are scaled so the largest
/// magnitude sits just below 2^(PRECISION−2), leaving headroom for the
/// transform's ≤2-bits-per-axis gain inside an `i64`.
pub const PRECISION: i32 = 40;

/// Highest bit plane the coder will touch (covers transform gain plus the
/// negabinary expansion bit).
pub const K_TOP: u32 = 50;

const NBMASK: u64 = 0xAAAA_AAAA_AAAA_AAAA;

/// Two's-complement → negabinary.
#[inline]
pub fn to_negabinary(x: i64) -> u64 {
    (x as u64).wrapping_add(NBMASK) ^ NBMASK
}

/// Negabinary → two's-complement.
#[inline]
pub fn from_negabinary(u: u64) -> i64 {
    ((u ^ NBMASK).wrapping_sub(NBMASK)) as i64
}

/// Exponent `e` such that `2^(e−1) ≤ |x| < 2^e` for the largest magnitude,
/// i.e. the frexp exponent of `max_abs`.
#[inline]
pub fn exponent_of(max_abs: f64) -> i32 {
    debug_assert!(max_abs > 0.0 && max_abs.is_finite());
    ((max_abs.to_bits() >> 52) & 0x7FF) as i32 - 1022
}

/// Convert a block of floats to fixed point against exponent `emax`;
/// returns `q = round(x · 2^S)` with `S = PRECISION − 2 − emax`.
pub fn to_fixed_point(block: &[f32], emax: i32, out: &mut [i64]) {
    let scale = (2f64).powi(PRECISION - 2 - emax);
    for (q, &x) in out.iter_mut().zip(block) {
        *q = (x as f64 * scale).round() as i64;
    }
}

/// Convert fixed-point values back to floats.
pub fn from_fixed_point(q: &[i64], emax: i32, out: &mut [f32]) {
    let scale = (2f64).powi(-(PRECISION - 2 - emax));
    for (x, &v) in out.iter_mut().zip(q) {
        *x = (v as f64 * scale) as f32;
    }
}

/// Encode bit planes `kmax ..= kmin` (MSB first) of negabinary coefficients
/// already permuted into sequency order. Stops when `budget` bits have been
/// written; returns bits actually written.
pub fn encode_planes(coeffs: &[u64], kmax: u32, kmin: u32, budget: u64, w: &mut BitWriter) -> u64 {
    let size = coeffs.len();
    debug_assert!(size <= 64);
    let mut left = budget;
    let mut n = 0usize;
    let mut k = kmax as i64;
    while k >= kmin as i64 && left > 0 {
        let mut x: u64 = 0;
        for (i, &c) in coeffs.iter().enumerate() {
            x |= ((c >> k) & 1) << i;
        }
        // Verbatim value bits of the active prefix.
        let mut i = 0usize;
        while i < n && left > 0 {
            w.write_bit(x & 1 == 1);
            left -= 1;
            x >>= 1;
            i += 1;
        }
        if i < n {
            break;
        }
        // Group-tested unary coding of the inactive suffix.
        'outer: while n < size && left > 0 {
            let any = x != 0;
            w.write_bit(any);
            left -= 1;
            if !any {
                break;
            }
            loop {
                if n == size - 1 {
                    // Only one coefficient remains and the group bit said it
                    // is set — implicit, no bit spent.
                    x >>= 1;
                    n += 1;
                    break;
                }
                if left == 0 {
                    break 'outer;
                }
                let b = x & 1 == 1;
                w.write_bit(b);
                left -= 1;
                x >>= 1;
                n += 1;
                if b {
                    break;
                }
            }
        }
        k -= 1;
    }
    budget - left
}

/// Decode bit planes written by [`encode_planes`]; mirrors its control flow
/// exactly (including early budget exhaustion, which simply leaves lower
/// planes zero).
///
/// An exhausted bitstream reads as zero bits rather than failing: real ZFP
/// decodes from word streams that tail off into zeros, which is what lets
/// corrupted (desynchronized) streams keep "decoding" garbage — the
/// behaviour behind the paper's 100%-Completed finding for ZFP (§4.2).
pub fn decode_planes(
    coeffs: &mut [u64],
    kmax: u32,
    kmin: u32,
    budget: u64,
    r: &mut BitReader<'_>,
) -> Result<u64, ZfpError> {
    let size = coeffs.len();
    let mut left = budget;
    let mut n = 0usize;
    let mut k = kmax as i64;
    let read = |left: &mut u64, r: &mut BitReader<'_>| -> bool {
        *left -= 1;
        r.read_bit().unwrap_or(false)
    };
    while k >= kmin as i64 && left > 0 {
        let mut i = 0usize;
        while i < n && left > 0 {
            if read(&mut left, r) {
                coeffs[i] |= 1u64 << k;
            }
            i += 1;
        }
        if i < n {
            break;
        }
        'outer: while n < size && left > 0 {
            let any = read(&mut left, r);
            if !any {
                break;
            }
            loop {
                if n == size - 1 {
                    coeffs[n] |= 1u64 << k;
                    n += 1;
                    break;
                }
                if left == 0 {
                    break 'outer;
                }
                if read(&mut left, r) {
                    coeffs[n] |= 1u64 << k;
                    n += 1;
                    break;
                }
                n += 1;
            }
        }
        k -= 1;
    }
    Ok(budget - left)
}

/// Everything needed to code one block: the quantized/transformed
/// coefficients in sequency order as negabinary, plus the plane range that
/// holds information.
pub struct BlockCoefficients {
    /// Negabinary coefficients in sequency order.
    pub nb: Vec<u64>,
    /// Highest set bit plane across all coefficients.
    pub kmax: u32,
}

/// Run the forward pipeline on a padded float block: fixed point →
/// transform → sequency reorder → negabinary.
pub fn forward_block(block: &[f32], emax: i32, d: usize) -> BlockCoefficients {
    let n = block.len();
    let mut q = vec![0i64; n];
    to_fixed_point(block, emax, &mut q);
    fwd_transform(&mut q, d);
    let order = sequency_order(d);
    let mut nb = vec![0u64; n];
    let mut all = 0u64;
    for (slot, &src) in order.iter().enumerate() {
        let v = to_negabinary(q[src]);
        nb[slot] = v;
        all |= v;
    }
    let kmax = if all == 0 { 0 } else { 63 - all.leading_zeros() };
    debug_assert!(kmax <= K_TOP, "kmax {kmax} exceeds K_TOP");
    BlockCoefficients { nb, kmax }
}

/// Run the inverse pipeline: negabinary (sequency order) → transform⁻¹ →
/// floats.
pub fn inverse_block(nb: &[u64], emax: i32, d: usize, out: &mut [f32]) {
    let n = nb.len();
    let order = sequency_order(d);
    // arc-lint: bounded(one ZFP block: nb.len() <= 64)
    let mut q = vec![0i64; n];
    for (slot, &dst) in order.iter().enumerate() {
        q[dst] = from_negabinary(nb[slot]);
    }
    inv_transform(&mut q, d);
    from_fixed_point(&q, emax, out);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn negabinary_round_trip() {
        for x in [-5i64, -1, 0, 1, 5, i64::MAX / 4, i64::MIN / 4, 1 << 45, -(1 << 45)] {
            assert_eq!(from_negabinary(to_negabinary(x)), x);
        }
        for i in -2000..2000i64 {
            assert_eq!(from_negabinary(to_negabinary(i * 31)), i * 31);
        }
    }

    #[test]
    fn negabinary_magnitude_tracks_bits() {
        // Small magnitudes occupy low bit planes only.
        for x in -100i64..=100 {
            let nb = to_negabinary(x);
            assert!(nb < 1 << 9, "x={x} nb={nb:#x}");
        }
    }

    #[test]
    fn exponent_of_matches_frexp_semantics() {
        assert_eq!(exponent_of(1.0), 1); // 1.0 = 0.5 · 2^1
        assert_eq!(exponent_of(0.5), 0);
        assert_eq!(exponent_of(0.75), 0);
        assert_eq!(exponent_of(2.0), 2);
        assert_eq!(exponent_of(100.0), 7); // 64 ≤ 100 < 128
        for e in [-100i32, -10, 0, 10, 100] {
            let x = (2f64).powi(e) * 0.7;
            let got = exponent_of(x);
            assert!((2f64).powi(got - 1) <= x && x < (2f64).powi(got), "e={e} got={got}");
        }
    }

    #[test]
    fn fixed_point_round_trip_within_half_ulp() {
        let block: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin() * 50.0).collect();
        let emax = exponent_of(50.0);
        let mut q = vec![0i64; 16];
        to_fixed_point(&block, emax, &mut q);
        let mut back = vec![0.0f32; 16];
        from_fixed_point(&q, emax, &mut back);
        let res = (2f64).powi(emax - (PRECISION - 2));
        for (a, b) in block.iter().zip(&back) {
            assert!((*a as f64 - *b as f64).abs() <= res, "{a} vs {b}");
        }
    }

    fn plane_round_trip(nb: &[u64], kmax: u32, kmin: u32, budget: u64) -> Vec<u64> {
        let mut w = BitWriter::new();
        let written = encode_planes(nb, kmax, kmin, budget, &mut w);
        assert!(written <= budget);
        let bytes = w.into_bytes();
        let mut out = vec![0u64; nb.len()];
        let mut r = BitReader::new(&bytes);
        let consumed = decode_planes(&mut out, kmax, kmin, budget, &mut r).unwrap();
        assert_eq!(consumed, written, "encoder/decoder consumed different bit counts");
        out
    }

    #[test]
    fn planes_lossless_with_unlimited_budget() {
        let patterns: Vec<Vec<u64>> = vec![
            vec![0; 16],
            vec![1; 16],
            (0..16).map(|i| (i as u64) << 3).collect(),
            (0..16).map(|i| (i as u64).wrapping_mul(0x9E37) & 0xFFFF).collect(),
            (0..64).map(|i| if i == 63 { 0xABCDE } else { 0 }).collect(),
        ];
        for nb in patterns {
            let kmax = 40;
            let out = plane_round_trip(&nb, kmax, 0, u64::MAX / 2);
            assert_eq!(out, nb);
        }
    }

    #[test]
    fn truncated_kmin_keeps_high_planes() {
        let nb: Vec<u64> = (0..16).map(|i| (i as u64) * 0x111).collect();
        let kmin = 6;
        let out = plane_round_trip(&nb, 20, kmin, u64::MAX / 2);
        for (a, b) in nb.iter().zip(&out) {
            assert_eq!(a >> kmin, b >> kmin, "high planes must survive");
            assert_eq!(b & ((1 << kmin) - 1), 0, "low planes must be zero");
        }
    }

    #[test]
    fn every_budget_value_round_trips_consistently() {
        // The decoder must mirror the encoder for *any* cutoff point.
        let nb: Vec<u64> = (0..16).map(|i| ((i as u64) << 5) ^ (i as u64 * 3)).collect();
        let full = {
            let mut w = BitWriter::new();
            encode_planes(&nb, 24, 0, u64::MAX / 2, &mut w)
        };
        for budget in 0..=full + 4 {
            let out = plane_round_trip(&nb, 24, 0, budget);
            // Decoded coefficients can only lose low-order information.
            for (a, b) in nb.iter().zip(&out) {
                // Each decoded bit must exist in the original.
                assert_eq!(b & !a, 0, "budget {budget}: decoder invented bit");
            }
        }
    }

    #[test]
    fn group_testing_saves_bits_on_sparse_planes() {
        // One big DC coefficient, everything else zero: cost must be far
        // below the raw 4^d bits per plane.
        let mut nb = vec![0u64; 64];
        nb[0] = 0xF_FFFF;
        let mut w = BitWriter::new();
        let written = encode_planes(&nb, 30, 0, u64::MAX / 2, &mut w);
        let raw = 31 * 64;
        assert!(written < raw / 4, "written {written} vs raw {raw}");
    }

    #[test]
    fn forward_inverse_block_round_trip() {
        for d in 1..=3usize {
            let n = 4usize.pow(d as u32);
            let block: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.21).cos() * 8.0 + 1.0).collect();
            let emax = exponent_of(9.5);
            let bc = forward_block(&block, emax, d);
            let mut out = vec![0.0f32; n];
            inverse_block(&bc.nb, emax, d, &mut out);
            let res = (2f64).powi(emax - (PRECISION - 2 - 2 * d as i32));
            for (a, b) in block.iter().zip(&out) {
                assert!((*a as f64 - *b as f64).abs() <= res, "d={d}: {a} vs {b}");
            }
        }
    }
}
