//! Property-based tests for the ZFP-like codec: accuracy mode's tolerance
//! is a hard guarantee, rate mode's size is exact, decoding never panics.

use proptest::prelude::*;

use arc_zfp::{compress, decompress, decompress_with_limits, DecodeLimits, ZfpMode};

fn arb_grid() -> impl Strategy<Value = (Vec<usize>, Vec<f32>)> {
    (1usize..=3).prop_flat_map(|d| proptest::collection::vec(1usize..20, d)).prop_flat_map(|dims| {
        let n: usize = dims.iter().product();
        (Just(dims), proptest::collection::vec(-1e5f32..1e5f32, n..=n))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accuracy_tolerance_is_guaranteed(
        (dims, data) in arb_grid(),
        tol in prop_oneof![Just(1e-3f64), Just(0.1), Just(10.0)],
    ) {
        let packed = compress(&data, &dims, ZfpMode::FixedAccuracy(tol)).unwrap();
        let out = decompress(&packed).unwrap();
        prop_assert_eq!(&out.dims, &dims);
        for (a, b) in data.iter().zip(&out.data) {
            prop_assert!((*a as f64 - *b as f64).abs() <= tol, "{a} vs {b} (tol {tol})");
        }
    }

    #[test]
    fn rate_mode_round_trips_and_is_fixed_size(
        (dims, data) in arb_grid(),
        rate in prop_oneof![Just(4.0f64), Just(8.0), Just(16.0)],
    ) {
        // 1-D blocks hold only 4 values; low rates cannot fit the block
        // header there and are rejected by validation (tested elsewhere).
        let block_len = 4usize.pow(dims.len() as u32);
        prop_assume!(rate * block_len as f64 >= 26.0);
        let packed = compress(&data, &dims, ZfpMode::FixedRate(rate)).unwrap();
        // Size = header + ceil(num_blocks · rate · 4^d / 8), deterministic.
        let packed2 = compress(&data, &dims, ZfpMode::FixedRate(rate)).unwrap();
        prop_assert_eq!(packed.len(), packed2.len());
        let out = decompress(&packed).unwrap();
        prop_assert_eq!(out.data.len(), data.len());
    }

    #[test]
    fn rate_mode_size_independent_of_content(
        dims in proptest::collection::vec(4usize..16, 2),
        seed_a: u64,
        seed_b: u64,
    ) {
        let n: usize = dims.iter().product();
        let gen = |seed: u64| -> Vec<f32> {
            (0..n)
                .map(|i| ((i as u64).wrapping_mul(seed | 1) >> 32) as f32 / 1e6)
                .collect()
        };
        let a = compress(&gen(seed_a), &dims, ZfpMode::FixedRate(8.0)).unwrap();
        let b = compress(&gen(seed_b), &dims, ZfpMode::FixedRate(8.0)).unwrap();
        prop_assert_eq!(a.len(), b.len(), "fixed rate must mean fixed size");
    }

    #[test]
    fn decoder_never_panics_on_corruption(
        (dims, data) in arb_grid(),
        flips in proptest::collection::vec((any::<proptest::sample::Index>(), 1u8..), 1..6),
        rate_mode: bool,
    ) {
        let mode = if rate_mode { ZfpMode::FixedRate(8.0) } else { ZfpMode::FixedAccuracy(0.01) };
        let mut packed = compress(&data, &dims, mode).unwrap();
        for (idx, xor) in &flips {
            let p = idx.index(packed.len());
            packed[p] ^= xor;
        }
        let _ = decompress_with_limits(&packed, &DecodeLimits { max_elements: 1 << 20 });
    }

    #[test]
    fn decoder_never_panics_on_garbage(noise in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = decompress_with_limits(&noise, &DecodeLimits { max_elements: 1 << 16 });
    }

    #[test]
    fn rate_mode_flip_damage_is_block_local(
        dims in proptest::collection::vec(8usize..16, 2),
        flip in any::<proptest::sample::Index>(),
    ) {
        // Flips strictly inside the fixed-rate payload touch one block.
        let n: usize = dims.iter().product();
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.1).sin()).collect();
        let packed = compress(&data, &dims, ZfpMode::FixedRate(8.0)).unwrap();
        let base = decompress(&packed).unwrap().data;
        let header = 24; // stream header stays pristine in this property
        prop_assume!(packed.len() > header + 8);
        let mut bad = packed.clone();
        let p = header + flip.index(packed.len() - header);
        bad[p] ^= 0x10;
        if let Ok(out) = decompress(&bad) {
            if out.data.len() == base.len() {
                let mut blocks = std::collections::HashSet::new();
                let cols = dims[1];
                for (i, (x, y)) in base.iter().zip(&out.data).enumerate() {
                    if x.to_bits() != y.to_bits() {
                        blocks.insert(((i / cols) / 4, (i % cols) / 4));
                    }
                }
                prop_assert!(blocks.len() <= 1, "flip at {p} hit {} blocks", blocks.len());
            }
        }
    }
}
