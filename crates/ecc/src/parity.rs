//! Single-bit even parity over fixed-size data blocks.
//!
//! ARC's lightest scheme (§2.2, §5.2): one parity bit per block of
//! `bytes_per_parity_bit` data bytes ensures an even number of set bits.
//! Parity detects every odd-weight error in a block but corrects nothing and
//! misses even-weight errors. It is what ARC selects under tight storage and
//! throughput budgets when the user only asks for detection (§6.3 closes with
//! exactly this trade-off).

use crate::bits::PackedBitWriter;
use crate::codec::{Capability, CorrectionReport, EccError, EccScheme, MB};

/// Even-parity scheme configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Parity {
    /// Data bytes covered by each parity bit. The paper's engine takes this
    /// as the direct user input to `arc_parity_encode()`.
    pub bytes_per_parity_bit: usize,
}

impl Parity {
    /// Create a parity scheme; `bytes_per_parity_bit` must be ≥ 1.
    pub fn new(bytes_per_parity_bit: usize) -> Result<Self, EccError> {
        if bytes_per_parity_bit == 0 {
            return Err(EccError::InvalidConfig(
                "parity: bytes_per_parity_bit must be >= 1".into(),
            ));
        }
        Ok(Parity { bytes_per_parity_bit })
    }

    fn blocks(&self, data_len: usize) -> usize {
        data_len.div_ceil(self.bytes_per_parity_bit)
    }

    #[inline]
    fn block_parity(block: &[u8]) -> bool {
        // Fold over u64 lanes, then one popcount of the folded word.
        let mut chunks = block.chunks_exact(8);
        let mut acc = 0u64;
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            acc ^= u64::from_le_bytes(w);
        }
        let mut tail = 0u8;
        for &b in chunks.remainder() {
            tail ^= b;
        }
        ((acc.count_ones() ^ tail.count_ones()) & 1) == 1
    }
}

impl EccScheme for Parity {
    fn name(&self) -> &'static str {
        "parity"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        self.blocks(data_len).div_ceil(8)
    }

    fn storage_overhead(&self) -> f64 {
        1.0 / (8.0 * self.bytes_per_parity_bit as f64)
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        // One bit per block, accumulated and flushed as whole words; the
        // writer covers every parity byte so no fill(0) pass is needed.
        let mut w = PackedBitWriter::new(parity);
        for block in data.chunks(self.bytes_per_parity_bit) {
            w.push(Self::block_parity(block) as u64, 1);
        }
        w.finish();
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!("parity region {} bytes, expected {expected}", parity.len()),
            });
        }
        // Recompute parity 64 blocks at a time and compare whole words
        // against the stored region; mismatch bits identify bad blocks.
        let blocks = self.blocks(data.len());
        let mut bad_count = 0u64;
        let mut first_bad = usize::MAX;
        let mut chunks = data.chunks(self.bytes_per_parity_bit);
        let mut base = 0usize;
        while base < blocks {
            let in_word = (blocks - base).min(64);
            let mut acc = 0u64;
            for j in 0..in_word {
                // Block count matches chunk count by construction; `else`
                // ends the sweep instead of aborting.
                let Some(block) = chunks.next() else { break };
                acc |= (Self::block_parity(block) as u64) << j;
            }
            let byte = base / 8;
            let take = parity.len().min(byte + 8) - byte;
            let mut w = [0u8; 8];
            w[..take].copy_from_slice(&parity[byte..byte + take]);
            let stored = u64::from_le_bytes(w);
            let mask = if in_word == 64 { u64::MAX } else { (1u64 << in_word) - 1 };
            let diff = (acc ^ stored) & mask;
            if diff != 0 {
                bad_count += diff.count_ones() as u64;
                if first_bad == usize::MAX {
                    first_bad = base + diff.trailing_zeros() as usize;
                }
            }
            base += in_word;
        }
        if bad_count == 0 {
            Ok(CorrectionReport { blocks_checked: blocks as u64, ..Default::default() })
        } else {
            Err(EccError::Uncorrectable {
                scheme: "parity",
                detail: format!(
                    "parity mismatch in {bad_count} block(s), first at block {first_bad}"
                ),
            })
        }
    }

    fn capability(&self) -> Capability {
        Capability {
            detects_sparse: true,
            corrects_sparse: false,
            corrects_burst: false,
            correctable_per_mb: 0.0,
        }
    }
}

/// Expected fraction of uniformly distributed errors parity *detects* —
/// an odd number of flips per block is caught; with sparse errors nearly all
/// blocks see at most one flip, so detection approaches 100%.
pub fn detection_probability(bytes_per_parity_bit: usize, errors_per_mb: f64) -> f64 {
    // Probability a given error shares its block with another error is
    // ≈ (e−1)·s/MB for block span s; those pairs go undetected.
    let span = bytes_per_parity_bit as f64;
    let collision = ((errors_per_mb - 1.0).max(0.0) * span / MB).min(1.0);
    1.0 - collision
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    #[test]
    fn rejects_zero_block_size() {
        assert!(Parity::new(0).is_err());
        assert!(Parity::new(1).is_ok());
    }

    #[test]
    fn clean_round_trip() {
        let p = Parity::new(8).unwrap();
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 31) as u8).collect();
        let enc = p.encode(&data);
        assert_eq!(enc.len(), data.len() + p.parity_len(data.len()));
        let (out, report) = p.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert!(report.is_clean());
        assert_eq!(report.blocks_checked, 125);
    }

    #[test]
    fn detects_every_single_bit_flip_in_data() {
        let p = Parity::new(4).unwrap();
        let data: Vec<u8> = (0..64u32).map(|i| i as u8).collect();
        let enc = p.encode(&data);
        for bit in 0..(data.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            assert!(p.decode(&bad, data.len()).is_err(), "bit {bit} undetected");
        }
    }

    #[test]
    fn detects_flip_in_parity_region() {
        let p = Parity::new(4).unwrap();
        let data = vec![0xABu8; 64];
        let mut enc = p.encode(&data);
        let parity_bit = data.len() as u64 * 8; // first bit of parity region
        flip_bit(&mut enc, parity_bit);
        assert!(p.decode(&enc, data.len()).is_err());
    }

    #[test]
    fn misses_even_weight_errors_in_one_block() {
        // Documented weakness: two flips in the same block cancel.
        let p = Parity::new(8).unwrap();
        let data = vec![0u8; 64];
        let mut enc = p.encode(&data);
        flip_bit(&mut enc, 0);
        flip_bit(&mut enc, 5);
        let (out, _) = p.decode(&enc, data.len()).unwrap();
        assert_ne!(out, data, "corruption slipped through as expected");
    }

    #[test]
    fn detects_odd_multibit_errors_across_blocks() {
        let p = Parity::new(8).unwrap();
        let data = vec![0x55u8; 128];
        let mut enc = p.encode(&data);
        for bit in [3u64, 100, 777] {
            flip_bit(&mut enc, bit);
        }
        assert!(p.decode(&enc, data.len()).is_err());
    }

    #[test]
    fn overhead_matches_block_size() {
        assert!((Parity::new(1).unwrap().storage_overhead() - 0.125).abs() < 1e-12);
        assert!((Parity::new(8).unwrap().storage_overhead() - 1.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn handles_ragged_tail_block() {
        let p = Parity::new(16).unwrap();
        let data = vec![0xFFu8; 33]; // 2 full blocks + 1-byte tail
        let enc = p.encode(&data);
        let (out, report) = p.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        assert_eq!(report.blocks_checked, 3);
    }

    #[test]
    fn empty_input() {
        let p = Parity::new(8).unwrap();
        let enc = p.encode(&[]);
        assert!(enc.is_empty());
        let (out, _) = p.decode(&enc, 0).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn detection_probability_model() {
        assert!((detection_probability(8, 1.0) - 1.0).abs() < 1e-9);
        assert!(detection_probability(1024, 10_000.0) < 1.0);
    }

    #[test]
    fn wrong_parity_length_is_malformed() {
        let p = Parity::new(8).unwrap();
        let mut data = vec![1u8; 64];
        let mut parity = vec![0u8; 99];
        assert!(matches!(
            p.verify_and_correct(&mut data, &mut parity),
            Err(EccError::Malformed { .. })
        ));
    }
}
