//! GF(2) bitmatrix expansion of GF(2^8) arithmetic.
//!
//! Multiplication by a constant `c` in GF(2^8) is linear over GF(2): writing
//! an input byte as bits `x = Σ_b x_b·2^b`, the product is
//! `c·x = Σ_b x_b·(c·2^b)`. The eight products `c·2^b` therefore form the
//! columns of an 8×8 bit matrix `M_c` with `c·x = M_c·x` — the *bitmatrix
//! expansion* of the coefficient ("Accelerating XOR-based Erasure Coding
//! using Program Optimization Techniques", arXiv 2108.02692). Two consumers
//! share this representation:
//!
//! * the GFNI kernels in [`crate::gf256`]: `GF2P8AFFINEQB` applies an 8×8
//!   bit matrix to every byte of a vector in one instruction, so `M_c` *is*
//!   the operand of the fastest multiply-by-constant this hardware has;
//! * the XOR scheduler in [`crate::schedule`]: expanding the whole m×k
//!   Cauchy matrix entry-wise yields an 8m×8k bit matrix whose rows are
//!   pure XOR combinations of input bit planes, which a compiler can
//!   common-subexpression-eliminate and cache-block.
//!
//! The module also provides the 8×8 *bit transposition* that moves device
//! bytes into bit-plane form and back. The scheduled encoder works on bit
//! planes internally but transposes its output back to bytes, so the wire
//! format stays identical to the table-driven byte-wise encoder.

use crate::gf256::Gf;

/// The 8×8 GF(2) matrix of "multiply by `c`", row-major: bit `b` of
/// `rows[r]` is `M[r][b]`, i.e. bit `r` of the product `c·2^b`.
///
/// For any byte `x`: bit `r` of `c·x` equals `parity(rows[r] & x)`.
pub fn mul_matrix(c: Gf) -> [u8; 8] {
    let mut rows = [0u8; 8];
    for b in 0..8u32 {
        let col = c.mul(Gf(1 << b)).0;
        for (r, row) in rows.iter_mut().enumerate() {
            *row |= ((col >> r) & 1) << b;
        }
    }
    rows
}

/// The qword operand `GF2P8AFFINEQB` expects for "multiply by `c`".
///
/// The instruction computes output bit `r` of each byte as
/// `parity(qword_byte[7 - r] & input_byte)`, so the matrix rows are packed
/// most-significant-row-first into the little-endian qword.
pub fn gfni_matrix(c: Gf) -> u64 {
    let rows = mul_matrix(c);
    let mut bytes = [0u8; 8];
    for (r, &row) in rows.iter().enumerate() {
        bytes[7 - r] = row;
    }
    u64::from_le_bytes(bytes)
}

/// All 256 GFNI matrix operands, indexed by coefficient value.
///
/// Built once behind a `OnceLock`; [`crate::gf256::warm_tables`] forces the
/// build so steady-state encode never pays it.
pub(crate) fn gfni_matrices() -> &'static [u64; 256] {
    static MATRICES: std::sync::OnceLock<[u64; 256]> = std::sync::OnceLock::new();
    MATRICES.get_or_init(|| {
        let mut out = [0u64; 256];
        for (c, slot) in out.iter_mut().enumerate() {
            // c is 0..=255, in range for Gf by construction.
            *slot = gfni_matrix(Gf(u8::try_from(c).unwrap_or(0)));
        }
        out
    })
}

/// A dense GF(2) matrix with `8·m` rows over `8·k` columns, rows stored as
/// little-endian u64 words (`words_per_row` words each).
///
/// Row `8j + r` describes output bit plane `r` of code device `j`: the set
/// bits name the input bit planes (`8i + b` for data device `i`, bit `b`)
/// that XOR into it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    /// Number of data devices (columns are `8·k` bit planes).
    pub k: usize,
    /// Number of code devices (rows are `8·m` bit planes).
    pub m: usize,
    /// Words per row: `ceil(8k / 64)`.
    pub words_per_row: usize,
    /// Row-major bitset storage, `8m · words_per_row` words.
    pub rows: Vec<u64>,
}

impl BitMatrix {
    /// Expand a row-major m×k GF(2^8) coefficient matrix (entry `j·k + i`
    /// is the coefficient of data device `i` in code device `j`) into its
    /// 8m×8k GF(2) bitmatrix.
    pub fn expand(coeffs: &[Gf], k: usize, m: usize) -> BitMatrix {
        debug_assert_eq!(coeffs.len(), k * m);
        let words_per_row = (8 * k).div_ceil(64);
        // arc-lint: bounded(m and words_per_row derive from GF(256) code dims, both <= 255)
        let mut rows = vec![0u64; 8 * m * words_per_row];
        for j in 0..m {
            for i in 0..k {
                let bits = mul_matrix(coeffs[j * k + i]);
                for (r, &row_byte) in bits.iter().enumerate() {
                    let row = 8 * j + r;
                    for b in 0..8 {
                        if (row_byte >> b) & 1 != 0 {
                            let col = 8 * i + b;
                            rows[row * words_per_row + col / 64] |= 1u64 << (col % 64);
                        }
                    }
                }
            }
        }
        BitMatrix { k, m, words_per_row, rows }
    }

    /// One row as a word slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[u64] {
        &self.rows[r * self.words_per_row..(r + 1) * self.words_per_row]
    }

    /// Total number of set bits — the XOR cost of the naive (unscheduled)
    /// bit-plane encode, counting one XOR per set bit.
    pub fn ones(&self) -> usize {
        self.rows.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Transpose an 8×8 bit block held as a u64 (byte `i` = row `i`).
///
/// Standard word-parallel bit transposition (Hacker's Delight 7-3): after
/// the call, bit `j` of output byte `i` is bit `i` of input byte `j`.
#[inline]
pub fn transpose8x8(x: u64) -> u64 {
    let mut x = x;
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Scatter `src` (device bytes, zero-padded to `8·plane_len`) into eight
/// bit planes of `plane_len` bytes each, written contiguously into `dst`
/// (`8·plane_len` bytes: plane 0 first).
///
/// Bit `u` of plane `b` is bit `b` of source byte `u` — i.e. plane `b`
/// collects bit `b` of every byte. Source bytes beyond `src.len()` are
/// treated as zero.
pub fn bytes_to_planes(src: &[u8], dst: &mut [u8], plane_len: usize) {
    debug_assert!(dst.len() >= 8 * plane_len);
    debug_assert!(src.len() <= 8 * plane_len);
    for u in 0..plane_len {
        // Load 8 source bytes (zero-padded) as one block: byte i = src[8u+i].
        let base = 8 * u;
        let mut block = [0u8; 8];
        if base < src.len() {
            let n = (src.len() - base).min(8);
            block[..n].copy_from_slice(&src[base..base + n]);
        }
        // Transposing swaps (byte index, bit index): output byte b holds bit
        // b of every input byte, exactly one plane byte per plane.
        let t = transpose8x8(u64::from_le_bytes(block)).to_le_bytes();
        for b in 0..8 {
            dst[b * plane_len + u] = t[b];
        }
    }
}

/// Inverse of [`bytes_to_planes`]: gather eight contiguous planes of
/// `plane_len` bytes from `src` back into device bytes, writing the first
/// `dst.len()` bytes (callers pass the real, possibly ragged device slice).
pub fn planes_to_bytes(src: &[u8], dst: &mut [u8], plane_len: usize) {
    debug_assert!(src.len() >= 8 * plane_len);
    debug_assert!(dst.len() <= 8 * plane_len);
    for u in 0..plane_len {
        let mut block = [0u8; 8];
        for b in 0..8 {
            block[b] = src[b * plane_len + u];
        }
        let t = transpose8x8(u64::from_le_bytes(block)).to_le_bytes();
        let base = 8 * u;
        if base >= dst.len() {
            break;
        }
        let n = (dst.len() - base).min(8);
        dst[base..base + n].copy_from_slice(&t[..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_matrix_matches_field_multiply_exhaustively() {
        for c in 0..=255u8 {
            let rows = mul_matrix(Gf(c));
            for x in 0..=255u8 {
                let mut product = 0u8;
                for (r, &row) in rows.iter().enumerate() {
                    let parity = (row & x).count_ones() & 1;
                    product |= u8::try_from(parity).unwrap() << r;
                }
                assert_eq!(product, Gf(c).mul(Gf(x)).0, "c={c} x={x}");
            }
        }
    }

    #[test]
    fn gfni_matrix_identity_is_reversed_unit_rows() {
        // Multiply-by-one must be the identity map: row r = 1 << r, packed
        // most-significant-row-first.
        assert_eq!(gfni_matrix(Gf::ONE), 0x0102_0408_1020_4080);
    }

    #[test]
    fn gfni_matrix_table_matches_builder() {
        let t = gfni_matrices();
        for c in 0..=255u8 {
            assert_eq!(t[c as usize], gfni_matrix(Gf(c)), "c={c}");
        }
    }

    #[test]
    fn expand_row_bits_reproduce_coefficients() {
        let coeffs: Vec<Gf> = (0..6u8).map(|v| Gf(v.wrapping_mul(29).wrapping_add(3))).collect();
        let (k, m) = (3usize, 2usize);
        let bm = BitMatrix::expand(&coeffs, k, m);
        assert_eq!(bm.words_per_row, 1);
        for j in 0..m {
            for i in 0..k {
                let want = mul_matrix(coeffs[j * k + i]);
                for (r, &want_row) in want.iter().enumerate() {
                    let row = bm.row(8 * j + r)[0];
                    let got = (row >> (8 * i)) & 0xFF;
                    assert_eq!(got, u64::from(want_row), "j={j} i={i} r={r}");
                }
            }
        }
    }

    #[test]
    fn ones_counts_every_set_bit() {
        let coeffs = vec![Gf::ONE; 4]; // identity matrices: 8 ones each
        let bm = BitMatrix::expand(&coeffs, 2, 2);
        assert_eq!(bm.ones(), 4 * 8);
    }

    #[test]
    fn transpose8x8_is_involutive_and_correct() {
        let x = 0x0123_4567_89AB_CDEFu64;
        assert_eq!(transpose8x8(transpose8x8(x)), x);
        let t = transpose8x8(x).to_le_bytes();
        let src = x.to_le_bytes();
        for (i, ti) in t.iter().enumerate() {
            for (j, sj) in src.iter().enumerate() {
                assert_eq!((ti >> j) & 1, (sj >> i) & 1, "i={i} j={j}");
            }
        }
    }

    #[test]
    fn planes_round_trip_including_ragged_tails() {
        for len in [0usize, 1, 7, 8, 9, 40, 63, 64, 65, 1000] {
            let src: Vec<u8> = (0..len).map(|i| (i as u8).wrapping_mul(97) ^ 0x3C).collect();
            let plane_len = len.div_ceil(8);
            let mut planes = vec![0u8; 8 * plane_len];
            bytes_to_planes(&src, &mut planes, plane_len);
            let mut back = vec![0u8; len];
            planes_to_bytes(&planes, &mut back, plane_len);
            assert_eq!(back, src, "len={len}");
        }
    }

    #[test]
    fn plane_bit_semantics() {
        // One byte 0b0000_0100 → only plane 2 has its first bit set.
        let src = [0x04u8];
        let mut planes = vec![0u8; 8];
        bytes_to_planes(&src, &mut planes, 1);
        for (b, &p) in planes.iter().enumerate() {
            assert_eq!(p, if b == 2 { 1 } else { 0 }, "plane {b}");
        }
    }
}
