//! Common types shared by every ECC scheme: errors, correction reports,
//! capability descriptions, and the [`EccScheme`] trait the ARC engine
//! dispatches over.

use std::fmt;

/// Errors surfaced by ECC decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EccError {
    /// Corruption was detected but the scheme cannot repair it. The payload
    /// must not be used; ARC raises this to the caller (Figure 7b).
    Uncorrectable {
        /// Scheme that detected the damage.
        scheme: &'static str,
        /// Human-readable description of what was detected.
        detail: String,
    },
    /// The encoded buffer is structurally invalid (wrong length for the
    /// declared configuration) and cannot even be parsed.
    Malformed {
        /// What was wrong.
        detail: String,
    },
    /// The scheme configuration itself is invalid (e.g. RS with k + m > 255).
    InvalidConfig(String),
}

impl fmt::Display for EccError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccError::Uncorrectable { scheme, detail } => {
                write!(f, "{scheme}: detected uncorrectable corruption: {detail}")
            }
            EccError::Malformed { detail } => write!(f, "malformed ECC buffer: {detail}"),
            EccError::InvalidConfig(d) => write!(f, "invalid ECC configuration: {d}"),
        }
    }
}

impl std::error::Error for EccError {}

/// What a successful `verify_and_correct` call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CorrectionReport {
    /// Individual bits repaired (Hamming / SEC-DED / polynomial RS).
    pub corrected_bits: u64,
    /// Whole Reed-Solomon devices reconstructed from parity.
    pub corrected_devices: u64,
    /// Blocks/codewords that were inspected.
    pub blocks_checked: u64,
}

impl CorrectionReport {
    /// True when the buffer was already clean.
    pub fn is_clean(&self) -> bool {
        self.corrected_bits == 0 && self.corrected_devices == 0
    }

    /// Accumulate another report (used when merging per-chunk results).
    pub fn merge(&mut self, other: &CorrectionReport) {
        self.corrected_bits += other.corrected_bits;
        self.corrected_devices += other.corrected_devices;
        self.blocks_checked += other.blocks_checked;
    }
}

/// Error classes a scheme can handle, mirroring ARC's error-response flags
/// (`ARC_DET_SPARSE`, `ARC_COR_SPARSE`, `ARC_COR_BURST`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Capability {
    /// Detects sparse, uniformly distributed single-bit errors.
    pub detects_sparse: bool,
    /// Corrects sparse, uniformly distributed single-bit errors.
    pub corrects_sparse: bool,
    /// Corrects densely packed burst errors.
    pub corrects_burst: bool,
    /// Conservative estimate of the uniformly-distributed error rate
    /// (errors per MB of protected data) the scheme corrects with ≥99%
    /// confidence. Zero for detection-only schemes.
    pub correctable_per_mb: f64,
}

/// Number of bytes in 1 MB as used for the errors-per-MB resiliency model.
pub const MB: f64 = 1024.0 * 1024.0;

/// Given `codewords_per_mb` single-error-correcting codewords, the largest
/// uniform error rate (errors/MB) for which the probability of any codeword
/// receiving two errors stays below 1%.
///
/// For `e` errors thrown uniformly into `n` codewords the collision
/// probability is ≈ e(e−1)/(2n); solving for 1% gives e ≈ √(0.02·n).
pub fn single_correct_rate_per_mb(codewords_per_mb: f64) -> f64 {
    (0.02 * codewords_per_mb).sqrt().max(1.0)
}

/// Generalization of [`single_correct_rate_per_mb`] to codes correcting up
/// to `t` errors per codeword: the largest uniform error rate (errors/MB)
/// for which the probability of any of `codewords_per_mb` codewords
/// receiving `t + 1` errors stays below 1%.
///
/// For `e` errors thrown uniformly into `n` codewords the expected number
/// of overloaded codewords is ≈ n · (e/n)^(t+1) / (t+1)!; solving for 1%
/// gives e ≈ n · (0.01 · (t+1)! / n)^(1/(t+1)). At `t = 1` this reduces to
/// the √(0.02·n) of the single-correct model.
pub fn multi_correct_rate_per_mb(codewords_per_mb: f64, t: usize) -> f64 {
    if codewords_per_mb <= 0.0 || t == 0 {
        return if t == 0 { 0.0 } else { 1.0 };
    }
    let mut factorial = 1.0f64;
    for k in 2..=(t + 1) {
        factorial *= k as f64;
    }
    let n = codewords_per_mb;
    (n * (0.01 * factorial / n).powf(1.0 / (t as f64 + 1.0))).max(1.0)
}

/// The interface every ECC scheme implements. Encoded layout is always
/// `data ‖ parity`; `parity_len` is a pure function of the data length so the
/// chunk-parallel driver can compute offsets without per-chunk headers.
pub trait EccScheme: Send + Sync {
    /// Short stable identifier ("parity", "hamming", "secded", "rs").
    fn name(&self) -> &'static str;

    /// Parity bytes produced for `data_len` bytes of input.
    fn parity_len(&self, data_len: usize) -> usize;

    /// Asymptotic storage overhead (parity bytes per data byte).
    fn storage_overhead(&self) -> f64;

    /// Compute the parity region for `data`.
    fn encode_parity(&self, data: &[u8]) -> Vec<u8>;

    /// Scatter-write form of [`EccScheme::encode_parity`]: write the parity
    /// for `data` directly into the caller-provided slice.
    ///
    /// `parity` must be exactly `parity_len(data.len())` bytes and may hold
    /// arbitrary garbage on entry — implementations overwrite every byte.
    /// This is the hot path of the zero-copy pipeline: [`crate::ParallelCodec`]
    /// carves one pre-allocated container into disjoint chunk regions and
    /// calls this method from its workers, so native implementations must not
    /// allocate. The default falls back to [`EccScheme::encode_parity`] plus
    /// a copy so extension schemes that only implement the `Vec` form keep
    /// working.
    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        parity.copy_from_slice(&self.encode_parity(data));
    }

    /// Verify `data` against `parity`, repairing both in place when possible.
    ///
    /// Returns what was repaired, or [`EccError::Uncorrectable`] when damage
    /// exceeds the scheme's correction ability (detection-only schemes return
    /// `Uncorrectable` for *any* detected damage).
    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError>;

    /// In-place form of [`EccScheme::verify_and_correct`] over one contiguous
    /// `data ‖ parity` buffer: split at `data_len`, verify, and repair both
    /// regions without copying either out.
    ///
    /// The default delegates to `verify_and_correct` on the two halves of a
    /// `split_at_mut`, which is already copy-free; schemes only override this
    /// when they can exploit the contiguous layout further.
    fn verify_and_correct_in_place(
        &self,
        encoded: &mut [u8],
        data_len: usize,
    ) -> Result<CorrectionReport, EccError> {
        let plen = self.parity_len(data_len);
        if encoded.len() != data_len + plen {
            return Err(EccError::Malformed {
                detail: format!(
                    "{}: encoded length {} != data {} + parity {}",
                    self.name(),
                    encoded.len(),
                    data_len,
                    plen
                ),
            });
        }
        let (data, parity) = encoded.split_at_mut(data_len);
        self.verify_and_correct(data, parity)
    }

    /// What this scheme can detect/correct.
    fn capability(&self) -> Capability;

    /// Minimum input bytes each pool worker should receive before splitting
    /// a job across threads pays for the dispatch overhead.
    ///
    /// [`crate::parallel::ParallelCodec`] clamps its worker count to
    /// `data_len / min_bytes_per_thread()` (never below 1), so small buffers
    /// run in-line instead of *losing* throughput to thread startup — the
    /// measured regression this floor exists to prevent (DESIGN.md §13).
    /// The default suits the fast detect-dominant schemes (parity, Hamming,
    /// SEC-DED, >1 GB/s class); heavier schemes override it downward.
    fn min_bytes_per_thread(&self) -> usize {
        4 << 20
    }

    /// Convenience: full encode producing `data ‖ parity` in one allocation.
    fn encode(&self, data: &[u8]) -> Vec<u8> {
        let mut out = vec![0u8; data.len() + self.parity_len(data.len())];
        let (d, p) = out.split_at_mut(data.len());
        d.copy_from_slice(data);
        self.encode_parity_into(data, p);
        out
    }

    /// Convenience: copy an encoded buffer once, verify/correct it in place,
    /// and return the data region.
    ///
    /// `data_len` is the original (unencoded) length, which the caller must
    /// persist (ARC's container header does).
    fn decode(
        &self,
        encoded: &[u8],
        data_len: usize,
    ) -> Result<(Vec<u8>, CorrectionReport), EccError> {
        let mut buf = encoded.to_vec();
        let report = self.verify_and_correct_in_place(&mut buf, data_len)?;
        buf.truncate(data_len);
        Ok((buf, report))
    }
}

impl EccScheme for std::sync::Arc<dyn EccScheme> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn parity_len(&self, data_len: usize) -> usize {
        (**self).parity_len(data_len)
    }
    fn storage_overhead(&self) -> f64 {
        (**self).storage_overhead()
    }
    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        (**self).encode_parity(data)
    }
    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        (**self).encode_parity_into(data, parity)
    }
    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        (**self).verify_and_correct(data, parity)
    }
    fn verify_and_correct_in_place(
        &self,
        encoded: &mut [u8],
        data_len: usize,
    ) -> Result<CorrectionReport, EccError> {
        (**self).verify_and_correct_in_place(encoded, data_len)
    }
    fn capability(&self) -> Capability {
        (**self).capability()
    }
    fn min_bytes_per_thread(&self) -> usize {
        (**self).min_bytes_per_thread()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_merge_accumulates() {
        let mut a =
            CorrectionReport { corrected_bits: 1, corrected_devices: 0, blocks_checked: 10 };
        let b = CorrectionReport { corrected_bits: 2, corrected_devices: 3, blocks_checked: 5 };
        a.merge(&b);
        assert_eq!(a.corrected_bits, 3);
        assert_eq!(a.corrected_devices, 3);
        assert_eq!(a.blocks_checked, 15);
        assert!(!a.is_clean());
        assert!(CorrectionReport::default().is_clean());
    }

    #[test]
    fn single_correct_rate_scales_with_sqrt() {
        let r1 = single_correct_rate_per_mb(131_072.0); // Hamming(72,64)
        let r2 = single_correct_rate_per_mb(1_048_576.0); // Hamming(12,8)
        assert!(r1 > 40.0 && r1 < 60.0, "r1={r1}");
        assert!((r2 / r1 - (8.0f64).sqrt()).abs() < 0.1);
        // Never below one error per MB.
        assert_eq!(single_correct_rate_per_mb(0.0), 1.0);
    }

    #[test]
    fn multi_correct_rate_reduces_to_single_at_t1() {
        for n in [1000.0f64, 131_072.0, 1_048_576.0] {
            let single = single_correct_rate_per_mb(n);
            let multi = multi_correct_rate_per_mb(n, 1);
            assert!((single - multi).abs() < 1e-9, "n={n}");
        }
        // Higher t always tolerates a higher rate.
        assert!(multi_correct_rate_per_mb(4096.0, 16) > multi_correct_rate_per_mb(4096.0, 2));
        assert!(multi_correct_rate_per_mb(4096.0, 2) > multi_correct_rate_per_mb(4096.0, 1));
        // Detection-only and degenerate inputs.
        assert_eq!(multi_correct_rate_per_mb(4096.0, 0), 0.0);
        assert_eq!(multi_correct_rate_per_mb(0.0, 3), 1.0);
    }

    #[test]
    fn error_display_is_informative() {
        let e = EccError::Uncorrectable { scheme: "secded", detail: "double-bit".into() };
        assert!(e.to_string().contains("secded"));
        assert!(e.to_string().contains("double-bit"));
    }
}
