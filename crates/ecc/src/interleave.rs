//! Bit-interleaved SEC-DED: burst tolerance from single-error codes.
//!
//! One of the paper's future-work directions is adding ECC algorithms (§7).
//! Interleaving is the classic way to stretch a single-error-correcting
//! code across bursts: `depth` SEC-DED(72,64) codewords are woven together
//! bit-by-bit so that any contiguous burst of at most `depth` bits lands at
//! most one bit in each codeword — and SEC-DED fixes one bit per codeword.
//!
//! Against ARC's built-ins this sits between SEC-DED (12.5% overhead, no
//! burst tolerance) and Reed-Solomon (burst-proof but slow to encode): it
//! keeps SEC-DED's overhead and syndrome-speed decoding while correcting
//! bursts up to `depth` bits. It is exposed through the extension API
//! rather than the paper-faithful `EccConfig` space.

use crate::bits::{get_bit, set_bit};
use crate::codec::{
    single_correct_rate_per_mb, Capability, CorrectionReport, EccError, EccScheme, MB,
};
use crate::hamming::{layout, BlockWidth};

/// Interleaved SEC-DED over 64-bit codewords.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterleavedSecDed {
    /// Number of codewords woven together; a burst of up to `depth` bits is
    /// correctable. Superblocks span `8 × depth` data bytes.
    pub depth: usize,
}

impl InterleavedSecDed {
    /// Create a scheme; `depth` must be in `2..=4096`.
    pub fn new(depth: usize) -> Result<InterleavedSecDed, EccError> {
        if !(2..=4096).contains(&depth) {
            return Err(EccError::InvalidConfig(format!(
                "interleaved secded: depth must be in 2..=4096, got {depth}"
            )));
        }
        Ok(InterleavedSecDed { depth })
    }

    /// Data bytes per superblock.
    fn super_bytes(&self) -> usize {
        8 * self.depth
    }

    /// Gather logical codeword `j` of a (possibly partial) superblock.
    #[inline]
    fn gather(&self, block: &[u8], j: usize) -> u64 {
        let total_bits = block.len() as u64 * 8;
        let mut v = 0u64;
        for p in 0..64u64 {
            let bit = p * self.depth as u64 + j as u64;
            if bit < total_bits && get_bit(block, bit) {
                v |= 1 << p;
            }
        }
        v
    }

    /// Scatter codeword `j` back into the superblock.
    #[inline]
    fn scatter(&self, block: &mut [u8], j: usize, v: u64) {
        let total_bits = block.len() as u64 * 8;
        for p in 0..64u64 {
            let bit = p * self.depth as u64 + j as u64;
            if bit < total_bits {
                set_bit(block, bit, (v >> p) & 1 == 1);
            }
        }
    }

    fn parity_bits_of(v: u64) -> u8 {
        let lay = layout(BlockWidth::W64);
        let ham = lay.parity_of(v);
        let overall = ((v.count_ones() + ham.count_ones()) & 1) as u8;
        (ham as u8 & 0x7F) | (overall << 7)
    }
}

impl EccScheme for InterleavedSecDed {
    fn name(&self) -> &'static str {
        "interleaved-secded"
    }

    fn parity_len(&self, data_len: usize) -> usize {
        // One parity byte (7 Hamming bits + overall) per codeword; `depth`
        // codewords per superblock, including the partial tail superblock.
        let supers = data_len.div_ceil(self.super_bytes());
        supers * self.depth
    }

    fn storage_overhead(&self) -> f64 {
        // Asymptotically one parity byte per 8 data bytes.
        0.125
    }

    fn encode_parity(&self, data: &[u8]) -> Vec<u8> {
        let mut parity = vec![0u8; self.parity_len(data.len())];
        self.encode_parity_into(data, &mut parity);
        parity
    }

    fn encode_parity_into(&self, data: &[u8], parity: &mut [u8]) {
        assert_eq!(parity.len(), self.parity_len(data.len()), "parity region size mismatch");
        // The assert above sizes `parity` exactly; `if let` keeps the loop
        // abort-free regardless.
        let mut out = parity.iter_mut();
        for block in data.chunks(self.super_bytes()) {
            for j in 0..self.depth {
                if let Some(slot) = out.next() {
                    *slot = Self::parity_bits_of(self.gather(block, j));
                }
            }
        }
    }

    fn verify_and_correct(
        &self,
        data: &mut [u8],
        parity: &mut [u8],
    ) -> Result<CorrectionReport, EccError> {
        let expected = self.parity_len(data.len());
        if parity.len() != expected {
            return Err(EccError::Malformed {
                detail: format!(
                    "interleaved secded parity region {} bytes, expected {expected}",
                    parity.len()
                ),
            });
        }
        let lay = layout(BlockWidth::W64);
        let sb = self.super_bytes();
        let mut report = CorrectionReport::default();
        for (s, block) in data.chunks_mut(sb).enumerate() {
            let block_bits = block.len() as u64 * 8;
            for j in 0..self.depth {
                report.blocks_checked += 1;
                let mut v = self.gather(block, j);
                let stored = parity[s * self.depth + j];
                let stored_ham = (stored & 0x7F) as u32;
                let stored_overall = stored >> 7 == 1;
                let recomputed_ham = lay.parity_of(v);
                let syndrome = recomputed_ham ^ stored_ham;
                let overall_now = ((v.count_ones() + stored_ham.count_ones()) & 1) == 1;
                match (syndrome, overall_now != stored_overall) {
                    (0, false) => {}
                    (0, true) => {
                        parity[s * self.depth + j] ^= 0x80;
                        report.corrected_bits += 1;
                    }
                    (syn, true) => {
                        if syn > lay.n {
                            return Err(EccError::Uncorrectable {
                                scheme: "interleaved-secded",
                                detail: format!(
                                    "impossible syndrome {syn} (superblock {s}, lane {j})"
                                ),
                            });
                        }
                        match lay.pos_to_databit[syn as usize] {
                            Some(bit) => {
                                // The corrected bit must exist in this
                                // (possibly partial) superblock.
                                let raw = bit as u64 * self.depth as u64 + j as u64;
                                if raw >= block_bits {
                                    return Err(EccError::Uncorrectable {
                                        scheme: "interleaved-secded",
                                        detail: format!(
                                            "syndrome points into tail padding (superblock {s}, lane {j})"
                                        ),
                                    });
                                }
                                v ^= 1u64 << bit;
                                self.scatter(block, j, v);
                            }
                            None => {
                                let pbit = syn.trailing_zeros();
                                parity[s * self.depth + j] ^= 1 << pbit;
                            }
                        }
                        report.corrected_bits += 1;
                    }
                    (_, false) => {
                        return Err(EccError::Uncorrectable {
                            scheme: "interleaved-secded",
                            detail: format!("double-bit error in superblock {s}, lane {j}"),
                        });
                    }
                }
            }
        }
        Ok(report)
    }

    fn capability(&self) -> Capability {
        Capability {
            detects_sparse: true,
            corrects_sparse: true,
            corrects_burst: true, // bursts up to `depth` bits
            correctable_per_mb: single_correct_rate_per_mb(MB / 8.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::flip_bit;

    fn sample(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 89) ^ (i >> 2)) as u8).collect()
    }

    #[test]
    fn validates_depth() {
        assert!(InterleavedSecDed::new(1).is_err());
        assert!(InterleavedSecDed::new(5000).is_err());
        assert!(InterleavedSecDed::new(64).is_ok());
    }

    #[test]
    fn clean_round_trip() {
        for depth in [2usize, 8, 64, 100] {
            let s = InterleavedSecDed::new(depth).unwrap();
            let data = sample(3000);
            let enc = s.encode(&data);
            let (out, report) = s.decode(&enc, data.len()).unwrap();
            assert_eq!(out, data, "depth {depth}");
            assert!(report.is_clean());
        }
    }

    #[test]
    fn overhead_matches_secded_w64() {
        let s = InterleavedSecDed::new(64).unwrap();
        // Asymptotic 12.5%; exact for multiples of the superblock.
        assert_eq!(s.parity_len(8 * 64 * 10), 64 * 10);
        assert!((s.storage_overhead() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn corrects_every_single_bit_flip_in_data() {
        let s = InterleavedSecDed::new(8).unwrap();
        let data = sample(8 * 8 * 3); // three full superblocks
        let enc = s.encode(&data);
        for bit in 0..(data.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, report) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "bit {bit}");
            assert_eq!(report.corrected_bits, 1);
        }
    }

    #[test]
    fn corrects_bursts_up_to_depth_bits() {
        let depth = 32;
        let s = InterleavedSecDed::new(depth).unwrap();
        let data = sample(8 * depth * 4);
        let enc = s.encode(&data);
        // Bursts of exactly `depth` contiguous bits at various offsets,
        // including straddling superblock boundaries.
        for start in [0u64, 13, 777, (8 * depth as u64 * 8) - 16, 2048] {
            let mut bad = enc.clone();
            for b in 0..depth as u64 {
                let bit = start + b;
                if bit < data.len() as u64 * 8 {
                    flip_bit(&mut bad, bit);
                }
            }
            let (out, _) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "burst at {start}");
        }
    }

    #[test]
    fn plain_secded_fails_the_same_burst() {
        // The motivating contrast: an un-interleaved SEC-DED cannot survive
        // a multi-bit burst inside one codeword.
        let s = crate::secded::SecDed::w64();
        let data = sample(512);
        let mut enc = crate::codec::EccScheme::encode(&s, &data);
        for b in 100..116u64 {
            flip_bit(&mut enc, b);
        }
        assert!(crate::codec::EccScheme::decode(&s, &enc, data.len()).is_err());
    }

    #[test]
    fn burst_longer_than_depth_detected() {
        let depth = 8;
        let s = InterleavedSecDed::new(depth).unwrap();
        let data = sample(8 * depth * 2);
        let mut enc = s.encode(&data);
        // 3×depth-bit burst: some lane collects ≥2 flips → double detect.
        for b in 0..(3 * depth as u64) {
            flip_bit(&mut enc, 64 + b);
        }
        match s.decode(&enc, data.len()) {
            Err(_) => {}
            Ok((out, _)) => assert_ne!(out, data, "must not silently claim success"),
        }
    }

    #[test]
    fn ragged_tail_superblock() {
        let s = InterleavedSecDed::new(16).unwrap();
        let data = sample(8 * 16 + 37); // one full + one partial superblock
        let enc = s.encode(&data);
        let (out, _) = s.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
        for bit in (0..data.len() as u64 * 8).step_by(7) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, _) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "tail bit {bit}");
        }
    }

    #[test]
    fn parity_region_flips_are_handled() {
        let s = InterleavedSecDed::new(8).unwrap();
        let data = sample(8 * 8 * 2);
        let enc = s.encode(&data);
        for bit in (data.len() as u64 * 8)..(enc.len() as u64 * 8) {
            let mut bad = enc.clone();
            flip_bit(&mut bad, bit);
            let (out, report) = s.decode(&bad, data.len()).unwrap();
            assert_eq!(out, data, "parity bit {bit}");
            assert_eq!(report.corrected_bits, 1);
        }
    }

    #[test]
    fn works_through_extension_style_dyn_dispatch() {
        let s: std::sync::Arc<dyn EccScheme> =
            std::sync::Arc::new(InterleavedSecDed::new(16).unwrap());
        let data = sample(1000);
        let enc = s.encode(&data);
        let (out, _) = s.decode(&enc, data.len()).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn empty_input() {
        let s = InterleavedSecDed::new(4).unwrap();
        let enc = s.encode(&[]);
        assert!(enc.is_empty());
        assert!(s.decode(&enc, 0).unwrap().0.is_empty());
    }
}
